//! Cross-crate integration tests: multiple structures sharing one pool,
//! concurrent torture with mid-run crash images for every structure, and
//! whole-stack recovery.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Arc, Mutex};

use nvram_logfree::prelude::*;
use rand::prelude::*;

fn crash_pool(mb: usize) -> Arc<PmemPool> {
    PoolBuilder::new(mb << 20).mode(Mode::CrashSim).build()
}

/// Per-thread journal of completed updates: `(key, Some(val))` for an
/// insert, `(key, None)` for a remove.
type CompletedLog = Mutex<Vec<(u64, Option<u64>)>>;

#[test]
fn two_structures_share_one_pool_and_recover_together() {
    let pool = crash_pool(64);
    let domain = NvDomain::create(Arc::clone(&pool));
    let ht = HashTable::create(&domain, 1, 64, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    let ll = LinkedList::create(&domain, 2, LinkOps::new(Arc::clone(&pool), None));
    let mut ctx = domain.register();
    for k in 1..=200u64 {
        ht.insert(&mut ctx, k, k).unwrap();
        ll.insert(&mut ctx, k, k + 1).unwrap();
    }
    for k in (1..=200u64).step_by(2) {
        ht.remove(&mut ctx, k);
        ll.remove(&mut ctx, k);
    }
    drop(ctx);
    // SAFETY: no threads running.
    unsafe { pool.simulate_crash().unwrap() };

    let domain = NvDomain::attach(Arc::clone(&pool));
    let ht = HashTable::attach(&domain, 1, LinkOps::new(Arc::clone(&pool), None));
    let ll = LinkedList::attach(&domain, 2, LinkOps::new(Arc::clone(&pool), None));
    let mut f = pool.flusher();
    ht.recover(&mut f);
    ll.recover(&mut f);
    // One leak scan with a composed oracle covering both structures.
    let ll_reachable = ll.collect_reachable();
    domain.recover_leaks(|a| ht.contains_node_at(a) || ll_reachable.contains(&a));

    let mut ctx = domain.register();
    for k in 1..=200u64 {
        let expect_present = k % 2 == 0;
        assert_eq!(ht.get(&mut ctx, k).is_some(), expect_present, "ht key {k}");
        assert_eq!(ll.get(&mut ctx, k).is_some(), expect_present, "ll key {k}");
    }
}

/// Shared torture driver: concurrent disjoint-range updaters on any
/// structure, one crash image captured mid-run, full audit afterwards.
fn torture<D, R>(make: impl Fn(&Arc<NvDomain>, &Arc<PmemPool>) -> D, recover: R)
where
    D: Sync,
    D: TortureOps,
    R: Fn(&Arc<PmemPool>) -> (Arc<NvDomain>, Box<dyn FnMut(u64) -> Option<u64>>),
{
    const THREADS: u64 = 6;
    let pool = crash_pool(256);
    let domain = NvDomain::create(Arc::clone(&pool));
    let ds = make(&domain, &pool);
    let completed: Vec<CompletedLog> = (0..THREADS).map(|_| Mutex::new(Vec::new())).collect();
    let image: Mutex<Option<(Vec<u64>, Vec<usize>)>> = Mutex::new(None);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let domain = Arc::clone(&domain);
            let ds = &ds;
            let completed = &completed;
            s.spawn(move || {
                let mut ctx = domain.register();
                let base = 1 + t * 100_000;
                let mut rng = StdRng::seed_from_u64(t + 1);
                for _ in 0..4000 {
                    let k = base + rng.gen_range(0..400);
                    if rng.gen_bool(0.55) {
                        if ds.insert(&mut ctx, k, t + 1) {
                            completed[t as usize].lock().unwrap().push((k, Some(t + 1)));
                        }
                    } else if ds.remove(&mut ctx, k).is_some() {
                        completed[t as usize].lock().unwrap().push((k, None));
                    }
                }
                ctx.drain_all();
            });
        }
        let pool2 = Arc::clone(&pool);
        let completed_ref = &completed;
        let image_ref = &image;
        s.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(25));
            let horizon: Vec<usize> =
                completed_ref.iter().map(|v| v.lock().unwrap().len()).collect();
            let img = pool2.capture_crash_image().unwrap();
            *image_ref.lock().unwrap() = Some((img, horizon));
        });
    });
    drop(ds);

    let (img, horizon) = image.lock().unwrap().take().expect("image captured");
    // SAFETY: workers joined.
    unsafe { pool.crash_to_image(&img).unwrap() };
    let (_domain2, mut lookup) = recover(&pool);

    for t in 0..THREADS as usize {
        let log = completed[t].lock().unwrap();
        let mut expect: HashMap<u64, Option<u64>> = HashMap::new();
        for &(k, v) in &log[..horizon[t]] {
            expect.insert(k, v);
        }
        let mut exempt: HashSet<u64> = HashSet::new();
        for &(k, _) in &log[horizon[t]..] {
            exempt.insert(k);
        }
        for (k, want) in expect {
            if exempt.contains(&k) {
                continue;
            }
            assert_eq!(lookup(k), want, "thread {t} key {k}");
        }
    }
}

/// Minimal op interface for the torture driver.
trait TortureOps {
    fn insert(&self, ctx: &mut ThreadCtx, k: u64, v: u64) -> bool;
    fn remove(&self, ctx: &mut ThreadCtx, k: u64) -> Option<u64>;
}

macro_rules! impl_torture {
    ($t:ty) => {
        impl TortureOps for $t {
            fn insert(&self, ctx: &mut ThreadCtx, k: u64, v: u64) -> bool {
                <$t>::insert(self, ctx, k, v).expect("pool sized")
            }
            fn remove(&self, ctx: &mut ThreadCtx, k: u64) -> Option<u64> {
                <$t>::remove(self, ctx, k)
            }
        }
    };
}

impl_torture!(HashTable);
impl_torture!(LinkedList);
impl_torture!(SkipList);
impl_torture!(Bst);

#[test]
fn torture_hash_table() {
    torture(
        |domain, pool| {
            HashTable::create(domain, 1, 4096, LinkOps::new(Arc::clone(pool), None)).unwrap()
        },
        |pool| {
            let domain = NvDomain::attach(Arc::clone(pool));
            let ht = HashTable::attach(&domain, 1, LinkOps::new(Arc::clone(pool), None));
            let mut f = pool.flusher();
            ht.recover(&mut f);
            domain.recover_leaks(|a| ht.contains_node_at(a));
            let snap: HashMap<u64, u64> = ht.snapshot().into_iter().collect();
            (domain, Box::new(move |k| snap.get(&k).copied()))
        },
    );
}

#[test]
fn torture_skip_list() {
    torture(
        |domain, pool| {
            let mut ctx = domain.register();
            SkipList::create(domain, &mut ctx, 1, LinkOps::new(Arc::clone(pool), None)).unwrap()
        },
        |pool| {
            let domain = NvDomain::attach(Arc::clone(pool));
            let sl = SkipList::attach(&domain, 1, LinkOps::new(Arc::clone(pool), None));
            let mut f = pool.flusher();
            sl.recover(&mut f);
            domain.recover_leaks(|a| sl.contains_node_at(a));
            let snap: HashMap<u64, u64> = sl.snapshot().into_iter().collect();
            (domain, Box::new(move |k| snap.get(&k).copied()))
        },
    );
}

#[test]
fn torture_bst() {
    torture(
        |domain, pool| {
            let mut ctx = domain.register();
            Bst::create(domain, &mut ctx, 1, LinkOps::new(Arc::clone(pool), None)).unwrap()
        },
        |pool| {
            let domain = NvDomain::attach(Arc::clone(pool));
            let bst = Bst::attach(&domain, 1, LinkOps::new(Arc::clone(pool), None));
            let mut f = pool.flusher();
            bst.recover(&mut f);
            domain.recover_leaks(|a| bst.contains_node_at(a));
            let snap: HashMap<u64, u64> = bst.snapshot().into_iter().collect();
            (domain, Box::new(move |k| snap.get(&k).copied()))
        },
    );
}

#[test]
fn torture_linked_list() {
    torture(
        |domain, pool| LinkedList::create(domain, 1, LinkOps::new(Arc::clone(pool), None)),
        |pool| {
            let domain = NvDomain::attach(Arc::clone(pool));
            let ll = LinkedList::attach(&domain, 1, LinkOps::new(Arc::clone(pool), None));
            let mut f = pool.flusher();
            ll.recover(&mut f);
            let reachable = ll.collect_reachable();
            domain.recover_leaks(|a| reachable.contains(&a));
            let snap: HashMap<u64, u64> = ll.snapshot().into_iter().collect();
            (domain, Box::new(move |k| snap.get(&k).copied()))
        },
    );
}

#[test]
fn repeated_crashes_accumulate_no_corruption() {
    // Crash, recover, keep working, crash again — five times over.
    let pool = crash_pool(64);
    let mut oracle = BTreeMap::new();
    {
        let domain = NvDomain::create(Arc::clone(&pool));
        let _ = HashTable::create(&domain, 1, 256, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(99);
    for round in 0..5 {
        let domain = NvDomain::attach(Arc::clone(&pool));
        let ht = HashTable::attach(&domain, 1, LinkOps::new(Arc::clone(&pool), None));
        let mut f = pool.flusher();
        ht.recover(&mut f);
        domain.recover_leaks(|a| ht.contains_node_at(a));
        let mut snap = ht.snapshot();
        snap.sort_unstable();
        assert_eq!(
            snap,
            oracle.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
            "state after crash {round}"
        );
        let mut ctx = domain.register();
        for _ in 0..500 {
            let k = rng.gen_range(1..300u64);
            if rng.gen_bool(0.6) {
                let ours = ht.insert(&mut ctx, k, round).unwrap();
                assert_eq!(ours, !oracle.contains_key(&k));
                if ours {
                    // Set semantics: a failed insert does not overwrite.
                    oracle.insert(k, round);
                }
            } else {
                assert_eq!(ht.remove(&mut ctx, k), oracle.remove(&k));
            }
        }
        drop(ctx);
        // SAFETY: no threads running.
        unsafe { pool.simulate_crash().unwrap() };
    }
}

#[test]
fn link_cache_quiesce_then_crash_loses_nothing() {
    let pool = crash_pool(64);
    let domain = NvDomain::create(Arc::clone(&pool));
    let lc = Arc::new(LinkCache::with_default_size(
        Arc::clone(&pool),
        nvram_logfree::logfree::marked::DIRTY,
    ));
    let ht = HashTable::create(&domain, 1, 256, LinkOps::new(Arc::clone(&pool), Some(lc))).unwrap();
    let mut ctx = domain.register();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(123);
    for _ in 0..3000 {
        let k = rng.gen_range(1..400u64);
        if rng.gen_bool(0.5) {
            ht.insert(&mut ctx, k, k).unwrap();
            oracle.insert(k, k);
        } else {
            ht.remove(&mut ctx, k);
            oracle.remove(&k);
        }
    }
    ht.ops().flush_link_cache(&mut ctx.flusher);
    drop(ctx);
    // SAFETY: no threads running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain = NvDomain::attach(Arc::clone(&pool));
    let ht = HashTable::attach(&domain, 1, LinkOps::new(Arc::clone(&pool), None));
    let mut f = pool.flusher();
    ht.recover(&mut f);
    domain.recover_leaks(|a| ht.contains_node_at(a));
    let mut snap = ht.snapshot();
    snap.sort_unstable();
    assert_eq!(snap, oracle.into_iter().collect::<Vec<_>>());
}

//! Property-based tests (proptest): set semantics against a `BTreeMap`
//! oracle for all four structures, durable linearizability at arbitrary
//! crash prefixes, allocator soundness, and link-cache invariants.
//!
//! Determinism: every case seed mixes in the workspace-wide
//! `CRASHTEST_SEED` environment knob (shared with the `crashtest`
//! drivers); failures print the value to rerun with. `PROPTEST_CASES`
//! scales the case counts.

use std::collections::BTreeMap;
use std::sync::Arc;

use nvram_logfree::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn op_strategy(key_max: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (1..key_max, 0..1000u64).prop_map(|(k, v)| Op::Insert(k, v)),
        (1..key_max).prop_map(Op::Remove),
        (1..key_max).prop_map(Op::Get),
    ]
}

fn crash_pool(mb: usize) -> Arc<PmemPool> {
    PoolBuilder::new(mb << 20).mode(Mode::CrashSim).build()
}

/// Applies ops to a structure + oracle, asserting identical results.
macro_rules! oracle_property {
    ($name:ident, $create:expr, $lookup_snapshot:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
            #[test]
            fn $name(ops in proptest::collection::vec(op_strategy(64), 1..400)) {
                let pool = crash_pool(32);
                let domain = NvDomain::create(Arc::clone(&pool));
                let mut ctx = domain.register();
                #[allow(clippy::redundant_closure_call)]
                let ds = ($create)(&domain, &pool, &mut ctx);
                let mut oracle = BTreeMap::new();
                for op in &ops {
                    match *op {
                        Op::Insert(k, v) => {
                            let ours = ds.insert(&mut ctx, k, v).unwrap();
                            prop_assert_eq!(ours, !oracle.contains_key(&k));
                            if ours {
                                // Set semantics: failed inserts do not
                                // overwrite the stored value.
                                oracle.insert(k, v);
                            }
                        }
                        Op::Remove(k) => {
                            prop_assert_eq!(ds.remove(&mut ctx, k), oracle.remove(&k));
                        }
                        Op::Get(k) => {
                            prop_assert_eq!(ds.get(&mut ctx, k), oracle.get(&k).copied());
                        }
                    }
                }
                #[allow(clippy::redundant_closure_call)]
                let mut snap = ($lookup_snapshot)(&ds);
                snap.sort_unstable();
                let expect: Vec<(u64, u64)> = oracle.into_iter().collect();
                prop_assert_eq!(snap, expect);
            }
        }
    };
}

oracle_property!(
    linked_list_matches_oracle,
    |domain: &Arc<NvDomain>, pool: &Arc<PmemPool>, _ctx: &mut ThreadCtx| LinkedList::create(
        domain,
        1,
        LinkOps::new(Arc::clone(pool), None)
    ),
    |ds: &LinkedList| ds.snapshot()
);

oracle_property!(
    hash_table_matches_oracle,
    |domain: &Arc<NvDomain>, pool: &Arc<PmemPool>, _ctx: &mut ThreadCtx| HashTable::create(
        domain,
        1,
        32,
        LinkOps::new(Arc::clone(pool), None)
    )
    .unwrap(),
    |ds: &HashTable| ds.snapshot()
);

oracle_property!(
    skip_list_matches_oracle,
    |domain: &Arc<NvDomain>, pool: &Arc<PmemPool>, ctx: &mut ThreadCtx| SkipList::create(
        domain,
        ctx,
        1,
        LinkOps::new(Arc::clone(pool), None)
    )
    .unwrap(),
    |ds: &SkipList| ds.snapshot()
);

oracle_property!(
    bst_matches_oracle,
    |domain: &Arc<NvDomain>, pool: &Arc<PmemPool>, ctx: &mut ThreadCtx| Bst::create(
        domain,
        ctx,
        1,
        LinkOps::new(Arc::clone(pool), None)
    )
    .unwrap(),
    |ds: &Bst| ds.snapshot()
);

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Durable linearizability at an arbitrary crash point: apply a
    /// random op sequence single-threaded, crash after a random prefix,
    /// recover, and require exactly the oracle state at that prefix.
    #[test]
    fn hash_table_crash_at_any_prefix_is_exact(
        ops in proptest::collection::vec(op_strategy(48), 1..250),
        cut_frac in 0.0f64..1.0,
    ) {
        let pool = crash_pool(32);
        let domain = NvDomain::create(Arc::clone(&pool));
        let ht = HashTable::create(&domain, 1, 32, LinkOps::new(Arc::clone(&pool), None))
            .unwrap();
        let mut ctx = domain.register();
        let cut = ((ops.len() as f64) * cut_frac) as usize;
        let mut oracle = BTreeMap::new();
        let mut image = None;
        for (i, op) in ops.iter().enumerate() {
            if i == cut {
                image = Some((pool.capture_crash_image().unwrap(), oracle.clone()));
            }
            match *op {
                Op::Insert(k, v) => {
                    if ht.insert(&mut ctx, k, v).unwrap() {
                        oracle.insert(k, v);
                    }
                }
                Op::Remove(k) => {
                    ht.remove(&mut ctx, k);
                    oracle.remove(&k);
                }
                Op::Get(k) => {
                    ht.get(&mut ctx, k);
                }
            }
        }
        let (img, expect) = image.unwrap_or_else(|| {
            (pool.capture_crash_image().unwrap(), oracle.clone())
        });
        drop(ctx);
        // SAFETY: no threads running.
        unsafe { pool.crash_to_image(&img).unwrap() };
        let domain = NvDomain::attach(Arc::clone(&pool));
        let ht = HashTable::attach(&domain, 1, LinkOps::new(Arc::clone(&pool), None));
        let mut f = pool.flusher();
        ht.recover(&mut f);
        domain.recover_leaks(|a| ht.contains_node_at(a));
        let mut snap = ht.snapshot();
        snap.sort_unstable();
        prop_assert_eq!(snap, expect.into_iter().collect::<Vec<_>>());
    }

    /// The allocator never double-allocates and never loses slots under
    /// random alloc/retire interleavings.
    #[test]
    fn allocator_is_sound(
        script in proptest::collection::vec((any::<bool>(), 0..4usize), 1..600)
    ) {
        let pool = PoolBuilder::new(32 << 20).mode(Mode::Perf).build();
        let domain = NvDomain::create(Arc::clone(&pool));
        let mut ctx = domain.register();
        let sizes = [24usize, 100, 180, 250];
        let mut live: Vec<usize> = Vec::new();
        for (is_alloc, class) in script {
            ctx.begin_op();
            if is_alloc || live.is_empty() {
                let a = ctx.alloc(sizes[class]).unwrap();
                prop_assert!(!live.contains(&a), "double allocation of {a:#x}");
                live.push(a);
            } else {
                let a = live.swap_remove(live.len() / 2);
                ctx.retire(a);
            }
            ctx.end_op();
        }
        ctx.drain_all();
    }

    /// Link cache: whatever interleaving of adds and scans happens, after
    /// `flush_all` every accepted link update is durable.
    #[test]
    fn link_cache_flush_makes_all_adds_durable(
        keys in proptest::collection::vec(0..200u64, 1..150)
    ) {
        use nvram_logfree::logfree::marked::DIRTY;
        let pool = crash_pool(16);
        let lc = LinkCache::with_default_size(Arc::clone(&pool), DIRTY);
        let mut f = pool.flusher();
        let base = pool.heap_start();
        let mut accepted: Vec<(usize, u64)> = Vec::new();
        for (i, &k) in keys.iter().enumerate() {
            let addr = base + 8 * i;
            let new = ((i as u64) + 1) << 3;
            match lc.try_link_and_add(k, addr, 0, new) {
                linkcache::TryLink::Added => accepted.push((addr, new)),
                linkcache::TryLink::CacheFull => {
                    // Fallback path: link-and-persist by hand.
                    pool.atomic_u64(addr).store(new, std::sync::atomic::Ordering::Release);
                    f.persist(addr, 8);
                    accepted.push((addr, new));
                }
                linkcache::TryLink::LinkCasFailed => {}
            }
            if i % 7 == 0 {
                lc.scan(k, &mut f);
            }
        }
        lc.flush_all(&mut f);
        // SAFETY: no threads running.
        unsafe { pool.simulate_crash().unwrap() };
        for (addr, want) in accepted {
            let got = pool.atomic_u64(addr).load(std::sync::atomic::Ordering::Relaxed);
            prop_assert_eq!(got & !DIRTY, want);
        }
    }

    /// The pmem shadow is exact: bytes flushed are exactly the bytes that
    /// survive.
    #[test]
    fn shadow_tracks_flushed_lines_exactly(
        writes in proptest::collection::vec((0..512usize, any::<u64>(), any::<bool>()), 1..100)
    ) {
        let pool = crash_pool(4);
        let mut f = pool.flusher();
        let base = pool.heap_start();
        let mut expect: BTreeMap<usize, u64> = BTreeMap::new();
        for (slot, val, flush) in writes {
            let addr = base + slot * 8;
            pool.atomic_u64(addr).store(val, std::sync::atomic::Ordering::Relaxed);
            if flush {
                f.persist(addr, 8);
                // Flushing commits the whole cache line, including any
                // unflushed neighbours written earlier.
                let line = addr & !63;
                for neighbour in (line..line + 64).step_by(8) {
                    let v = pool
                        .atomic_u64(neighbour)
                        .load(std::sync::atomic::Ordering::Relaxed);
                    if v != 0 {
                        expect.insert(neighbour, v);
                    }
                }
                expect.insert(addr, val);
            }
        }
        // SAFETY: no threads running.
        unsafe { pool.simulate_crash().unwrap() };
        for (addr, want) in expect {
            let got = pool.atomic_u64(addr).load(std::sync::atomic::Ordering::Relaxed);
            prop_assert_eq!(got, want, "addr {:#x}", addr);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Heap geometry round-trips: `class_of` maps the whole (prev, size]
    /// interval to the class, every slot of every class fits inside its
    /// page, and `slot_addr`/`slot_index`/`page_of` invert each other.
    #[test]
    fn heap_geometry_round_trips(
        class in 0..nvram_logfree::nvalloc::N_CLASSES,
        slot_seed in any::<u64>(),
        page_idx in 1..512usize,
    ) {
        use nvram_logfree::nvalloc::{
            class_of, page_of, slots_in_class, PageHeader, CLASSES, PAGE_SIZE,
        };
        let size = CLASSES[class];
        prop_assert_eq!(class_of(size), class);
        let prev = if class == 0 { 0 } else { CLASSES[class - 1] };
        prop_assert_eq!(class_of(prev + 1), class);
        let slots = slots_in_class(class);
        prop_assert!((1..=63).contains(&slots), "class {} has {} slots", class, slots);
        let page = page_idx * PAGE_SIZE;
        let i = (slot_seed as usize) % slots;
        let addr = PageHeader::slot_addr(page, class, i);
        prop_assert!(addr + size <= page + PAGE_SIZE, "slot {} overflows its page", i);
        prop_assert_eq!(page_of(addr), page);
        prop_assert_eq!(PageHeader::slot_index(addr, class), i);
    }

    /// The durable TLAB lease word encodes (page, start, end) losslessly
    /// for every page-aligned address and in-range slot window.
    #[test]
    fn tlab_lease_word_round_trips(
        page_idx in 1..(1usize << 20),
        start in 0..62usize,
        len in 1..63usize,
    ) {
        use nvram_logfree::nvalloc::tlab;
        let page = page_idx * 4096;
        let end = (start + len).min(63);
        prop_assert!(start < end);
        let w = tlab::encode_lease(page, start, end);
        prop_assert_eq!(tlab::lease_page(w), page);
        prop_assert_eq!(tlab::lease_start(w), start);
        prop_assert_eq!(tlab::lease_end(w), end);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// TLAB lease recovery invariant: run a random alloc/retire script
    /// (leases live across op boundaries), crash at a random
    /// persist-relevant event, recover — every durably-allocated slot is
    /// reclaimed (nothing is reachable) and every lease word is cleared.
    #[test]
    fn tlab_lease_recovers_with_zero_leaks_at_random_cut(
        script in proptest::collection::vec((any::<bool>(), 0..4usize), 1..200),
        cut_seed in any::<u64>(),
    ) {
        use nvram_logfree::pmem::CrashPlan;
        let run = |pool: &Arc<PmemPool>, plan: &Arc<CrashPlan>| {
            let domain = NvDomain::create(Arc::clone(pool));
            pool.install_crash_plan(Arc::clone(plan));
            let mut ctx = domain.register();
            let sizes = [24usize, 100, 180, 250];
            let mut live: Vec<usize> = Vec::new();
            for &(is_alloc, class) in &script {
                ctx.begin_op();
                if is_alloc || live.is_empty() {
                    live.push(ctx.alloc(sizes[class]).unwrap());
                } else {
                    let a = live.swap_remove(live.len() / 2);
                    ctx.retire(a);
                }
                ctx.end_op();
            }
            drop(ctx); // drop-time lease retire is in the event stream
            pool.clear_crash_plan();
        };
        let pool = crash_pool(8);
        let count = CrashPlan::count_only();
        run(&pool, &count);
        let total = count.events();
        prop_assert!(total > 0);
        let k = cut_seed % (total + 1);

        let pool = crash_pool(8);
        let image = Arc::new(std::sync::Mutex::new(None));
        let plan = CrashPlan::fire_at(k, {
            let pool = Arc::clone(&pool);
            let image = Arc::clone(&image);
            Box::new(move || {
                *image.lock().unwrap() = Some(pool.capture_crash_image().unwrap());
            })
        });
        run(&pool, &plan);
        let img = image
            .lock()
            .unwrap()
            .take()
            .unwrap_or_else(|| pool.capture_crash_image().unwrap());
        // SAFETY: the script has finished; no other thread uses the pool.
        unsafe { pool.crash_to_image(&img).unwrap() };

        let domain = NvDomain::attach(Arc::clone(&pool));
        domain.recover_leaks(|_| false);
        prop_assert_eq!(domain.count_unreachable(|_| false), 0,
            "crash at event {}/{} leaked slots", k, total);
        prop_assert!(nvram_logfree::nvalloc::apt::lease_pages(&pool).is_empty(),
            "crash at event {}/{} left a lease word", k, total);
    }
}

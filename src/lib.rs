//! # nvram-logfree
//!
//! A complete reproduction of **“Log-Free Concurrent Data Structures”**
//! (Tudor David, Aleksandar Dragojević, Rachid Guerraoui, Igor Zablotchi —
//! USENIX ATC 2018) as a Rust workspace:
//!
//! * [`pmem`] — simulated byte-addressable NVRAM: `clwb`/`sfence`
//!   semantics, latency injection (the paper's own methodology), and an
//!   adversarial crash simulator.
//! * [`nvalloc`] — **NV-epochs** (§5): slab heap, epoch-based
//!   reclamation, and the durable active page table.
//! * [`linkcache`] — the **link cache** (§4).
//! * [`logfree`] — the four **log-free durable structures** built with
//!   **link-and-persist** (§3): Harris linked list, hash table,
//!   Herlihy–Shavit skip list, Natarajan–Mittal BST.
//! * [`logbased`] — the redo-logged lock-based baselines of §6.2.
//! * [`nvmemcached`] — **NV-Memcached** (§6.5) and its volatile
//!   comparison points, plus a memtier-style workload driver.
//! * [`workload`] — the traffic engine under every harness: key
//!   distributions (uniform/zipfian/hotspot/latest), op mixes,
//!   value-size models, deterministic per-thread streams, and a
//!   statistical self-check.
//! * `crashtest` (dev) — systematic crash-point injection: enumerates
//!   every persist-relevant event, crashes there, recovers, and
//!   validates against an operation oracle (DESIGN.md, "Crash-point
//!   coverage").
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory,
//! the experiment index, and the documented deviations from the paper.
//! Each harness under `crates/bench/src/bin/` prints paper-reported
//! ratios next to the measured ones.
//!
//! ## Quickstart
//!
//! ```
//! use nvram_logfree::prelude::*;
//! use std::sync::Arc;
//!
//! // A pool of simulated NVRAM with crash simulation enabled.
//! let pool = PoolBuilder::new(32 << 20).mode(Mode::CrashSim).build();
//! let domain = NvDomain::create(Arc::clone(&pool));
//! let table = HashTable::create(&domain, 1, 1024, LinkOps::new(Arc::clone(&pool), None))
//!     .expect("pool large enough");
//!
//! let mut ctx = domain.register();
//! table.insert(&mut ctx, 7, 700).unwrap();
//! drop(ctx);
//!
//! // Power failure...
//! // SAFETY: no other thread is using the pool.
//! unsafe { pool.simulate_crash().unwrap() };
//!
//! // ...reboot: re-attach, repair, reclaim leaks, keep serving.
//! let domain = NvDomain::attach(Arc::clone(&pool));
//! let table = HashTable::attach(&domain, 1, LinkOps::new(Arc::clone(&pool), None));
//! let mut f = pool.flusher();
//! table.recover(&mut f);
//! domain.recover_leaks(|addr| table.contains_node_at(addr));
//!
//! let mut ctx = domain.register();
//! assert_eq!(table.get(&mut ctx, 7), Some(700));
//! ```

pub use linkcache;
pub use logbased;
pub use logfree;
pub use nvalloc;
pub use nvmemcached;
pub use pmem;
pub use workload;

/// Convenient re-exports of the items nearly every user needs.
pub mod prelude {
    pub use linkcache::LinkCache;
    pub use logfree::{Bst, HashTable, LinkOps, LinkedList, SkipList};
    pub use nvalloc::{MemMode, NvDomain, ThreadCtx};
    pub use nvmemcached::{NvMemcached, ShardedNvMemcached};
    pub use pmem::{LatencyModel, Mode, PmemPool, PoolBuilder};
}

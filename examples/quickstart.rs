//! Quickstart: a durable hash table that survives a power failure.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use nvram_logfree::prelude::*;

fn main() {
    // 1. Simulated NVRAM with crash simulation (in production this would
    //    be a DAX-mapped persistent-memory file).
    let pool = PoolBuilder::new(64 << 20).mode(Mode::CrashSim).build();

    // 2. An allocation domain (NV-epochs) and a durable, lock-free hash
    //    table anchored at root slot 1.
    let domain = NvDomain::create(Arc::clone(&pool));
    let table = HashTable::create(&domain, 1, 4096, LinkOps::new(Arc::clone(&pool), None))
        .expect("pool large enough");

    // 3. Ordinary concurrent-map usage. Every completed update is durable
    //    when the call returns — no logging involved.
    let mut ctx = domain.register();
    for k in 1..=1000u64 {
        table.insert(&mut ctx, k, k * k).unwrap();
    }
    for k in 1..=500u64 {
        table.remove(&mut ctx, k);
    }
    println!("before crash: get(750) = {:?}", table.get(&mut ctx, 750));
    drop(ctx);

    // 4. Power failure! Everything not durably written back is lost.
    // SAFETY: no other thread is using the pool.
    unsafe { pool.simulate_crash().expect("crash-sim pool") };
    println!("-- power failure --");

    // 5. Reboot: re-attach, repair in milliseconds, and keep serving.
    let domain = NvDomain::attach(Arc::clone(&pool));
    let table = HashTable::attach(&domain, 1, LinkOps::new(Arc::clone(&pool), None));
    let mut flusher = pool.flusher();
    let (dirty, unlinked) = table.recover(&mut flusher);
    let report = domain.recover_leaks(|addr| table.contains_node_at(addr));
    println!(
        "recovered: {dirty} dirty links cleaned, {unlinked} deletions completed, \
         {} leaked nodes freed ({} slots checked)",
        report.leaks_freed, report.slots_scanned
    );

    let mut ctx = domain.register();
    assert_eq!(table.get(&mut ctx, 750), Some(750 * 750));
    assert_eq!(table.get(&mut ctx, 250), None, "removed before the crash");
    table.insert(&mut ctx, 250, 1).unwrap();
    println!("after recovery: get(750) = {:?}", table.get(&mut ctx, 750));
    println!("ok: all operations completed before the crash are reflected");
}

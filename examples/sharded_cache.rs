//! Sharded NV-Memcached session: N independent shard pools behind a
//! routing hash, crashed all at once and recovered in parallel.
//!
//! ```sh
//! SHARDS=4 cargo run --release --example sharded_cache
//! ```

use std::sync::Arc;
use std::time::Instant;

use nvram_logfree::nvmemcached::memtier::{run_cache, Workload};
use nvram_logfree::prelude::*;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    let n_shards = env_usize("SHARDS", 4).max(1);
    let key_range = 50_000u64;
    let pools: Vec<Arc<PmemPool>> =
        (0..n_shards).map(|_| PoolBuilder::new(64 << 20).mode(Mode::CrashSim).build()).collect();
    let cache =
        ShardedNvMemcached::create(&pools, (key_range as usize / n_shards).max(64), 1 << 20, true)
            .expect("pools large enough");

    // Warm up half the key range, as memtier does; keys spread over the
    // shards by the routing hash.
    let workload = Workload::paper(key_range, 7);
    let t = Instant::now();
    {
        let mut ctx = cache.register();
        for k in workload.warmup_keys() {
            cache.set(&mut ctx, k, k).expect("pools sized");
        }
    }
    println!(
        "warm-up of {} items over {n_shards} shard(s) took {:?} ({} items/shard avg)",
        key_range / 2,
        t.elapsed(),
        cache.len() / n_shards
    );

    // Serve a 1:4 set:get mix on 4 threads.
    let result = run_cache(&cache, 4, 100_000, workload);
    println!(
        "served {} requests at {:.0} req/s (hit rate {:.2}%)",
        result.requests,
        result.throughput(),
        100.0 * result.hit_rate()
    );

    // Planned shutdown barrier: flush link-cache residue so the count
    // comparison below is exact (an unplanned crash may legitimately
    // lose updates still sitting in the volatile link cache).
    cache.quiesce();

    // Power failure hits every shard at the same instant...
    let len_before = cache.len();
    drop(cache);
    for pool in &pools {
        // SAFETY: all workers joined by run_cache; no other thread uses
        // the pools.
        unsafe { pool.simulate_crash().expect("crash-sim pool") };
    }

    // ...reboot: geometry is validated, then every shard recovers on its
    // own thread and the reports merge.
    let t = Instant::now();
    let (cache, report) = ShardedNvMemcached::recover(&pools, 1 << 20).expect("geometry intact");
    println!(
        "parallel recovery of {n_shards} shard(s) took {:?}: {} pages scanned, {} leak(s) freed",
        t.elapsed(),
        report.pages_scanned,
        report.leaks_freed
    );
    assert_eq!(cache.len(), len_before, "every completed item survived");

    // The recovered cache keeps serving.
    let mut ctx = cache.register();
    cache.set(&mut ctx, 1, 42).expect("pools sized");
    assert_eq!(cache.get(&mut ctx, 1), Some(42));
    println!("recovered cache serves: {} items live", cache.len());
}

//! The operator's walkthrough: boot the TCP server on a durable
//! sharded cache, drive it with the open-loop client, then change the
//! topology underneath the live traffic — a 4x bucket-array grow and a
//! 2→4 shard reshard — reading `stats reshard` at each step, and
//! finally restart-as-recovery from the new pools alone.
//!
//! ```sh
//! cargo run --release --example operate_cache
//! ```
//!
//! README "Operating the cache" narrates this file section by section.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use bench::openloop::{run_open_loop, OpenLoopConfig};
use nvram_logfree::nvmemcached::memtier::Workload;
use nvram_logfree::prelude::*;
use server::{Server, ServerConfig};

const KEY_RANGE: u64 = 50_000;
const BUCKETS: usize = 1024;

fn fresh_pools(n: usize) -> Vec<Arc<PmemPool>> {
    (0..n).map(|_| PoolBuilder::new(64 << 20).mode(Mode::CrashSim).build()).collect()
}

/// One ASCII command over its own connection; returns the lines up to
/// and including `END` — exactly what `printf 'stats reshard\r\n' | nc`
/// would show.
fn ask(addr: SocketAddr, cmd: &str) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("server is listening");
    stream.write_all(format!("{cmd}\r\n").as_bytes()).expect("send command");
    let mut lines = Vec::new();
    for line in BufReader::new(stream).lines() {
        let line = line.expect("well-formed response line");
        let done = line == "END";
        lines.push(line);
        if done {
            break;
        }
    }
    lines
}

fn drive(addr: SocketAddr, label: &str, workload: Workload) {
    let r = run_open_loop(&OpenLoopConfig {
        addr,
        connections: 4,
        offered_rps: 20_000.0,
        duration: Duration::from_millis(500),
        workload,
        seed: 1914,
        // One epoll-driven client thread multiplexes all 4 connections
        // (falls back to thread-per-connection off Linux).
        client_threads: 1,
    })
    .expect("open-loop run over loopback");
    println!(
        "[{label}] offered 20000 rps, achieved {:.0} rps; p50={}ns p99={}ns max={}ns",
        r.achieved_rps(),
        r.latency.percentile(50.0),
        r.latency.percentile(99.0),
        r.latency.max(),
    );
}

fn main() {
    // Boot: two durable shard pools behind the memcached ASCII protocol.
    let old_pools = fresh_pools(2);
    let cache = Arc::new(
        ShardedNvMemcached::create(&old_pools, BUCKETS, 1 << 20, true).expect("pools sized"),
    );
    let workload = Workload::paper(KEY_RANGE, 7);
    {
        let mut ctx = cache.register();
        for k in workload.warmup_keys() {
            cache.set(&mut ctx, k, k).expect("pools sized");
        }
    }
    // Default config: the epoll event loop multiplexes every connection
    // over one worker per shard (blocking fallback off Linux).
    let server = Server::start(Arc::clone(&cache), ServerConfig::default()).expect("bind loopback");
    let addr = server.local_addr();
    println!("serving {} items on {addr}", cache.len());

    // Steady state under open-loop load, then the topology stats.
    drive(addr, "steady state", workload);
    for line in ask(addr, "stats reshard") {
        println!("  {line}");
    }

    // Live grow: 4x the bucket arrays while the server keeps serving.
    {
        let mut ctx = cache.register();
        cache.grow(&mut ctx, 4).expect("pool room for the new arrays");
        cache.finish_resize(&mut ctx).expect("pools sized");
    }
    drive(addr, "after 4x grow", workload);

    // Live reshard: commit the 2→4 migration, read the in-flight
    // cursor over the wire, then drain it while the client hammers.
    let new_pools = fresh_pools(4);
    cache.reshard_start(&new_pools, BUCKETS).expect("fresh target pools");
    println!("mid-flight:");
    for line in ask(addr, "stats reshard") {
        println!("  {line}");
    }
    std::thread::scope(|s| {
        let cache = &cache;
        s.spawn(move || while !cache.reshard_step().expect("target pools sized") {});
        drive(addr, "during reshard", workload);
    });
    println!("after reshard:");
    for line in ask(addr, "stats reshard") {
        println!("  {line}");
    }

    // Planned shutdown: drain connections, quiesce every shard pool.
    let cache = server.shutdown();
    let items = cache.len();
    drop(cache);

    // Restart-as-recovery from the four new pools alone — the retired
    // originals are no longer needed once the reshard committed.
    for pool in &new_pools {
        // SAFETY: the server is shut down; no thread touches the pools.
        unsafe { pool.simulate_crash().expect("crash-sim pool") };
    }
    let (cache, report) = ShardedNvMemcached::recover(&new_pools, 1 << 20).expect("clean topology");
    assert_eq!(cache.len(), items, "every completed item survived the restart");
    println!(
        "recovered {} items on {} shards (topology v{}), {} leak(s) freed",
        cache.len(),
        cache.n_shards(),
        cache.version(),
        report.leaks_freed
    );
    let server = Server::start_local(Arc::new(cache)).expect("bind loopback");
    drive(server.local_addr(), "after recovery", workload);
    server.shutdown();
}

//! Recovery-time sweep (a runnable mini version of Figure 10): builds
//! each structure at several sizes, crashes it, and reports how long the
//! post-crash repair + leak scan takes.
//!
//! ```sh
//! cargo run --release --example recovery_sweep
//! ```

use std::sync::Arc;
use std::time::Instant;

use nvram_logfree::prelude::*;

fn main() {
    println!("{:<12} {:>10} {:>14}", "structure", "size", "recovery");
    for &size in &[1_000u64, 10_000, 50_000] {
        // --- hash table (identity-search oracle, §5.5 first approach) ---
        let pool = PoolBuilder::new(256 << 20).mode(Mode::CrashSim).build();
        let domain = NvDomain::create(Arc::clone(&pool));
        let ht =
            HashTable::create(&domain, 1, size as usize, LinkOps::new(Arc::clone(&pool), None))
                .expect("pool sized");
        let mut ctx = domain.register();
        for k in 1..=size {
            ht.insert(&mut ctx, k, k).unwrap();
        }
        for k in (1..=size).step_by(3) {
            ht.remove(&mut ctx, k);
        }
        drop(ctx);
        // SAFETY: no other thread is using the pool.
        unsafe { pool.simulate_crash().expect("crash-sim pool") };
        let t = Instant::now();
        let domain = NvDomain::attach(Arc::clone(&pool));
        let ht = HashTable::attach(&domain, 1, LinkOps::new(Arc::clone(&pool), None));
        let mut f = pool.flusher();
        ht.recover(&mut f);
        domain.recover_leaks(|a| ht.contains_node_at(a));
        println!("{:<12} {:>10} {:>14?}", "hash-table", size, t.elapsed());

        // --- BST ---
        let pool = PoolBuilder::new(256 << 20).mode(Mode::CrashSim).build();
        let domain = NvDomain::create(Arc::clone(&pool));
        let mut ctx = domain.register();
        let bst = Bst::create(&domain, &mut ctx, 1, LinkOps::new(Arc::clone(&pool), None))
            .expect("pool sized");
        // Scrambled insertion order keeps the external tree balanced.
        let mut x = 0x9E37u64;
        for _ in 0..size {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            bst.insert(&mut ctx, x % (4 * size), x).unwrap();
        }
        drop(ctx);
        // SAFETY: as above.
        unsafe { pool.simulate_crash().expect("crash-sim pool") };
        let t = Instant::now();
        let domain = NvDomain::attach(Arc::clone(&pool));
        let bst = Bst::attach(&domain, 1, LinkOps::new(Arc::clone(&pool), None));
        let mut f = pool.flusher();
        bst.recover(&mut f);
        domain.recover_leaks(|a| bst.contains_node_at(a));
        println!("{:<12} {:>10} {:>14?}", "bst", size, t.elapsed());

        // --- skip list (index rebuilt from the level-0 chain) ---
        let pool = PoolBuilder::new(256 << 20).mode(Mode::CrashSim).build();
        let domain = NvDomain::create(Arc::clone(&pool));
        let mut ctx = domain.register();
        let sl = SkipList::create(&domain, &mut ctx, 1, LinkOps::new(Arc::clone(&pool), None))
            .expect("pool sized");
        for k in 1..=size {
            sl.insert(&mut ctx, k, k).unwrap();
        }
        drop(ctx);
        // SAFETY: as above.
        unsafe { pool.simulate_crash().expect("crash-sim pool") };
        let t = Instant::now();
        let domain = NvDomain::attach(Arc::clone(&pool));
        let sl = SkipList::attach(&domain, 1, LinkOps::new(Arc::clone(&pool), None));
        let mut f = pool.flusher();
        sl.recover(&mut f);
        domain.recover_leaks(|a| sl.contains_node_at(a));
        println!("{:<12} {:>10} {:>14?}", "skip-list", size, t.elapsed());
    }
    println!();
    println!("compare with the volatile alternative: re-populating from a");
    println!("backing store, which Figure 11 shows is orders of magnitude slower.");
}

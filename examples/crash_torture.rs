//! Durable-linearizability torture test: concurrent updaters on a skip
//! list, crash images captured mid-run, and a full audit that every
//! operation which *completed* before each image was captured is
//! reflected in the recovered structure.
//!
//! ```sh
//! cargo run --release --example crash_torture
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use nvram_logfree::prelude::*;

const THREADS: u64 = 4;
const OPS_PER_THREAD: u64 = 5_000;
const ROOT: usize = 2;

/// A completed update, recorded *after* the operation returned.
#[derive(Clone, Copy, Debug)]
enum Done {
    Inserted(u64, u64),
    Removed(u64),
}

fn main() {
    let pool = PoolBuilder::new(256 << 20).mode(Mode::CrashSim).build();
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx0 = domain.register();
    let list =
        SkipList::create(&domain, &mut ctx0, ROOT, LinkOps::new(Arc::clone(&pool), None))
            .expect("pool large enough");
    drop(ctx0);

    // Each thread owns a disjoint key range so the audit can replay each
    // thread's completed updates in order.
    let completed: Vec<Mutex<Vec<Done>>> = (0..THREADS).map(|_| Mutex::new(Vec::new())).collect();
    let snap_taken = AtomicBool::new(false);
    let image: Mutex<Option<(Vec<u64>, Vec<usize>)>> = Mutex::new(None);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let domain = Arc::clone(&domain);
            let list = &list;
            let completed = &completed;
            s.spawn(move || {
                let mut ctx = domain.register();
                let base = 1 + t * 1_000_000;
                let mut x = 0x1234_5678u64.wrapping_mul(t + 1) | 1;
                for _ in 0..OPS_PER_THREAD {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let k = base + (x % 500);
                    if x & (1 << 20) == 0 {
                        if list.insert(&mut ctx, k, t).expect("pool sized") {
                            completed[t as usize].lock().unwrap().push(Done::Inserted(k, t));
                        }
                    } else if list.remove(&mut ctx, k).is_some() {
                        completed[t as usize].lock().unwrap().push(Done::Removed(k));
                    }
                }
                ctx.drain_all();
            });
        }
        // The "power supervisor": captures a crash image mid-run. Every
        // update recorded in `completed` *before* the capture must be in
        // the recovered state; in-flight ops may or may not be.
        let pool2 = Arc::clone(&pool);
        let completed_ref = &completed;
        let image_ref = &image;
        let snap_ref = &snap_taken;
        s.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            // Record the audit horizon first, then capture: anything that
            // completed before this point is durably owed to the user.
            let horizon: Vec<usize> =
                completed_ref.iter().map(|v| v.lock().unwrap().len()).collect();
            let img = pool2.capture_crash_image().expect("crash-sim pool");
            *image_ref.lock().unwrap() = Some((img, horizon));
            snap_ref.store(true, Ordering::Release);
        });
    });
    assert!(snap_taken.load(Ordering::Acquire), "snapshot thread ran");

    let (img, horizon) = image.lock().unwrap().take().expect("image captured");
    // SAFETY: all workers joined above.
    unsafe { pool.crash_to_image(&img).expect("crash-sim pool") };

    let domain = NvDomain::attach(Arc::clone(&pool));
    let list = SkipList::attach(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None));
    let mut f = pool.flusher();
    list.recover(&mut f);
    let report = domain.recover_leaks(|a| list.contains_node_at(a));

    // Audit: replay each thread's pre-horizon completions; every key's
    // final pre-horizon state must be reflected (later in-flight ops may
    // legitimately differ, so only check keys whose last completed op is
    // before the horizon and which no in-flight op touched after it —
    // with per-thread key ownership, the last completed op per key is
    // decisive unless that thread had a later in-flight op on the key;
    // checking "present implies inserted at some point" plus the strict
    // prefix state gives a sound audit).
    let recovered: HashMap<u64, u64> = list.snapshot().into_iter().collect();
    let mut checked = 0u64;
    let mut violations = 0u64;
    for t in 0..THREADS as usize {
        let log = completed[t].lock().unwrap();
        let prefix = &log[..horizon[t]];
        // Final completed state per key within the horizon.
        let mut expect: HashMap<u64, Option<u64>> = HashMap::new();
        for d in prefix {
            match *d {
                Done::Inserted(k, v) => {
                    expect.insert(k, Some(v));
                }
                Done::Removed(k) => {
                    expect.insert(k, None);
                }
            }
        }
        // Keys touched by this thread after the horizon are exempt (an
        // in-flight or later op may have changed them legitimately).
        let mut exempt: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for d in &log[horizon[t]..] {
            match *d {
                Done::Inserted(k, _) | Done::Removed(k) => {
                    exempt.insert(k);
                }
            }
        }
        for (k, want) in expect {
            if exempt.contains(&k) {
                continue;
            }
            checked += 1;
            let got = recovered.get(&k).copied();
            if got != want {
                violations += 1;
                eprintln!("VIOLATION: key {k}: completed state {want:?}, recovered {got:?}");
            }
        }
    }
    println!(
        "audited {checked} keys across {THREADS} threads: {violations} violations \
         ({} leaked nodes freed, {} slots scanned)",
        report.leaks_freed, report.slots_scanned
    );
    assert_eq!(violations, 0, "durable linearizability violated");
    println!("ok: recovered state reflects every completed operation");
}

//! Durable-linearizability torture test, now a thin driver over the
//! `crashtest` subsystem: concurrent updaters on a skip list, a crash
//! plan that fires at a seeded persist-event index mid-run (capturing
//! the audit horizon and the durable image in one cut), then recovery
//! and a full audit that every operation which *completed* before the
//! capture is reflected in the recovered structure.
//!
//! ```sh
//! cargo run --release --example crash_torture
//! CRASHTEST_SEED=7 cargo run --release --example crash_torture
//! ```

use crashtest::{run_torture, seed_from_env, SkipTarget, TortureConfig};

fn main() {
    let cfg = TortureConfig {
        seed: seed_from_env(),
        threads: 4,
        ops_per_thread: 5_000,
        keys_per_thread: 500,
        pool_mb: 256,
        use_link_cache: false,
    };
    let report = run_torture::<SkipTarget>(&cfg);
    println!(
        "audited {} keys across {} threads: {} violations (crash at event {:?}, \
         {} leaked nodes freed, {} unreachable after recovery)",
        report.audited,
        cfg.threads,
        report.violations,
        report.crash_event,
        report.leaks_freed,
        report.leaked_after_recovery,
    );
    report.assert_clean();
    println!("ok: recovered state reflects every completed operation (seed {})", report.seed);
}

//! NV-Memcached session (§6.5): a durable object cache whose restart is a
//! recovery, not a cold re-population.
//!
//! ```sh
//! cargo run --release --example kv_cache
//! ```

use std::sync::Arc;
use std::time::Instant;

use nvram_logfree::nvmemcached::memtier::{run_threads, ReqOutcome, Request, Workload};
use nvram_logfree::nvmemcached::NvMemcached;
use nvram_logfree::prelude::*;

fn main() {
    let key_range = 50_000u64;
    let pool = PoolBuilder::new(256 << 20).mode(Mode::CrashSim).build();
    let cache = NvMemcached::create(Arc::clone(&pool), key_range as usize, 1 << 20, true)
        .expect("pool large enough");

    // Warm up half the key range, as memtier does.
    let workload = Workload::paper(key_range, 7);
    let t = Instant::now();
    {
        let mut ctx = cache.register();
        for k in workload.warmup_keys() {
            cache.set(&mut ctx, k, k).expect("pool sized");
        }
    }
    println!("warm-up of {} items took {:?}", key_range / 2, t.elapsed());

    // Serve a 1:4 set:get mix on 4 threads.
    let result = run_threads(4, 100_000, workload, |_tid| {
        let mut ctx = cache.register();
        let cache = &cache;
        move |req| match req {
            Request::Set(k, v) => {
                cache.set(&mut ctx, k, v).expect("pool sized");
                ReqOutcome::Set
            }
            Request::Get(k) => {
                if cache.get(&mut ctx, k).is_some() {
                    ReqOutcome::Hit
                } else {
                    ReqOutcome::Miss
                }
            }
        }
    });
    println!(
        "served {} requests at {:.0} ops/s ({} items cached, {:.0}% get hit rate)",
        result.requests,
        result.throughput(),
        cache.len(),
        100.0 * result.hit_rate()
    );

    // Power failure.
    drop(cache);
    // SAFETY: all workers joined.
    unsafe { pool.simulate_crash().expect("crash-sim pool") };
    println!("-- power failure --");

    // Recovery instead of a cold start: milliseconds instead of a full
    // re-population (Figure 11's right-hand plot).
    let t = Instant::now();
    let (cache, report) = NvMemcached::recover(Arc::clone(&pool), 1 << 20);
    println!(
        "recovered {} items in {:?} ({} leaked items freed)",
        cache.len(),
        t.elapsed(),
        report.leaks_freed
    );

    let mut ctx = cache.register();
    let hits = (1..=1000u64).filter(|&k| cache.get(&mut ctx, k).is_some()).count();
    println!("spot check: {hits}/1000 of the first keys still present");
    println!("(a handful of the very last sets may be absent: their links were");
    println!(" still in the link cache when power failed — the deferred-durability");
    println!(" window of §4.1; no *read* ever observed them, so consistency holds)");
}

//! Offline API-compatible subset of `criterion`: wall-clock ns/iter
//! measurement with `measurement_time`/`warm_up_time` honoured and a
//! plain-text report — no statistics, plots, or saved baselines. See
//! `vendor/README.md`.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement settings shared by [`Criterion`] and benchmark groups.
#[derive(Debug, Clone, Copy)]
struct Settings {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self { warm_up: Duration::from_millis(100), measurement: Duration::from_millis(400) }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), settings: self.settings, _parent: self }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.into(), self.settings, f);
        self
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the timed-measurement duration.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name.into()), self.settings, f);
        self
    }

    /// Ends the group (report already printed per-benchmark).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    settings: Settings,
    /// (total iterations, total measured time) filled in by `iter`.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `f`, first warming up, then measuring in growing batches
    /// until the configured measurement time is spent.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up: also calibrates a batch size targeting ~1ms per batch
        // so `Instant::now` overhead stays negligible for fast bodies.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.settings.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let warm_elapsed = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_iter = warm_elapsed.as_nanos() as u64 / warm_iters.max(1);
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1 << 20);

        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while spent < self.settings.measurement {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            spent += t.elapsed();
            iters += batch;
        }
        self.result = Some((iters, spent));
    }
}

fn run_one(name: &str, settings: Settings, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { settings, result: None };
    f(&mut b);
    match b.result {
        Some((iters, spent)) => {
            let ns = spent.as_nanos() as f64 / iters.max(1) as f64;
            println!("{name:<50} {ns:>12.1} ns/iter ({iters} iterations)");
        }
        None => println!("{name:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// Bundles benchmark functions under one runner name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.measurement_time(Duration::from_millis(5)).warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.finish();
        assert!(calls > 0);
    }
}

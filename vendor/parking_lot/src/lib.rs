//! Offline API-compatible subset of `parking_lot`: `Mutex` and `RwLock`
//! with the non-poisoning `lock()`/`read()`/`write()` signatures, backed
//! by the std primitives. See `vendor/README.md`.

use std::sync::{self, PoisonError};

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock()` returns the guard directly (no poison `Result`),
/// matching `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. parking_lot mutexes
    /// do not poison, so a panic while holding the std lock is unwrapped.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock with non-poisoning `read()`/`write()`, matching
/// `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5u64);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}

//! Offline API-compatible subset of `proptest` covering the surface this
//! workspace uses: the [`proptest!`], [`prop_oneof!`] and `prop_assert*!`
//! macros, the [`Strategy`] trait with `prop_map`, [`any`], integer/float
//! ranges and tuples as strategies, and [`collection::vec`]. See
//! `vendor/README.md`.
//!
//! Semantics: each `#[test]` runs `cases` deterministic pseudo-random
//! cases (seeded from the test name and case index, so failures
//! reproduce). There is **no shrinking** — on failure the panic message
//! carries the case number, and `PROPTEST_CASES=1`-style bisection plus
//! the deterministic seed stand in for it.
//!
//! Case-count resolution, in priority order:
//! 1. `PROPTEST_CASES` environment variable, if set;
//! 2. `cases * FULL_SCALE` when `FULL_SCALE` (an integer multiplier) is
//!    set — the workspace-wide "run the long version" knob;
//! 3. the `cases` field of [`ProptestConfig`] (default 32).
//!
//! Seeding: the per-(test, case) seed additionally mixes in the
//! workspace-wide `CRASHTEST_SEED` environment variable (default 0), the
//! single knob shared with the `crashtest` drivers. Failure messages
//! print the resolved value so any failing run reproduces with
//! `CRASHTEST_SEED=<n> cargo test <name>`.

use std::marker::PhantomData;

/// The items `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Strategy, Union};
    pub use crate::test_runner::TestRng;
    pub use crate::{any, Arbitrary, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub mod test_runner {
    //! Deterministic case generation.

    /// Splitmix64-based RNG used to generate test cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from an explicit seed.
        pub fn new(seed: u64) -> Self {
            Self { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
        }

        /// Deterministic per-(test, case) seed: failures reproduce across
        /// runs without recording anything. Mixes in [`env_seed`] so the
        /// whole workspace is re-rollable from one knob.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            h ^= env_seed().wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Self::new(h.wrapping_add(case as u64))
        }

        /// Next uniform 64-bit value.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        #[inline]
        pub fn next_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[0, bound)`; `bound` must be non-zero.
        #[inline]
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// The workspace-wide deterministic seed: `CRASHTEST_SEED` from the
    /// environment, or 0. Parsed once; printed by failure messages.
    pub fn env_seed() -> u64 {
        static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
        *SEED.get_or_init(|| {
            std::env::var("CRASHTEST_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
        })
    }
}

/// Run-time configuration. Only `cases` is honoured; the struct exists so
/// `ProptestConfig { cases: N, ..ProptestConfig::default() }` compiles
/// unchanged against the real crate.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property (before env overrides).
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// Applies the `PROPTEST_CASES` / `FULL_SCALE` environment knobs to
    /// the configured case count (see crate docs for precedence).
    pub fn resolved_cases(&self) -> u32 {
        let env_u32 = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u32>().ok());
        if let Some(n) = env_u32("PROPTEST_CASES") {
            return n.max(1);
        }
        if let Some(scale) = env_u32("FULL_SCALE") {
            return self.cases.saturating_mul(scale.max(1));
        }
        self.cases
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking; a
    /// strategy is just a deterministic function of the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among same-valued strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self {
        // Finite, roughly unit-scale values; tests use these as fractions.
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Admissible length specifications for [`vec`].
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests. Subset of the real macro: optional
/// `#![proptest_config(..)]` header, then `#[test]` functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = { $cfg }; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = { $crate::ProptestConfig::default() }; $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = { $cfg:expr };) => {};
    (cfg = { $cfg:expr };
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = __config.resolved_cases();
            for __case in 0..__cases {
                let __run = || {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                };
                if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    eprintln!(
                        "proptest: property `{}` failed at case {}/{}; rerun with \
                         CRASHTEST_SEED={} to reproduce",
                        stringify!($name), __case + 1, __cases,
                        $crate::test_runner::env_seed(),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_body! { cfg = { $cfg }; $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        let strat = (1..10u64, 0..3usize).prop_map(|(a, b)| a * 10 + b as u64);
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            let (a, b) = (v / 10, v % 10);
            assert!((1..10).contains(&a));
            assert!(b < 3);
        }
    }

    #[test]
    fn union_uses_every_arm() {
        let mut rng = TestRng::new(2);
        let strat = prop_oneof![
            (0..1u64).prop_map(|_| 0u8),
            (0..1u64).prop_map(|_| 1u8),
            (0..1u64).prop_map(|_| 2u8),
        ];
        let mut seen = [false; 3];
        for _ in 0..256 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::new(3);
        let strat = crate::collection::vec(0..5u64, 2..7);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_runs(xs in crate::collection::vec(0..100u64, 1..20), flip in any::<bool>()) {
            prop_assert!(xs.len() < 20);
            let doubled: Vec<u64> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            if flip {
                prop_assert_ne!(doubled.iter().sum::<u64>(), 1 + 2 * xs.iter().sum::<u64>());
            }
        }
    }
}

//! Offline API-compatible subset of the `rand` crate covering exactly what
//! this workspace uses: `StdRng::seed_from_u64`, `Rng::gen_range` over
//! integer ranges, and `Rng::gen_bool`. See `vendor/README.md`.
//!
//! The generator is splitmix64 — deterministic, seedable, and more than
//! good enough for randomized tests (the real `StdRng` is a CSPRNG; none
//! of the call sites need that).

/// The items `use rand::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, StdRng};
}

/// Minimal core-RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen_range` can produce.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_lt<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_le<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_lt<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_le<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i32, i64);

/// Range types `Rng::gen_range` accepts. Like the real crate this is one
/// blanket impl per range shape, generic over the element — that is what
/// lets inference pick the element type from the use site, e.g.
/// `base_u64 + rng.gen_range(0..400)`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_lt(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_le(start, end, rng)
    }
}

/// Sampling conveniences, in the style of `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // 53 uniform mantissa bits -> uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seedable generator (splitmix64).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..3);
            assert!((0..3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((3_500..6_500).contains(&hits), "hits = {hits}");
    }
}

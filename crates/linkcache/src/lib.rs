//! The **link cache** (§4 of David et al., *Log-Free Concurrent Data
//! Structures*, USENIX ATC 2018): a small, volatile, best-effort hash
//! table of data-structure links that have not yet been durably written.
//!
//! Instead of persisting every updated link one at a time (one NVRAM
//! round-trip each), updates deposit the link's address here. When an
//! operation *depends* on a cached link — a read of the key, a
//! predecessor check, an APT trim — the whole bucket (and hence a batch of
//! links) is written back at once, which is significantly faster than
//! waiting per link (§2, batched `clwb`).
//!
//! # Bucket layout (Figure 2)
//!
//! Each bucket spans exactly one cache line and stores up to
//! [`ENTRIES_PER_BUCKET`] links:
//!
//! ```text
//! +0   control   u32: flushing flag (bit 31) + 6 × 2-bit entry states
//! +4   hashes    6 × u16 key hashes
//! +16  addrs     6 × u64 link addresses
//! ```
//!
//! Entry states are *free* → *pending* (reserved, link CAS in flight) →
//! *busy* (link updated, awaiting write-back) → *free* (flushed). False
//! 16-bit-hash collisions are benign: they only trigger a write-back that
//! was not strictly necessary.
//!
//! # Durability semantics
//!
//! An update whose link sits in the cache is **not yet durable**; its
//! durable-linearizability completion is deferred to the flush of the
//! bucket. Any operation whose return value depends on such a link calls
//! [`LinkCache::scan`] first, which triggers the flush — so no operation
//! ever *returns* a value that a crash could contradict. This is the
//! paper's argument for preserving durable linearizability (§4.1).
//!
//! # HTM note
//!
//! The paper uses a hardware-transactional-memory fast path for
//! *try-link-and-add* and falls back to the marked-pointer path described
//! in §4.2. Portable Rust has no stable HTM intrinsics, so this crate
//! implements the (fully specified, semantically identical) fallback path
//! only; see DESIGN.md.

use std::sync::atomic::{AtomicU16, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use pmem::{Flusher, PmemPool};

/// Links per bucket (Figure 2).
pub const ENTRIES_PER_BUCKET: usize = 6;
/// Default number of buckets (§6.3 uses a 32-cache-line link cache).
pub const DEFAULT_BUCKETS: usize = 32;

const STATE_FREE: u32 = 0;
const STATE_PENDING: u32 = 1;
const STATE_BUSY: u32 = 2;
const STATE_MASK: u32 = 0b11;
const FLUSHING: u32 = 1 << 31;

/// Outcome of [`LinkCache::try_link_and_add`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryLink {
    /// The link was atomically updated and registered in the cache. The
    /// caller may return without a sync; durability is deferred to the
    /// next flush touching this bucket.
    Added,
    /// No cache slot was available (bucket full or being flushed). The
    /// link was **not** updated; the caller should CAS and persist it
    /// itself (link-and-persist).
    CacheFull,
    /// The cache slot was reserved but the link CAS failed (the link
    /// changed concurrently). The caller should restart its operation.
    LinkCasFailed,
}

#[repr(C, align(64))]
struct Bucket {
    control: AtomicU32,
    hashes: [AtomicU16; ENTRIES_PER_BUCKET],
    addrs: [AtomicU64; ENTRIES_PER_BUCKET],
}

impl Bucket {
    fn new() -> Self {
        Self {
            control: AtomicU32::new(0),
            hashes: std::array::from_fn(|_| AtomicU16::new(0)),
            addrs: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    #[inline]
    fn state_of(control: u32, i: usize) -> u32 {
        (control >> (2 * i)) & STATE_MASK
    }

    /// CAS entry `i`'s state from `from` to `to`, tolerating concurrent
    /// changes to other entries. With `forbid_flushing`, fails if the
    /// bucket is being flushed.
    fn transition(&self, i: usize, from: u32, to: u32, forbid_flushing: bool) -> bool {
        loop {
            let cur = self.control.load(Ordering::Acquire);
            if forbid_flushing && cur & FLUSHING != 0 {
                return false;
            }
            if Self::state_of(cur, i) != from {
                return false;
            }
            let next = (cur & !(STATE_MASK << (2 * i))) | (to << (2 * i));
            if self
                .control
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return true;
            }
        }
    }
}

/// Counters describing link-cache effectiveness (Figure 8 analysis).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LinkCacheStats {
    /// Successful `try_link_and_add` calls.
    pub adds: u64,
    /// Calls that fell back to link-and-persist (bucket full/flushing).
    pub fallbacks: u64,
    /// Bucket flushes performed.
    pub flushes: u64,
    /// Links written back by flushes.
    pub links_flushed: u64,
}

/// The volatile link cache. Shared between threads (`Sync`); all state is
/// in atomics.
pub struct LinkCache {
    pool: Arc<PmemPool>,
    buckets: Box<[Bucket]>,
    /// The bit data structures use to mark a link "not yet durable".
    dirty_bit: u64,
    stats: StatsCells,
}

#[derive(Default)]
struct StatsCells {
    adds: AtomicU64,
    fallbacks: AtomicU64,
    flushes: AtomicU64,
    links_flushed: AtomicU64,
}

impl LinkCache {
    /// Creates a cache of `n_buckets` single-cache-line buckets over
    /// `pool`. `dirty_bit` is the pointer mark the owning data structure
    /// uses for "not yet durable" links (cleared when a scan helps).
    pub fn new(pool: Arc<PmemPool>, n_buckets: usize, dirty_bit: u64) -> Self {
        assert!(n_buckets.is_power_of_two(), "bucket count must be a power of two");
        assert_eq!(dirty_bit.count_ones(), 1, "dirty bit must be a single bit");
        let mut v = Vec::with_capacity(n_buckets);
        v.resize_with(n_buckets, Bucket::new);
        Self { pool, buckets: v.into_boxed_slice(), dirty_bit, stats: StatsCells::default() }
    }

    /// Convenience constructor with the paper's default size.
    pub fn with_default_size(pool: Arc<PmemPool>, dirty_bit: u64) -> Self {
        Self::new(pool, DEFAULT_BUCKETS, dirty_bit)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> LinkCacheStats {
        LinkCacheStats {
            adds: self.stats.adds.load(Ordering::Relaxed),
            fallbacks: self.stats.fallbacks.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
            links_flushed: self.stats.links_flushed.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn bucket_and_hash(&self, key: u64) -> (&Bucket, u16) {
        // Fibonacci hash; high bits pick the bucket, middle bits form the
        // 16-bit entry tag (never 0, so 0 can mean "unset").
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let bucket = (h >> 48) as usize & (self.buckets.len() - 1);
        let tag = ((h >> 32) as u16).max(1);
        (&self.buckets[bucket], tag)
    }

    /// §4.2 *Try Link and Add*: atomically CAS `link` from `old` to `new`
    /// (transiently `new | dirty_bit`) **and** register the link for
    /// deferred write-back under `key`. Best effort — see [`TryLink`].
    pub fn try_link_and_add(&self, key: u64, link_addr: usize, old: u64, new: u64) -> TryLink {
        let (bucket, tag) = self.bucket_and_hash(key);
        // Reserve a free entry (fail fast if the bucket is flushing).
        let control = bucket.control.load(Ordering::Acquire);
        if control & FLUSHING != 0 {
            self.stats.fallbacks.fetch_add(1, Ordering::Relaxed);
            return TryLink::CacheFull;
        }
        let Some(i) = (0..ENTRIES_PER_BUCKET).find(|&i| Bucket::state_of(control, i) == STATE_FREE)
        else {
            self.stats.fallbacks.fetch_add(1, Ordering::Relaxed);
            return TryLink::CacheFull;
        };
        if !bucket.transition(i, STATE_FREE, STATE_PENDING, true) {
            // Single attempt: constant worst case (§4.2).
            self.stats.fallbacks.fetch_add(1, Ordering::Relaxed);
            return TryLink::CacheFull;
        }
        bucket.hashes[i].store(tag, Ordering::Release);
        bucket.addrs[i].store(link_addr as u64, Ordering::Release);
        // Update the link in the data structure, marked: neither persisted
        // nor finalised in the cache yet.
        let link = self.pool.atomic_u64(link_addr);
        if link
            .compare_exchange(old, new | self.dirty_bit, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            bucket.transition(i, STATE_PENDING, STATE_FREE, false);
            self.stats.fallbacks.fetch_add(1, Ordering::Relaxed);
            return TryLink::LinkCasFailed;
        }
        // Finalise: addr/hash are valid and the link holds the value to
        // persist.
        bucket.transition(i, STATE_PENDING, STATE_BUSY, false);
        // Remove the mark; failure means a helper already persisted (and
        // possibly re-modified) the link, which is fine.
        let _ =
            link.compare_exchange(new | self.dirty_bit, new, Ordering::AcqRel, Ordering::Acquire);
        self.stats.adds.fetch_add(1, Ordering::Relaxed);
        TryLink::Added
    }

    /// §4.2 *Scan*: called by every operation for its key (and, for
    /// updates, the predecessor's key) before returning a depending
    /// result. A busy entry triggers a bucket flush; a pending entry whose
    /// link is already visible in the structure gets an individual
    /// write-back.
    pub fn scan(&self, key: u64, flusher: &mut Flusher) {
        let (bucket, tag) = self.bucket_and_hash(key);
        let control = bucket.control.load(Ordering::Acquire);
        for i in 0..ENTRIES_PER_BUCKET {
            match Bucket::state_of(control, i) {
                STATE_BUSY if bucket.hashes[i].load(Ordering::Acquire) == tag => {
                    self.flush_bucket(bucket, flusher);
                    return;
                }
                STATE_PENDING => {
                    if bucket.hashes[i].load(Ordering::Acquire) != tag {
                        continue;
                    }
                    let addr = bucket.addrs[i].load(Ordering::Acquire) as usize;
                    if addr == 0 || !self.pool.contains(addr) || addr % 8 != 0 {
                        continue;
                    }
                    // The inserting operation is mid-flight. If its new
                    // pointer is already in the structure (mark visible),
                    // our linearization point comes after it: write the
                    // link back ourselves. Otherwise we linearised first
                    // and owe nothing (§4.2).
                    let val = self.pool.atomic_u64(addr).load(Ordering::Acquire);
                    if val & self.dirty_bit != 0 {
                        flusher.clwb(addr);
                        flusher.fence();
                        let _ = self.pool.atomic_u64(addr).compare_exchange(
                            val,
                            val & !self.dirty_bit,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        );
                    }
                }
                _ => {}
            }
        }
    }

    /// §4.2 *Flush* of one bucket: set the flushing flag, write back busy
    /// entries (re-checking for late arrivals) and free them, then one
    /// fence for the whole batch.
    fn flush_bucket(&self, bucket: &Bucket, flusher: &mut Flusher) {
        // Acquire the flushing flag, or wait out a concurrent flusher —
        // either way the links are durable when we return.
        loop {
            let cur = bucket.control.load(Ordering::Acquire);
            if cur & FLUSHING != 0 {
                std::hint::spin_loop();
                continue;
            }
            if bucket
                .control
                .compare_exchange_weak(cur, cur | FLUSHING, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        let mut flushed = 0u64;
        loop {
            let control = bucket.control.load(Ordering::Acquire);
            let mut any = false;
            for i in 0..ENTRIES_PER_BUCKET {
                if Bucket::state_of(control, i) == STATE_BUSY {
                    any = true;
                    let addr = bucket.addrs[i].load(Ordering::Acquire) as usize;
                    if addr != 0 && self.pool.contains(addr) {
                        flusher.clwb(addr);
                        flushed += 1;
                    }
                    bucket.transition(i, STATE_BUSY, STATE_FREE, false);
                }
            }
            if !any {
                break;
            }
            // Loop: pending entries may have become busy meanwhile.
        }
        flusher.fence();
        bucket.control.fetch_and(!FLUSHING, Ordering::AcqRel);
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        self.stats.links_flushed.fetch_add(flushed, Ordering::Relaxed);
    }

    /// Flushes every bucket. Used before APT trims (§5.4) and at
    /// durability barriers.
    pub fn flush_all(&self, flusher: &mut Flusher) {
        for b in self.buckets.iter() {
            let control = b.control.load(Ordering::Acquire);
            let any_busy =
                (0..ENTRIES_PER_BUCKET).any(|i| Bucket::state_of(control, i) != STATE_FREE);
            if any_busy || control & FLUSHING != 0 {
                self.flush_bucket(b, flusher);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{Mode, PoolBuilder};

    const DIRTY: u64 = 1 << 1;

    fn setup() -> (Arc<PmemPool>, LinkCache, Flusher) {
        let pool = PoolBuilder::new(1 << 20).mode(Mode::CrashSim).build();
        let f = pool.flusher();
        let lc = LinkCache::new(Arc::clone(&pool), 32, DIRTY);
        (pool, lc, f)
    }

    #[test]
    fn bucket_is_one_cache_line() {
        assert_eq!(std::mem::size_of::<Bucket>(), 64);
        assert_eq!(std::mem::align_of::<Bucket>(), 64);
    }

    #[test]
    fn add_updates_link_and_clears_mark() {
        let (pool, lc, _f) = setup();
        let link = pool.heap_start();
        pool.atomic_u64(link).store(16, Ordering::Relaxed);
        assert_eq!(lc.try_link_and_add(7, link, 16, 32), TryLink::Added);
        assert_eq!(pool.atomic_u64(link).load(Ordering::Relaxed), 32);
        assert_eq!(lc.stats().adds, 1);
    }

    #[test]
    fn cas_failure_releases_entry() {
        let (pool, lc, _f) = setup();
        let link = pool.heap_start();
        pool.atomic_u64(link).store(99 << 3, Ordering::Relaxed);
        assert_eq!(lc.try_link_and_add(7, link, 8, 16), TryLink::LinkCasFailed);
        assert_eq!(pool.atomic_u64(link).load(Ordering::Relaxed), 99 << 3, "link untouched");
        // The reserved entry was released: six adds to the same bucket
        // must all find slots.
        for k in 0..ENTRIES_PER_BUCKET {
            let a = link + 8 * (k + 1);
            pool.atomic_u64(a).store(0, Ordering::Relaxed);
            assert_eq!(lc.try_link_and_add(7, a, 0, 8), TryLink::Added);
        }
    }

    #[test]
    fn scan_makes_cached_link_durable() {
        let (pool, lc, mut f) = setup();
        let link = pool.heap_start();
        pool.atomic_u64(link).store(16, Ordering::Relaxed);
        f.persist(link, 8);
        lc.try_link_and_add(7, link, 16, 32);
        // Without a scan a crash loses the update...
        let img = pool.capture_crash_image().unwrap();
        // SAFETY: single-threaded test.
        unsafe { pool.crash_to_image(&img).unwrap() };
        assert_eq!(pool.atomic_u64(link).load(Ordering::Relaxed), 16);
        // ...after a scan it must survive.
        pool.atomic_u64(link).store(16, Ordering::Relaxed);
        f.persist(link, 8);
        lc.try_link_and_add(7, link, 16, 32);
        lc.scan(7, &mut f);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        assert_eq!(pool.atomic_u64(link).load(Ordering::Relaxed), 32);
    }

    #[test]
    fn scan_of_unrelated_key_does_not_fence() {
        let (pool, lc, mut f) = setup();
        let link = pool.heap_start();
        lc.try_link_and_add(7, link, 0, 8);
        let before = f.stats().fences;
        // A key mapping to a different bucket must not flush anything.
        // Key 8 may share the bucket; find one that does not.
        let other = (0..1000u64)
            .find(|&k| {
                let h7 = 7u64.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48;
                let hk = k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48;
                (h7 as usize & 31) != (hk as usize & 31)
            })
            .unwrap();
        lc.scan(other, &mut f);
        assert_eq!(f.stats().fences, before);
    }

    #[test]
    fn bucket_overflow_falls_back() {
        let (pool, lc, _f) = setup();
        // Same key -> same bucket: fill all six entries.
        let base = pool.heap_start();
        for i in 0..ENTRIES_PER_BUCKET {
            assert_eq!(lc.try_link_and_add(7, base + 8 * i, 0, 8), TryLink::Added);
        }
        assert_eq!(lc.try_link_and_add(7, base + 8 * 6, 0, 8), TryLink::CacheFull);
        assert_eq!(lc.stats().fallbacks, 1);
    }

    #[test]
    fn flush_all_empties_and_persists() {
        let (pool, lc, mut f) = setup();
        let base = pool.heap_start();
        for i in 0..4usize {
            pool.atomic_u64(base + 64 * i).store(40, Ordering::Relaxed);
            assert_eq!(lc.try_link_and_add(i as u64, base + 64 * i, 40, 48), TryLink::Added);
        }
        lc.flush_all(&mut f);
        assert!(lc.stats().links_flushed >= 4);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        for i in 0..4usize {
            assert_eq!(pool.atomic_u64(base + 64 * i).load(Ordering::Relaxed), 48);
        }
        // All entries are free again.
        for i in 0..4usize {
            assert_eq!(lc.try_link_and_add(i as u64, base + 64 * i, 48, 56), TryLink::Added);
        }
    }

    #[test]
    fn figure3_schedule_batches_writebacks() {
        // Figure 3: Insert(7), Delete(20) (mark + unlink) and Insert(12)
        // deposit links; the Search(20) scan flushes them as one batch.
        let (pool, lc, mut f) = setup();
        let l_6_7 = pool.heap_start(); // &(6 -> 7)
        let l_20_23 = pool.heap_start() + 64; // &(20 -> 23), then &(14 -> 23)
        let l_10_12 = pool.heap_start() + 128; // &(10 -> 12)
        assert_eq!(lc.try_link_and_add(7, l_6_7, 0, 56), TryLink::Added);
        assert_eq!(lc.try_link_and_add(20, l_20_23, 0, 184), TryLink::Added);
        assert_eq!(lc.try_link_and_add(20, l_20_23, 184, 112), TryLink::Added);
        assert_eq!(lc.try_link_and_add(12, l_10_12, 0, 96), TryLink::Added);
        let fences_before = f.stats().sync_batches;
        lc.scan(20, &mut f);
        assert_eq!(f.stats().sync_batches - fences_before, 1, "one batched sync, not four");
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        assert_eq!(pool.atomic_u64(l_20_23).load(Ordering::Relaxed), 112);
    }

    #[test]
    fn concurrent_adds_and_scans() {
        let pool = PoolBuilder::new(4 << 20).mode(Mode::Perf).build();
        let lc = LinkCache::new(Arc::clone(&pool), 32, DIRTY);
        let base = pool.heap_start();
        std::thread::scope(|s| {
            for t in 0..4usize {
                let lc = &lc;
                let pool = &pool;
                s.spawn(move || {
                    let mut f = pool.flusher();
                    for i in 0..2000usize {
                        let key = (t * 2000 + i) as u64;
                        let addr = base + 8 * ((t * 2000 + i) % 10_000);
                        let _ = lc.try_link_and_add(key, addr, 0, 0);
                        if i % 16 == 0 {
                            lc.scan(key, &mut f);
                        }
                    }
                    lc.flush_all(&mut f);
                });
            }
        });
        let s = lc.stats();
        assert!(s.adds + s.fallbacks >= 4_000, "all adds accounted for");
    }
}

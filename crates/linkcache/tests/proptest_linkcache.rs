//! Property tests for the link cache: `try_link_and_add` / `scan` /
//! `flush_all` interplay under capacity pressure (many keys hashed into
//! few buckets, so `CacheFull` fallbacks and mid-stream flushes are
//! common). Runs are seeded via the workspace `CRASHTEST_SEED` knob
//! (through the vendored proptest runner).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use linkcache::{LinkCache, TryLink, ENTRIES_PER_BUCKET};
use pmem::{Mode, PmemPool, PoolBuilder};
use proptest::prelude::*;

const DIRTY: u64 = 1 << 1;

/// The smallest legal cache: every key maps to one of two buckets, so
/// capacity pressure is constant.
const TINY_BUCKETS: usize = 2;

fn crash_pool() -> Arc<PmemPool> {
    PoolBuilder::new(4 << 20).mode(Mode::CrashSim).build()
}

#[derive(Debug, Clone, Copy)]
enum Step {
    /// Attempt a cached link update of slot `i` under key `k`.
    Add { key: u64, slot: usize },
    /// Scan key `k` (the dependent-operation durability barrier).
    Scan { key: u64 },
    /// Flush every bucket (APT-trim / shutdown barrier).
    FlushAll,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..32u64, 0..256usize).prop_map(|(key, slot)| Step::Add { key, slot }),
        (0..32u64).prop_map(|key| Step::Scan { key }),
        (0..4u64).prop_map(|_| Step::FlushAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Under any interleaving of adds, scans and flushes on a tiny cache,
    /// an accepted update followed by `flush_all` is durable, fallbacks
    /// leave the link word untouched, and stats account for every attempt.
    #[test]
    fn capacity_pressure_preserves_durability(
        steps in proptest::collection::vec(step_strategy(), 1..200)
    ) {
        let pool = crash_pool();
        let lc = LinkCache::new(Arc::clone(&pool), TINY_BUCKETS, DIRTY);
        let mut f = pool.flusher();
        let base = pool.heap_start();
        // Authoritative volatile model: what each slot's link should read.
        let mut model = vec![0u64; 256];
        let mut attempts = 0u64;
        for step in steps {
            match step {
                Step::Add { key, slot } => {
                    attempts += 1;
                    let addr = base + 8 * slot;
                    let old = model[slot];
                    let new = old + 8; // clean word (low bits clear)
                    match lc.try_link_and_add(key, addr, old, new) {
                        TryLink::Added => {
                            model[slot] = new;
                            let got = pool.atomic_u64(addr).load(Ordering::Relaxed);
                            prop_assert_eq!(got & !DIRTY, new, "link updated in place");
                        }
                        TryLink::CacheFull => {
                            // The link must be untouched; fall back to
                            // link-and-persist by hand, as LinkOps does.
                            let got = pool.atomic_u64(addr).load(Ordering::Relaxed);
                            prop_assert_eq!(got & !DIRTY, old, "fallback left link alone");
                            pool.atomic_u64(addr).store(new, Ordering::Release);
                            f.persist(addr, 8);
                            model[slot] = new;
                        }
                        TryLink::LinkCasFailed => {
                            // Single-threaded: the expected value is always
                            // current, so the CAS can never fail.
                            prop_assert!(false, "spurious LinkCasFailed");
                        }
                    }
                }
                Step::Scan { key } => lc.scan(key, &mut f),
                Step::FlushAll => lc.flush_all(&mut f),
            }
        }
        let stats = lc.stats();
        prop_assert_eq!(stats.adds + stats.fallbacks, attempts, "every attempt accounted");
        // Durability barrier, then crash: every accepted update survives.
        lc.flush_all(&mut f);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        for (slot, want) in model.iter().enumerate() {
            let got = pool.atomic_u64(base + 8 * slot).load(Ordering::Relaxed);
            prop_assert_eq!(got & !DIRTY, *want, "slot {} durable", slot);
        }
    }

    /// A scan of a key whose bucket holds a busy entry for that key makes
    /// the update durable immediately — no flush_all needed — while the
    /// cache stays usable (entries freed by the bucket flush).
    #[test]
    fn scan_is_a_sufficient_durability_barrier(
        keys in proptest::collection::vec(0..16u64, 1..40)
    ) {
        let pool = crash_pool();
        let lc = LinkCache::new(Arc::clone(&pool), TINY_BUCKETS, DIRTY);
        let mut f = pool.flusher();
        let base = pool.heap_start();
        let mut scanned: Vec<(usize, u64)> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            let addr = base + 8 * i;
            match lc.try_link_and_add(key, addr, 0, 64) {
                TryLink::Added => {
                    lc.scan(key, &mut f);
                    scanned.push((addr, 64));
                }
                TryLink::CacheFull => {} // fine under pressure; not scanned
                TryLink::LinkCasFailed => prop_assert!(false, "spurious CAS failure"),
            }
        }
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        for (addr, want) in scanned {
            let got = pool.atomic_u64(addr).load(Ordering::Relaxed);
            prop_assert_eq!(got & !DIRTY, want, "scanned update survived the crash");
        }
    }

    /// Overflowing one bucket with adds never loses an accepted entry:
    /// at most `ENTRIES_PER_BUCKET` are accepted between flushes, and a
    /// flush frees all of them for reuse.
    #[test]
    fn bucket_overflow_is_bounded_and_recoverable(rounds in 1..6usize) {
        let pool = crash_pool();
        let lc = LinkCache::new(Arc::clone(&pool), TINY_BUCKETS, DIRTY);
        let mut f = pool.flusher();
        let base = pool.heap_start();
        for round in 0..rounds {
            let mut accepted = 0;
            for i in 0..(2 * ENTRIES_PER_BUCKET) {
                let addr = base + 8 * (round * 2 * ENTRIES_PER_BUCKET + i);
                // Same key -> same bucket: deliberate pressure.
                match lc.try_link_and_add(7, addr, 0, 8) {
                    TryLink::Added => accepted += 1,
                    TryLink::CacheFull => {}
                    TryLink::LinkCasFailed => prop_assert!(false, "spurious CAS failure"),
                }
            }
            prop_assert!(accepted <= ENTRIES_PER_BUCKET, "bucket capacity respected");
            prop_assert!(accepted >= 1, "an empty bucket accepts at least one add");
            lc.flush_all(&mut f);
        }
    }
}

//! Soft-capacity accounting plus the coarse FIFO eviction queue.
//!
//! One `EvictQueue` belongs to one shard (a standalone [`crate::NvMemcached`]
//! is exactly one shard), so the queue mutex is never shared across shards
//! of a [`crate::sharded::ShardedNvMemcached`].
//!
//! Like memcached's LRU the queue is advisory, not exact: entries go stale
//! when a key is deleted or re-`set` (each upsert re-enqueues its key), and
//! a stale pop simply discards the entry. What *is* guaranteed is the
//! accounting: the item counter moves only when the hash table actually
//! changed, and [`EvictQueue::enforce`] keeps evicting until the counter is
//! back at (or below) capacity or the queue runs dry — the previous
//! implementation gave up after a fixed number of stale pops without
//! retrying, so a burst of concurrent sets could overshoot the soft
//! capacity without bound once enough stale entries accumulated.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// FIFO eviction queue + item accounting for one shard.
pub struct EvictQueue {
    /// Insertion-ordered victim candidates (may contain stale entries).
    queue: Mutex<VecDeque<u64>>,
    /// Live item count of the shard's table (moves only on real changes).
    items: AtomicU64,
}

impl EvictQueue {
    /// An empty queue with a zero item count.
    pub fn new() -> Self {
        Self { queue: Mutex::new(VecDeque::new()), items: AtomicU64::new(0) }
    }

    /// Rebuilds the queue from a recovered key set (recovery path).
    pub fn rebuild(keys: impl IntoIterator<Item = u64>) -> Self {
        let queue: VecDeque<u64> = keys.into_iter().collect();
        let items = AtomicU64::new(queue.len() as u64);
        Self { queue: Mutex::new(queue), items }
    }

    /// Current (approximate under concurrency) item count.
    pub fn len(&self) -> usize {
        self.items.load(Ordering::Relaxed) as usize
    }

    /// Whether the accounted item count is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a successful insert of `key`.
    pub fn note_insert(&self, key: u64) {
        self.items.fetch_add(1, Ordering::Relaxed);
        self.queue.lock().push_back(key);
    }

    /// Records a successful removal (delete, upsert's transient remove, or
    /// a replace).
    ///
    /// The decrement saturates at zero: a concurrent set/delete pair can
    /// order the table change before the set's counter increment, and a
    /// plain `fetch_sub` would wrap the count to `u64::MAX` — at which
    /// point [`Self::enforce`] would drain the whole cache and the count
    /// would stay poisoned forever. Flooring trades that for a transient
    /// off-by-a-few in an explicitly approximate counter.
    pub fn note_remove(&self) {
        let mut cur = self.items.load(Ordering::Relaxed);
        while cur > 0 {
            match self.items.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Evicts until the item count is at or below `capacity` or the queue
    /// is exhausted. `remove(victim)` must return whether the victim was
    /// actually removed from the table; stale entries are discarded and
    /// the loop continues, so the count converges even when the queue is
    /// full of leftovers from deletes and upserts.
    pub fn enforce(&self, capacity: usize, mut remove: impl FnMut(u64) -> bool) {
        while self.items.load(Ordering::Relaxed) as usize > capacity {
            let Some(victim) = self.queue.lock().pop_front() else { return };
            if remove(victim) {
                self.items.fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

impl Default for EvictQueue {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn accounting_round_trip() {
        let q = EvictQueue::new();
        assert!(q.is_empty());
        q.note_insert(1);
        q.note_insert(2);
        assert_eq!(q.len(), 2);
        q.note_remove();
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn rebuild_counts_recovered_keys() {
        let q = EvictQueue::rebuild([7, 8, 9]);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn enforce_skips_stale_entries_until_converged() {
        // 10 enqueued keys, but only the even ones are still in the
        // "table"; enforce must chew through the stale odd entries and
        // still bring the count down to capacity.
        let q = EvictQueue::new();
        for k in 1..=10u64 {
            q.note_insert(k);
        }
        // Account for the 5 odd keys having been deleted already.
        let mut table: HashSet<u64> = (1..=10).filter(|k| k % 2 == 0).collect();
        for _ in 0..5 {
            q.note_remove();
        }
        assert_eq!(q.len(), 5);
        q.enforce(2, |victim| table.remove(&victim));
        assert_eq!(q.len(), 2);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn remove_on_zero_count_saturates_instead_of_wrapping() {
        let q = EvictQueue::new();
        q.note_remove();
        assert_eq!(q.len(), 0, "decrement below zero must floor, not wrap");
        // A wrapped counter would make enforce drain everything; a
        // floored one leaves the (empty) queue alone.
        q.enforce(0, |_| true);
        assert_eq!(q.len(), 0);
        q.note_insert(5);
        assert_eq!(q.len(), 1, "counter still tracks after the floored decrement");
    }

    #[test]
    fn enforce_stops_on_empty_queue() {
        let q = EvictQueue::new();
        q.note_insert(1);
        // Drain the queue without fixing the count: enforce must give up
        // rather than spin.
        q.enforce(0, |_| false);
        assert_eq!(q.len(), 1, "count untouched when every entry is stale");
        q.enforce(0, |_| true);
        assert_eq!(q.len(), 1, "queue already empty: nothing to evict");
    }
}

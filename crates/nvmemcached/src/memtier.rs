//! memtier_benchmark-style workload driver (§6.5).
//!
//! Mirrors the paper's methodology: a mix of `get` and `set` operations
//! over a configurable key range, a configurable set:get ratio (the
//! paper uses 1:4), and a warm-up phase that populates half the key
//! range before the timed run. In-process rather than over the network —
//! see the crate docs for why that preserves the comparison.
//!
//! Request *generation* lives in the [`workload`] crate: [`Workload`] is
//! a re-export of [`workload::TrafficSpec`] (so skewed distributions —
//! zipfian, hotspot, latest — and value-size models are available via
//! [`TrafficSpec::with_dist`]/[`TrafficSpec::with_value`]), and
//! [`RequestStream`] is a thin adapter mapping the engine's
//! [`workload::CacheOp`]s onto this module's [`Request`]s. The paper's
//! uniform configuration reproduces the historical request sequence
//! bit-for-bit (pinned by the `workload_equivalence` test).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use workload::{CacheOp, CacheStream, KeySampler, TrafficSpec};

/// The shape of a cache workload (re-exported traffic engine spec; the
/// paper's uniform 1:4 configuration is [`Workload::paper`]).
pub type Workload = TrafficSpec;

/// A single cache request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// `set key value`.
    Set(u64, u64),
    /// `get key`.
    Get(u64),
}

/// Deterministic per-thread request generator: an adapter over the
/// traffic engine's [`CacheStream`] (the modeled value *size* of a `set`
/// is dropped here — the in-process caches store fixed-width `u64`
/// values).
pub struct RequestStream {
    inner: CacheStream,
}

impl RequestStream {
    /// The request stream of worker `thread` under `workload`.
    pub fn new(workload: &Workload, thread: usize) -> Self {
        Self { inner: workload.stream(thread) }
    }

    /// The same stream over a pre-built sampler
    /// ([`workload::TrafficSpec::sampler`]) — zipfian/latest sampler
    /// construction is O(key_range), so drivers spawning many workers
    /// build it once ([`run_threads`] does).
    pub fn with_sampler(workload: &Workload, sampler: KeySampler, thread: usize) -> Self {
        Self { inner: workload.stream_with(sampler, thread) }
    }
}

impl Iterator for RequestStream {
    type Item = Request;

    #[inline]
    fn next(&mut self) -> Option<Request> {
        Some(match self.inner.next().expect("infinite stream") {
            CacheOp::Set { key, value, .. } => Request::Set(key, value),
            CacheOp::Get { key } => Request::Get(key),
        })
    }
}

/// What the cache did with one request, as observed by the worker that
/// executed it. Returned by the worker closure so [`run_threads`] can
/// aggregate the hit/miss profile of the run (memtier_benchmark reports
/// exactly these counters next to throughput).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqOutcome {
    /// A `set` was executed.
    Set,
    /// A `get` found the key.
    Hit,
    /// A `get` missed.
    Miss,
}

/// Result of a timed run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Total requests executed.
    pub requests: u64,
    /// Wall-clock duration of the timed phase.
    pub elapsed: Duration,
    /// `set` requests executed.
    pub sets: u64,
    /// `get` requests that found their key.
    pub hits: u64,
    /// `get` requests that missed.
    pub misses: u64,
}

impl RunResult {
    /// Requests per second (0.0 for an empty or zero-duration run —
    /// never NaN, so medians and JSON stay well-defined).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if self.requests == 0 || secs <= 0.0 {
            return 0.0;
        }
        self.requests as f64 / secs
    }

    /// `get` requests executed (hits + misses).
    pub fn gets(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of `get` requests that found their key (0.0 when the
    /// run issued no gets — never NaN).
    pub fn hit_rate(&self) -> f64 {
        if self.gets() == 0 {
            return 0.0;
        }
        self.hits as f64 / self.gets() as f64
    }
}

/// A cache the memtier driver can run against: per-worker connection
/// state plus one entry point executing a request and reporting what the
/// cache did with it.
///
/// Implemented by every system under test ([`crate::NvMemcached`],
/// [`crate::ClhtMemcached`], [`crate::VolatileMemcached`], and the
/// sharded [`crate::ShardedNvMemcached`]) so one driver —
/// [`run_cache`] — produces the same [`RunResult`] counters for all of
/// them.
pub trait MemtierCache: Sync {
    /// Per-worker connection state (thread contexts and the like),
    /// created before the timed window opens.
    type Conn: Send;

    /// Creates one worker's connection (e.g. registers its thread
    /// contexts).
    fn connect(&self) -> Self::Conn;

    /// Executes one request and reports its outcome.
    fn exec(&self, conn: &mut Self::Conn, req: Request) -> ReqOutcome;
}

/// Maps one request onto a cache's set/get entry points and classifies
/// the outcome — the shared body of every [`MemtierCache::exec`]
/// implementation, so the counter semantics cannot drift between
/// systems.
pub fn exec_kv<C>(
    conn: &mut C,
    req: Request,
    set: impl FnOnce(&mut C, u64, u64),
    get: impl FnOnce(&mut C, u64) -> bool,
) -> ReqOutcome {
    match req {
        Request::Set(k, v) => {
            set(conn, k, v);
            ReqOutcome::Set
        }
        Request::Get(k) => {
            if get(conn, k) {
                ReqOutcome::Hit
            } else {
                ReqOutcome::Miss
            }
        }
    }
}

/// Runs the timed workload against any [`MemtierCache`]: `ops_per_thread`
/// requests on each of `threads` workers, aggregated into one
/// [`RunResult`]. Thin wrapper over [`run_threads`].
pub fn run_cache<C: MemtierCache>(
    cache: &C,
    threads: usize,
    ops_per_thread: u64,
    workload: Workload,
) -> RunResult {
    run_threads(threads, ops_per_thread, workload, |_t| {
        let mut conn = cache.connect();
        move |req| cache.exec(&mut conn, req)
    })
}

/// Runs `ops_per_thread` requests on each of `threads` workers.
/// `make_worker(tid)` returns the per-thread closure executing one
/// request (capturing the system under test and its thread context) and
/// reporting what the cache did with it ([`ReqOutcome`]), from which the
/// run's hit/miss counters are aggregated.
///
/// Worker construction (e.g. thread-context registration) happens
/// *before* a start barrier and the timed window opens after it, so the
/// reported throughput covers only request execution — systems with
/// expensive per-thread setup are not penalised relative to those
/// without.
pub fn run_threads<W, F>(
    threads: usize,
    ops_per_thread: u64,
    workload: Workload,
    make_worker: F,
) -> RunResult
where
    F: Fn(usize) -> W + Sync,
    W: FnMut(Request) -> ReqOutcome + Send,
{
    let sets = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let barrier = std::sync::Barrier::new(threads + 1);
    let elapsed = std::thread::scope(|s| {
        let sampler = workload.sampler();
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mut worker = make_worker(t);
                let mut stream = RequestStream::with_sampler(&workload, sampler, t);
                let (sets, hits, misses) = (&sets, &hits, &misses);
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let (mut ls, mut lh, mut lm) = (0u64, 0u64, 0u64);
                    for _ in 0..ops_per_thread {
                        match worker(stream.next().expect("infinite stream")) {
                            ReqOutcome::Set => ls += 1,
                            ReqOutcome::Hit => lh += 1,
                            ReqOutcome::Miss => lm += 1,
                        }
                    }
                    sets.fetch_add(ls, Ordering::Relaxed);
                    hits.fetch_add(lh, Ordering::Relaxed);
                    misses.fetch_add(lm, Ordering::Relaxed);
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().expect("worker thread panicked");
        }
        start.elapsed()
    });
    RunResult {
        requests: threads as u64 * ops_per_thread,
        elapsed,
        sets: sets.load(Ordering::Relaxed),
        hits: hits.load(Ordering::Relaxed),
        misses: misses.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_approximately_one_to_four() {
        let w = Workload::paper(1000, 42);
        let mut sets = 0;
        let mut gets = 0;
        for req in RequestStream::new(&w, 0).take(100_000) {
            match req {
                Request::Set(..) => sets += 1,
                Request::Get(_) => gets += 1,
            }
        }
        let frac = sets as f64 / (sets + gets) as f64;
        assert!((0.18..0.22).contains(&frac), "set fraction {frac}");
    }

    #[test]
    fn keys_stay_in_range() {
        let w = Workload::paper(100, 7);
        for req in RequestStream::new(&w, 3).take(10_000) {
            let k = match req {
                Request::Set(k, _) => k,
                Request::Get(k) => k,
            };
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn streams_are_deterministic_per_thread() {
        let w = Workload::paper(100, 7);
        let a: Vec<_> = RequestStream::new(&w, 1).take(100).collect();
        let b: Vec<_> = RequestStream::new(&w, 1).take(100).collect();
        let c: Vec<_> = RequestStream::new(&w, 2).take(100).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn warmup_covers_half_range() {
        let w = Workload::paper(1000, 1);
        let keys: Vec<_> = w.warmup_keys().collect();
        assert_eq!(keys.len(), 500);
        assert_eq!(keys[0], 1);
        assert_eq!(*keys.last().unwrap(), 500);
    }

    #[test]
    fn run_threads_counts_requests() {
        let w = Workload::paper(50, 3);
        let counter = std::sync::atomic::AtomicU64::new(0);
        let r = run_threads(4, 1000, w, |_t| {
            let c = &counter;
            move |req| {
                c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                match req {
                    Request::Set(..) => ReqOutcome::Set,
                    Request::Get(_) => ReqOutcome::Hit,
                }
            }
        });
        assert_eq!(r.requests, 4000);
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 4000);
        assert!(r.throughput() > 0.0);
        assert_eq!(r.sets + r.hits + r.misses, 4000, "every request has an outcome");
        assert_eq!(r.gets(), r.hits, "this worker never reported a miss");
    }

    #[test]
    fn hit_and_miss_counters_aggregate() {
        // Workers report a hit for even keys and a miss for odd keys; the
        // aggregated counters must reflect exactly that split.
        let w = Workload::paper(100, 11);
        let r = run_threads(2, 5_000, w, |_t| {
            move |req| match req {
                Request::Set(..) => ReqOutcome::Set,
                Request::Get(k) => {
                    if k % 2 == 0 {
                        ReqOutcome::Hit
                    } else {
                        ReqOutcome::Miss
                    }
                }
            }
        });
        assert_eq!(r.sets + r.gets(), 10_000);
        assert!(r.hits > 0 && r.misses > 0);
        assert!((0.4..0.6).contains(&r.hit_rate()), "hit rate {}", r.hit_rate());
    }

    #[test]
    fn hit_rate_of_getless_run_is_zero() {
        let w = Workload { set_fraction: 1.0, ..Workload::paper(10, 1) };
        let r = run_threads(1, 100, w, |_t| |_req| ReqOutcome::Set);
        assert_eq!(r.gets(), 0);
        assert_eq!(r.hit_rate(), 0.0);
    }

    #[test]
    fn zero_request_run_has_zero_throughput_and_hit_rate() {
        let r = RunResult { requests: 0, elapsed: Duration::ZERO, sets: 0, hits: 0, misses: 0 };
        assert_eq!(r.throughput(), 0.0, "no NaN from 0/0");
        assert_eq!(r.hit_rate(), 0.0);
        // Zero-duration but non-empty (a degenerate clock) is also 0.0.
        let r = RunResult { requests: 10, elapsed: Duration::ZERO, sets: 0, hits: 5, misses: 5 };
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.hit_rate(), 0.5);
    }

    #[test]
    fn skewed_workloads_flow_through_the_driver() {
        use workload::KeyDist;
        let w = Workload::paper(1000, 9).with_dist(KeyDist::ZIPF_99);
        let mut hot = 0u64;
        let n = 50_000;
        for req in RequestStream::new(&w, 0).take(n) {
            let k = match req {
                Request::Set(k, _) => k,
                Request::Get(k) => k,
            };
            assert!((1..=1000).contains(&k));
            if k <= 10 {
                hot += 1;
            }
        }
        // Zipf-0.99 mass of the top 10 of 1000 keys is ~0.39; uniform
        // would put ~1% there.
        assert!(hot as f64 / n as f64 > 0.3, "zipfian skew visible through the adapter");
    }
}

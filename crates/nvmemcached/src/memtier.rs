//! memtier_benchmark-style workload driver (§6.5).
//!
//! Mirrors the paper's methodology: a mix of `get` and `set` operations
//! with keys drawn uniformly at random from a configurable range, a
//! configurable set:get ratio (the paper uses 1:4), and a warm-up phase
//! that populates half the key range before the timed run. In-process
//! rather than over the network — see the crate docs for why that
//! preserves the comparison.

use std::time::{Duration, Instant};

/// A single cache request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// `set key value`.
    Set(u64, u64),
    /// `get key`.
    Get(u64),
}

/// Workload shape.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Keys are drawn uniformly from `1..=key_range`.
    pub key_range: u64,
    /// sets per (sets + gets); the paper's 1:4 set:get mix is 0.2.
    pub set_fraction: f64,
    /// Seed for reproducible runs.
    pub seed: u64,
}

impl Workload {
    /// The paper's configuration: 1:4 set:get over `key_range` keys.
    pub fn paper(key_range: u64, seed: u64) -> Self {
        Self { key_range, set_fraction: 0.2, seed }
    }

    /// Creates the request stream for one worker thread.
    pub fn stream(&self, thread: usize) -> RequestStream {
        RequestStream {
            state: self.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(thread as u64 + 1)),
            key_range: self.key_range.max(1),
            set_threshold: (self.set_fraction.clamp(0.0, 1.0) * u32::MAX as f64) as u32,
        }
    }

    /// The warm-up key set: the first half of the key range, as in the
    /// paper ("we warm up the cache by inserting items covering half of
    /// the key range").
    pub fn warmup_keys(&self) -> impl Iterator<Item = u64> {
        1..=(self.key_range / 2).max(1)
    }
}

/// Deterministic per-thread request generator (xorshift-based).
pub struct RequestStream {
    state: u64,
    key_range: u64,
    set_threshold: u32,
}

impl RequestStream {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

impl Iterator for RequestStream {
    type Item = Request;

    #[inline]
    fn next(&mut self) -> Option<Request> {
        let r = self.next_u64();
        let key = (self.next_u64() % self.key_range) + 1;
        Some(if (r as u32) < self.set_threshold {
            Request::Set(key, r)
        } else {
            Request::Get(key)
        })
    }
}

/// Result of a timed run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Total requests executed.
    pub requests: u64,
    /// Wall-clock duration of the timed phase.
    pub elapsed: Duration,
}

impl RunResult {
    /// Requests per second.
    pub fn throughput(&self) -> f64 {
        self.requests as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Runs `ops_per_thread` requests on each of `threads` workers.
/// `make_worker(tid)` returns the per-thread closure executing one
/// request (capturing the system under test and its thread context).
pub fn run_threads<W, F>(
    threads: usize,
    ops_per_thread: u64,
    workload: Workload,
    make_worker: F,
) -> RunResult
where
    F: Fn(usize) -> W + Sync,
    W: FnMut(Request) + Send,
{
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let mut worker = make_worker(t);
            let mut stream = workload.stream(t);
            s.spawn(move || {
                for _ in 0..ops_per_thread {
                    worker(stream.next().expect("infinite stream"));
                }
            });
        }
    });
    RunResult { requests: threads as u64 * ops_per_thread, elapsed: start.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_approximately_one_to_four() {
        let w = Workload::paper(1000, 42);
        let mut sets = 0;
        let mut gets = 0;
        for req in w.stream(0).take(100_000) {
            match req {
                Request::Set(..) => sets += 1,
                Request::Get(_) => gets += 1,
            }
        }
        let frac = sets as f64 / (sets + gets) as f64;
        assert!((0.18..0.22).contains(&frac), "set fraction {frac}");
    }

    #[test]
    fn keys_stay_in_range() {
        let w = Workload::paper(100, 7);
        for req in w.stream(3).take(10_000) {
            let k = match req {
                Request::Set(k, _) => k,
                Request::Get(k) => k,
            };
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn streams_are_deterministic_per_thread() {
        let w = Workload::paper(100, 7);
        let a: Vec<_> = w.stream(1).take(100).collect();
        let b: Vec<_> = w.stream(1).take(100).collect();
        let c: Vec<_> = w.stream(2).take(100).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn warmup_covers_half_range() {
        let w = Workload::paper(1000, 1);
        let keys: Vec<_> = w.warmup_keys().collect();
        assert_eq!(keys.len(), 500);
        assert_eq!(keys[0], 1);
        assert_eq!(*keys.last().unwrap(), 500);
    }

    #[test]
    fn run_threads_counts_requests() {
        let w = Workload::paper(50, 3);
        let counter = std::sync::atomic::AtomicU64::new(0);
        let r = run_threads(4, 1000, w, |_t| {
            let c = &counter;
            move |_req| {
                c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        });
        assert_eq!(r.requests, 4000);
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 4000);
        assert!(r.throughput() > 0.0);
    }
}

//! **Live reshard**: migrating a [`ShardedNvMemcached`] from N to N'
//! shards without downtime.
//!
//! # The durable state machine
//!
//! A reshard is governed by one 64-bit **reshard state word** in root
//! slot [`RESHARD_STATE_ROOT`] of *old pool 0*, laid out
//! `[OLD:16][NEW:16][CURSOR:16][VERSION:16]`:
//!
//! * `OLD` / `NEW` — shard counts of the source and target topologies;
//! * `CURSOR` — how many old shards are fully drained (old shards are
//!   drained in index order, so shards `0..CURSOR` are empty and shards
//!   `CURSOR..OLD` still own their keys);
//! * `VERSION` — the *target* topology version (source version + 1).
//!
//! Every update of the word is link-and-persist (store + persist) and is
//! announced to the crash-point enumeration as
//! [`pmem::CrashEvent::ReshardState`] first, so the crashtest subsystem
//! enumerates a crash at every topology transition. The word is written
//! exactly `OLD + 1` times per reshard:
//!
//! 1. **Commit** — `[OLD][NEW][0][VERSION]`, written *after* the N' new
//!    pools are durably formatted (geometry words stamped with
//!    `VERSION`). Before this write a crash leaves the new pools as
//!    unreferenced scratch ([`GeometryError::Uncommitted`]); after it the
//!    reshard is owed and `recover()` rolls it forward.
//! 2. **Cursor advance** ×OLD — after old shard `s` is verifiably empty,
//!    the cursor swings to `s + 1`. The advance with `CURSOR == OLD` is
//!    the completion record; the word is never cleared (old pools are
//!    retired wholesale), so recovery can always distinguish *completed*
//!    from *uncommitted*.
//!
//! # Routing in flight
//!
//! While a reshard is migrating, every request resolves deterministically
//! against the volatile mirror of the cursor (monotone, so a stale read
//! only widens the dual-checked window):
//!
//! * old shard `s < CURSOR` — drained: the key lives only in its new
//!   home; route there directly.
//! * `s > CURSOR` — untouched: the key lives only in shard `s`; route
//!   old-only.
//! * `s == CURSOR` — the shard being drained: **writes** take a per-key
//!   stripe lock and go dual-path (`set` writes the new home then
//!   deletes the old copy; `delete` clears old then new — see the
//!   ordering arguments on the methods); **reads** stay lock-free,
//!   checking old-then-new (migration copies before it deletes, so an
//!   old-side miss proves the key is in its new home or absent).
//!
//! The migration driver claims each key under the same stripe lock and
//! uses the copy-then-delete discipline of `logfree::hash::resize` one
//! level up: copy into the new home (skipped if the new home already has
//! the key — **new wins**, because only a fresher client write can have
//! put it there), then delete the old copy. The cursor advances only
//! after a verification pass that holds *all* stripes — any in-flight
//! dual-path writer has finished, and every later writer re-reads the
//! advanced cursor under its stripe — so a drained shard can never
//! silently swallow an acknowledged write.
//!
//! # Retirement
//!
//! Topologies are immutable `Arc`s; connections pin the generation they
//! registered against and re-register on the next operation after a
//! change. The old shards (and their volatile bookkeeping) are therefore
//! dropped only when the last pinned connection lets go — epoch-style
//! retirement by refcount, with no reader ever observing freed shards.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use nvalloc::{OutOfMemory, RecoveryReport, ThreadCtx};
use parking_lot::Mutex;
use pmem::{CrashEvent, PmemPool};

use crate::sharded::{
    new_tallies, pack_geometry, unpack_geometry, GeometryError, Router, ShardTally,
    ShardedNvMemcached, Topology, MAX_SHARDS, MAX_VERSION, SHARD_GEOMETRY_ROOT,
};
use crate::NvMemcached;

/// Root-directory slot holding the reshard state word
/// `[OLD:16][NEW:16][CURSOR:16][VERSION:16]` on *old pool 0* (distinct
/// from [`crate::NVMC_ROOT`] and [`SHARD_GEOMETRY_ROOT`]).
pub const RESHARD_STATE_ROOT: usize = 10;

/// Writer stripes for the dual-path window: keys hash onto one of these
/// locks while their shard is being drained. 64 stripes keep unrelated
/// keys from serializing while staying cheap to sweep in the cursor-
/// advance barrier.
const N_STRIPES: usize = 64;

/// The stripe `key` serializes on during the dual-path window.
#[inline]
pub(crate) fn stripe_of(key: u64) -> usize {
    crate::sharded::shard_of(key, N_STRIPES)
}

/// Packs the reshard state word `[OLD:16][NEW:16][CURSOR:16][VERSION:16]`.
pub(crate) fn pack_reshard_state(old: usize, new: usize, cursor: usize, version: u32) -> u64 {
    debug_assert!(old <= u16::MAX as usize && new <= u16::MAX as usize);
    debug_assert!(cursor <= u16::MAX as usize && version <= MAX_VERSION);
    ((old as u64) << 48) | ((new as u64) << 32) | ((cursor as u64) << 16) | version as u64
}

/// `(old, new, cursor, version)` from a reshard state word.
pub(crate) fn unpack_reshard_state(word: u64) -> (u32, u32, u32, u32) {
    (
        (word >> 48) as u32,
        ((word >> 32) & 0xFFFF) as u32,
        ((word >> 16) & 0xFFFF) as u32,
        (word & 0xFFFF) as u32,
    )
}

/// Why a reshard could not start (or step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshardError {
    /// A reshard is already migrating; drive it to completion first.
    AlreadyInFlight,
    /// No target pools were given.
    NoPools,
    /// More target pools than the geometry word can record.
    TooManyShards {
        /// Number of pools given.
        given: usize,
    },
    /// The topology version would exceed the geometry word's field.
    VersionOverflow,
    /// The target pool at `position` already belongs to a cache (its
    /// geometry or reshard root is non-zero) and is not a leftover of
    /// this cache's own uncommitted reshard attempt.
    NotFresh {
        /// Index of the offending pool in the given slice.
        position: usize,
    },
    /// A target shard ran out of pool space mid-migration. The reshard
    /// stays in flight; no data was lost.
    OutOfMemory(OutOfMemory),
}

impl std::fmt::Display for ReshardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ReshardError::AlreadyInFlight => write!(f, "a reshard is already in flight"),
            ReshardError::NoPools => write!(f, "no target shard pools given"),
            ReshardError::TooManyShards { given } => {
                write!(f, "{given} target pools exceed the geometry word's {MAX_SHARDS}")
            }
            ReshardError::VersionOverflow => {
                write!(f, "topology version would exceed the geometry word")
            }
            ReshardError::NotFresh { position } => {
                write!(f, "target pool {position} already belongs to a cache")
            }
            ReshardError::OutOfMemory(e) => write!(f, "target shard out of pool space: {e}"),
        }
    }
}

impl std::error::Error for ReshardError {}

impl From<OutOfMemory> for ReshardError {
    fn from(e: OutOfMemory) -> Self {
        ReshardError::OutOfMemory(e)
    }
}

/// Summary of a completed [`ShardedNvMemcached::reshard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReshardStats {
    /// Shard count before.
    pub from: usize,
    /// Shard count after.
    pub to: usize,
    /// Topology version now serving.
    pub version: u32,
    /// Keys the migration driver moved (keys rewritten by clients during
    /// the flight migrate themselves and are not counted).
    pub keys_moved: u64,
}

/// Progress of an in-flight reshard (see
/// [`ShardedNvMemcached::topology_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReshardProgress {
    /// Source shard count.
    pub from: usize,
    /// Target shard count.
    pub to: usize,
    /// Old shards fully drained so far (`0..=from`).
    pub cursor: usize,
    /// Target topology version.
    pub version: u32,
}

/// A point-in-time view of the serving topology (the server's
/// `stats reshard` output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopologyStats {
    /// Serving topology version.
    pub version: u32,
    /// Serving shard count.
    pub n_shards: usize,
    /// Routing function.
    pub router: Router,
    /// In-flight migration progress, if a reshard is running.
    pub reshard: Option<ReshardProgress>,
}

/// The volatile half of an in-flight reshard, hung off the serving
/// [`Topology`]: the target shards, the cursor mirror, and the writer
/// stripes. Immutable except for the atomics; shared by every pinned
/// connection.
pub(crate) struct Flight {
    /// Target topology version.
    pub(crate) version: u32,
    pub(crate) new_shards: Arc<[NvMemcached]>,
    pub(crate) new_requests: Arc<[ShardTally]>,
    /// Volatile mirror of the durable cursor (stored *after* the durable
    /// advance, under all stripes — monotone, so a stale read only widens
    /// the dual-checked window).
    pub(crate) cursor: AtomicUsize,
    pub(crate) stripes: Box<[Mutex<()>]>,
    /// Serializes migration steps; accumulates `keys_moved`.
    pub(crate) driver: Mutex<u64>,
}

impl ShardedNvMemcached {
    /// Whether a reshard is currently migrating.
    pub fn reshard_in_flight(&self) -> bool {
        self.topology().flight.is_some()
    }

    /// A point-in-time view of the serving topology and any in-flight
    /// migration.
    pub fn topology_stats(&self) -> TopologyStats {
        let top = self.topology();
        TopologyStats {
            version: top.version,
            n_shards: top.shards.len(),
            router: top.router,
            reshard: top.flight.as_ref().map(|f| ReshardProgress {
                from: top.shards.len(),
                to: f.new_shards.len(),
                cursor: f.cursor.load(Ordering::Acquire).min(top.shards.len()),
                version: f.version,
            }),
        }
    }

    /// **Live reshard** (blocking): migrates the cache onto the freshly
    /// formatted `new_pools` (each shard gets `n_buckets` buckets and an
    /// even split of the cache's soft capacity) while concurrent
    /// operations keep serving, then retires the old shards. Equivalent
    /// to [`ShardedNvMemcached::reshard_start`] followed by
    /// [`ShardedNvMemcached::reshard_step`] until complete.
    pub fn reshard(
        &self,
        new_pools: &[Arc<PmemPool>],
        n_buckets: usize,
    ) -> Result<ReshardStats, ReshardError> {
        let from = self.n_shards();
        self.reshard_start(new_pools, n_buckets)?;
        let flight =
            Arc::clone(self.topology().flight.as_ref().expect("reshard_start installed a flight"));
        while !self.reshard_step()? {}
        let keys_moved = *flight.driver.lock();
        Ok(ReshardStats { from, to: new_pools.len(), version: flight.version, keys_moved })
    }

    /// Formats `new_pools` as the target topology, durably **commits**
    /// the reshard (state word `[OLD][NEW][0][VERSION]` on old pool 0),
    /// and switches routing into the dual-path flight. Returns with the
    /// migration at cursor 0; drive it with
    /// [`ShardedNvMemcached::reshard_step`] (or use the blocking
    /// [`ShardedNvMemcached::reshard`]).
    pub fn reshard_start(
        &self,
        new_pools: &[Arc<PmemPool>],
        n_buckets: usize,
    ) -> Result<(), ReshardError> {
        if new_pools.is_empty() {
            return Err(ReshardError::NoPools);
        }
        if new_pools.len() > MAX_SHARDS {
            return Err(ReshardError::TooManyShards { given: new_pools.len() });
        }
        let mut slot = self.topology.lock();
        let top = Arc::clone(&slot);
        if top.flight.is_some() {
            return Err(ReshardError::AlreadyInFlight);
        }
        let version = top.version + 1;
        if version > MAX_VERSION {
            return Err(ReshardError::VersionOverflow);
        }
        // Target pools must be fresh — or leftovers of this cache's own
        // uncommitted attempt at this same version (safe to reformat: the
        // commit record was never written, so they hold nothing owed).
        for (position, pool) in new_pools.iter().enumerate() {
            let word = pool.root(SHARD_GEOMETRY_ROOT);
            if word != 0 {
                let (id, _, ver, _, _) = unpack_geometry(word);
                if id != self.cache_id || ver != version {
                    return Err(ReshardError::NotFresh { position });
                }
            }
            if pool.root(RESHARD_STATE_ROOT) != 0 {
                return Err(ReshardError::NotFresh { position });
            }
        }

        let n_new = new_pools.len();
        let per_shard_capacity = self.capacity.div_ceil(n_new);
        let mut shards = Vec::with_capacity(n_new);
        for (j, pool) in new_pools.iter().enumerate() {
            let shard = NvMemcached::create(
                Arc::clone(pool),
                n_buckets,
                per_shard_capacity,
                self.use_link_cache,
            )?;
            let mut flusher = pool.flusher();
            pool.set_root(
                SHARD_GEOMETRY_ROOT,
                pack_geometry(self.cache_id, top.router, version, n_new, j),
                &mut flusher,
            );
            shards.push(shard);
        }

        // COMMIT: from here on the reshard is owed — a crash leaves a
        // committed state word and recovery rolls the migration forward.
        let old_pool = Arc::clone(top.shards[0].domain().pool());
        let mut flusher = old_pool.flusher();
        flusher.note_crash_event(CrashEvent::ReshardState);
        old_pool.set_root(
            RESHARD_STATE_ROOT,
            pack_reshard_state(top.shards.len(), n_new, 0, version),
            &mut flusher,
        );
        drop(flusher);

        let flight = Arc::new(Flight {
            version,
            new_shards: shards.into(),
            new_requests: new_tallies(n_new),
            cursor: AtomicUsize::new(0),
            stripes: (0..N_STRIPES).map(|_| Mutex::new(())).collect(),
            driver: Mutex::new(0),
        });
        *slot = Arc::new(Topology {
            version: top.version,
            router: top.router,
            shards: Arc::clone(&top.shards),
            requests: Arc::clone(&top.requests),
            flight: Some(flight),
        });
        drop(slot);
        // Connections re-register on their next operation and start
        // routing dual-path.
        self.gen.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Drains the next old shard of an in-flight reshard (or finalizes a
    /// fully drained one). Returns `Ok(true)` once the new topology is
    /// serving and the old shards are retired. Safe to call concurrently
    /// (steps serialize on the flight's driver lock) and idempotent when
    /// no reshard is in flight.
    pub fn reshard_step(&self) -> Result<bool, ReshardError> {
        let top = self.topology();
        let Some(flight) = top.flight.as_ref().map(Arc::clone) else {
            return Ok(true);
        };
        let mut moved = flight.driver.lock();
        let old_n = top.shards.len();
        let cursor = flight.cursor.load(Ordering::Acquire);
        if cursor < old_n {
            *moved += drain_shard(&top, &flight, cursor)?;
        }
        let done = flight.cursor.load(Ordering::Acquire) >= old_n;
        if done {
            let mut slot = self.topology.lock();
            // Another stepper may have swapped already (then `slot` no
            // longer points at our pinned topology).
            if Arc::ptr_eq(&slot, &top) {
                *slot = Arc::new(Topology {
                    version: flight.version,
                    router: top.router,
                    shards: Arc::clone(&flight.new_shards),
                    requests: Arc::clone(&flight.new_requests),
                    flight: None,
                });
                drop(slot);
                self.gen.fetch_add(1, Ordering::Release);
            }
        }
        Ok(done)
    }
}

/// Drains old shard `s` (the cursor shard) into the flight's target
/// shards, then advances the durable and volatile cursors to `s + 1`.
/// Runs concurrently with client traffic.
fn drain_shard(top: &Topology, flight: &Flight, s: usize) -> Result<u64, ReshardError> {
    let old = &top.shards[s];
    let mut octx = old.register();
    let mut nctxs: Vec<ThreadCtx> = flight.new_shards.iter().map(NvMemcached::register).collect();
    let mut moved = 0u64;
    // Pairs with the fence in `ShardedNvMemcached::gen_settled`: any
    // client op whose post-op generation re-check read the *pre-flight*
    // generation is ordered before this fence, so the snapshots below
    // (in particular the all-stripes re-verification) observe its
    // effects. An op that instead reads the bumped generation redoes
    // itself under the stripe locks. Together: no write a client will
    // acknowledge can land in shard `s` after the drain passes it.
    std::sync::atomic::fence(Ordering::SeqCst);
    loop {
        // Unguarded walk of a live shard — safe here, and only here:
        // while shard `s` is being drained *nothing allocates in its
        // pool* (client writes route to the target pools; the drain and
        // dual-path writers only delete), so a retired node is never
        // recycled mid-walk. The walk can at worst miss keys (caught by
        // the all-stripes verification below) or return stale ones
        // (re-verified under the stripe lock before acting).
        let snap = old.snapshot();
        if snap.is_empty() {
            // Freeze every writer, confirm emptiness, then advance. Any
            // dual-path writer mid-operation holds a stripe and finishes
            // first; any later writer re-reads the advanced cursor under
            // its stripe, so no acknowledged write can land in the
            // drained shard afterwards.
            let guards: Vec<_> = flight.stripes.iter().map(|m| m.lock()).collect();
            if old.snapshot().is_empty() {
                let next = s + 1;
                let pool0 = Arc::clone(top.shards[0].domain().pool());
                let mut flusher = pool0.flusher();
                flusher.note_crash_event(CrashEvent::ReshardState);
                pool0.set_root(
                    RESHARD_STATE_ROOT,
                    pack_reshard_state(
                        top.shards.len(),
                        flight.new_shards.len(),
                        next,
                        flight.version,
                    ),
                    &mut flusher,
                );
                drop(flusher);
                flight.cursor.store(next, Ordering::Release);
                drop(guards);
                return Ok(moved);
            }
            continue;
        }
        for (key, _) in snap {
            let _g = flight.stripes[stripe_of(key)].lock();
            if let Some(value) = old.get(&mut octx, key) {
                let d = top.router.route(key, flight.new_shards.len());
                // Copy-then-delete with the new-wins claim: a key already
                // in its new home was put there by a fresher client
                // write; re-copying the old value would travel back in
                // time.
                if flight.new_shards[d].get(&mut nctxs[d], key).is_none() {
                    flight.new_shards[d].set(&mut nctxs[d], key, value)?;
                }
                old.delete(&mut octx, key);
                moved += 1;
            }
        }
    }
}

/// Version-aware recovery: the implementation behind
/// [`ShardedNvMemcached::recover`].
pub(crate) fn recover_versioned(
    pools: &[Arc<PmemPool>],
    capacity: usize,
) -> Result<(ShardedNvMemcached, RecoveryReport), GeometryError> {
    if pools.is_empty() {
        return Err(GeometryError::NoPools);
    }
    // Parse every geometry word; cache id and router must be uniform.
    let mut geos = Vec::with_capacity(pools.len());
    let mut base: Option<(u32, Router)> = None;
    for (position, pool) in pools.iter().enumerate() {
        let word = pool.root(SHARD_GEOMETRY_ROOT);
        if word == 0 {
            return Err(GeometryError::NotSharded { position });
        }
        let (id, router, version, count, index) = unpack_geometry(word);
        let (expected_id, expected_router) = *base.get_or_insert((id, router));
        if id != expected_id {
            return Err(GeometryError::CacheMismatch {
                position,
                expected: expected_id,
                found: id,
            });
        }
        if router != expected_router {
            return Err(GeometryError::RouterMismatch { position });
        }
        geos.push((version, count, index));
    }
    let (cache_id, router) = base.expect("pools is non-empty");
    let versions: BTreeSet<u32> = geos.iter().map(|&(v, _, _)| v).collect();
    let (&lo, &hi) = (versions.first().expect("non-empty"), versions.last().expect("non-empty"));

    if versions.len() == 1 {
        // One coherent topology: positional validation, then make sure no
        // committed reshard points at absent pools.
        for (position, &(_, count, index)) in geos.iter().enumerate() {
            if count as usize != pools.len() {
                return Err(GeometryError::ShardCount {
                    position,
                    recorded: count,
                    given: pools.len(),
                });
            }
            if index as usize != position {
                return Err(GeometryError::ShardIndex { position, recorded: index });
            }
        }
        let word = pools[0].root(RESHARD_STATE_ROOT);
        if word != 0 {
            let (old, new, cursor, version) = unpack_reshard_state(word);
            if version == lo + 1 && old as usize == pools.len() {
                return Err(GeometryError::MissingShards { version, expected: new });
            }
            return Err(GeometryError::TornReshard { old, new, cursor, version });
        }
        let (shards, report) = ShardedNvMemcached::recover_group(pools, capacity);
        let cache = ShardedNvMemcached::assemble(shards, lo, router, cache_id, capacity, false);
        return Ok((cache, report));
    }

    if versions.len() > 2 || hi != lo + 1 {
        return Err(GeometryError::VersionSkew { lo, hi });
    }

    // Two adjacent versions: a crash hit mid-reshard. Partition the pools
    // (order within each group is still positional).
    let mut old_pools: Vec<Arc<PmemPool>> = Vec::new();
    let mut new_pools: Vec<Arc<PmemPool>> = Vec::new();
    for (position, (&(version, count, index), pool)) in geos.iter().zip(pools).enumerate() {
        let group = if version == lo { &mut old_pools } else { &mut new_pools };
        if index as usize != group.len() {
            return Err(GeometryError::ShardIndex { position, recorded: index });
        }
        group.push(Arc::clone(pool));
        // Count is validated against the final group size below; record
        // position for the error here.
        let _ = count;
    }
    for (position, &(version, count, _)) in geos.iter().enumerate() {
        let group_len = if version == lo { old_pools.len() } else { new_pools.len() };
        if count as usize != group_len {
            return Err(GeometryError::ShardCount { position, recorded: count, given: group_len });
        }
    }

    // The old group's commit record must describe exactly these groups.
    let word = old_pools[0].root(RESHARD_STATE_ROOT);
    if word == 0 {
        return Err(GeometryError::Uncommitted { version: hi });
    }
    let (old, new, cursor, version) = unpack_reshard_state(word);
    if old as usize != old_pools.len()
        || new as usize != new_pools.len()
        || version != hi
        || cursor > old
    {
        return Err(GeometryError::TornReshard { old, new, cursor, version });
    }

    // Every shard of both groups recovers in parallel first (each repairs
    // its table and reclaims its leaks), then the interrupted migration
    // is rolled forward from the durable cursor.
    let (old_shards, mut report) = ShardedNvMemcached::recover_group(&old_pools, capacity);
    let (new_shards, new_report) = ShardedNvMemcached::recover_group(&new_pools, capacity);
    report.merge(new_report);

    let pool0 = Arc::clone(&old_pools[0]);
    for s in cursor as usize..old_shards.len() {
        roll_forward_shard(&old_shards[s], &new_shards, router);
        let mut flusher = pool0.flusher();
        flusher.note_crash_event(CrashEvent::ReshardState);
        pool0.set_root(
            RESHARD_STATE_ROOT,
            pack_reshard_state(old_shards.len(), new_shards.len(), s + 1, hi),
            &mut flusher,
        );
    }

    let cache = ShardedNvMemcached::assemble(new_shards, hi, router, cache_id, capacity, false);
    Ok((cache, report))
}

/// Recovery roll-forward of one old shard: single-threaded drain into the
/// target shards with the same new-wins rule as the live driver (a key
/// already in its new home was copied — or overwritten — before the
/// crash; the old copy is stale and is only deleted).
fn roll_forward_shard(old: &NvMemcached, new_shards: &[NvMemcached], router: Router) {
    let mut octx = old.register();
    let mut nctxs: Vec<ThreadCtx> = new_shards.iter().map(NvMemcached::register).collect();
    loop {
        let snap = old.snapshot();
        if snap.is_empty() {
            return;
        }
        for (key, value) in snap {
            let d = router.route(key, new_shards.len());
            if new_shards[d].get(&mut nctxs[d], key).is_none() {
                new_shards[d]
                    .set(&mut nctxs[d], key, value)
                    .expect("target shards sized for the migrated keys");
            }
            old.delete(&mut octx, key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reshard_state_word_round_trips() {
        for (old, new, cursor, version) in
            [(1usize, 2usize, 0usize, 2u32), (2, 4, 2, 7), (4095, 4095, 4095, 65_535)]
        {
            let (o, n, c, v) = unpack_reshard_state(pack_reshard_state(old, new, cursor, version));
            assert_eq!((o as usize, n as usize, c as usize, v), (old, new, cursor, version));
        }
    }

    #[test]
    fn stripes_cover_all_keys() {
        for key in 0..10_000u64 {
            assert!(stripe_of(key) < N_STRIPES);
        }
    }
}

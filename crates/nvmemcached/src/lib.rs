//! **NV-Memcached** (§6.5): a durable object-cache model built on the
//! log-free durable hash table, next to the two volatile systems the
//! paper compares against.
//!
//! The paper transforms Memcached by replacing its core data structures —
//! the hash table and the slab allocator — with durable versions:
//!
//! * stock **Memcached** uses a lock-protected sequential hash table →
//!   modelled by [`VolatileMemcached`];
//! * **memcached-clht** replaces it with a concurrent lock-free hash
//!   table (CLHT) → modelled by [`ClhtMemcached`] (our lock-free hash
//!   table over a [`pmem::Mode::Volatile`] pool);
//! * **NV-Memcached** further swaps in the log-free *durable* hash table
//!   and tracks **active slabs** so items leaked by a crash between
//!   allocate-and-link (or unlink-and-free) are reclaimed at recovery →
//!   [`NvMemcached`]. The active-slab table is exactly the NV-epochs
//!   active-page table: items are slab(page)-allocated nodes.
//!
//! # Substitutions (documented in DESIGN.md)
//!
//! The comparison is in-process: the network stack is identical across
//! the three systems in the paper's setup, so an in-process driver
//! ([`memtier`]) preserves the comparison's shape. Keys and values are
//! 8 bytes as in the paper's data-structure experiments (§6.1); larger
//! values are accommodated by indirection, as the paper notes.

#![warn(missing_docs)]

pub mod evict;
pub mod memtier;
pub mod reshard;
pub mod sharded;

use std::collections::HashMap;
use std::sync::Arc;

use linkcache::LinkCache;
use logfree::{HashTable, LinkOps};
use nvalloc::{NvDomain, OutOfMemory, RecoveryReport, ThreadCtx};
use parking_lot::Mutex;
use pmem::{Flusher, PmemPool};

use crate::evict::EvictQueue;
use crate::memtier::{MemtierCache, ReqOutcome, Request};

pub use crate::reshard::{
    ReshardError, ReshardProgress, ReshardStats, TopologyStats, RESHARD_STATE_ROOT,
};
pub use crate::sharded::{GeometryError, Router, ShardedCtx, ShardedNvMemcached};

/// Root-directory slot used by the NV-Memcached hash table.
pub const NVMC_ROOT: usize = 8;

/// Auto-grow threshold: when the (approximate) item count exceeds this
/// many items per bucket, `set`/`add` kick off an incremental grow.
/// Memcached's own hash expands at 1.5 items per bucket; chains here are
/// cheap lock-free lists, so the trigger is laxer.
const GROW_ITEMS_PER_BUCKET: usize = 8;

/// Auto-grow factor: quadruple the bucket array each time, so repeated
/// doubling churn is avoided under a steadily filling cache.
const GROW_FACTOR: usize = 4;

/// The durable cache. One `NvMemcached` is exactly one *shard*: it owns
/// its pool, allocation domain, hash table and eviction queue, and
/// [`sharded::ShardedNvMemcached`] composes N of them behind a routing
/// hash.
pub struct NvMemcached {
    domain: Arc<NvDomain>,
    table: HashTable,
    /// Soft item capacity; beyond it, sets evict the oldest tracked key.
    capacity: usize,
    /// Per-shard FIFO eviction queue + item accounting (volatile,
    /// approximate — like memcached's LRU it is advisory, not exact).
    evict: EvictQueue,
}

impl NvMemcached {
    /// Creates a fresh cache over `pool` with `n_buckets` buckets and a
    /// soft capacity of `capacity` items. Pass `use_link_cache` to enable
    /// the link cache on the underlying table.
    pub fn create(
        pool: Arc<PmemPool>,
        n_buckets: usize,
        capacity: usize,
        use_link_cache: bool,
    ) -> Result<Self, OutOfMemory> {
        let domain = NvDomain::create(Arc::clone(&pool));
        let lc = use_link_cache.then(|| {
            Arc::new(LinkCache::with_default_size(Arc::clone(&pool), logfree::marked::DIRTY))
        });
        let ops = LinkOps::new(Arc::clone(&pool), lc);
        let table = HashTable::create(&domain, NVMC_ROOT, n_buckets, ops)?;
        Ok(Self { domain, table, capacity, evict: EvictQueue::new() })
    }

    /// Re-attaches to a crashed cache image, repairs the table, and frees
    /// items leaked between allocate/link or unlink/free (the active-slab
    /// scan of §6.5). A resize caught in flight by the crash is rolled
    /// forward to completion before the cache is returned, so callers
    /// always get a steady-state table. Returns the recovery report.
    pub fn recover(pool: Arc<PmemPool>, capacity: usize) -> (Self, RecoveryReport) {
        let domain = NvDomain::attach(Arc::clone(&pool));
        let ops = LinkOps::new(Arc::clone(&pool), None);
        let table = HashTable::attach(&domain, NVMC_ROOT, ops);
        let mut flusher = pool.flusher();
        table.recover(&mut flusher);
        // Leak scan before any allocation; the oracle consults both
        // bucket arrays of a mid-resize image.
        let report = domain.recover_leaks(|addr| table.contains_node_at(addr));
        let mut ctx = domain.register();
        table.finish_resize(&mut ctx).expect("recovered pool has room to finish its resize");
        ctx.drain_all();
        table.sweep_orphan_regions(&mut ctx);
        drop(ctx);
        let evict = EvictQueue::rebuild(table.snapshot().iter().map(|&(k, _)| k));
        (Self { domain, table, capacity, evict }, report)
    }

    /// The allocation domain (register worker threads here).
    pub fn domain(&self) -> &Arc<NvDomain> {
        &self.domain
    }

    /// Registers the calling worker thread.
    pub fn register(&self) -> ThreadCtx {
        self.domain.register()
    }

    /// Current (approximate) item count.
    pub fn len(&self) -> usize {
        self.evict.len()
    }

    /// Bucket count the table is heading towards (the new array's while a
    /// resize is in flight, the current array's otherwise).
    pub fn capacity_hint(&self) -> usize {
        self.table.capacity_hint()
    }

    /// Whether a resize is currently in flight on the underlying table.
    pub fn resize_in_flight(&self) -> bool {
        self.table.resize_in_flight()
    }

    /// Starts an incremental grow of the bucket array by `factor`
    /// (rounded up to a power of two). Returns `Ok(false)` if a resize is
    /// already in flight. Ops keep serving while the migration proceeds;
    /// call [`NvMemcached::finish_resize`] to drive it to completion
    /// eagerly.
    pub fn grow(&self, ctx: &mut ThreadCtx, factor: usize) -> Result<bool, OutOfMemory> {
        self.table.grow(ctx, factor)
    }

    /// Drives any in-flight resize to completion. Returns whether one was
    /// in flight.
    pub fn finish_resize(&self, ctx: &mut ThreadCtx) -> Result<bool, OutOfMemory> {
        self.table.finish_resize(ctx)
    }

    /// Kicks off a background-style grow when the load factor passes
    /// [`GROW_ITEMS_PER_BUCKET`]. Best effort: refused while a resize is
    /// already in flight, and an out-of-memory grow just leaves the table
    /// denser (the cache still works, chains are merely longer).
    fn maybe_grow(&self, ctx: &mut ThreadCtx) {
        if self.evict.len() > self.table.capacity_hint().saturating_mul(GROW_ITEMS_PER_BUCKET) {
            let _ = self.table.grow(ctx, GROW_FACTOR);
        }
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stores `key -> value` (memcached `set`: upsert). Evicts the oldest
    /// tracked keys until the count is back at the soft capacity.
    pub fn set(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Result<(), OutOfMemory> {
        loop {
            if self.table.insert(ctx, key, value)? {
                self.evict.note_insert(key);
                self.enforce_capacity(ctx);
                self.maybe_grow(ctx);
                return Ok(());
            }
            // Key exists: replace (remove + reinsert; a cache tolerates
            // the transient miss window).
            if self.table.remove(ctx, key).is_some() {
                self.evict.note_remove();
            }
        }
    }

    /// Fetches `key` (memcached `get`).
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        self.table.get(ctx, key)
    }

    /// Deletes `key` (memcached `delete`).
    pub fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let v = self.table.remove(ctx, key);
        if v.is_some() {
            self.evict.note_remove();
        }
        v
    }

    /// Memcached `add`: stores only if the key is absent. Returns whether
    /// the value was stored.
    pub fn add(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        let stored = self.table.insert(ctx, key, value)?;
        if stored {
            self.evict.note_insert(key);
            self.enforce_capacity(ctx);
            self.maybe_grow(ctx);
        }
        Ok(stored)
    }

    /// Memcached `replace`: stores only if the key is present. Returns
    /// whether the value was stored.
    pub fn replace(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        loop {
            if self.table.get(ctx, key).is_none() {
                return Ok(false);
            }
            if self.table.remove(ctx, key).is_some() {
                self.evict.note_remove();
                self.set(ctx, key, value)?;
                return Ok(true);
            }
            // Lost a race with a concurrent delete; re-check presence.
        }
    }

    fn enforce_capacity(&self, ctx: &mut ThreadCtx) {
        self.evict.enforce(self.capacity, |victim| self.table.remove(ctx, victim).is_some());
    }

    /// Durability barrier: flush any link-cache residue (used before
    /// planned shutdowns and by tests).
    pub fn quiesce(&self, flusher: &mut Flusher) {
        self.table.ops().flush_link_cache(flusher);
    }

    /// Reachability oracle over the underlying table (§5.5), exposed for
    /// the crashtest subsystem's post-recovery leak audits.
    pub fn contains_node_at(&self, addr: usize) -> bool {
        self.table.contains_node_at(addr)
    }

    /// Quiescent snapshot (test support).
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.table.snapshot()
    }
}

/// Stock Memcached model: one global lock around a sequential hash table
/// (memcached shards this lock, but the data structure is sequential —
/// the paper's point of comparison).
#[derive(Default)]
pub struct VolatileMemcached {
    map: Mutex<HashMap<u64, u64>>,
}

impl VolatileMemcached {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores `key -> value`.
    pub fn set(&self, key: u64, value: u64) {
        self.map.lock().insert(key, value);
    }

    /// Fetches `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.map.lock().get(&key).copied()
    }

    /// Deletes `key`.
    pub fn delete(&self, key: u64) -> Option<u64> {
        self.map.lock().remove(&key)
    }

    /// Item count.
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// memcached-clht model: the same lock-free hash table, volatile (no
/// durability work at all — the pool is in [`pmem::Mode::Volatile`]).
pub struct ClhtMemcached {
    domain: Arc<NvDomain>,
    table: HashTable,
}

impl ClhtMemcached {
    /// Creates a volatile lock-free cache with `n_buckets` buckets.
    pub fn create(pool: Arc<PmemPool>, n_buckets: usize) -> Result<Self, OutOfMemory> {
        assert_eq!(pool.mode(), pmem::Mode::Volatile, "clht model must use a volatile pool");
        let domain = NvDomain::create(Arc::clone(&pool));
        let ops = LinkOps::new(Arc::clone(&pool), None);
        let table = HashTable::create(&domain, NVMC_ROOT, n_buckets, ops)?;
        Ok(Self { domain, table })
    }

    /// Registers the calling worker thread.
    pub fn register(&self) -> ThreadCtx {
        self.domain.register()
    }

    /// Stores `key -> value` (upsert).
    pub fn set(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Result<(), OutOfMemory> {
        loop {
            if self.table.insert(ctx, key, value)? {
                return Ok(());
            }
            let _ = self.table.remove(ctx, key);
        }
    }

    /// Fetches `key`.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        self.table.get(ctx, key)
    }

    /// Deletes `key`.
    pub fn delete(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        self.table.remove(ctx, key)
    }
}

impl MemtierCache for NvMemcached {
    type Conn = ThreadCtx;

    fn connect(&self) -> ThreadCtx {
        self.register()
    }

    fn exec(&self, ctx: &mut ThreadCtx, req: Request) -> ReqOutcome {
        memtier::exec_kv(
            ctx,
            req,
            |c, k, v| self.set(c, k, v).expect("pool sized for workload"),
            |c, k| self.get(c, k).is_some(),
        )
    }
}

impl MemtierCache for ClhtMemcached {
    type Conn = ThreadCtx;

    fn connect(&self) -> ThreadCtx {
        self.register()
    }

    fn exec(&self, ctx: &mut ThreadCtx, req: Request) -> ReqOutcome {
        memtier::exec_kv(
            ctx,
            req,
            |c, k, v| self.set(c, k, v).expect("pool sized for workload"),
            |c, k| self.get(c, k).is_some(),
        )
    }
}

impl MemtierCache for VolatileMemcached {
    /// No per-thread state: the lock is the connection.
    type Conn = ();

    fn connect(&self) {}

    fn exec(&self, conn: &mut (), req: Request) -> ReqOutcome {
        memtier::exec_kv(conn, req, |_, k, v| self.set(k, v), |_, k| self.get(k).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{LatencyModel, Mode, PoolBuilder};

    #[test]
    fn set_get_delete_round_trip() {
        let pool = PoolBuilder::new(32 << 20).mode(Mode::Perf).build();
        let mc = NvMemcached::create(pool, 256, 10_000, false).unwrap();
        let mut ctx = mc.register();
        mc.set(&mut ctx, 1, 10).unwrap();
        mc.set(&mut ctx, 2, 20).unwrap();
        assert_eq!(mc.get(&mut ctx, 1), Some(10));
        // Upsert replaces.
        mc.set(&mut ctx, 1, 11).unwrap();
        assert_eq!(mc.get(&mut ctx, 1), Some(11));
        assert_eq!(mc.delete(&mut ctx, 2), Some(20));
        assert_eq!(mc.get(&mut ctx, 2), None);
        assert_eq!(mc.len(), 1);
    }

    #[test]
    fn eviction_bounds_size() {
        let pool = PoolBuilder::new(32 << 20).mode(Mode::Perf).build();
        let mc = NvMemcached::create(pool, 256, 100, false).unwrap();
        let mut ctx = mc.register();
        for k in 1..=500u64 {
            mc.set(&mut ctx, k, k).unwrap();
        }
        assert!(mc.len() <= 101, "capacity respected (len = {})", mc.len());
    }

    #[test]
    fn completed_sets_survive_crash() {
        let pool =
            PoolBuilder::new(32 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build();
        {
            let mc = NvMemcached::create(Arc::clone(&pool), 128, 100_000, false).unwrap();
            let mut ctx = mc.register();
            for k in 1..=200u64 {
                mc.set(&mut ctx, k, k * 2).unwrap();
            }
            for k in 1..=50u64 {
                mc.delete(&mut ctx, k);
            }
        }
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
        let (mc2, report) = NvMemcached::recover(Arc::clone(&pool), 100_000);
        assert!(!report.used_full_scan);
        let mut ctx = mc2.register();
        for k in 1..=50u64 {
            assert_eq!(mc2.get(&mut ctx, k), None, "deleted key {k} stayed deleted");
        }
        for k in 51..=200u64 {
            assert_eq!(mc2.get(&mut ctx, k), Some(k * 2), "key {k} recovered");
        }
        assert_eq!(mc2.len(), 150);
        // The recovered instance keeps serving.
        mc2.set(&mut ctx, 9999, 1).unwrap();
        assert_eq!(mc2.get(&mut ctx, 9999), Some(1));
    }

    #[test]
    fn cache_auto_grows_under_load() {
        let pool = PoolBuilder::new(64 << 20).mode(Mode::Perf).build();
        let mc = NvMemcached::create(pool, 16, 1_000_000, false).unwrap();
        let mut ctx = mc.register();
        assert_eq!(mc.capacity_hint(), 16);
        for k in 1..=2000u64 {
            mc.set(&mut ctx, k, k).unwrap();
        }
        mc.finish_resize(&mut ctx).unwrap();
        assert!(
            mc.capacity_hint() > 16,
            "load factor triggered a grow (hint = {})",
            mc.capacity_hint()
        );
        for k in 1..=2000u64 {
            assert_eq!(mc.get(&mut ctx, k), Some(k), "key {k} survived the auto-grow");
        }
    }

    #[test]
    fn crash_mid_grow_recovers_rolled_forward() {
        let pool =
            PoolBuilder::new(64 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build();
        {
            let mc = NvMemcached::create(Arc::clone(&pool), 16, 100_000, false).unwrap();
            let mut ctx = mc.register();
            for k in 1..=300u64 {
                mc.set(&mut ctx, k, k * 2).unwrap();
            }
            // Either the auto-grow is still migrating or this starts a
            // fresh one; both ways a resize is now in flight.
            let _ = mc.grow(&mut ctx, 4).unwrap();
            assert!(mc.resize_in_flight());
        }
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
        let (mc2, report) = NvMemcached::recover(Arc::clone(&pool), 100_000);
        assert!(!report.used_full_scan);
        assert!(!mc2.resize_in_flight(), "recovery rolled the crashed resize forward");
        let mut ctx = mc2.register();
        for k in 1..=300u64 {
            assert_eq!(mc2.get(&mut ctx, k), Some(k * 2), "key {k} survived the crashed grow");
        }
        assert_eq!(mc2.len(), 300);
        mc2.set(&mut ctx, 9999, 1).unwrap();
        assert_eq!(mc2.get(&mut ctx, 9999), Some(1));
    }

    #[test]
    fn add_and_replace_semantics() {
        let pool = PoolBuilder::new(32 << 20).mode(Mode::Perf).build();
        let mc = NvMemcached::create(pool, 256, 10_000, false).unwrap();
        let mut ctx = mc.register();
        assert!(mc.add(&mut ctx, 1, 10).unwrap(), "add to empty slot stores");
        assert!(!mc.add(&mut ctx, 1, 11).unwrap(), "add to occupied slot refuses");
        assert_eq!(mc.get(&mut ctx, 1), Some(10));
        assert!(mc.replace(&mut ctx, 1, 12).unwrap(), "replace of present key stores");
        assert_eq!(mc.get(&mut ctx, 1), Some(12));
        assert!(!mc.replace(&mut ctx, 2, 20).unwrap(), "replace of absent key refuses");
        assert_eq!(mc.get(&mut ctx, 2), None);
        assert_eq!(mc.len(), 1);
    }

    #[test]
    fn volatile_models_work() {
        let v = VolatileMemcached::new();
        v.set(1, 10);
        assert_eq!(v.get(1), Some(10));
        assert_eq!(v.delete(1), Some(10));
        assert!(v.is_empty());

        let pool = PoolBuilder::new(16 << 20).mode(Mode::Volatile).build();
        let c = ClhtMemcached::create(pool, 64).unwrap();
        let mut ctx = c.register();
        c.set(&mut ctx, 1, 10).unwrap();
        c.set(&mut ctx, 1, 11).unwrap();
        assert_eq!(c.get(&mut ctx, 1), Some(11));
        assert_eq!(c.delete(&mut ctx, 1), Some(11));
    }

    #[test]
    fn concurrent_cache_traffic() {
        let pool = PoolBuilder::new(128 << 20).mode(Mode::Perf).build();
        let mc = NvMemcached::create(pool, 1024, 1_000_000, false).unwrap();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let mc = &mc;
                s.spawn(move || {
                    let mut ctx = mc.register();
                    for i in 0..4000u64 {
                        let k = (t * 4000 + i) % 3000 + 1;
                        if i % 5 == 0 {
                            mc.set(&mut ctx, k, t).unwrap();
                        } else {
                            let _ = mc.get(&mut ctx, k);
                        }
                    }
                    ctx.drain_all();
                });
            }
        });
    }
}

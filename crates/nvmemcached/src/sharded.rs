//! **Sharded NV-Memcached**: N independent [`NvMemcached`] shards behind
//! a routing function, with a **live reshard** that changes N without
//! downtime.
//!
//! Real memcached deployments scale by partitioning; the durable cache
//! partitions the same way. Each shard owns its *own* [`PmemPool`],
//! [`nvalloc::NvDomain`], hash table and eviction queue, so shards share
//! no memory, no locks and no durable state — the only cross-shard
//! coupling is the volatile routing function ([`Router`]). That
//! independence buys three things:
//!
//! * **Throughput**: the per-shard eviction-queue mutex, heap page lists,
//!   epoch vectors and (in crash-sim mode) shadow word arrays are no
//!   longer contended across the whole cache.
//! * **Parallel recovery**: after a crash every shard repairs its table
//!   and reclaims its leaks on its own thread
//!   ([`ShardedNvMemcached::recover`]), and the per-shard
//!   [`RecoveryReport`]s are merged into one aggregate.
//! * **Fault isolation**: a crash mid-operation can leave in-flight state
//!   in at most the shard the operation routed to; every other shard
//!   recovers exactly its completed history. The crashtest subsystem
//!   enumerates crash points over the sharded cache to validate exactly
//!   this invariant (see `crashtest::run_sharded_crash_points`).
//!
//! # Durable geometry
//!
//! Each shard's pool records `(cache_id, router, version, shard_count,
//! shard_index)` in root slot [`SHARD_GEOMETRY_ROOT`], durably written at
//! creation (the cache id ties every pool to the `create` call that
//! formatted it; the version stamps which *topology generation* the pool
//! belongs to). [`ShardedNvMemcached::recover`] validates the recorded
//! geometry against the pools it is given *before* touching any data —
//! opening with the wrong pool count, pools mixed in from a different
//! cache, or pools in the wrong order fails with a [`GeometryError`]
//! instead of serving scrambled routing.
//!
//! # Elastic topology
//!
//! [`ShardedNvMemcached::reshard`] migrates the cache from its N current
//! shards to N' freshly formatted shard pools *while continuing to serve
//! traffic*. The migration reuses the copy-then-delete discipline of
//! `logfree::hash::resize` one level up — keys are copied into their new
//! home shard and then deleted from the old one, a durable per-shard
//! **cursor** in the reshard state word (root slot
//! [`crate::reshard::RESHARD_STATE_ROOT`] of old pool 0) records which
//! old shards are fully drained, and `recover()` rolls a half-migrated
//! topology forward to the new version. See [`crate::reshard`] for the
//! state machine and the routing rules in flight.
//!
//! `ShardedNvMemcached` over a single shard is behaviorally identical to
//! a standalone [`NvMemcached`] (the shard *is* an `NvMemcached`; with
//! `n = 1` the router is constant), which keeps single-system paper
//! comparisons honest.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nvalloc::{OutOfMemory, RecoveryReport, ThreadCtx};
use parking_lot::Mutex;
use pmem::{FlushStats, PmemPool};

use crate::memtier::{MemtierCache, ReqOutcome, Request};
use crate::reshard::{self, Flight};
use crate::NvMemcached;

/// Root-directory slot recording the shard geometry word in every shard
/// pool (distinct from [`crate::NVMC_ROOT`], which anchors the shard's
/// hash table).
pub const SHARD_GEOMETRY_ROOT: usize = 9;

/// Maximum shard count a geometry word can record (12-bit field).
pub const MAX_SHARDS: usize = (1 << 12) - 1;

/// Maximum topology version a geometry word can record (16-bit field).
pub(crate) const MAX_VERSION: u32 = u16::MAX as u32;

/// Routes `key` to a shard index in `0..n_shards`.
///
/// Uses the splitmix64 finalizer — deliberately *not* the Fibonacci
/// multiply the per-shard hash table derives its bucket index from, so
/// the bit ranges are decorrelated and the keys of one shard still
/// spread uniformly over that shard's buckets.
#[inline]
pub fn shard_of(key: u64, n_shards: usize) -> usize {
    let mut x = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % n_shards.max(1) as u64) as usize
}

/// The key-to-shard routing function, recorded durably in the geometry
/// word (routing must survive recovery, or a reopened cache would look
/// for keys in the wrong shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Router {
    /// splitmix64 finalizer over the key ([`shard_of`]) — the default;
    /// spreads any key distribution uniformly.
    Hash,
    /// Contiguous range partition of the full `u64` key space
    /// (multiply-shift). The benchmark's **negative control**: real
    /// workloads draw small keys, which all land in shard 0, so the
    /// imbalance a reshard is supposed to fix never improves.
    Range,
}

impl Router {
    /// Routes `key` to a shard index in `0..n_shards`.
    #[inline]
    pub fn route(self, key: u64, n_shards: usize) -> usize {
        match self {
            Router::Hash => shard_of(key, n_shards),
            Router::Range => ((key as u128 * n_shards.max(1) as u128) >> 64) as usize,
        }
    }

    fn bit(self) -> u64 {
        match self {
            Router::Hash => 0,
            Router::Range => 1,
        }
    }

    fn from_bit(b: u64) -> Self {
        if b == 0 {
            Router::Hash
        } else {
            Router::Range
        }
    }
}

/// Why a set of pools was rejected by [`ShardedNvMemcached::recover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// No pools were given.
    NoPools,
    /// The pool at `position` has no shard geometry recorded (it never
    /// belonged to a sharded cache, or the record was never made
    /// durable).
    NotSharded {
        /// Index of the offending pool in the given slice.
        position: usize,
    },
    /// The pool at `position` records a different shard count than the
    /// number of same-version pools given.
    ShardCount {
        /// Index of the offending pool in the given slice.
        position: usize,
        /// The shard count durably recorded in that pool.
        recorded: u32,
        /// The number of same-version pools actually given.
        given: usize,
    },
    /// The pool at `position` records a different shard index — the
    /// pools belong to this geometry but were passed in the wrong order
    /// (routing would scramble).
    ShardIndex {
        /// Index of the offending pool in the given slice.
        position: usize,
        /// The shard index durably recorded in that pool.
        recorded: u32,
    },
    /// The pool at `position` records a different cache id than pool 0 —
    /// the pools come from two different sharded caches whose layouts
    /// merely happen to match (mixing them would silently serve a
    /// frankenstein key space).
    CacheMismatch {
        /// Index of the offending pool in the given slice.
        position: usize,
        /// Cache id recorded in pool 0.
        expected: u32,
        /// Cache id recorded in this pool.
        found: u32,
    },
    /// The pool at `position` records a different routing function than
    /// pool 0.
    RouterMismatch {
        /// Index of the offending pool in the given slice.
        position: usize,
    },
    /// The pools span more than two topology versions, or two versions
    /// that are not adjacent — no single reshard connects them, so no
    /// roll-forward is possible.
    VersionSkew {
        /// Lowest version seen.
        lo: u32,
        /// Highest version seen.
        hi: u32,
    },
    /// Pools of two adjacent versions were given, but the old group's
    /// reshard state word is absent: the reshard to `version` never
    /// committed, so the newer pools hold no owed data. Recover with the
    /// old-version pools only.
    Uncommitted {
        /// Version of the never-committed topology.
        version: u32,
    },
    /// The durable reshard state word does not describe the given pools
    /// (torn write, or pools mixed in from a different reshard). The
    /// fields are the word as recorded.
    TornReshard {
        /// Old shard count recorded in the state word.
        old: u32,
        /// New shard count recorded in the state word.
        new: u32,
        /// Migration cursor recorded in the state word.
        cursor: u32,
        /// Target topology version recorded in the state word.
        version: u32,
    },
    /// A committed reshard to `version` is recorded, but the pools of
    /// that topology were not given — the data (partially or fully)
    /// lives in the absent pools, so these pools alone are not the
    /// authoritative cache.
    MissingShards {
        /// Target version of the committed reshard.
        version: u32,
        /// Shard count of the absent topology.
        expected: u32,
    },
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GeometryError::NoPools => write!(f, "no shard pools given"),
            GeometryError::NotSharded { position } => {
                write!(f, "pool {position} has no shard geometry recorded")
            }
            GeometryError::ShardCount { position, recorded, given } => write!(
                f,
                "pool {position} records {recorded} shard(s) but {given} pool(s) were given"
            ),
            GeometryError::ShardIndex { position, recorded } => write!(
                f,
                "pool at position {position} records shard index {recorded} (pools out of order)"
            ),
            GeometryError::CacheMismatch { position, expected, found } => write!(
                f,
                "pool {position} records cache id {found:#x} but pool 0 records {expected:#x} \
                 (pools from different sharded caches)"
            ),
            GeometryError::RouterMismatch { position } => {
                write!(f, "pool {position} records a different routing function than pool 0")
            }
            GeometryError::VersionSkew { lo, hi } => write!(
                f,
                "pools span topology versions {lo}..={hi}, which no single reshard connects"
            ),
            GeometryError::Uncommitted { version } => write!(
                f,
                "pools of version {version} were formatted but the reshard never committed; \
                 recover with the old-version pools only"
            ),
            GeometryError::TornReshard { old, new, cursor, version } => write!(
                f,
                "reshard state word [old={old} new={new} cursor={cursor} version={version}] \
                 does not describe the given pools (torn topology)"
            ),
            GeometryError::MissingShards { version, expected } => write!(
                f,
                "a committed reshard to version {version} ({expected} shard(s)) is recorded \
                 but those pools were not given"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Geometry word layout:
/// `[cache_id:23][router:1][version:16][shard_count:12][shard_index:12]`.
/// The cache id ties a pool to the `create` call that formatted it, so
/// pools from two different caches with the same `(count, index)` layout
/// cannot be mixed; ids are never zero, so a valid word is never zero.
/// The version stamps the topology generation the pool belongs to
/// (`create` writes 1; each committed reshard formats its new pools with
/// the next version).
pub(crate) fn pack_geometry(
    cache_id: u32,
    router: Router,
    version: u32,
    count: usize,
    index: usize,
) -> u64 {
    assert!(count <= MAX_SHARDS, "shard count {count} exceeds the geometry word");
    assert!(version <= MAX_VERSION, "topology version {version} exceeds the geometry word");
    assert!(cache_id < (1 << 23) && cache_id != 0, "cache id out of range");
    ((cache_id as u64) << 41)
        | (router.bit() << 40)
        | ((version as u64) << 24)
        | ((count as u64) << 12)
        | index as u64
}

/// `(cache_id, router, version, count, index)` from a geometry word.
pub(crate) fn unpack_geometry(word: u64) -> (u32, Router, u32, u32, u32) {
    (
        (word >> 41) as u32,
        Router::from_bit((word >> 40) & 1),
        ((word >> 24) & 0xFFFF) as u32,
        ((word >> 12) & 0xFFF) as u32,
        (word & 0xFFF) as u32,
    )
}

/// A fresh (non-zero, process-unique, time-salted) 23-bit cache id.
fn fresh_cache_id() -> u32 {
    use std::sync::atomic::AtomicU32;
    static NEXT: AtomicU32 = AtomicU32::new(1);
    let salt = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed) as u64;
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut x = nanos ^ (salt << 32) ^ salt;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((((x >> 32) ^ x) as u32) & ((1 << 23) - 1)).max(1)
}

/// One shard's aggregated request tally, padded to its own cache line
/// (same discipline as the epoch vector's padding in `nvalloc`). These
/// are touched only when a connection drops — the hot path counts into
/// plain per-connection `u64`s ([`ShardedCtx`]), so the tally adds no
/// shared-memory traffic to the requests being measured.
#[repr(align(128))]
pub(crate) struct ShardTally(pub(crate) AtomicU64);

pub(crate) fn new_tallies(n: usize) -> Arc<[ShardTally]> {
    (0..n).map(|_| ShardTally(AtomicU64::new(0))).collect()
}

/// One immutable topology generation: the serving shards, their request
/// tallies, and (while a reshard is migrating) the in-flight target. A
/// new `Arc<Topology>` is published for every change; connections pin the
/// generation they registered against ([`ShardedCtx`]), so retiring old
/// shards is epoch-safe — the old generation's memory is dropped only
/// when the last connection that could still route into it refreshes or
/// disconnects.
pub(crate) struct Topology {
    pub(crate) version: u32,
    pub(crate) router: Router,
    pub(crate) shards: Arc<[NvMemcached]>,
    /// Volatile per-shard request tally (every routed `set`/`get`/
    /// `delete`/`add`/`replace`), the basis of the skew experiments'
    /// imbalance metric. Accumulated per connection and flushed when the
    /// connection drops. Not persisted; recovery starts from zero.
    pub(crate) requests: Arc<[ShardTally]>,
    pub(crate) flight: Option<Arc<Flight>>,
}

/// The durable cache, partitioned into independent shards.
pub struct ShardedNvMemcached {
    pub(crate) topology: Mutex<Arc<Topology>>,
    /// Bumped on every topology change (reshard start / completion);
    /// connections compare it against their pinned generation and
    /// re-register when stale. One relaxed-load-free `Acquire` read per
    /// operation.
    pub(crate) gen: AtomicU64,
    pub(crate) cache_id: u32,
    pub(crate) capacity: usize,
    pub(crate) use_link_cache: bool,
}

impl std::fmt::Debug for ShardedNvMemcached {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let top = self.topology();
        f.debug_struct("ShardedNvMemcached")
            .field("n_shards", &top.shards.len())
            .field("version", &top.version)
            .field("reshard_in_flight", &top.flight.is_some())
            .field("len", &self.len())
            .finish()
    }
}

/// Per-worker operation state: one [`ThreadCtx`] per shard (each shard is
/// its own allocation domain), plus this connection's plain request
/// tallies — counted without any shared-memory traffic and flushed into
/// the cache-wide counters when the connection drops. Create via
/// [`ShardedNvMemcached::register`].
///
/// The context *pins* the topology generation it registered against.
/// Operations detect a topology change (reshard start or completion) with
/// one atomic load and transparently re-register; a context that never
/// runs another operation keeps the old generation's shards alive until
/// it is dropped, which is exactly what makes old-shard retirement safe
/// against concurrent readers.
pub struct ShardedCtx {
    pub(crate) top: Arc<Topology>,
    pub(crate) gen: u64,
    pub(crate) ctxs: Box<[ThreadCtx]>,
    /// Contexts for the in-flight target shards (empty when no reshard is
    /// migrating).
    pub(crate) new_ctxs: Box<[ThreadCtx]>,
    pub(crate) tallies: Box<[u64]>,
    pub(crate) new_tallies: Box<[u64]>,
}

impl Drop for ShardedCtx {
    fn drop(&mut self) {
        self.flush_tallies();
    }
}

impl ShardedCtx {
    /// The context registered with shard `i` of the pinned topology (for
    /// direct shard access in tests and recovery tooling).
    pub fn shard_ctx(&mut self, i: usize) -> &mut ThreadCtx {
        &mut self.ctxs[i]
    }

    /// Drains every shard context's deferred reclamation. Only safe when
    /// no other worker is running operations (shutdown/tests).
    pub fn drain_all(&mut self) {
        for ctx in self.ctxs.iter_mut().chain(self.new_ctxs.iter_mut()) {
            ctx.drain_all();
        }
    }

    /// Flushes this context's request tallies into the pinned
    /// topology's shared counters. Runs automatically on drop; a
    /// long-lived context multiplexing many connections (the
    /// event-driven server's per-worker context) calls it at each
    /// connection close so `shard_requests` stays live.
    pub fn flush_tallies(&mut self) {
        for (tally, shared) in self.tallies.iter_mut().zip(self.top.requests.iter()) {
            if *tally > 0 {
                shared.0.fetch_add(*tally, Ordering::Relaxed);
                *tally = 0;
            }
        }
        if let Some(f) = &self.top.flight {
            for (tally, shared) in self.new_tallies.iter_mut().zip(f.new_requests.iter()) {
                if *tally > 0 {
                    shared.0.fetch_add(*tally, Ordering::Relaxed);
                    *tally = 0;
                }
            }
        }
    }
}

impl ShardedNvMemcached {
    /// Creates a fresh sharded cache: one shard per pool, each with
    /// `n_buckets` buckets, splitting the soft `capacity` evenly, and
    /// durably records the shard geometry in every pool.
    pub fn create(
        pools: &[Arc<PmemPool>],
        n_buckets: usize,
        capacity: usize,
        use_link_cache: bool,
    ) -> Result<Self, OutOfMemory> {
        Self::create_with_router(pools, n_buckets, capacity, use_link_cache, Router::Hash)
    }

    /// [`ShardedNvMemcached::create`] with an explicit routing function
    /// (the benchmark's range-partition negative control uses
    /// [`Router::Range`]).
    pub fn create_with_router(
        pools: &[Arc<PmemPool>],
        n_buckets: usize,
        capacity: usize,
        use_link_cache: bool,
        router: Router,
    ) -> Result<Self, OutOfMemory> {
        assert!(!pools.is_empty(), "a sharded cache needs at least one pool");
        assert!(pools.len() <= MAX_SHARDS, "at most {MAX_SHARDS} shards");
        let n = pools.len();
        let cache_id = fresh_cache_id();
        let per_shard_capacity = capacity.div_ceil(n);
        let mut shards = Vec::with_capacity(n);
        for (i, pool) in pools.iter().enumerate() {
            let shard = NvMemcached::create(
                Arc::clone(pool),
                n_buckets,
                per_shard_capacity,
                use_link_cache,
            )?;
            let mut flusher = pool.flusher();
            pool.set_root(
                SHARD_GEOMETRY_ROOT,
                pack_geometry(cache_id, router, 1, n, i),
                &mut flusher,
            );
            shards.push(shard);
        }
        Ok(Self::assemble(shards, 1, router, cache_id, capacity, use_link_cache))
    }

    pub(crate) fn assemble(
        shards: Vec<NvMemcached>,
        version: u32,
        router: Router,
        cache_id: u32,
        capacity: usize,
        use_link_cache: bool,
    ) -> Self {
        let requests = new_tallies(shards.len());
        let topology = Topology { version, router, shards: shards.into(), requests, flight: None };
        Self {
            topology: Mutex::new(Arc::new(topology)),
            gen: AtomicU64::new(0),
            cache_id,
            capacity,
            use_link_cache,
        }
    }

    /// The current topology (cheap Arc clone under a short mutex).
    pub(crate) fn topology(&self) -> Arc<Topology> {
        Arc::clone(&self.topology.lock())
    }

    /// Validates the durable shard geometry of `pools` as one coherent
    /// single-version topology, without recovering anything: every pool
    /// must record this exact `(count, position)` layout. Mid-reshard
    /// pool sets (two adjacent versions) are handled by
    /// [`ShardedNvMemcached::recover`] instead.
    pub fn validate_geometry(pools: &[Arc<PmemPool>]) -> Result<(), GeometryError> {
        Self::parse_single_version(pools).map(|_| ())
    }

    /// Parses and positionally validates a single-version pool set,
    /// returning `(cache_id, router, version)`.
    fn parse_single_version(pools: &[Arc<PmemPool>]) -> Result<(u32, Router, u32), GeometryError> {
        if pools.is_empty() {
            return Err(GeometryError::NoPools);
        }
        let mut expected: Option<(u32, Router, u32)> = None;
        for (position, pool) in pools.iter().enumerate() {
            let word = pool.root(SHARD_GEOMETRY_ROOT);
            if word == 0 {
                return Err(GeometryError::NotSharded { position });
            }
            let (cache_id, router, version, count, index) = unpack_geometry(word);
            let (eid, erouter, eversion) = *expected.get_or_insert((cache_id, router, version));
            if cache_id != eid {
                return Err(GeometryError::CacheMismatch {
                    position,
                    expected: eid,
                    found: cache_id,
                });
            }
            if router != erouter {
                return Err(GeometryError::RouterMismatch { position });
            }
            if version != eversion {
                let (lo, hi) = (version.min(eversion), version.max(eversion));
                return Err(GeometryError::VersionSkew { lo, hi });
            }
            if count as usize != pools.len() {
                return Err(GeometryError::ShardCount {
                    position,
                    recorded: count,
                    given: pools.len(),
                });
            }
            if index as usize != position {
                return Err(GeometryError::ShardIndex { position, recorded: index });
            }
        }
        let (id, router, version) = expected.expect("pools is non-empty");
        Ok((id, router, version))
    }

    /// Re-attaches to a crashed sharded cache: validates the recorded
    /// geometry against `pools`, then recovers every shard **in
    /// parallel** (one thread per shard — each repairs its table and
    /// reclaims its leaks independently) and merges the per-shard
    /// [`RecoveryReport`]s into one aggregate.
    ///
    /// If the pools span **two adjacent topology versions** — a crash hit
    /// mid-reshard — the committed reshard state word of the old group is
    /// validated ([`GeometryError::TornReshard`] on mismatch,
    /// [`GeometryError::Uncommitted`] if the reshard never committed) and
    /// the migration is **rolled forward**: every shard recovers first,
    /// then the remaining old shards are drained into the new topology
    /// (keys already copied win by the *new-wins* rule, so a torn copy
    /// can never resurrect a stale value), the durable cursor advancing
    /// shard by shard exactly as in the live path. The returned cache
    /// serves the new topology at a single consistent version.
    pub fn recover(
        pools: &[Arc<PmemPool>],
        capacity: usize,
    ) -> Result<(Self, RecoveryReport), GeometryError> {
        reshard::recover_versioned(pools, capacity)
    }

    /// Recovers every pool of one already-validated single-version group
    /// in parallel. Shared by the plain and the roll-forward recovery
    /// paths.
    pub(crate) fn recover_group(
        pools: &[Arc<PmemPool>],
        capacity: usize,
    ) -> (Vec<NvMemcached>, RecoveryReport) {
        let per_shard_capacity = capacity.div_ceil(pools.len().max(1));
        let recovered: Vec<(NvMemcached, RecoveryReport)> = std::thread::scope(|s| {
            let handles: Vec<_> = pools
                .iter()
                .map(|pool| {
                    let pool = Arc::clone(pool);
                    s.spawn(move || NvMemcached::recover(pool, per_shard_capacity))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard recovery panicked")).collect()
        });
        let mut report = RecoveryReport::default();
        let mut shards = Vec::with_capacity(recovered.len());
        for (shard, shard_report) in recovered {
            report.merge(shard_report);
            shards.push(shard);
        }
        (shards, report)
    }

    /// Number of serving shards (the new count once a reshard completes).
    pub fn n_shards(&self) -> usize {
        self.topology().shards.len()
    }

    /// Current topology version (1 at `create`; +1 per completed
    /// reshard).
    pub fn version(&self) -> u32 {
        self.topology().version
    }

    /// The routing function.
    pub fn router(&self) -> Router {
        self.topology().router
    }

    /// The serving shards themselves (crashtest oracles address them
    /// directly). An `Arc` snapshot: a concurrent reshard completion
    /// cannot free shards out from under the caller.
    pub fn shards(&self) -> Arc<[NvMemcached]> {
        Arc::clone(&self.topology().shards)
    }

    /// The shard `key` routes to in the current topology.
    pub fn shard_of(&self, key: u64) -> usize {
        let top = self.topology();
        top.router.route(key, top.shards.len())
    }

    /// Requests routed to each shard of the current topology since
    /// creation/recovery/reshard completion (or the last
    /// [`ShardedNvMemcached::reset_shard_requests`]). Volatile
    /// observability only — skewed traffic shows up as imbalance here.
    /// Connections flush their tallies on drop, so read this after the
    /// worker connections of interest have been dropped (a joined run's
    /// workers always have).
    pub fn shard_requests(&self) -> Vec<u64> {
        self.topology().requests.iter().map(|c| c.0.load(Ordering::Relaxed)).collect()
    }

    /// Zeroes the per-shard request tallies (e.g. after warm-up, so a
    /// timed window measures only its own traffic). Live connections'
    /// unflushed counts are not affected — reset while no connection
    /// holds unflushed tallies.
    pub fn reset_shard_requests(&self) {
        let top = self.topology();
        for c in top.requests.iter() {
            c.0.store(0, Ordering::Relaxed);
        }
        if let Some(f) = &top.flight {
            for c in f.new_requests.iter() {
                c.0.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Registers the calling worker thread with every shard of the
    /// current topology (and, mid-reshard, with every target shard).
    pub fn register(&self) -> ShardedCtx {
        // Read the generation *before* snapshotting the topology: if a
        // change lands between the two loads the pinned gen is stale and
        // the first operation re-registers — never the reverse.
        let gen = self.gen.load(Ordering::Acquire);
        let top = self.topology();
        let ctxs: Box<[ThreadCtx]> = top.shards.iter().map(NvMemcached::register).collect();
        let tallies = vec![0; top.shards.len()].into_boxed_slice();
        let (new_ctxs, new_tallies) = match &top.flight {
            Some(f) => (
                f.new_shards.iter().map(NvMemcached::register).collect(),
                vec![0; f.new_shards.len()].into_boxed_slice(),
            ),
            None => (Box::from([]), Box::from([])),
        };
        ShardedCtx { top, gen, ctxs, new_ctxs, tallies, new_tallies }
    }

    /// Re-registers `ctx` if the topology changed since it was pinned.
    #[inline]
    fn refresh(&self, ctx: &mut ShardedCtx) {
        if ctx.gen != self.gen.load(Ordering::Acquire) {
            *ctx = self.register();
        }
    }

    /// Total (approximate) item count over all shards (old and, mid-
    /// reshard, new).
    pub fn len(&self) -> usize {
        let top = self.topology();
        let mut n: usize = top.shards.iter().map(NvMemcached::len).sum();
        if let Some(f) = &top.flight {
            n += f.new_shards.iter().map(NvMemcached::len).sum::<usize>();
        }
        n
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Straggler guard: decides whether an operation that just ran
    /// against `ctx`'s pinned topology is allowed to linearize, or must
    /// be redone against the current topology.
    ///
    /// An operation can pass [`Self::refresh`] just before
    /// [`Self::reshard_start`] / finalize bumps the generation and then
    /// run against the previous topology with no stripe lock — so a
    /// write can land in an old shard *after* the migration driver's
    /// all-stripes re-verification, stranding it where no reader or
    /// recovery will look. The `SeqCst` fence here pairs with the fence
    /// at the top of every drain pass (Dekker-style): if this re-check
    /// still reads the pinned generation, the drain's re-verification is
    /// guaranteed to observe the op's effects (and will re-migrate
    /// them); if it reads a newer generation, the caller redoes the op
    /// under the current routing rules, which purge any stranded copy
    /// under the key's stripe lock. Either way nothing is lost.
    #[inline]
    fn gen_settled(&self, ctx: &ShardedCtx) -> bool {
        std::sync::atomic::fence(Ordering::SeqCst);
        ctx.gen == self.gen.load(Ordering::Acquire)
    }

    /// Stores `key -> value` (memcached `set`: upsert) in the routed
    /// shard. Mid-reshard, lands in the key's *final* home and clears any
    /// old copy, so the migration driver can never re-copy a stale value
    /// over it.
    pub fn set(&self, ctx: &mut ShardedCtx, key: u64, value: u64) -> Result<(), OutOfMemory> {
        self.refresh(ctx);
        loop {
            self.set_once(ctx, key, value)?;
            if self.gen_settled(ctx) {
                return Ok(());
            }
            *ctx = self.register();
        }
    }

    fn set_once(&self, ctx: &mut ShardedCtx, key: u64, value: u64) -> Result<(), OutOfMemory> {
        let top = &*ctx.top;
        let s = top.router.route(key, top.shards.len());
        let Some(f) = top.flight.as_deref() else {
            ctx.tallies[s] += 1;
            return top.shards[s].set(&mut ctx.ctxs[s], key, value);
        };
        let d = top.router.route(key, f.new_shards.len());
        let _g = f.stripes[reshard::stripe_of(key)].lock();
        let c = f.cursor.load(Ordering::Acquire);
        if s < c {
            // The old home is normally empty past the cursor, but a
            // straggler redo (see `gen_settled`) may find its own
            // stranded copy there — clear it first. Crash between the
            // two: both homes hold a value and recovery's new-wins rule
            // keeps the new one, which is a previously-acknowledged
            // state (this op is still in flight).
            top.shards[s].delete(&mut ctx.ctxs[s], key);
            ctx.new_tallies[d] += 1;
            f.new_shards[d].set(&mut ctx.new_ctxs[d], key, value)
        } else if s > c {
            ctx.tallies[s] += 1;
            top.shards[s].set(&mut ctx.ctxs[s], key, value)
        } else {
            // The shard being drained: write the new home first, then
            // clear the old copy. A crash between the two leaves both
            // copies; recovery's new-wins rule keeps this (acknowledged)
            // value and discards the stale old one.
            ctx.tallies[s] += 1;
            f.new_shards[d].set(&mut ctx.new_ctxs[d], key, value)?;
            top.shards[s].delete(&mut ctx.ctxs[s], key);
            Ok(())
        }
    }

    /// Fetches `key` (memcached `get`) from the routed shard. Lock-free
    /// even mid-reshard: for a not-yet-drained shard the old home is
    /// checked first — migration copies to the new home *before* deleting
    /// the old copy, so an old-side miss means the key is in its new home
    /// or genuinely absent.
    pub fn get(&self, ctx: &mut ShardedCtx, key: u64) -> Option<u64> {
        self.refresh(ctx);
        loop {
            let v = self.get_once(ctx, key);
            if self.gen_settled(ctx) {
                return v;
            }
            *ctx = self.register();
        }
    }

    fn get_once(&self, ctx: &mut ShardedCtx, key: u64) -> Option<u64> {
        let top = &*ctx.top;
        let s = top.router.route(key, top.shards.len());
        let Some(f) = top.flight.as_deref() else {
            ctx.tallies[s] += 1;
            return top.shards[s].get(&mut ctx.ctxs[s], key);
        };
        let d = top.router.route(key, f.new_shards.len());
        if s < f.cursor.load(Ordering::Acquire) {
            ctx.new_tallies[d] += 1;
            f.new_shards[d].get(&mut ctx.new_ctxs[d], key)
        } else {
            ctx.tallies[s] += 1;
            let old = top.shards[s].get(&mut ctx.ctxs[s], key);
            match old {
                Some(v) => Some(v),
                None => f.new_shards[d].get(&mut ctx.new_ctxs[d], key),
            }
        }
    }

    /// Deletes `key` (memcached `delete`) from the routed shard. Mid-
    /// reshard both homes are cleared, old side first: if a crash image
    /// holds both copies, recovery keeps the *new* one, so the old copy
    /// must die first or a torn delete could resurrect a stale value.
    pub fn delete(&self, ctx: &mut ShardedCtx, key: u64) -> Option<u64> {
        self.refresh(ctx);
        loop {
            let v = self.delete_once(ctx, key);
            if self.gen_settled(ctx) {
                return v;
            }
            *ctx = self.register();
        }
    }

    fn delete_once(&self, ctx: &mut ShardedCtx, key: u64) -> Option<u64> {
        let top = &*ctx.top;
        let s = top.router.route(key, top.shards.len());
        let Some(f) = top.flight.as_deref() else {
            ctx.tallies[s] += 1;
            return top.shards[s].delete(&mut ctx.ctxs[s], key);
        };
        let d = top.router.route(key, f.new_shards.len());
        let _g = f.stripes[reshard::stripe_of(key)].lock();
        let c = f.cursor.load(Ordering::Acquire);
        if s < c {
            // Old-home purge first (stranded straggler copies; see
            // `gen_settled`) — the old copy must die before the new one
            // so a crash image can never resurrect it via new-wins.
            let old_v = top.shards[s].delete(&mut ctx.ctxs[s], key);
            ctx.new_tallies[d] += 1;
            f.new_shards[d].delete(&mut ctx.new_ctxs[d], key).or(old_v)
        } else if s > c {
            ctx.tallies[s] += 1;
            top.shards[s].delete(&mut ctx.ctxs[s], key)
        } else {
            ctx.tallies[s] += 1;
            let old_v = top.shards[s].delete(&mut ctx.ctxs[s], key);
            let new_v = f.new_shards[d].delete(&mut ctx.new_ctxs[d], key);
            new_v.or(old_v)
        }
    }

    /// Memcached `add`: stores only if the key is absent (in either home,
    /// mid-reshard).
    pub fn add(&self, ctx: &mut ShardedCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        self.refresh(ctx);
        let r = self.add_once(ctx, key, value)?;
        if !r || self.gen_settled(ctx) {
            return Ok(r);
        }
        // The winning store may be stranded in a superseded topology
        // (see `gen_settled`); the key is ours, so re-assert it as an
        // upsert under the current routing rules.
        *ctx = self.register();
        loop {
            self.set_once(ctx, key, value)?;
            if self.gen_settled(ctx) {
                return Ok(true);
            }
            *ctx = self.register();
        }
    }

    fn add_once(&self, ctx: &mut ShardedCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        let top = &*ctx.top;
        let s = top.router.route(key, top.shards.len());
        let Some(f) = top.flight.as_deref() else {
            ctx.tallies[s] += 1;
            return top.shards[s].add(&mut ctx.ctxs[s], key, value);
        };
        let d = top.router.route(key, f.new_shards.len());
        let _g = f.stripes[reshard::stripe_of(key)].lock();
        let c = f.cursor.load(Ordering::Acquire);
        if s < c {
            ctx.new_tallies[d] += 1;
            f.new_shards[d].add(&mut ctx.new_ctxs[d], key, value)
        } else if s > c {
            ctx.tallies[s] += 1;
            top.shards[s].add(&mut ctx.ctxs[s], key, value)
        } else {
            ctx.tallies[s] += 1;
            if top.shards[s].get(&mut ctx.ctxs[s], key).is_some() {
                return Ok(false);
            }
            f.new_shards[d].add(&mut ctx.new_ctxs[d], key, value)
        }
    }

    /// Memcached `replace`: stores only if the key is present (in either
    /// home, mid-reshard; a replace of an old-home key migrates it).
    pub fn replace(&self, ctx: &mut ShardedCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        self.refresh(ctx);
        let r = self.replace_once(ctx, key, value)?;
        if !r || self.gen_settled(ctx) {
            return Ok(r);
        }
        // Same stranding repair as `add`: the store happened, so
        // re-assert it as an upsert under the current routing rules.
        *ctx = self.register();
        loop {
            self.set_once(ctx, key, value)?;
            if self.gen_settled(ctx) {
                return Ok(true);
            }
            *ctx = self.register();
        }
    }

    fn replace_once(
        &self,
        ctx: &mut ShardedCtx,
        key: u64,
        value: u64,
    ) -> Result<bool, OutOfMemory> {
        let top = &*ctx.top;
        let s = top.router.route(key, top.shards.len());
        let Some(f) = top.flight.as_deref() else {
            ctx.tallies[s] += 1;
            return top.shards[s].replace(&mut ctx.ctxs[s], key, value);
        };
        let d = top.router.route(key, f.new_shards.len());
        let _g = f.stripes[reshard::stripe_of(key)].lock();
        let c = f.cursor.load(Ordering::Acquire);
        if s < c {
            ctx.new_tallies[d] += 1;
            f.new_shards[d].replace(&mut ctx.new_ctxs[d], key, value)
        } else if s > c {
            ctx.tallies[s] += 1;
            top.shards[s].replace(&mut ctx.ctxs[s], key, value)
        } else {
            ctx.tallies[s] += 1;
            if f.new_shards[d].replace(&mut ctx.new_ctxs[d], key, value)? {
                return Ok(true);
            }
            if top.shards[s].get(&mut ctx.ctxs[s], key).is_some() {
                f.new_shards[d].set(&mut ctx.new_ctxs[d], key, value)?;
                top.shards[s].delete(&mut ctx.ctxs[s], key);
                return Ok(true);
            }
            Ok(false)
        }
    }

    /// Starts an incremental grow of every shard's bucket array by
    /// `factor` (see [`NvMemcached::grow`]). Each shard migrates
    /// independently and lazily; operations keep serving throughout.
    /// Returns how many shards actually started a resize (a shard
    /// already mid-resize refuses and counts as not started). Applies to
    /// the current topology's serving shards.
    pub fn grow(&self, ctx: &mut ShardedCtx, factor: usize) -> Result<usize, OutOfMemory> {
        self.refresh(ctx);
        let top = Arc::clone(&ctx.top);
        let mut started = 0;
        for (i, shard) in top.shards.iter().enumerate() {
            if shard.grow(&mut ctx.ctxs[i], factor)? {
                started += 1;
            }
        }
        Ok(started)
    }

    /// Drives every shard's in-flight resize to completion.
    pub fn finish_resize(&self, ctx: &mut ShardedCtx) -> Result<(), OutOfMemory> {
        self.refresh(ctx);
        let top = Arc::clone(&ctx.top);
        for (i, shard) in top.shards.iter().enumerate() {
            shard.finish_resize(&mut ctx.ctxs[i])?;
        }
        Ok(())
    }

    /// Whether any shard has a (bucket-array) resize in flight.
    pub fn resize_in_flight(&self) -> bool {
        self.topology().shards.iter().any(NvMemcached::resize_in_flight)
    }

    /// Durability barrier over every shard (flushes link-cache residue),
    /// including mid-reshard target shards.
    pub fn quiesce(&self) {
        let top = self.topology();
        let flight_shards = top.flight.as_ref().map(|f| Arc::clone(&f.new_shards));
        for shard in top.shards.iter().chain(flight_shards.iter().flat_map(|s| s.iter())) {
            let mut flusher = shard.domain().pool().flusher();
            shard.quiesce(&mut flusher);
        }
    }

    /// Merged lifetime [`FlushStats`] over every shard pool (same
    /// snapshot-pair discipline as [`PmemPool::flush_stats`]), including
    /// mid-reshard target shards.
    pub fn flush_stats(&self) -> FlushStats {
        let top = self.topology();
        let mut total = FlushStats::default();
        for shard in top.shards.iter() {
            total.merge(shard.domain().pool().flush_stats());
        }
        if let Some(f) = &top.flight {
            for shard in f.new_shards.iter() {
                total.merge(shard.domain().pool().flush_stats());
            }
        }
        total
    }

    /// Quiescent snapshot of every shard's live pairs (order
    /// unspecified). Mid-reshard the union of old and new homes is
    /// returned; only quiescent states are meaningful (a key mid-
    /// migration can transiently appear twice).
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let top = self.topology();
        let mut v: Vec<(u64, u64)> = top.shards.iter().flat_map(NvMemcached::snapshot).collect();
        if let Some(f) = &top.flight {
            v.extend(f.new_shards.iter().flat_map(NvMemcached::snapshot));
        }
        v
    }
}

impl MemtierCache for ShardedNvMemcached {
    type Conn = ShardedCtx;

    fn connect(&self) -> ShardedCtx {
        self.register()
    }

    fn exec(&self, ctx: &mut ShardedCtx, req: Request) -> ReqOutcome {
        crate::memtier::exec_kv(
            ctx,
            req,
            |c, k, v| self.set(c, k, v).expect("pool sized for workload"),
            |c, k| self.get(c, k).is_some(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{LatencyModel, Mode, PoolBuilder};

    fn pools(n: usize, mode: Mode) -> Vec<Arc<PmemPool>> {
        (0..n)
            .map(|_| PoolBuilder::new(16 << 20).mode(mode).latency(LatencyModel::ZERO).build())
            .collect()
    }

    #[test]
    fn routing_is_total_and_stable() {
        for n in [1usize, 2, 4, 8] {
            for key in 1..=1000u64 {
                let s = shard_of(key, n);
                assert!(s < n);
                assert_eq!(s, shard_of(key, n), "routing is deterministic");
            }
        }
        // Keys spread over every shard (no degenerate routing).
        let mut seen = [false; 8];
        for key in 1..=1000u64 {
            seen[shard_of(key, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 shards receive keys");
    }

    #[test]
    fn range_router_is_total_ordered_and_degenerate_for_small_keys() {
        for n in [1usize, 2, 4, 8] {
            let mut last = 0usize;
            for key in (0..64u64).map(|i| i << 58) {
                let s = Router::Range.route(key, n);
                assert!(s < n);
                assert!(s >= last, "range routing is monotone in the key");
                last = s;
            }
        }
        // The negative control: realistic small keys all land in shard 0.
        for key in 1..=100_000u64 {
            assert_eq!(Router::Range.route(key, 8), 0);
        }
    }

    #[test]
    fn set_get_delete_route_consistently() {
        let pools = pools(4, Mode::Perf);
        let mc = ShardedNvMemcached::create(&pools, 64, 10_000, false).unwrap();
        let mut ctx = mc.register();
        for k in 1..=200u64 {
            mc.set(&mut ctx, k, k * 3).unwrap();
        }
        for k in 1..=200u64 {
            assert_eq!(mc.get(&mut ctx, k), Some(k * 3));
        }
        assert_eq!(mc.len(), 200);
        for k in 1..=100u64 {
            assert_eq!(mc.delete(&mut ctx, k), Some(k * 3));
        }
        assert_eq!(mc.len(), 100);
        // Every shard holds only keys that route to it.
        for (i, shard) in mc.shards().iter().enumerate() {
            for (k, _) in shard.snapshot() {
                assert_eq!(mc.shard_of(k), i, "key {k} stored in wrong shard {i}");
            }
        }
    }

    #[test]
    fn add_and_replace_route() {
        let pools = pools(2, Mode::Perf);
        let mc = ShardedNvMemcached::create(&pools, 64, 1000, false).unwrap();
        let mut ctx = mc.register();
        assert!(mc.add(&mut ctx, 5, 50).unwrap());
        assert!(!mc.add(&mut ctx, 5, 51).unwrap());
        assert!(mc.replace(&mut ctx, 5, 52).unwrap());
        assert!(!mc.replace(&mut ctx, 6, 60).unwrap());
        assert_eq!(mc.get(&mut ctx, 5), Some(52));
        assert_eq!(mc.len(), 1);
    }

    #[test]
    fn capacity_splits_across_shards() {
        let pools = pools(4, Mode::Perf);
        let mc = ShardedNvMemcached::create(&pools, 64, 100, false).unwrap();
        let mut ctx = mc.register();
        for k in 1..=1000u64 {
            mc.set(&mut ctx, k, k).unwrap();
        }
        // Soft capacity: ceil(100/4) = 25 per shard, 100 total (+ race
        // slack; single-threaded here, so exact).
        assert!(mc.len() <= 100, "soft capacity respected (len = {})", mc.len());
        for shard in mc.shards().iter() {
            assert!(shard.len() <= 25, "per-shard capacity respected");
        }
    }

    #[test]
    fn live_grow_keeps_serving_across_shards() {
        let pools = pools(4, Mode::Perf);
        let mc = ShardedNvMemcached::create(&pools, 64, 1_000_000, false).unwrap();
        let mut ctx = mc.register();
        for k in 1..=1000u64 {
            mc.set(&mut ctx, k, k).unwrap();
        }
        assert_eq!(mc.grow(&mut ctx, 4).unwrap(), 4, "all 4 shards started a resize");
        assert!(mc.resize_in_flight());
        // Every operation keeps serving mid-migration.
        for k in 1..=1000u64 {
            assert_eq!(mc.get(&mut ctx, k), Some(k), "key {k} readable during grow");
        }
        for k in 1001..=1200u64 {
            mc.set(&mut ctx, k, k).unwrap();
        }
        mc.finish_resize(&mut ctx).unwrap();
        assert!(!mc.resize_in_flight());
        for k in 1..=1200u64 {
            assert_eq!(mc.get(&mut ctx, k), Some(k), "key {k} survived the grow");
        }
        for shard in mc.shards().iter() {
            assert_eq!(shard.capacity_hint(), 256, "4x grow from 64 buckets");
        }
    }

    #[test]
    fn completed_sets_survive_crash_and_recover_in_parallel() {
        let pools = pools(4, Mode::CrashSim);
        {
            let mc = ShardedNvMemcached::create(&pools, 64, 100_000, false).unwrap();
            let mut ctx = mc.register();
            for k in 1..=400u64 {
                mc.set(&mut ctx, k, k * 2).unwrap();
            }
            for k in 1..=100u64 {
                mc.delete(&mut ctx, k);
            }
        }
        for pool in &pools {
            // SAFETY: no threads are running.
            unsafe { pool.simulate_crash().unwrap() };
        }
        let (mc2, report) = ShardedNvMemcached::recover(&pools, 100_000).unwrap();
        assert!(!report.used_full_scan);
        assert_eq!(mc2.version(), 1);
        let mut ctx = mc2.register();
        for k in 1..=100u64 {
            assert_eq!(mc2.get(&mut ctx, k), None, "deleted key {k} stayed deleted");
        }
        for k in 101..=400u64 {
            assert_eq!(mc2.get(&mut ctx, k), Some(k * 2), "key {k} recovered");
        }
        assert_eq!(mc2.len(), 300);
        // The recovered cache keeps serving.
        mc2.set(&mut ctx, 9999, 1).unwrap();
        assert_eq!(mc2.get(&mut ctx, 9999), Some(1));
    }

    #[test]
    fn shard_request_counters_match_routing() {
        let pools = pools(4, Mode::Perf);
        let mc = ShardedNvMemcached::create(&pools, 64, 10_000, false).unwrap();
        let mut expect = [0u64; 4];
        {
            let mut ctx = mc.register();
            for k in 1..=500u64 {
                mc.set(&mut ctx, k, k).unwrap();
                expect[mc.shard_of(k)] += 1;
            }
            for k in 1..=250u64 {
                mc.get(&mut ctx, k);
                expect[mc.shard_of(k)] += 1;
            }
            mc.delete(&mut ctx, 7);
            expect[mc.shard_of(7)] += 1;
            // Tallies are per-connection until the connection drops.
            assert_eq!(mc.shard_requests(), vec![0; 4]);
        }
        assert_eq!(mc.shard_requests(), expect.to_vec());
        assert_eq!(mc.shard_requests().iter().sum::<u64>(), 751);
        // A second connection's traffic accumulates on top.
        {
            let mut ctx = mc.register();
            mc.get(&mut ctx, 1);
        }
        assert_eq!(mc.shard_requests().iter().sum::<u64>(), 752);
        mc.reset_shard_requests();
        assert_eq!(mc.shard_requests(), vec![0; 4]);
    }

    #[test]
    fn geometry_pack_round_trips() {
        for (id, router, version, count, index) in [
            (1u32, Router::Hash, 1u32, 1usize, 0usize),
            (0x5E_AD0E, Router::Range, 7, 8, 7),
            (7, Router::Hash, 65_535, 4095, 42),
        ] {
            let (rid, r, v, c, i) =
                unpack_geometry(pack_geometry(id, router, version, count, index));
            assert_eq!((rid, r, v, c as usize, i as usize), (id, router, version, count, index));
        }
    }

    #[test]
    fn cache_ids_are_nonzero_and_distinct() {
        let a = fresh_cache_id();
        let b = fresh_cache_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert!(a < (1 << 23) && b < (1 << 23), "ids fit the 23-bit geometry field");
        assert_ne!(a, b, "two create calls in one process get distinct ids");
    }
}

//! **Sharded NV-Memcached**: N independent [`NvMemcached`] shards behind
//! a routing hash.
//!
//! Real memcached deployments scale by partitioning; the durable cache
//! partitions the same way. Each shard owns its *own* [`PmemPool`],
//! [`nvalloc::NvDomain`], hash table and eviction queue, so shards share
//! no memory, no locks and no durable state — the only cross-shard
//! coupling is the volatile routing function [`shard_of`]. That
//! independence buys three things:
//!
//! * **Throughput**: the per-shard eviction-queue mutex, heap page lists,
//!   epoch vectors and (in crash-sim mode) shadow word arrays are no
//!   longer contended across the whole cache.
//! * **Parallel recovery**: after a crash every shard repairs its table
//!   and reclaims its leaks on its own thread
//!   ([`ShardedNvMemcached::recover`]), and the per-shard
//!   [`RecoveryReport`]s are merged into one aggregate.
//! * **Fault isolation**: a crash mid-operation can leave in-flight state
//!   in at most the shard the operation routed to; every other shard
//!   recovers exactly its completed history. The crashtest subsystem
//!   enumerates crash points over the sharded cache to validate exactly
//!   this invariant (see `crashtest::run_sharded_crash_points`).
//!
//! # Durable geometry
//!
//! Each shard's pool records `(cache_id, shard_count, shard_index)` in
//! root slot [`SHARD_GEOMETRY_ROOT`], durably written at creation (the
//! cache id ties every pool to the `create` call that formatted it).
//! [`ShardedNvMemcached::recover`] validates the recorded geometry against
//! the pools it is given *before* touching any data — opening with the
//! wrong pool count, pools mixed in from a different cache, or pools in
//! the wrong order fails with a [`GeometryError`] instead of serving
//! scrambled routing.
//!
//! `ShardedNvMemcached` over a single shard is behaviorally identical to
//! a standalone [`NvMemcached`] (the shard *is* an `NvMemcached`; with
//! `n = 1` the router is constant), which keeps single-system paper
//! comparisons honest.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nvalloc::{OutOfMemory, RecoveryReport, ThreadCtx};
use pmem::{FlushStats, PmemPool};

use crate::memtier::{MemtierCache, ReqOutcome, Request};
use crate::NvMemcached;

/// Root-directory slot recording `(shard_count, shard_index)` in every
/// shard pool (distinct from [`crate::NVMC_ROOT`], which anchors the
/// shard's hash table).
pub const SHARD_GEOMETRY_ROOT: usize = 9;

/// Routes `key` to a shard index in `0..n_shards`.
///
/// Uses the splitmix64 finalizer — deliberately *not* the Fibonacci
/// multiply the per-shard hash table derives its bucket index from, so
/// the bit ranges are decorrelated and the keys of one shard still
/// spread uniformly over that shard's buckets.
#[inline]
pub fn shard_of(key: u64, n_shards: usize) -> usize {
    let mut x = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % n_shards.max(1) as u64) as usize
}

/// Why a set of pools was rejected by [`ShardedNvMemcached::recover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// No pools were given.
    NoPools,
    /// The pool at `position` has no shard geometry recorded (it never
    /// belonged to a sharded cache, or the record was never made
    /// durable).
    NotSharded {
        /// Index of the offending pool in the given slice.
        position: usize,
    },
    /// The pool at `position` records a different shard count than the
    /// number of pools given.
    ShardCount {
        /// Index of the offending pool in the given slice.
        position: usize,
        /// The shard count durably recorded in that pool.
        recorded: u32,
        /// The number of pools actually given.
        given: usize,
    },
    /// The pool at `position` records a different shard index — the
    /// pools belong to this geometry but were passed in the wrong order
    /// (routing would scramble).
    ShardIndex {
        /// Index of the offending pool in the given slice.
        position: usize,
        /// The shard index durably recorded in that pool.
        recorded: u32,
    },
    /// The pool at `position` records a different cache id than pool 0 —
    /// the pools come from two different sharded caches whose layouts
    /// merely happen to match (mixing them would silently serve a
    /// frankenstein key space).
    CacheMismatch {
        /// Index of the offending pool in the given slice.
        position: usize,
        /// Cache id recorded in pool 0.
        expected: u32,
        /// Cache id recorded in this pool.
        found: u32,
    },
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GeometryError::NoPools => write!(f, "no shard pools given"),
            GeometryError::NotSharded { position } => {
                write!(f, "pool {position} has no shard geometry recorded")
            }
            GeometryError::ShardCount { position, recorded, given } => write!(
                f,
                "pool {position} records {recorded} shard(s) but {given} pool(s) were given"
            ),
            GeometryError::ShardIndex { position, recorded } => write!(
                f,
                "pool at position {position} records shard index {recorded} (pools out of order)"
            ),
            GeometryError::CacheMismatch { position, expected, found } => write!(
                f,
                "pool {position} records cache id {found:#x} but pool 0 records {expected:#x} \
                 (pools from different sharded caches)"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Geometry word layout: `[cache_id:32][shard_count:16][shard_index:16]`.
/// The cache id ties a pool to the `create` call that formatted it, so
/// pools from two different caches with the same `(count, index)` layout
/// cannot be mixed; ids are never zero, so a valid word is never zero.
fn pack_geometry(cache_id: u32, count: usize, index: usize) -> u64 {
    assert!(count <= u16::MAX as usize, "shard count {count} exceeds the geometry word");
    ((cache_id as u64) << 32) | ((count as u64) << 16) | index as u64
}

fn unpack_geometry(word: u64) -> (u32, u32, u32) {
    ((word >> 32) as u32, ((word >> 16) & 0xFFFF) as u32, (word & 0xFFFF) as u32)
}

/// A fresh (non-zero, process-unique, time-salted) cache id.
fn fresh_cache_id() -> u32 {
    use std::sync::atomic::AtomicU32;
    static NEXT: AtomicU32 = AtomicU32::new(1);
    let salt = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed) as u64;
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut x = nanos ^ (salt << 32) ^ salt;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (((x >> 32) ^ x) as u32).max(1)
}

/// One shard's aggregated request tally, padded to its own cache line
/// (same discipline as the epoch vector's padding in `nvalloc`). These
/// are touched only when a connection drops — the hot path counts into
/// plain per-connection `u64`s ([`ShardedCtx`]), so the tally adds no
/// shared-memory traffic to the requests being measured.
#[repr(align(128))]
struct ShardTally(AtomicU64);

/// The durable cache, partitioned into independent shards.
pub struct ShardedNvMemcached {
    shards: Box<[NvMemcached]>,
    /// Volatile per-shard request tally (every routed `set`/`get`/
    /// `delete`/`add`/`replace`), the basis of the skew experiments'
    /// imbalance metric. Accumulated per connection and flushed when the
    /// connection drops. Not persisted; recovery starts from zero.
    requests: Arc<[ShardTally]>,
}

impl std::fmt::Debug for ShardedNvMemcached {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedNvMemcached")
            .field("n_shards", &self.shards.len())
            .field("len", &self.len())
            .finish()
    }
}

/// Per-worker operation state: one [`ThreadCtx`] per shard (each shard is
/// its own allocation domain), plus this connection's plain request
/// tallies — counted without any shared-memory traffic and flushed into
/// the cache-wide counters when the connection drops. Create via
/// [`ShardedNvMemcached::register`].
pub struct ShardedCtx {
    ctxs: Box<[ThreadCtx]>,
    tallies: Box<[u64]>,
    shared: Arc<[ShardTally]>,
}

impl Drop for ShardedCtx {
    fn drop(&mut self) {
        for (tally, shared) in self.tallies.iter().zip(self.shared.iter()) {
            if *tally > 0 {
                shared.0.fetch_add(*tally, Ordering::Relaxed);
            }
        }
    }
}

impl ShardedCtx {
    /// The context registered with shard `i` (for direct shard access in
    /// tests and recovery tooling).
    pub fn shard_ctx(&mut self, i: usize) -> &mut ThreadCtx {
        &mut self.ctxs[i]
    }

    /// Drains every shard context's deferred reclamation. Only safe when
    /// no other worker is running operations (shutdown/tests).
    pub fn drain_all(&mut self) {
        for ctx in self.ctxs.iter_mut() {
            ctx.drain_all();
        }
    }
}

impl ShardedNvMemcached {
    /// Creates a fresh sharded cache: one shard per pool, each with
    /// `n_buckets` buckets, splitting the soft `capacity` evenly, and
    /// durably records the shard geometry in every pool.
    pub fn create(
        pools: &[Arc<PmemPool>],
        n_buckets: usize,
        capacity: usize,
        use_link_cache: bool,
    ) -> Result<Self, OutOfMemory> {
        assert!(!pools.is_empty(), "a sharded cache needs at least one pool");
        let n = pools.len();
        let cache_id = fresh_cache_id();
        let per_shard_capacity = capacity.div_ceil(n);
        let mut shards = Vec::with_capacity(n);
        for (i, pool) in pools.iter().enumerate() {
            let shard = NvMemcached::create(
                Arc::clone(pool),
                n_buckets,
                per_shard_capacity,
                use_link_cache,
            )?;
            let mut flusher = pool.flusher();
            pool.set_root(SHARD_GEOMETRY_ROOT, pack_geometry(cache_id, n, i), &mut flusher);
            shards.push(shard);
        }
        Ok(Self::from_shards(shards))
    }

    fn from_shards(shards: Vec<NvMemcached>) -> Self {
        let requests: Arc<[ShardTally]> =
            (0..shards.len()).map(|_| ShardTally(AtomicU64::new(0))).collect();
        Self { shards: shards.into_boxed_slice(), requests }
    }

    /// Validates the durable shard geometry of `pools` without recovering
    /// anything: every pool must record this exact `(count, position)`
    /// layout.
    pub fn validate_geometry(pools: &[Arc<PmemPool>]) -> Result<(), GeometryError> {
        if pools.is_empty() {
            return Err(GeometryError::NoPools);
        }
        let mut expected_id = None;
        for (position, pool) in pools.iter().enumerate() {
            let word = pool.root(SHARD_GEOMETRY_ROOT);
            if word == 0 {
                return Err(GeometryError::NotSharded { position });
            }
            let (cache_id, count, index) = unpack_geometry(word);
            let expected = *expected_id.get_or_insert(cache_id);
            if cache_id != expected {
                return Err(GeometryError::CacheMismatch { position, expected, found: cache_id });
            }
            if count as usize != pools.len() {
                return Err(GeometryError::ShardCount {
                    position,
                    recorded: count,
                    given: pools.len(),
                });
            }
            if index as usize != position {
                return Err(GeometryError::ShardIndex { position, recorded: index });
            }
        }
        Ok(())
    }

    /// Re-attaches to a crashed sharded cache: validates the recorded
    /// geometry against `pools`, then recovers every shard **in
    /// parallel** (one thread per shard — each repairs its table and
    /// reclaims its leaks independently) and merges the per-shard
    /// [`RecoveryReport`]s into one aggregate.
    pub fn recover(
        pools: &[Arc<PmemPool>],
        capacity: usize,
    ) -> Result<(Self, RecoveryReport), GeometryError> {
        Self::validate_geometry(pools)?;
        let per_shard_capacity = capacity.div_ceil(pools.len());
        let recovered: Vec<(NvMemcached, RecoveryReport)> = std::thread::scope(|s| {
            let handles: Vec<_> = pools
                .iter()
                .map(|pool| {
                    let pool = Arc::clone(pool);
                    s.spawn(move || NvMemcached::recover(pool, per_shard_capacity))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard recovery panicked")).collect()
        });
        let mut report = RecoveryReport::default();
        let mut shards = Vec::with_capacity(recovered.len());
        for (shard, shard_report) in recovered {
            report.merge(shard_report);
            shards.push(shard);
        }
        Ok((Self::from_shards(shards), report))
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards themselves (crashtest oracles address them directly).
    pub fn shards(&self) -> &[NvMemcached] {
        &self.shards
    }

    /// The shard `key` routes to.
    pub fn shard_of(&self, key: u64) -> usize {
        shard_of(key, self.shards.len())
    }

    /// Routes `key` and tallies the request against its shard — a plain
    /// per-connection increment, so the accounting adds no shared-memory
    /// traffic to the hot path it measures.
    #[inline]
    fn route(&self, ctx: &mut ShardedCtx, key: u64) -> usize {
        let s = self.shard_of(key);
        ctx.tallies[s] += 1;
        s
    }

    /// Requests routed to each shard since creation/recovery (or the
    /// last [`ShardedNvMemcached::reset_shard_requests`]). Volatile
    /// observability only — skewed traffic shows up as imbalance here.
    /// Connections flush their tallies on drop, so read this after the
    /// worker connections of interest have been dropped (a joined run's
    /// workers always have).
    pub fn shard_requests(&self) -> Vec<u64> {
        self.requests.iter().map(|c| c.0.load(Ordering::Relaxed)).collect()
    }

    /// Zeroes the per-shard request tallies (e.g. after warm-up, so a
    /// timed window measures only its own traffic). Live connections'
    /// unflushed counts are not affected — reset while no connection
    /// holds unflushed tallies.
    pub fn reset_shard_requests(&self) {
        for c in self.requests.iter() {
            c.0.store(0, Ordering::Relaxed);
        }
    }

    /// Registers the calling worker thread with every shard.
    pub fn register(&self) -> ShardedCtx {
        ShardedCtx {
            ctxs: self.shards.iter().map(NvMemcached::register).collect(),
            tallies: vec![0; self.shards.len()].into_boxed_slice(),
            shared: Arc::clone(&self.requests),
        }
    }

    /// Total (approximate) item count over all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(NvMemcached::len).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stores `key -> value` (memcached `set`: upsert) in the routed
    /// shard.
    pub fn set(&self, ctx: &mut ShardedCtx, key: u64, value: u64) -> Result<(), OutOfMemory> {
        let s = self.route(ctx, key);
        self.shards[s].set(&mut ctx.ctxs[s], key, value)
    }

    /// Fetches `key` (memcached `get`) from the routed shard.
    pub fn get(&self, ctx: &mut ShardedCtx, key: u64) -> Option<u64> {
        let s = self.route(ctx, key);
        self.shards[s].get(&mut ctx.ctxs[s], key)
    }

    /// Deletes `key` (memcached `delete`) from the routed shard.
    pub fn delete(&self, ctx: &mut ShardedCtx, key: u64) -> Option<u64> {
        let s = self.route(ctx, key);
        self.shards[s].delete(&mut ctx.ctxs[s], key)
    }

    /// Memcached `add`: stores only if the key is absent.
    pub fn add(&self, ctx: &mut ShardedCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        let s = self.route(ctx, key);
        self.shards[s].add(&mut ctx.ctxs[s], key, value)
    }

    /// Memcached `replace`: stores only if the key is present.
    pub fn replace(&self, ctx: &mut ShardedCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        let s = self.route(ctx, key);
        self.shards[s].replace(&mut ctx.ctxs[s], key, value)
    }

    /// Starts an incremental grow of every shard's bucket array by
    /// `factor` (see [`NvMemcached::grow`]). Each shard migrates
    /// independently and lazily; operations keep serving throughout.
    /// Returns how many shards actually started a resize (a shard
    /// already mid-resize refuses and counts as not started).
    pub fn grow(&self, ctx: &mut ShardedCtx, factor: usize) -> Result<usize, OutOfMemory> {
        let mut started = 0;
        for (i, shard) in self.shards.iter().enumerate() {
            if shard.grow(&mut ctx.ctxs[i], factor)? {
                started += 1;
            }
        }
        Ok(started)
    }

    /// Drives every shard's in-flight resize to completion.
    pub fn finish_resize(&self, ctx: &mut ShardedCtx) -> Result<(), OutOfMemory> {
        for (i, shard) in self.shards.iter().enumerate() {
            shard.finish_resize(&mut ctx.ctxs[i])?;
        }
        Ok(())
    }

    /// Whether any shard has a resize in flight.
    pub fn resize_in_flight(&self) -> bool {
        self.shards.iter().any(NvMemcached::resize_in_flight)
    }

    /// Durability barrier over every shard (flushes link-cache residue).
    pub fn quiesce(&self) {
        for shard in self.shards.iter() {
            let mut flusher = shard.domain().pool().flusher();
            shard.quiesce(&mut flusher);
        }
    }

    /// Merged lifetime [`FlushStats`] over every shard pool (same
    /// snapshot-pair discipline as [`PmemPool::flush_stats`]).
    pub fn flush_stats(&self) -> FlushStats {
        let mut total = FlushStats::default();
        for shard in self.shards.iter() {
            total.merge(shard.domain().pool().flush_stats());
        }
        total
    }

    /// Quiescent snapshot of every shard's live pairs (order
    /// unspecified).
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        self.shards.iter().flat_map(NvMemcached::snapshot).collect()
    }
}

impl MemtierCache for ShardedNvMemcached {
    type Conn = ShardedCtx;

    fn connect(&self) -> ShardedCtx {
        self.register()
    }

    fn exec(&self, ctx: &mut ShardedCtx, req: Request) -> ReqOutcome {
        crate::memtier::exec_kv(
            ctx,
            req,
            |c, k, v| self.set(c, k, v).expect("pool sized for workload"),
            |c, k| self.get(c, k).is_some(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{LatencyModel, Mode, PoolBuilder};

    fn pools(n: usize, mode: Mode) -> Vec<Arc<PmemPool>> {
        (0..n)
            .map(|_| PoolBuilder::new(16 << 20).mode(mode).latency(LatencyModel::ZERO).build())
            .collect()
    }

    #[test]
    fn routing_is_total_and_stable() {
        for n in [1usize, 2, 4, 8] {
            for key in 1..=1000u64 {
                let s = shard_of(key, n);
                assert!(s < n);
                assert_eq!(s, shard_of(key, n), "routing is deterministic");
            }
        }
        // Keys spread over every shard (no degenerate routing).
        let mut seen = [false; 8];
        for key in 1..=1000u64 {
            seen[shard_of(key, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 shards receive keys");
    }

    #[test]
    fn set_get_delete_route_consistently() {
        let pools = pools(4, Mode::Perf);
        let mc = ShardedNvMemcached::create(&pools, 64, 10_000, false).unwrap();
        let mut ctx = mc.register();
        for k in 1..=200u64 {
            mc.set(&mut ctx, k, k * 3).unwrap();
        }
        for k in 1..=200u64 {
            assert_eq!(mc.get(&mut ctx, k), Some(k * 3));
        }
        assert_eq!(mc.len(), 200);
        for k in 1..=100u64 {
            assert_eq!(mc.delete(&mut ctx, k), Some(k * 3));
        }
        assert_eq!(mc.len(), 100);
        // Every shard holds only keys that route to it.
        for (i, shard) in mc.shards().iter().enumerate() {
            for (k, _) in shard.snapshot() {
                assert_eq!(mc.shard_of(k), i, "key {k} stored in wrong shard {i}");
            }
        }
    }

    #[test]
    fn add_and_replace_route() {
        let pools = pools(2, Mode::Perf);
        let mc = ShardedNvMemcached::create(&pools, 64, 1000, false).unwrap();
        let mut ctx = mc.register();
        assert!(mc.add(&mut ctx, 5, 50).unwrap());
        assert!(!mc.add(&mut ctx, 5, 51).unwrap());
        assert!(mc.replace(&mut ctx, 5, 52).unwrap());
        assert!(!mc.replace(&mut ctx, 6, 60).unwrap());
        assert_eq!(mc.get(&mut ctx, 5), Some(52));
        assert_eq!(mc.len(), 1);
    }

    #[test]
    fn capacity_splits_across_shards() {
        let pools = pools(4, Mode::Perf);
        let mc = ShardedNvMemcached::create(&pools, 64, 100, false).unwrap();
        let mut ctx = mc.register();
        for k in 1..=1000u64 {
            mc.set(&mut ctx, k, k).unwrap();
        }
        // Soft capacity: ceil(100/4) = 25 per shard, 100 total (+ race
        // slack; single-threaded here, so exact).
        assert!(mc.len() <= 100, "soft capacity respected (len = {})", mc.len());
        for shard in mc.shards() {
            assert!(shard.len() <= 25, "per-shard capacity respected");
        }
    }

    #[test]
    fn live_grow_keeps_serving_across_shards() {
        let pools = pools(4, Mode::Perf);
        let mc = ShardedNvMemcached::create(&pools, 64, 1_000_000, false).unwrap();
        let mut ctx = mc.register();
        for k in 1..=1000u64 {
            mc.set(&mut ctx, k, k).unwrap();
        }
        assert_eq!(mc.grow(&mut ctx, 4).unwrap(), 4, "all 4 shards started a resize");
        assert!(mc.resize_in_flight());
        // Every operation keeps serving mid-migration.
        for k in 1..=1000u64 {
            assert_eq!(mc.get(&mut ctx, k), Some(k), "key {k} readable during grow");
        }
        for k in 1001..=1200u64 {
            mc.set(&mut ctx, k, k).unwrap();
        }
        mc.finish_resize(&mut ctx).unwrap();
        assert!(!mc.resize_in_flight());
        for k in 1..=1200u64 {
            assert_eq!(mc.get(&mut ctx, k), Some(k), "key {k} survived the grow");
        }
        for shard in mc.shards() {
            assert_eq!(shard.capacity_hint(), 256, "4x grow from 64 buckets");
        }
    }

    #[test]
    fn completed_sets_survive_crash_and_recover_in_parallel() {
        let pools = pools(4, Mode::CrashSim);
        {
            let mc = ShardedNvMemcached::create(&pools, 64, 100_000, false).unwrap();
            let mut ctx = mc.register();
            for k in 1..=400u64 {
                mc.set(&mut ctx, k, k * 2).unwrap();
            }
            for k in 1..=100u64 {
                mc.delete(&mut ctx, k);
            }
        }
        for pool in &pools {
            // SAFETY: no threads are running.
            unsafe { pool.simulate_crash().unwrap() };
        }
        let (mc2, report) = ShardedNvMemcached::recover(&pools, 100_000).unwrap();
        assert!(!report.used_full_scan);
        let mut ctx = mc2.register();
        for k in 1..=100u64 {
            assert_eq!(mc2.get(&mut ctx, k), None, "deleted key {k} stayed deleted");
        }
        for k in 101..=400u64 {
            assert_eq!(mc2.get(&mut ctx, k), Some(k * 2), "key {k} recovered");
        }
        assert_eq!(mc2.len(), 300);
        // The recovered cache keeps serving.
        mc2.set(&mut ctx, 9999, 1).unwrap();
        assert_eq!(mc2.get(&mut ctx, 9999), Some(1));
    }

    #[test]
    fn shard_request_counters_match_routing() {
        let pools = pools(4, Mode::Perf);
        let mc = ShardedNvMemcached::create(&pools, 64, 10_000, false).unwrap();
        let mut expect = [0u64; 4];
        {
            let mut ctx = mc.register();
            for k in 1..=500u64 {
                mc.set(&mut ctx, k, k).unwrap();
                expect[mc.shard_of(k)] += 1;
            }
            for k in 1..=250u64 {
                mc.get(&mut ctx, k);
                expect[mc.shard_of(k)] += 1;
            }
            mc.delete(&mut ctx, 7);
            expect[mc.shard_of(7)] += 1;
            // Tallies are per-connection until the connection drops.
            assert_eq!(mc.shard_requests(), vec![0; 4]);
        }
        assert_eq!(mc.shard_requests(), expect.to_vec());
        assert_eq!(mc.shard_requests().iter().sum::<u64>(), 751);
        // A second connection's traffic accumulates on top.
        {
            let mut ctx = mc.register();
            mc.get(&mut ctx, 1);
        }
        assert_eq!(mc.shard_requests().iter().sum::<u64>(), 752);
        mc.reset_shard_requests();
        assert_eq!(mc.shard_requests(), vec![0; 4]);
    }

    #[test]
    fn geometry_pack_round_trips() {
        for (id, count, index) in [(1u32, 1usize, 0usize), (0xDEAD_BEEF, 8, 7), (7, 65_535, 42)] {
            let (rid, c, i) = unpack_geometry(pack_geometry(id, count, index));
            assert_eq!((rid, c as usize, i as usize), (id, count, index));
        }
    }

    #[test]
    fn cache_ids_are_nonzero_and_distinct() {
        let a = fresh_cache_id();
        let b = fresh_cache_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b, "two create calls in one process get distinct ids");
    }
}

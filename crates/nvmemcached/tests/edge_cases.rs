//! Edge-case tests for the memtier driver and NV-Memcached: empty store,
//! 100% miss workloads, set-over-existing-key upserts, and recovery of
//! the degenerate (empty / single-key) stores.

use std::sync::Arc;

use nvmemcached::memtier::{Request, RequestStream, Workload};
use nvmemcached::NvMemcached;
use pmem::{Mode, PoolBuilder};

#[test]
fn empty_store_serves_misses_and_deletes() {
    let pool = PoolBuilder::new(16 << 20).mode(Mode::Perf).build();
    let mc = NvMemcached::create(pool, 64, 1000, false).unwrap();
    let mut ctx = mc.register();
    assert!(mc.is_empty());
    for k in 1..=100u64 {
        assert_eq!(mc.get(&mut ctx, k), None, "get on empty store misses");
        assert_eq!(mc.delete(&mut ctx, k), None, "delete on empty store is a no-op");
    }
    assert!(mc.is_empty(), "misses and no-op deletes store nothing");
}

#[test]
fn empty_store_recovers_empty() {
    let pool = PoolBuilder::new(16 << 20).mode(Mode::CrashSim).build();
    {
        let _mc = NvMemcached::create(Arc::clone(&pool), 64, 1000, false).unwrap();
    }
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };
    let (mc, report) = NvMemcached::recover(Arc::clone(&pool), 1000);
    assert!(mc.is_empty(), "an empty store recovers empty");
    assert_eq!(report.leaks_freed, 0, "nothing was allocated, nothing leaks");
    // The recovered empty store keeps serving.
    let mut ctx = mc.register();
    mc.set(&mut ctx, 1, 10).unwrap();
    assert_eq!(mc.get(&mut ctx, 1), Some(10));
}

#[test]
fn pure_miss_workload_leaves_store_untouched() {
    // set_fraction 0.0 on an empty cache: every request is a missing get.
    let workload = Workload { set_fraction: 0.0, ..Workload::paper(1000, 99) };
    let pool = PoolBuilder::new(16 << 20).mode(Mode::Perf).build();
    let mc = NvMemcached::create(pool, 64, 10_000, false).unwrap();
    let mut ctx = mc.register();
    let mut requests = 0u64;
    for req in RequestStream::new(&workload, 0).take(10_000) {
        match req {
            Request::Get(k) => {
                assert_eq!(mc.get(&mut ctx, k), None, "100% miss workload");
            }
            Request::Set(..) => panic!("set_fraction 0.0 must generate no sets"),
        }
        requests += 1;
    }
    assert_eq!(requests, 10_000);
    assert!(mc.is_empty());
}

#[test]
fn set_fraction_one_generates_only_sets() {
    let workload = Workload { set_fraction: 1.0, ..Workload::paper(100, 5) };
    assert!(RequestStream::new(&workload, 1).take(5_000).all(|r| matches!(r, Request::Set(..))));
}

#[test]
fn single_key_range_stays_degenerate() {
    // key_range 1: every request hits the same key.
    let workload = Workload::paper(1, 3);
    for req in RequestStream::new(&workload, 2).take(2_000) {
        let k = match req {
            Request::Set(k, _) => k,
            Request::Get(k) => k,
        };
        assert_eq!(k, 1);
    }
    assert_eq!(workload.warmup_keys().collect::<Vec<_>>(), vec![1]);
}

#[test]
fn set_over_existing_key_replaces_and_keeps_count() {
    let pool = PoolBuilder::new(16 << 20).mode(Mode::Perf).build();
    let mc = NvMemcached::create(pool, 64, 1000, false).unwrap();
    let mut ctx = mc.register();
    for v in 0..50u64 {
        mc.set(&mut ctx, 7, v).unwrap();
        assert_eq!(mc.get(&mut ctx, 7), Some(v), "set replaces the stored value");
        assert_eq!(mc.len(), 1, "repeated sets of one key keep one item");
    }
}

#[test]
fn set_over_existing_key_survives_crash() {
    let pool = PoolBuilder::new(16 << 20).mode(Mode::CrashSim).build();
    {
        let mc = NvMemcached::create(Arc::clone(&pool), 64, 1000, false).unwrap();
        let mut ctx = mc.register();
        mc.set(&mut ctx, 7, 1).unwrap();
        mc.set(&mut ctx, 7, 2).unwrap();
        mc.set(&mut ctx, 7, 3).unwrap();
    }
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };
    let (mc, _report) = NvMemcached::recover(Arc::clone(&pool), 1000);
    let mut ctx = mc.register();
    assert_eq!(mc.get(&mut ctx, 7), Some(3), "last completed set wins");
    assert_eq!(mc.len(), 1, "replaced versions do not resurface");
}

//! Live-reshard acceptance tests: data survival under concurrent
//! traffic, shrink as well as grow, mid-reshard crash roll-forward, and
//! the topology-validation error surface.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use nvmemcached::sharded::SHARD_GEOMETRY_ROOT;
use nvmemcached::{GeometryError, ReshardError, Router, ShardedNvMemcached, RESHARD_STATE_ROOT};
use pmem::{LatencyModel, Mode, PmemPool, PoolBuilder};

fn pools(n: usize, mode: Mode) -> Vec<Arc<PmemPool>> {
    (0..n)
        .map(|_| PoolBuilder::new(32 << 20).mode(mode).latency(LatencyModel::ZERO).build())
        .collect()
}

#[test]
fn blocking_reshard_preserves_all_data_and_bumps_version() {
    let old = pools(2, Mode::Perf);
    let new = pools(4, Mode::Perf);
    let mc = ShardedNvMemcached::create(&old, 64, 1_000_000, false).unwrap();
    let mut ctx = mc.register();
    for k in 1..=2_000u64 {
        mc.set(&mut ctx, k, k * 7).unwrap();
    }
    for k in 1..=200u64 {
        mc.delete(&mut ctx, k);
    }
    assert_eq!(mc.version(), 1);

    let stats = mc.reshard(&new, 64).unwrap();
    assert_eq!((stats.from, stats.to, stats.version), (2, 4, 2));
    assert_eq!(stats.keys_moved, 1_800, "every surviving key was migrated by the driver");
    assert_eq!(mc.n_shards(), 4);
    assert_eq!(mc.version(), 2);
    assert!(!mc.reshard_in_flight());

    // A context registered before the reshard keeps working (it
    // re-registers transparently on its next operation).
    for k in 1..=200u64 {
        assert_eq!(mc.get(&mut ctx, k), None, "deleted key {k} stayed deleted");
    }
    for k in 201..=2_000u64 {
        assert_eq!(mc.get(&mut ctx, k), Some(k * 7), "key {k} survived the reshard");
    }
    assert_eq!(mc.len(), 1_800);

    // Routing containment in the new topology.
    for (i, shard) in mc.shards().iter().enumerate() {
        for (k, _) in shard.snapshot() {
            assert_eq!(mc.shard_of(k), i, "key {k} stored in wrong shard {i}");
        }
    }
    // The old pools are drained husks: every key left them.
    let drained: usize = old
        .iter()
        .map(|p| nvmemcached::NvMemcached::recover(Arc::clone(p), 1_000_000).0.len())
        .sum();
    assert_eq!(drained, 0, "old shards fully drained");
}

#[test]
fn reshard_shrinks_as_well_as_grows() {
    let old = pools(4, Mode::Perf);
    let new = pools(2, Mode::Perf);
    let mc = ShardedNvMemcached::create(&old, 64, 1_000_000, false).unwrap();
    let mut ctx = mc.register();
    for k in 1..=1_000u64 {
        mc.set(&mut ctx, k, k).unwrap();
    }
    let stats = mc.reshard(&new, 64).unwrap();
    assert_eq!((stats.from, stats.to), (4, 2));
    assert_eq!(mc.n_shards(), 2);
    for k in 1..=1_000u64 {
        assert_eq!(mc.get(&mut ctx, k), Some(k), "key {k} survived the shrink");
    }
}

/// Workers hammer disjoint key ranges while the main thread runs the
/// 2→4 reshard; every acknowledged final value must be served afterwards
/// — the volatile-side half of the "zero lost acknowledged writes"
/// criterion (the durable half is the crashtest enumeration).
#[test]
fn live_reshard_under_concurrent_traffic_loses_nothing() {
    const THREADS: u64 = 4;
    const KEYS_PER_THREAD: u64 = 400;
    const ROUNDS: u64 = 30;

    let old = pools(2, Mode::Perf);
    let new = pools(4, Mode::Perf);
    let mc = Arc::new(ShardedNvMemcached::create(&old, 64, 4_000_000, false).unwrap());
    let start = Arc::new(Barrier::new(THREADS as usize + 1));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let mc = Arc::clone(&mc);
            let start = Arc::clone(&start);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut ctx = mc.register();
                let base = 1 + t * KEYS_PER_THREAD;
                start.wait();
                let mut round = 0u64;
                // Keep rewriting until the reshard completes, then one
                // final deterministic round so the expected state is
                // known.
                while !stop.load(Ordering::Acquire) || round < ROUNDS {
                    for k in base..base + KEYS_PER_THREAD {
                        mc.set(&mut ctx, k, k * 1000 + round).unwrap();
                        assert_eq!(
                            mc.get(&mut ctx, k),
                            Some(k * 1000 + round),
                            "own write visible mid-reshard"
                        );
                        if k % 7 == 0 {
                            mc.delete(&mut ctx, k);
                        }
                    }
                    round += 1;
                }
                // Final acknowledged state: value for the last round.
                let last = round - 1;
                for k in base..base + KEYS_PER_THREAD {
                    if k % 7 == 0 {
                        assert_eq!(mc.delete(&mut ctx, k), None, "key {k} was deleted");
                    } else {
                        mc.set(&mut ctx, k, k * 1000 + last).unwrap();
                    }
                }
                last
            });
        }
        start.wait();
        let stats = mc.reshard(&new, 64).unwrap();
        assert_eq!((stats.from, stats.to, stats.version), (2, 4, 2));
        stop.store(true, Ordering::Release);
    });

    // Every thread ran at least ROUNDS rounds; the final state is
    // deterministic per key.
    assert_eq!(mc.n_shards(), 4);
    let mut ctx = mc.register();
    let mut live = 0usize;
    for t in 0..THREADS {
        let base = 1 + t * KEYS_PER_THREAD;
        for k in base..base + KEYS_PER_THREAD {
            let got = mc.get(&mut ctx, k);
            if k % 7 == 0 {
                assert_eq!(got, None, "deleted key {k} resurrected");
            } else {
                let v = got.unwrap_or_else(|| panic!("acknowledged key {k} lost"));
                assert!(v % 1000 >= ROUNDS - 1, "key {k} serves a pre-final round: {v}");
                assert_eq!(v / 1000, k, "key {k} serves a foreign value {v}");
                live += 1;
            }
        }
    }
    assert_eq!(mc.len(), live);
    for (i, shard) in mc.shards().iter().enumerate() {
        for (k, _) in shard.snapshot() {
            assert_eq!(mc.shard_of(k), i, "key {k} stored in wrong shard {i}");
        }
    }
}

#[test]
fn stepwise_reshard_reports_progress() {
    let old = pools(3, Mode::Perf);
    let new = pools(2, Mode::Perf);
    let mc = ShardedNvMemcached::create(&old, 64, 100_000, false).unwrap();
    let mut ctx = mc.register();
    for k in 1..=300u64 {
        mc.set(&mut ctx, k, k).unwrap();
    }
    mc.reshard_start(&new, 64).unwrap();
    assert!(mc.reshard_in_flight());
    let s = mc.topology_stats();
    assert_eq!(s.version, 1, "still serving the old version mid-flight");
    let p = s.reshard.expect("in flight");
    assert_eq!((p.from, p.to, p.cursor, p.version), (3, 2, 0, 2));

    assert!(!mc.reshard_step().unwrap(), "one drained shard of three");
    let p = mc.topology_stats().reshard.expect("still in flight");
    assert_eq!(p.cursor, 1);
    // Serving throughout.
    for k in 1..=300u64 {
        assert_eq!(mc.get(&mut ctx, k), Some(k));
    }
    assert!(!mc.reshard_step().unwrap());
    assert!(mc.reshard_step().unwrap(), "third step finishes");
    assert!(mc.reshard_step().unwrap(), "idempotent once complete");
    assert_eq!(mc.topology_stats().reshard, None);
    assert_eq!(mc.version(), 2);
    for k in 1..=300u64 {
        assert_eq!(mc.get(&mut ctx, k), Some(k));
    }
}

#[test]
fn crash_mid_reshard_rolls_forward_to_the_new_version() {
    let old = pools(2, Mode::CrashSim);
    let new = pools(4, Mode::CrashSim);
    {
        let mc = ShardedNvMemcached::create(&old, 64, 100_000, false).unwrap();
        let mut ctx = mc.register();
        for k in 1..=500u64 {
            mc.set(&mut ctx, k, k * 3).unwrap();
        }
        mc.reshard_start(&new, 64).unwrap();
        // Drain exactly one of the two old shards, then "power fails".
        assert!(!mc.reshard_step().unwrap());
        // Mid-flight writes land wherever the routing epoch says.
        for k in 501..=600u64 {
            mc.set(&mut ctx, k, k * 3).unwrap();
        }
    }
    let all: Vec<Arc<PmemPool>> = old.iter().chain(&new).cloned().collect();
    for pool in &all {
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
    }

    let (mc2, _report) = ShardedNvMemcached::recover(&all, 100_000).unwrap();
    assert_eq!(mc2.version(), 2, "rolled forward to a single consistent version");
    assert_eq!(mc2.n_shards(), 4);
    assert!(!mc2.reshard_in_flight());
    let mut ctx = mc2.register();
    for k in 1..=600u64 {
        assert_eq!(mc2.get(&mut ctx, k), Some(k * 3), "key {k} survived crash mid-reshard");
    }
    for (i, shard) in mc2.shards().iter().enumerate() {
        for (k, _) in shard.snapshot() {
            assert_eq!(mc2.shard_of(k), i, "key {k} recovered into wrong shard {i}");
        }
    }
    // The recovered cache can reshard again (version 3).
    let newer = pools(2, Mode::CrashSim);
    let stats = mc2.reshard(&newer, 64).unwrap();
    assert_eq!((stats.from, stats.to, stats.version), (4, 2, 3));
}

#[test]
fn crash_before_any_step_rolls_the_whole_migration_forward() {
    let old = pools(2, Mode::CrashSim);
    let new = pools(4, Mode::CrashSim);
    {
        let mc = ShardedNvMemcached::create(&old, 64, 100_000, false).unwrap();
        let mut ctx = mc.register();
        for k in 1..=300u64 {
            mc.set(&mut ctx, k, k).unwrap();
        }
        mc.reshard_start(&new, 64).unwrap();
        // Crash with the commit durable but the cursor still at 0.
    }
    let all: Vec<Arc<PmemPool>> = old.iter().chain(&new).cloned().collect();
    for pool in &all {
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
    }
    let (mc2, _) = ShardedNvMemcached::recover(&all, 100_000).unwrap();
    assert_eq!((mc2.version(), mc2.n_shards()), (2, 4));
    let mut ctx = mc2.register();
    for k in 1..=300u64 {
        assert_eq!(mc2.get(&mut ctx, k), Some(k));
    }
}

#[test]
fn recover_after_completed_reshard_accepts_old_and_new_together() {
    // A crash right after completion, before the operator discards the
    // old pools: both groups are on disk, the cursor reads "complete",
    // and the roll-forward is a no-op.
    let old = pools(2, Mode::CrashSim);
    let new = pools(4, Mode::CrashSim);
    {
        let mc = ShardedNvMemcached::create(&old, 64, 100_000, false).unwrap();
        let mut ctx = mc.register();
        for k in 1..=400u64 {
            mc.set(&mut ctx, k, k + 9).unwrap();
        }
        mc.reshard(&new, 64).unwrap();
    }
    let all: Vec<Arc<PmemPool>> = old.iter().chain(&new).cloned().collect();
    for pool in &all {
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
    }
    let (mc2, _) = ShardedNvMemcached::recover(&all, 100_000).unwrap();
    assert_eq!((mc2.version(), mc2.n_shards()), (2, 4));
    let mut ctx = mc2.register();
    for k in 1..=400u64 {
        assert_eq!(mc2.get(&mut ctx, k), Some(k + 9));
    }

    // The new pools alone also recover (the normal post-retirement open).
    for pool in &new {
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
    }
    let (mc3, _) = ShardedNvMemcached::recover(&new, 100_000).unwrap();
    assert_eq!((mc3.version(), mc3.n_shards()), (2, 4));
    assert_eq!(mc3.len(), 400);
}

#[test]
fn old_pools_alone_after_a_committed_reshard_are_rejected() {
    let old = pools(2, Mode::CrashSim);
    let new = pools(4, Mode::CrashSim);
    {
        let mc = ShardedNvMemcached::create(&old, 64, 100_000, false).unwrap();
        let mut ctx = mc.register();
        for k in 1..=100u64 {
            mc.set(&mut ctx, k, k).unwrap();
        }
        mc.reshard_start(&new, 64).unwrap();
    }
    for pool in &old {
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
    }
    // The commit record promises data may live in the (absent) new
    // pools; serving the old group alone could lose migrated keys.
    let err = ShardedNvMemcached::recover(&old, 100_000).unwrap_err();
    assert_eq!(err, GeometryError::MissingShards { version: 2, expected: 4 });
}

#[test]
fn uncommitted_new_pools_are_rejected_and_old_group_serves() {
    let old = pools(2, Mode::CrashSim);
    let new = pools(4, Mode::CrashSim);
    {
        let mc = ShardedNvMemcached::create(&old, 64, 100_000, false).unwrap();
        let mut ctx = mc.register();
        for k in 1..=100u64 {
            mc.set(&mut ctx, k, k).unwrap();
        }
        mc.reshard_start(&new, 64).unwrap();
    }
    // Forge the uncommitted image: new pools formatted, commit record
    // never durable (the crash enumeration hits this window too; the
    // fixture pins it deterministically).
    {
        let mut flusher = old[0].flusher();
        old[0].set_root(RESHARD_STATE_ROOT, 0, &mut flusher);
    }
    let all: Vec<Arc<PmemPool>> = old.iter().chain(&new).cloned().collect();
    for pool in &all {
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
    }
    let err = ShardedNvMemcached::recover(&all, 100_000).unwrap_err();
    assert_eq!(err, GeometryError::Uncommitted { version: 2 });
    // The old group alone is the authoritative cache.
    let (mc2, _) = ShardedNvMemcached::recover(&old, 100_000).unwrap();
    assert_eq!((mc2.version(), mc2.n_shards()), (1, 2));
    assert_eq!(mc2.len(), 100);
}

#[test]
fn reshard_error_surface() {
    let old = pools(2, Mode::Perf);
    let mc = ShardedNvMemcached::create(&old, 64, 10_000, false).unwrap();
    assert_eq!(mc.reshard_start(&[], 64).unwrap_err(), ReshardError::NoPools);
    // A pool of the serving topology is not a fresh target.
    let err = mc.reshard_start(&[Arc::clone(&old[0])], 64).unwrap_err();
    assert_eq!(err, ReshardError::NotFresh { position: 0 });
    // Starting twice without driving the first to completion refuses.
    let new = pools(3, Mode::Perf);
    mc.reshard_start(&new, 64).unwrap();
    let more = pools(2, Mode::Perf);
    assert_eq!(mc.reshard_start(&more, 64).unwrap_err(), ReshardError::AlreadyInFlight);
    while !mc.reshard_step().unwrap() {}
    assert_eq!(mc.n_shards(), 3);
    // After completion the *old* pools are stale husks, not fresh targets.
    let err = mc.reshard_start(&old[..1], 64).unwrap_err();
    assert_eq!(err, ReshardError::NotFresh { position: 0 });
}

#[test]
fn range_router_survives_reshard_and_stays_durable() {
    let old = pools(2, Mode::CrashSim);
    let new = pools(4, Mode::CrashSim);
    let mc =
        ShardedNvMemcached::create_with_router(&old, 64, 100_000, false, Router::Range).unwrap();
    assert_eq!(mc.router(), Router::Range);
    let mut ctx = mc.register();
    for k in 1..=500u64 {
        mc.set(&mut ctx, k, k).unwrap();
    }
    // The negative control in action: small keys all route to shard 0.
    assert_eq!(mc.shards()[0].len(), 500);
    mc.reshard(&new, 64).unwrap();
    assert_eq!(mc.router(), Router::Range, "router survives the reshard");
    assert_eq!(mc.shards()[0].len(), 500, "range routing stays degenerate after growing");
    for k in 1..=500u64 {
        assert_eq!(mc.get(&mut ctx, k), Some(k));
    }
    drop(ctx);
    drop(mc);
    for pool in &new {
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
    }
    let (mc2, _) = ShardedNvMemcached::recover(&new, 100_000).unwrap();
    assert_eq!(mc2.router(), Router::Range, "router recorded durably");
    assert_eq!(mc2.len(), 500);
}

#[test]
fn geometry_word_keeps_version_and_router_durably() {
    let old = pools(2, Mode::CrashSim);
    let mc = ShardedNvMemcached::create(&old, 64, 1_000, false).unwrap();
    drop(mc);
    for pool in &old {
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
        assert_ne!(pool.root(SHARD_GEOMETRY_ROOT), 0, "geometry word lost by crash");
    }
    assert!(ShardedNvMemcached::validate_geometry(&old).is_ok());
}

//! Sharding acceptance tests: shard=1 behavioral equivalence with the
//! standalone cache, geometry validation at `recover`, and the parallel
//! per-shard recovery merge.

use std::sync::Arc;

use nvmemcached::memtier::{run_cache, Workload};
use nvmemcached::sharded::SHARD_GEOMETRY_ROOT;
use nvmemcached::{GeometryError, NvMemcached, ShardedNvMemcached};
use pmem::{LatencyModel, Mode, PmemPool, PoolBuilder};

fn pools(n: usize, mode: Mode) -> Vec<Arc<PmemPool>> {
    (0..n)
        .map(|_| PoolBuilder::new(32 << 20).mode(mode).latency(LatencyModel::ZERO).build())
        .collect()
}

/// A single-shard cache must produce *exactly* the counters of a
/// standalone `NvMemcached` for the same seeded memtier run (same warm-up,
/// same request stream, single-threaded so outcomes are deterministic).
#[test]
fn shard1_memtier_counters_match_unsharded() {
    let wl = Workload::paper(2_000, 42);
    let ops = 30_000u64;

    let pool = pools(1, Mode::Perf);
    let unsharded = NvMemcached::create(Arc::clone(&pool[0]), 256, 1_000, false).unwrap();
    {
        let mut ctx = unsharded.register();
        for k in wl.warmup_keys() {
            unsharded.set(&mut ctx, k, k).unwrap();
        }
    }
    let r_unsharded = run_cache(&unsharded, 1, ops, wl);

    let pool = pools(1, Mode::Perf);
    let sharded = ShardedNvMemcached::create(&pool, 256, 1_000, false).unwrap();
    {
        let mut ctx = sharded.register();
        for k in wl.warmup_keys() {
            sharded.set(&mut ctx, k, k).unwrap();
        }
    }
    let r_sharded = run_cache(&sharded, 1, ops, wl);

    assert_eq!(r_sharded.requests, r_unsharded.requests);
    assert_eq!(r_sharded.sets, r_unsharded.sets, "set counts diverge");
    assert_eq!(r_sharded.hits, r_unsharded.hits, "hit counts diverge");
    assert_eq!(r_sharded.misses, r_unsharded.misses, "miss counts diverge");
    assert_eq!(sharded.len(), unsharded.len(), "item counts diverge");

    // The stored state is identical too, not just the counters.
    let mut a = sharded.snapshot();
    let mut b = unsharded.snapshot();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "stored key/value sets diverge");
}

#[test]
fn recover_rejects_wrong_pool_count() {
    let pools = pools(4, Mode::CrashSim);
    drop(ShardedNvMemcached::create(&pools, 64, 1_000, false).unwrap());
    for pool in &pools {
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
    }
    let err = ShardedNvMemcached::recover(&pools[..2], 1_000).unwrap_err();
    assert_eq!(err, GeometryError::ShardCount { position: 0, recorded: 4, given: 2 });
}

#[test]
fn recover_rejects_reordered_pools() {
    let mut pools = pools(2, Mode::CrashSim);
    drop(ShardedNvMemcached::create(&pools, 64, 1_000, false).unwrap());
    for pool in &pools {
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
    }
    pools.swap(0, 1);
    let err = ShardedNvMemcached::recover(&pools, 1_000).unwrap_err();
    assert_eq!(err, GeometryError::ShardIndex { position: 0, recorded: 1 });
}

#[test]
fn recover_rejects_foreign_and_empty_pools() {
    assert_eq!(ShardedNvMemcached::recover(&[], 1_000).unwrap_err(), GeometryError::NoPools);
    // A pool that only ever held a standalone NvMemcached has no shard
    // geometry recorded.
    let pool = PoolBuilder::new(16 << 20).mode(Mode::CrashSim).build();
    drop(NvMemcached::create(Arc::clone(&pool), 64, 1_000, false).unwrap());
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };
    let err = ShardedNvMemcached::recover(&[pool], 1_000).unwrap_err();
    assert_eq!(err, GeometryError::NotSharded { position: 0 });
}

#[test]
fn recover_rejects_pools_mixed_from_two_caches() {
    // Two caches with the *same* (count, index) layout: a pool slice
    // mixing them must be refused, or recovery would serve a
    // frankenstein key space with no error.
    let pools_a = pools(2, Mode::CrashSim);
    let pools_b = pools(2, Mode::CrashSim);
    drop(ShardedNvMemcached::create(&pools_a, 64, 1_000, false).unwrap());
    drop(ShardedNvMemcached::create(&pools_b, 64, 1_000, false).unwrap());
    for pool in pools_a.iter().chain(&pools_b) {
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
    }
    let mixed = vec![Arc::clone(&pools_a[0]), Arc::clone(&pools_b[1])];
    let err = ShardedNvMemcached::recover(&mixed, 1_000).unwrap_err();
    assert!(
        matches!(err, GeometryError::CacheMismatch { position: 1, .. }),
        "mixed pools must be rejected, got {err:?}"
    );
}

#[test]
fn geometry_survives_crash_durably() {
    let pools = pools(2, Mode::CrashSim);
    drop(ShardedNvMemcached::create(&pools, 64, 1_000, false).unwrap());
    for pool in &pools {
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
        assert_ne!(pool.root(SHARD_GEOMETRY_ROOT), 0, "geometry word lost by crash");
    }
    assert!(ShardedNvMemcached::validate_geometry(&pools).is_ok());
}

/// The merged report of a parallel recovery must equal the counter-wise
/// sum of recovering each shard on its own. Two identical single-threaded
/// runs over two pool sets make the comparison deterministic.
#[test]
fn parallel_recovery_merges_per_shard_reports() {
    let mk = || {
        let pools = pools(4, Mode::CrashSim);
        let mc = ShardedNvMemcached::create(&pools, 64, 100_000, false).unwrap();
        let mut ctx = mc.register();
        for k in 1..=300u64 {
            mc.set(&mut ctx, k, k).unwrap();
        }
        for k in 1..=60u64 {
            mc.delete(&mut ctx, k);
        }
        drop(mc);
        for pool in &pools {
            // SAFETY: no threads are running.
            unsafe { pool.simulate_crash().unwrap() };
        }
        pools
    };

    let pools_a = mk();
    let (mc_a, merged) = ShardedNvMemcached::recover(&pools_a, 100_000).unwrap();

    let pools_b = mk();
    let mut summed = nvalloc::RecoveryReport::default();
    let mut len_b = 0usize;
    for pool in &pools_b {
        let (shard, report) = NvMemcached::recover(Arc::clone(pool), 25_000);
        summed.merge(report);
        len_b += shard.len();
    }
    assert_eq!(merged, summed, "merged report != sum of per-shard reports");
    assert_eq!(mc_a.len(), len_b);
    assert_eq!(mc_a.len(), 240);
}

//! Cross-layer equivalence: the refactored memtier driver — now an
//! adapter over the `workload` crate — must reproduce the **pre-refactor
//! request sequence bit-for-bit** for the uniform configuration, so
//! every historical run (and the committed `BENCH_results.json`
//! baselines collected before the workload crate existed) stays
//! replayable.
//!
//! Two layers of pinning:
//!
//! 1. [`legacy_stream`] is a line-for-line transcription of the
//!    pre-refactor `memtier::RequestStream` generator (raw xorshift64,
//!    op from the first draw's low 32 bits, key from the second draw
//!    modulo the range); the adapter is compared against it over long
//!    streams and several `(seed, thread, range, fraction)` corners.
//! 2. A literal golden prefix (captured by running the pre-refactor
//!    binary) guards against the transcription and the implementation
//!    drifting *together*.

use nvmemcached::memtier::{Request, RequestStream, Workload};

/// The pre-refactor generator, transcribed verbatim: state seeded
/// `seed ^ (GOLDEN * (thread + 1))`, each request consuming two raw
/// xorshift draws.
struct LegacyStream {
    state: u64,
    key_range: u64,
    set_threshold: u32,
}

fn legacy_stream(w: &Workload, thread: usize) -> LegacyStream {
    LegacyStream {
        state: w.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(thread as u64 + 1)),
        key_range: w.key_range.max(1),
        set_threshold: (w.set_fraction.clamp(0.0, 1.0) * u32::MAX as f64) as u32,
    }
}

impl Iterator for LegacyStream {
    type Item = Request;

    fn next(&mut self) -> Option<Request> {
        let mut step = || {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x
        };
        let r = step();
        let key = (step() % self.key_range) + 1;
        Some(if (r as u32) < self.set_threshold { Request::Set(key, r) } else { Request::Get(key) })
    }
}

#[test]
fn uniform_stream_is_bit_identical_to_the_pre_refactor_generator() {
    for (range, fraction, seed) in
        [(1000u64, 0.2f64, 42u64), (1, 0.2, 3), (100, 0.0, 99), (100, 1.0, 5), (1 << 40, 0.5, 7)]
    {
        let w = Workload { set_fraction: fraction, ..Workload::paper(range, seed) };
        for thread in [0usize, 1, 2, 7] {
            let ours: Vec<Request> = RequestStream::new(&w, thread).take(10_000).collect();
            let legacy: Vec<Request> = legacy_stream(&w, thread).take(10_000).collect();
            assert_eq!(
                ours, legacy,
                "refactored uniform stream diverged (range={range} frac={fraction} \
                 seed={seed} thread={thread})"
            );
        }
    }
}

#[test]
fn golden_prefix_of_the_paper_workload_is_pinned() {
    // Captured from the pre-refactor implementation:
    // Workload::paper(1000, 42), threads 0 and 1, first 8 requests.
    use Request::{Get, Set};
    let expect_t0 = [
        Get(530),
        Get(365),
        Set(539, 7096064440829827694),
        Get(57),
        Set(388, 8658487274083911803),
        Set(184, 1484788615840033418),
        Get(84),
        Get(505),
    ];
    let expect_t1 = [
        Get(156),
        Set(258, 9158250982955780887),
        Get(849),
        Set(804, 8303529070579017573),
        Get(556),
        Set(961, 869634176252380377),
        Get(849),
        Get(89),
    ];
    let w = Workload::paper(1000, 42);
    let t0: Vec<Request> = RequestStream::new(&w, 0).take(8).collect();
    let t1: Vec<Request> = RequestStream::new(&w, 1).take(8).collect();
    assert_eq!(t0, expect_t0, "thread 0 golden prefix");
    assert_eq!(t1, expect_t1, "thread 1 golden prefix");
}

#[test]
fn skewed_configurations_deliberately_leave_the_legacy_path() {
    // The bit-compat guarantee covers exactly the uniform + fixed-value
    // configuration; anything else must use the engine's finalized,
    // bias-free path (and therefore differ from the legacy sequence).
    use workload::{KeyDist, ValueDist};
    let base = Workload::paper(1000, 42);
    for w in [
        base.with_dist(KeyDist::ZIPF_99),
        base.with_dist(KeyDist::HOTSPOT_10_90),
        base.with_value(ValueDist::Uniform { min: 16, max: 64 }),
    ] {
        let ours: Vec<Request> = RequestStream::new(&w, 0).take(1000).collect();
        let legacy: Vec<Request> = legacy_stream(&w, 0).take(1000).collect();
        assert_ne!(ours, legacy, "{:?} should not follow the legacy generator", w.dist);
    }
}

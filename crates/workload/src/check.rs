//! Statistical self-check: does a stream actually produce the
//! distribution its spec claims?
//!
//! The engine can audit itself: draw `samples` keys from a sampler,
//! bucket them, and compare the observed frequency vector against the
//! closed-form expectation ([`KeySampler::expected_weights`]) with a
//! chi-square statistic. The distribution test-suite is built on this,
//! and harnesses can call it to validate an exotic configuration before
//! trusting a run.

use crate::dist::{bucket_of, KeySampler};
use crate::rng::Xorshift;

/// The outcome of one self-check: observed vs expected bucket
/// frequencies and the chi-square distance between them.
#[derive(Debug, Clone)]
pub struct FreqCheck {
    /// Observed per-bucket frequency (fractions summing to 1).
    pub observed: Vec<f64>,
    /// Closed-form expected per-bucket frequency.
    pub expected: Vec<f64>,
    /// How many keys were drawn.
    pub samples: u64,
    /// `Σ (observed_count − expected_count)² / expected_count` over
    /// buckets with non-negligible expected mass. Under the null
    /// hypothesis this follows a chi-square distribution with
    /// (participating buckets − 1) degrees of freedom.
    pub chi_square: f64,
}

/// Chi-square statistic of observed bucket counts against expected
/// weights (fractions). A count landing in a bucket whose expected mass
/// is (numerically) zero is an outright spec violation — mass where the
/// distribution says none can exist — and yields `f64::INFINITY` rather
/// than being silently skipped.
pub fn chi_square(observed_counts: &[u64], expected_weights: &[f64]) -> f64 {
    assert_eq!(observed_counts.len(), expected_weights.len());
    let total: u64 = observed_counts.iter().sum();
    let mut stat = 0.0;
    for (&count, &weight) in observed_counts.iter().zip(expected_weights) {
        let expect = weight * total as f64;
        if expect > 1e-12 {
            let d = count as f64 - expect;
            stat += d * d / expect;
        } else if count > 0 {
            return f64::INFINITY;
        }
    }
    stat
}

impl KeySampler {
    /// Draws `samples` keys (as the stream for `(seed, thread)` would)
    /// and compares the observed per-bucket frequencies against the
    /// closed-form expectation.
    ///
    /// For the Latest distribution the op clock sweeps `0..samples`, so
    /// the check is meaningful when `samples` is a multiple of (or much
    /// larger than) the key range — see
    /// [`KeySampler::expected_weights`].
    pub fn self_check(
        &self,
        seed: u64,
        thread: usize,
        samples: u64,
        n_buckets: usize,
    ) -> FreqCheck {
        let n_buckets = n_buckets.max(1);
        let mut rng = Xorshift::for_thread(seed, thread);
        let mut counts = vec![0u64; n_buckets];
        for clock in 0..samples {
            let k = self.sample(&mut rng, clock);
            counts[bucket_of(k, self.range(), n_buckets)] += 1;
        }
        let expected = self.expected_weights(n_buckets);
        let stat = chi_square(&counts, &expected);
        let observed = counts.iter().map(|&c| c as f64 / (samples.max(1)) as f64).collect();
        FreqCheck { observed, expected, samples, chi_square: stat }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::KeyDist;

    /// 99.9% chi-square quantiles for the degrees of freedom the tests
    /// use; a deterministic seeded draw landing above these would mean
    /// the sampler does not produce its claimed distribution.
    fn chi2_999(df: usize) -> f64 {
        match df {
            7 => 24.32,
            15 => 37.70,
            31 => 61.10,
            _ => panic!("add quantile for df={df}"),
        }
    }

    #[test]
    fn uniform_passes_chi_square() {
        let s = KeySampler::new(KeyDist::Uniform, 10_000);
        let check = s.self_check(42, 0, 200_000, 16);
        assert!(check.chi_square < chi2_999(15), "chi2 {}", check.chi_square);
    }

    #[test]
    fn zipfian_matches_closed_form() {
        let s = KeySampler::new(KeyDist::ZIPF_99, 10_000);
        let check = s.self_check(42, 0, 200_000, 16);
        // The Gray et al. quantile approximation deviates from the exact
        // rank pmf by a small systematic amount (~0.2% of a bucket),
        // which at 200k samples contributes a stable chi2 of ~50-90 on
        // top of the ~15 of pure multinomial noise (measured over seeds
        // {1,7,42,99}: 51-89). The bound below absorbs that while
        // keeping discriminating power — a *wrong* distribution scores
        // in the thousands (see `chi_square_flags_a_wrong_distribution`).
        assert!(check.chi_square < 150.0, "chi2 {}", check.chi_square);
        // And the skew is pinned tightly: the first bucket (hot ranks
        // 1..=625 of 10k) carries ~71.4% of all draws.
        assert!(
            (0.69..0.74).contains(&check.observed[0]),
            "zipf-0.99 first bucket {} off its closed-form ~0.714 mass",
            check.observed[0]
        );
        assert!(check.observed[15] < 0.05);
    }

    #[test]
    fn hotspot_matches_closed_form() {
        let s = KeySampler::new(KeyDist::HOTSPOT_10_90, 10_000);
        // 10 buckets of 1000 keys: bucket 0 is exactly the hot set.
        let check = s.self_check(7, 0, 200_000, 10);
        assert!((check.expected[0] - 0.9).abs() < 1e-9);
        assert!((check.observed[0] - 0.9).abs() < 0.01, "hot bucket {}", check.observed[0]);
        assert!(check.chi_square < chi2_999(7) + 10.0, "chi2 {}", check.chi_square);
    }

    #[test]
    fn latest_long_run_is_uniform_but_windows_trail_the_head() {
        let range = 1_000u64;
        let s = KeySampler::new(KeyDist::Latest { theta: 0.99 }, range);
        // Long-run: the head sweeps the whole range, so bucket
        // frequencies converge to uniform (exactly 200 full sweeps).
        let check = s.self_check(42, 0, 200_000, 8);
        assert!(check.chi_square < chi2_999(7) * 2.0, "long-run chi2 {}", check.chi_square);
        // Short-window: draws concentrate just behind the head.
        let mut rng = Xorshift::for_thread(1, 0);
        let clock = 500u64; // head at key 501
        let mut near = 0u64;
        let n = 20_000;
        for _ in 0..n {
            let k = s.sample(&mut rng, clock);
            let head = clock % range;
            let offset = (head + range - (k - 1)) % range;
            if offset < 10 {
                near += 1;
            }
        }
        // Zipf(0.99) mass of the first 10 ranks over 1000 is ~0.39 —
        // under a uniform draw those 10 keys would take only 1%.
        let frac = near as f64 / n as f64;
        assert!(frac > 0.3, "only {frac} of draws within 10 keys of the head");
    }

    #[test]
    fn mass_in_an_impossible_bucket_is_infinite() {
        // access_pct 100: cold buckets carry zero expected mass, so any
        // observed count there is a spec violation, not a rounding skip.
        let s = KeySampler::new(KeyDist::Hotspot { hot_pct: 10, access_pct: 100 }, 1000);
        let expected = s.expected_weights(10);
        assert!(expected[1..].iter().all(|&w| w == 0.0), "{expected:?}");
        let mut counts = vec![0u64; 10];
        counts[0] = 999;
        counts[5] = 1; // leaked into the cold region
        assert!(chi_square(&counts, &expected).is_infinite());
        counts[5] = 0;
        assert!(chi_square(&counts, &expected).is_finite());
        // And the honest sampler passes its own check.
        let check = s.self_check(3, 0, 50_000, 10);
        assert!(check.chi_square.is_finite(), "chi2 {}", check.chi_square);
    }

    #[test]
    fn chi_square_flags_a_wrong_distribution() {
        // Uniform samples checked against zipfian expectations must fail
        // by a huge margin — the self-check has discriminating power.
        let uni = KeySampler::new(KeyDist::Uniform, 10_000);
        let zipf = KeySampler::new(KeyDist::ZIPF_99, 10_000);
        let mut rng = Xorshift::for_thread(3, 0);
        let mut counts = vec![0u64; 16];
        for clock in 0..100_000 {
            counts[bucket_of(uni.sample(&mut rng, clock), 10_000, 16)] += 1;
        }
        let stat = chi_square(&counts, &zipf.expected_weights(16));
        assert!(stat > 10_000.0, "uniform vs zipf expectation: chi2 {stat}");
    }
}

//! The engine's only randomness source: a xorshift64 state with a
//! splitmix64 output finalizer and a bias-free bounded sampler.
//!
//! Everything a stream draws — keys, op rolls, value sizes — comes from
//! one of these, seeded deterministically from `(seed, thread)`, so any
//! run is replayable from its recorded knob values alone.

/// The golden-ratio increment used throughout for seed decorrelation.
pub(crate) const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// One splitmix64 finalization round.
#[inline]
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Xorshift64 state with a splitmix64 output finalizer.
///
/// The state advances by xorshift; the output goes through a splitmix64
/// finalizer. The finalizer matters: raw xorshift low bits are
/// GF(2)-linear in the low state bits, so `key = x % 2^k` would
/// deterministically fix the next draw's parity — every key would always
/// receive the same insert-or-remove choice and a mixed workload would
/// freeze after one pass over the key space.
pub struct Xorshift(u64);

impl Xorshift {
    /// Seeds the generator (seed 0 is remapped).
    pub fn new(seed: u64) -> Self {
        Self(seed.max(1).wrapping_mul(GOLDEN) | 1)
    }

    /// A per-thread stream for `(seed, thread)`: one splitmix round over
    /// the pair decorrelates the thread streams even for adjacent seeds.
    pub fn for_thread(seed: u64, thread: usize) -> Self {
        Self::new(splitmix(seed.wrapping_add(GOLDEN.wrapping_mul(thread as u64 + 1))))
    }

    /// Next pseudo-random u64 (finalized output).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        splitmix(self.next_raw())
    }

    /// Wraps an *exact* raw state with no seed conditioning — including
    /// the degenerate all-zero state, which xorshift fixes forever. Only
    /// the legacy bit-compatible cache stream needs this (its historical
    /// seeding must be preserved verbatim, quirks and all).
    pub(crate) fn from_raw_state(state: u64) -> Self {
        Self(state)
    }

    /// Advances the raw xorshift state and returns it *without* the
    /// finalizer. Only the legacy bit-compatible cache stream uses this
    /// (see [`crate::CacheStream`]); everything else draws via
    /// [`Xorshift::next_u64`] / [`Xorshift::bounded`].
    #[inline]
    pub(crate) fn next_raw(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform f64 in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)` with **no modulo bias**, via Lemire's
    /// multiply-shift with rejection: `x * bound` maps the 64-bit draw
    /// onto `bound` equal 2^64-wide lanes; draws landing in the short
    /// first `2^64 mod bound` slice of a lane are rejected and redrawn,
    /// so every value in `[0, bound)` is exactly equally likely.
    /// (`x % bound` over-weights the low `2^64 mod bound` values.)
    #[inline]
    pub fn bounded(&mut self, bound: u64) -> u64 {
        let bound = bound.max(1);
        let mut m = (self.next_u64() as u128) * (bound as u128);
        if (m as u64) < bound {
            // Threshold = 2^64 mod bound, computed without u128 division.
            let threshold = bound.wrapping_neg() % bound;
            while (m as u64) < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
            }
        }
        (m >> 64) as u64
    }

    /// Uniform key in `[1, bound]` (bias-free).
    #[inline]
    pub fn key(&mut self, bound: u64) -> u64 {
        self.bounded(bound) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_zero_is_remapped() {
        let mut a = Xorshift::new(0);
        let mut b = Xorshift::new(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_stays_in_range() {
        let mut rng = Xorshift::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..1000 {
                assert!(rng.bounded(bound) < bound);
            }
        }
        assert_eq!(rng.bounded(0), 0, "bound 0 is clamped to 1");
        assert_eq!(rng.key(0), 1);
    }

    #[test]
    fn unit_is_half_open() {
        let mut rng = Xorshift::new(3);
        for _ in 0..10_000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn thread_streams_differ() {
        let a: Vec<u64> = {
            let mut r = Xorshift::for_thread(42, 0);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xorshift::for_thread(42, 1);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = Xorshift::for_thread(42, 0);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2, "same (seed, thread) replays identically");
        assert_ne!(a, b, "threads draw decorrelated streams");
    }

    /// Regression for the historical `next_u64() % bound` sampler: with a
    /// non-power-of-two bound just above a large power of two, modulo
    /// folds the first `2^64 mod bound` values onto a double-weighted
    /// prefix. Lemire rejection must keep every bucket near-uniform.
    #[test]
    fn lemire_has_no_modulo_bias_for_non_power_of_two_bound() {
        // bound = 3 * 2^62: 2^64 mod bound = 2^62, so a modulo sampler
        // would hit the first third of the range twice as often (2/4 of
        // all draws) as each of the other two thirds (1/4 each).
        let bound = 3u64 << 62;
        let third = bound / 3;
        let mut rng = Xorshift::new(11);
        let samples = 300_000u64;
        let mut buckets = [0u64; 3];
        for _ in 0..samples {
            buckets[(rng.bounded(bound) / third).min(2) as usize] += 1;
        }
        let expect = samples as f64 / 3.0;
        for (i, &count) in buckets.iter().enumerate() {
            let rel = (count as f64 - expect).abs() / expect;
            assert!(rel < 0.02, "bucket {i}: {count} vs {expect} ({rel:.3} off) — biased");
        }
        // And demonstrate that the modulo sampler *does* fail this check,
        // so the assertion above is actually discriminating.
        let mut rng = Xorshift::new(11);
        let mut biased = [0u64; 3];
        for _ in 0..samples {
            biased[((rng.next_u64() % bound) / third).min(2) as usize] += 1;
        }
        // First third receives 1/2 of all modulo draws vs the uniform
        // 1/3 — a +50% relative excess.
        let rel = (biased[0] as f64 - expect).abs() / expect;
        assert!(rel > 0.4, "modulo control should be ~1.5x over-weighted, was {rel:.3}");
    }
}

//! **The traffic engine**: one versioned, dependency-free workload layer
//! driving every harness in the workspace.
//!
//! The paper's evaluation (§6) drives all four durable structures and
//! NV-Memcached with uniform keys only; real cache traffic is heavily
//! skewed, and skew is exactly where per-shard designs and batched
//! flushes are stressed hardest. This crate makes the traffic model a
//! first-class layer instead of ad-hoc per-harness RNG loops:
//!
//! * [`KeyDist`] — uniform, zipfian (Gray et al. approximation with
//!   precomputed zeta), hotspot N%/M%, and latest key distributions,
//!   parseable from the `DIST`/`SKEW` knob strings and stably labeled
//!   for JSON reports.
//! * [`KeySampler`] — a distribution bound to a key range, `Copy`, with
//!   O(1) draws after a one-time O(range) setup.
//! * [`TrafficSpec`] / [`CacheStream`] — memtier-style set/get streams
//!   (the cache layer's workload; `nvmemcached::memtier` re-exports
//!   [`TrafficSpec`] as `Workload`). The uniform + fixed-value
//!   configuration reproduces the pre-refactor request stream
//!   bit-for-bit, so historical runs stay replayable.
//! * [`MixSpec`] / [`MixStream`] — insert/remove/lookup streams (the
//!   set-structure layer's workload, `bench::run_mixed`).
//! * [`ValueDist`] — modeled value payload sizes per `set`.
//! * [`Xorshift`] — the single RNG under all of it, with Lemire's
//!   multiply-shift rejection for bias-free bounded draws.
//! * [`FreqCheck`] — a statistical self-check: observed per-bucket
//!   frequency vectors vs closed-form expectations, with a chi-square
//!   distance.
//!
//! Every stream is a pure function of `(spec, thread, index)`: no global
//! state, no wall clock, so any recorded run replays exactly from its
//! knob values. See BENCHMARKS.md ("Workload model") for the knob
//! strings and DESIGN.md for where the layer sits in the crate DAG.

#![warn(missing_docs)]

mod check;
mod dist;
mod rng;
mod stream;

pub use check::{chi_square, FreqCheck};
pub use dist::{bucket_of, KeyDist, KeySampler};
pub use rng::Xorshift;
pub use stream::{
    CacheOp, CacheStream, MixOp, MixSpec, MixStream, TrafficSpec, ValueDist, PAPER_SET_FRACTION,
};

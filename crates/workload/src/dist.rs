//! Key distributions: which key the next request touches.
//!
//! Four families cover the memtier/YCSB space the cache literature
//! evaluates on:
//!
//! * **Uniform** — every key equally likely (the paper's §6 setting).
//! * **Zipfian** — rank-skewed: key 1 is the hottest, with frequencies
//!   `∝ 1/rank^θ`. Sampled with the Gray et al. quantile approximation
//!   (the YCSB generator) over a precomputed `ζ(n, θ)`, so a draw is
//!   O(1) after an O(n) sampler construction. Ranks are *not*
//!   scrambled: the hot keys are the low keys, which keeps closed-form
//!   frequency checks possible ([`KeySampler::expected_weights`]).
//! * **ZipfianScrambled** — the YCSB "scrambled zipfian": the same
//!   rank distribution, but each rank is hashed (splitmix64) into the
//!   key space, so the hot keys are scattered uniformly instead of
//!   being the low-key prefix. Plain `Zipfian` correlates its hot set
//!   with the warmed-up `1..=range/2` prefix every cache stream
//!   prefills, inflating hit-rate artifacts; the scrambled variant
//!   breaks that correlation. Kept as a separate family (labelled
//!   `zipf-scrambled-θ`) so existing `zipf-θ` rows stay bit-compatible.
//! * **Hotspot** — N% of the key space receives M% of the accesses
//!   (uniform within each side); the classic 10%/90% cache stress.
//! * **Latest** — zipfian-skewed towards the most recently *written*
//!   region of the key space: the stream's op index drives a head that
//!   sweeps the range, and keys are drawn at zipfian-distributed
//!   distances behind it.

use crate::rng::Xorshift;

/// Which key distribution a stream draws from.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum KeyDist {
    /// Every key in the range equally likely.
    #[default]
    Uniform,
    /// Rank-skewed with exponent `theta` in `(0, 1)`; key 1 is hottest.
    Zipfian {
        /// Skew exponent (YCSB default 0.99; higher = more skewed).
        theta: f64,
    },
    /// Zipfian ranks hashed into the key space (YCSB scrambled
    /// zipfian): the same skew, but the hot keys are scattered
    /// uniformly over `[1, range]` instead of clustering at key 1.
    ZipfianScrambled {
        /// Skew exponent of the underlying rank distribution.
        theta: f64,
    },
    /// `hot_pct`% of the key space receives `access_pct`% of accesses.
    Hotspot {
        /// Percent of the key space that is hot (1..=100).
        hot_pct: u8,
        /// Percent of accesses that go to the hot set (0..=100).
        access_pct: u8,
    },
    /// Zipfian-distributed distance behind a moving head (op-clocked).
    Latest {
        /// Skew exponent of the distance distribution.
        theta: f64,
    },
}

impl KeyDist {
    /// The paper-standard skewed settings, as swept by `fig13_skew`.
    pub const ZIPF_99: KeyDist = KeyDist::Zipfian { theta: 0.99 };
    /// Scrambled zipfian at the YCSB default skew.
    pub const ZIPF_SCRAMBLED_99: KeyDist = KeyDist::ZipfianScrambled { theta: 0.99 };
    /// 10% of the keys take 90% of the traffic.
    pub const HOTSPOT_10_90: KeyDist = KeyDist::Hotspot { hot_pct: 10, access_pct: 90 };

    /// Stable label used in knobs, experiment labels, and JSON rows.
    /// Round-trips through [`KeyDist::parse`].
    pub fn label(&self) -> String {
        match *self {
            KeyDist::Uniform => "uniform".to_string(),
            KeyDist::Zipfian { theta } => format!("zipf-{theta}"),
            KeyDist::ZipfianScrambled { theta } => format!("zipf-scrambled-{theta}"),
            KeyDist::Hotspot { hot_pct, access_pct } => format!("hotspot-{hot_pct}/{access_pct}"),
            KeyDist::Latest { theta } => format!("latest-{theta}"),
        }
    }

    /// Parses a distribution spec, as accepted by the `DIST`/`SKEW`
    /// environment knobs:
    ///
    /// * `uniform`
    /// * `zipf` (θ = 0.99) or `zipf-<theta>` with θ in (0, 1)
    /// * `zipf-scrambled` (θ = 0.99) or `zipf-scrambled-<theta>`
    /// * `hotspot` (10/90) or `hotspot-<hot>/<access>` in percent
    /// * `latest` (θ = 0.99) or `latest-<theta>`
    pub fn parse(s: &str) -> Result<KeyDist, String> {
        let s = s.trim();
        let theta_of = |rest: Option<&str>| -> Result<f64, String> {
            let Some(rest) = rest else { return Ok(0.99) };
            let theta: f64 =
                rest.parse().map_err(|_| format!("bad theta '{rest}' (want e.g. 0.99)"))?;
            if !(theta > 0.0 && theta < 1.0) {
                return Err(format!("theta {theta} out of range (0, 1)"));
            }
            Ok(theta)
        };
        if s == "uniform" {
            Ok(KeyDist::Uniform)
        } else if let Some(rest) = strip_family(s, "zipf-scrambled") {
            // Checked before the plain `zipf` family, whose prefix it
            // shares.
            Ok(KeyDist::ZipfianScrambled { theta: theta_of(rest)? })
        } else if let Some(rest) = strip_family(s, "zipf") {
            Ok(KeyDist::Zipfian { theta: theta_of(rest)? })
        } else if let Some(rest) = strip_family(s, "latest") {
            Ok(KeyDist::Latest { theta: theta_of(rest)? })
        } else if let Some(rest) = strip_family(s, "hotspot") {
            let Some(rest) = rest else { return Ok(KeyDist::HOTSPOT_10_90) };
            let (hot, access) = rest
                .split_once('/')
                .ok_or_else(|| format!("bad hotspot '{rest}' (want e.g. 10/90)"))?;
            let hot: u8 = hot.parse().map_err(|_| format!("bad hot percent '{hot}'"))?;
            let access: u8 =
                access.parse().map_err(|_| format!("bad access percent '{access}'"))?;
            if hot == 0 || hot > 100 || access > 100 {
                return Err(format!(
                    "hotspot {hot}/{access} out of range (hot 1..=100, access 0..=100)"
                ));
            }
            Ok(KeyDist::Hotspot { hot_pct: hot, access_pct: access })
        } else {
            Err(format!(
                "unknown distribution '{s}' (want uniform, zipf[-theta], \
                 zipf-scrambled[-theta], hotspot[-N/M], latest[-theta])"
            ))
        }
    }
}

/// `"zipf"` → `Some(None)`, `"zipf-0.9"` → `Some(Some("0.9"))`,
/// otherwise `None`.
fn strip_family<'a>(s: &'a str, family: &str) -> Option<Option<&'a str>> {
    let rest = s.strip_prefix(family)?;
    if rest.is_empty() {
        Some(None)
    } else {
        rest.strip_prefix('-').map(Some)
    }
}

/// Precomputed Gray et al. zipfian quantile parameters over `n` ranks.
/// Construction is O(n) (the `ζ(n, θ)` sum); sampling is O(1).
#[derive(Debug, Clone, Copy)]
struct Zipf {
    n: u64,
    zetan: f64,
    alpha: f64,
    eta: f64,
    half_pow: f64,
}

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipf {
    fn new(n: u64, theta: f64) -> Self {
        let n = n.max(1);
        assert!(theta > 0.0 && theta < 1.0, "zipfian theta must be in (0, 1), got {theta}");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = if n == 1 {
            0.0
        } else {
            (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan)
        };
        Self { n, zetan, alpha, eta, half_pow: 0.5f64.powf(theta) }
    }

    /// Maps a uniform `u ∈ [0, 1)` to a rank in `[0, n)`; rank 0 is the
    /// most frequent.
    #[inline]
    fn rank(&self, u: f64) -> u64 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if self.n >= 2 && uz < 1.0 + self.half_pow {
            return 1;
        }
        (((self.n as f64) * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64)
            .min(self.n - 1)
    }
}

/// A constructed sampler: one `KeyDist` bound to a key range
/// `[1, range]`, with any O(range) precomputation (the zipfian zeta sum)
/// done once. `Copy` and tiny, so one sampler can be built per run and
/// handed to every thread's stream.
#[derive(Debug, Clone, Copy)]
pub struct KeySampler {
    dist: KeyDist,
    range: u64,
    zipf: Option<Zipf>,
}

impl KeySampler {
    /// Builds the sampler for `dist` over keys `[1, range]`.
    pub fn new(dist: KeyDist, range: u64) -> Self {
        let range = range.max(1);
        let zipf = match dist {
            KeyDist::Zipfian { theta }
            | KeyDist::ZipfianScrambled { theta }
            | KeyDist::Latest { theta } => Some(Zipf::new(range, theta)),
            _ => None,
        };
        Self { dist, range, zipf }
    }

    /// The key range bound (keys are `1..=range()`).
    pub fn range(&self) -> u64 {
        self.range
    }

    /// The distribution this sampler draws from.
    pub fn dist(&self) -> KeyDist {
        self.dist
    }

    /// The hot-set size for a hotspot sampler (`None` otherwise).
    fn hot_count(&self) -> Option<u64> {
        match self.dist {
            KeyDist::Hotspot { hot_pct, .. } => {
                // u128: `range * 100` must not wrap for ranges past 2^57.
                let hot = (self.range as u128 * hot_pct as u128 / 100) as u64;
                Some(hot.max(1).min(self.range))
            }
            _ => None,
        }
    }

    /// Draws one key in `[1, range]`. `clock` is the stream's op index;
    /// only the Latest distribution reads it (the head it trails is
    /// `clock % range`, advancing one key per op).
    #[inline]
    pub fn sample(&self, rng: &mut Xorshift, clock: u64) -> u64 {
        match self.dist {
            KeyDist::Uniform => rng.key(self.range),
            KeyDist::Zipfian { .. } => self.zipf.expect("built with table").rank(rng.unit()) + 1,
            KeyDist::ZipfianScrambled { .. } => {
                let rank = self.zipf.expect("built with table").rank(rng.unit());
                scramble_rank(rank, self.range)
            }
            KeyDist::Hotspot { access_pct, .. } => {
                let hot = self.hot_count().expect("hotspot");
                if rng.bounded(100) < access_pct as u64 {
                    rng.key(hot)
                } else if self.range > hot {
                    hot + rng.key(self.range - hot)
                } else {
                    rng.key(self.range)
                }
            }
            KeyDist::Latest { .. } => {
                let offset = self.zipf.expect("built with table").rank(rng.unit());
                let head = clock % self.range;
                (head + self.range - offset) % self.range + 1
            }
        }
    }

    /// The probability a *single* draw lands on key `k` (1-based), at a
    /// fixed `clock`. Closed-form per distribution; the basis of the
    /// statistical self-check.
    pub fn key_weight(&self, k: u64, clock: u64) -> f64 {
        debug_assert!((1..=self.range).contains(&k));
        match self.dist {
            KeyDist::Uniform => 1.0 / self.range as f64,
            KeyDist::Zipfian { theta } => {
                1.0 / (k as f64).powf(theta) / self.zipf.expect("table").zetan
            }
            KeyDist::ZipfianScrambled { theta } => {
                // The hash has no closed-form inverse: walk every rank
                // and sum the ones that land on `k`. O(range), matching
                // the sampler's own O(range) zeta construction.
                let zetan = self.zipf.expect("table").zetan;
                (0..self.range)
                    .filter(|&r| scramble_rank(r, self.range) == k)
                    .map(|r| 1.0 / (r as f64 + 1.0).powf(theta) / zetan)
                    .sum()
            }
            KeyDist::Hotspot { access_pct, .. } => {
                let hot = self.hot_count().expect("hotspot");
                let a = access_pct as f64 / 100.0;
                if self.range == hot {
                    1.0 / self.range as f64
                } else if k <= hot {
                    a / hot as f64
                } else {
                    (1.0 - a) / (self.range - hot) as f64
                }
            }
            KeyDist::Latest { theta } => {
                // Distance behind the head, rank-weighted.
                let head = clock % self.range;
                let offset = (head + self.range - (k - 1)) % self.range;
                1.0 / (offset as f64 + 1.0).powf(theta) / self.zipf.expect("table").zetan
            }
        }
    }

    /// Closed-form expected frequency mass per bucket when the key range
    /// is split into `n_buckets` contiguous, near-equal slices.
    ///
    /// For Latest the weights are the *long-run* average over a full head
    /// sweep — uniform across buckets — because the head visits every
    /// position of the range once per `range` ops; windows much shorter
    /// than `range` are skewed towards the head and should be checked
    /// with [`KeySampler::key_weight`] at a fixed clock instead.
    pub fn expected_weights(&self, n_buckets: usize) -> Vec<f64> {
        let n_buckets = n_buckets.max(1);
        match self.dist {
            // Uniform mass per key: each bucket's weight is just its key
            // count, computable from the bucket boundaries in
            // O(n_buckets) — a production-sized range must not force an
            // O(range) walk here.
            KeyDist::Uniform | KeyDist::Latest { .. } => (0..n_buckets)
                .map(|b| {
                    let (lo, hi) = bucket_bounds(b, self.range, n_buckets);
                    (hi - lo) as f64 / self.range as f64
                })
                .collect(),
            // Hotspot is piecewise-uniform (flat over the hot set, flat
            // over the cold set), so each bucket's mass follows from how
            // its boundary interval overlaps the split point — also
            // O(n_buckets).
            KeyDist::Hotspot { access_pct, .. } => {
                let hot = self.hot_count().expect("hotspot");
                let a = access_pct as f64 / 100.0;
                (0..n_buckets)
                    .map(|b| {
                        let (lo, hi) = bucket_bounds(b, self.range, n_buckets);
                        // lo/hi are 0-based key indices; hot indices are
                        // [0, hot).
                        let hot_in = hi.min(hot).saturating_sub(lo);
                        let cold_in = (hi - lo) - hot_in;
                        if self.range == hot {
                            (hi - lo) as f64 / self.range as f64
                        } else {
                            hot_in as f64 * a / hot as f64
                                + cold_in as f64 * (1.0 - a) / (self.range - hot) as f64
                        }
                    })
                    .collect()
            }
            // Zipfian genuinely needs the per-key pmf summed: O(range),
            // matching the sampler's own O(range) zeta construction.
            KeyDist::Zipfian { .. } => {
                let mut weights = vec![0.0f64; n_buckets];
                for k in 1..=self.range {
                    weights[bucket_of(k, self.range, n_buckets)] += self.key_weight(k, 0);
                }
                weights
            }
            // Scrambled zipfian walks the *ranks* instead (the per-key
            // pmf would be O(range) per key): each rank's mass lands in
            // whatever bucket its hashed key falls into. Also O(range).
            KeyDist::ZipfianScrambled { theta } => {
                let zetan = self.zipf.expect("table").zetan;
                let mut weights = vec![0.0f64; n_buckets];
                for r in 0..self.range {
                    let k = scramble_rank(r, self.range);
                    weights[bucket_of(k, self.range, n_buckets)] +=
                        1.0 / (r as f64 + 1.0).powf(theta) / zetan;
                }
                weights
            }
        }
    }
}

/// The scrambled-zipfian rank→key map: one splitmix64 round over the
/// rank (salted with the golden-ratio constant — `splitmix(0) == 0`, so
/// the unsalted hash would pin rank 0, the hottest rank, to key 1 and
/// defeat the scrambling), folded onto `[1, range]` with a bias-free
/// multiply-shift. Distinct ranks may collide on one key; their masses
/// simply add, and both `key_weight` and `expected_weights` walk the
/// ranks so the closed-form checks see the same collisions the sampler
/// produces.
#[inline]
fn scramble_rank(rank: u64, range: u64) -> u64 {
    let h = crate::rng::splitmix(rank ^ crate::rng::GOLDEN);
    ((h as u128 * range as u128) >> 64) as u64 + 1
}

/// The bucket index of key `k` (1-based; 0 is clamped to key 1 so the
/// exported helper is total) when `[1, range]` splits into `n_buckets`
/// contiguous slices.
pub fn bucket_of(k: u64, range: u64, n_buckets: usize) -> usize {
    (((k.max(1) - 1) as u128 * n_buckets as u128) / range.max(1) as u128) as usize
}

/// The half-open 0-based key-index interval `[lo, hi)` of bucket `b`
/// under [`bucket_of`]'s split: index `i = k - 1` is in bucket `b` iff
/// `b * range <= i * n_buckets < (b + 1) * range`, i.e. between the
/// interval's ceiling boundaries.
fn bucket_bounds(b: usize, range: u64, n_buckets: usize) -> (u64, u64) {
    let lo = (b as u128 * range as u128).div_ceil(n_buckets as u128);
    let hi = ((b as u128 + 1) * range as u128).div_ceil(n_buckets as u128);
    (lo as u64, hi as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_labels() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::ZIPF_99,
            KeyDist::Zipfian { theta: 0.5 },
            KeyDist::ZIPF_SCRAMBLED_99,
            KeyDist::ZipfianScrambled { theta: 0.6 },
            KeyDist::HOTSPOT_10_90,
            KeyDist::Hotspot { hot_pct: 5, access_pct: 95 },
            KeyDist::Latest { theta: 0.99 },
        ] {
            assert_eq!(KeyDist::parse(&dist.label()), Ok(dist), "label {}", dist.label());
        }
    }

    #[test]
    fn parse_defaults_and_errors() {
        assert_eq!(KeyDist::parse("zipf"), Ok(KeyDist::ZIPF_99));
        assert_eq!(KeyDist::parse("zipf-scrambled"), Ok(KeyDist::ZIPF_SCRAMBLED_99));
        assert!(KeyDist::parse("zipf-scrambled-1.5").is_err(), "scrambled theta checked too");
        assert_eq!(KeyDist::parse("latest"), Ok(KeyDist::Latest { theta: 0.99 }));
        assert_eq!(KeyDist::parse("hotspot"), Ok(KeyDist::HOTSPOT_10_90));
        assert!(KeyDist::parse("zipf-1.5").is_err(), "theta >= 1 rejected");
        assert!(KeyDist::parse("zipf-0").is_err(), "theta <= 0 rejected");
        assert!(KeyDist::parse("hotspot-0/90").is_err(), "empty hot set rejected");
        assert!(KeyDist::parse("hotspot-10").is_err(), "missing access split");
        assert!(KeyDist::parse("ycsb").is_err());
    }

    #[test]
    fn samples_stay_in_range() {
        let mut rng = Xorshift::new(5);
        for dist in [
            KeyDist::Uniform,
            KeyDist::ZIPF_99,
            KeyDist::ZIPF_SCRAMBLED_99,
            KeyDist::HOTSPOT_10_90,
            KeyDist::Latest { theta: 0.99 },
        ] {
            for range in [1u64, 2, 7, 1000] {
                let s = KeySampler::new(dist, range);
                for clock in 0..2000 {
                    let k = s.sample(&mut rng, clock);
                    assert!((1..=range).contains(&k), "{dist:?} range={range} drew {k}");
                }
            }
        }
    }

    #[test]
    fn weights_sum_to_one() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::ZIPF_99,
            KeyDist::ZIPF_SCRAMBLED_99,
            KeyDist::HOTSPOT_10_90,
            KeyDist::Latest { theta: 0.9 },
        ] {
            let s = KeySampler::new(dist, 1000);
            let total: f64 = s.expected_weights(16).iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "{dist:?} weights sum {total}");
            let direct: f64 = (1..=1000).map(|k| s.key_weight(k, 123)).sum();
            assert!((direct - 1.0).abs() < 1e-9, "{dist:?} key weights sum {direct}");
        }
    }

    #[test]
    fn uniform_bucket_weights_match_boundaries() {
        // Non-divisible split: 10 keys over 3 buckets is 4/3/3 under
        // bucket_of; the closed-form boundary count must agree with a
        // brute-force walk.
        let s = KeySampler::new(KeyDist::Uniform, 10);
        let weights = s.expected_weights(3);
        let mut brute = [0.0f64; 3];
        for k in 1..=10u64 {
            brute[bucket_of(k, 10, 3)] += 0.1;
        }
        for (w, b) in weights.iter().zip(brute) {
            assert!((w - b).abs() < 1e-12, "{weights:?} vs {brute:?}");
        }
        // And a production-sized range must not force an O(range) walk.
        let s = KeySampler::new(KeyDist::Uniform, 1 << 40);
        let weights = s.expected_weights(16);
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(weights.iter().all(|w| (w - 1.0 / 16.0).abs() < 1e-9));
    }

    #[test]
    fn hotspot_bucket_weights_match_brute_force() {
        // Prime range and bucket count: the hot/cold split point lands
        // mid-bucket and bucket boundaries are non-aligned.
        let s = KeySampler::new(KeyDist::HOTSPOT_10_90, 997);
        let weights = s.expected_weights(7);
        let mut brute = vec![0.0f64; 7];
        for k in 1..=997u64 {
            brute[bucket_of(k, 997, 7)] += s.key_weight(k, 0);
        }
        for (w, b) in weights.iter().zip(&brute) {
            assert!((w - b).abs() < 1e-12, "{weights:?} vs {brute:?}");
        }
        // All-hot degenerate case collapses to uniform.
        let s = KeySampler::new(KeyDist::Hotspot { hot_pct: 100, access_pct: 90 }, 100);
        let weights = s.expected_weights(4);
        assert!(weights.iter().all(|w| (w - 0.25).abs() < 1e-12), "{weights:?}");
        // And a production-sized range must not force an O(range) walk.
        let s = KeySampler::new(KeyDist::HOTSPOT_10_90, 1 << 40);
        let weights = s.expected_weights(10);
        assert!((weights[0] - 0.9).abs() < 1e-9, "{weights:?}");
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scrambled_zipf_decorrelates_from_key_prefix() {
        // Plain zipfian piles its mass onto the low-key prefix (the
        // region every cache stream warms up); the scrambled variant
        // must spread the same rank mass near-uniformly across the key
        // space. Compare the mass landing in the first half.
        let range = 10_000u64;
        let prefix_mass = |dist: KeyDist| -> f64 {
            let s = KeySampler::new(dist, range);
            // Two buckets: [1, range/2] and (range/2, range].
            s.expected_weights(2)[0]
        };
        let plain = prefix_mass(KeyDist::ZIPF_99);
        let scrambled = prefix_mass(KeyDist::ZIPF_SCRAMBLED_99);
        assert!(plain > 0.9, "plain zipf mass in warm prefix: {plain}");
        assert!((0.3..0.7).contains(&scrambled), "scrambled prefix mass: {scrambled}");
        // Sampling agrees with the expected weights (same hash on both
        // sides), and rank 0's full mass survives the scramble: its key
        // is hit at least as often as the rank-0 weight predicts.
        let s = KeySampler::new(KeyDist::ZIPF_SCRAMBLED_99, range);
        let hot_key = scramble_rank(0, range);
        assert!((1..=range).contains(&hot_key));
        let mut rng = Xorshift::new(9);
        let draws = 50_000u64;
        let hot = (0..draws).filter(|_| s.sample(&mut rng, 0) == hot_key).count() as f64;
        let want = s.key_weight(hot_key, 0);
        let got = hot / draws as f64;
        assert!((got - want).abs() < 0.02, "hot key mass: sampled {got}, expected {want}");
    }

    #[test]
    fn scrambled_bucket_weights_match_brute_force() {
        // expected_weights walks ranks; key_weight walks ranks per key.
        // They must describe the same distribution.
        let s = KeySampler::new(KeyDist::ZipfianScrambled { theta: 0.7 }, 997);
        let weights = s.expected_weights(7);
        let mut brute = vec![0.0f64; 7];
        for k in 1..=997u64 {
            brute[bucket_of(k, 997, 7)] += s.key_weight(k, 0);
        }
        for (w, b) in weights.iter().zip(&brute) {
            assert!((w - b).abs() < 1e-12, "{weights:?} vs {brute:?}");
        }
    }

    #[test]
    fn zipf_rank_quantiles_match_mass() {
        // The quantile approximation must agree with the rank mass: the
        // u-interval mapping to rank 0 has width weight(rank 0).
        let s = KeySampler::new(KeyDist::ZIPF_99, 10_000);
        let w1 = s.key_weight(1, 0);
        let z = s.zipf.unwrap();
        assert_eq!(z.rank(w1 * 0.999), 0);
        assert!(z.rank(w1 * 1.2) >= 1);
    }
}

//! Deterministic per-thread request streams: the op-mix layer over
//! [`KeySampler`].
//!
//! Two op vocabularies cover both consumers of the engine:
//!
//! * [`MixStream`] — the set-structure mix (insert / remove / lookup)
//!   the paper's §6.2 figures run against the four durable structures.
//! * [`CacheStream`] — the memtier-style cache mix (set / get) of §6.5.
//!
//! Every stream is a pure function of `(spec, thread, index)`: the same
//! spec and thread replay the identical op sequence, and the `index`-th
//! op is reached by iterating — no global state, no wall clock.

use crate::dist::{KeyDist, KeySampler};
use crate::rng::Xorshift;

/// The paper's memtier set:get ratio (1:4) as a set fraction.
pub const PAPER_SET_FRACTION: f64 = 0.2;

/// The modeled value payload size of one cache `set`, in bytes.
///
/// The in-process caches store fixed-width `u64` values, so the sampled
/// size is *recorded on the op* ([`CacheOp::Set::vsize`]) rather than
/// materialized as payload bytes — harnesses that account for bandwidth
/// or memory pressure read it from there (documented as a deviation in
/// DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDist {
    /// Every value is exactly this many bytes.
    Fixed(u32),
    /// Sizes uniform in `[min, max]` bytes.
    Uniform {
        /// Smallest size, bytes.
        min: u32,
        /// Largest size, bytes (inclusive).
        max: u32,
    },
}

impl ValueDist {
    /// The paper's memtier configuration: fixed 64-byte values.
    pub const PAPER: ValueDist = ValueDist::Fixed(64);

    /// Stable label (`fixed-64`, `uniform-64-4096`); round-trips through
    /// [`ValueDist::parse`].
    pub fn label(&self) -> String {
        match *self {
            ValueDist::Fixed(b) => format!("fixed-{b}"),
            ValueDist::Uniform { min, max } => format!("uniform-{min}-{max}"),
        }
    }

    /// Parses a value-size spec, as accepted by the `VAL_DIST` knob:
    /// `fixed-<bytes>` or `uniform-<min>-<max>`.
    pub fn parse(s: &str) -> Result<ValueDist, String> {
        let s = s.trim();
        if let Some(b) = s.strip_prefix("fixed-") {
            let b: u32 = b.parse().map_err(|_| format!("bad value size '{b}'"))?;
            return Ok(ValueDist::Fixed(b));
        }
        if let Some(rest) = s.strip_prefix("uniform-") {
            let (min, max) =
                rest.split_once('-').ok_or_else(|| format!("bad range '{rest}' (want min-max)"))?;
            let min: u32 = min.parse().map_err(|_| format!("bad min '{min}'"))?;
            let max: u32 = max.parse().map_err(|_| format!("bad max '{max}'"))?;
            if min > max {
                return Err(format!("value-size range {min}-{max} is inverted"));
            }
            return Ok(ValueDist::Uniform { min, max });
        }
        Err(format!("unknown value-size distribution '{s}' (want fixed-N or uniform-MIN-MAX)"))
    }

    /// Samples one value size, in bytes.
    #[inline]
    pub fn sample(&self, rng: &mut Xorshift) -> u32 {
        match *self {
            ValueDist::Fixed(b) => b,
            ValueDist::Uniform { min, max } => min + rng.bounded((max - min) as u64 + 1) as u32,
        }
    }
}

// ---------------------------------------------------------------------------
// Cache traffic (memtier-style set/get)
// ---------------------------------------------------------------------------

/// The full shape of a memtier-style cache workload. This is the type
/// `nvmemcached::memtier` re-exports as `Workload`.
#[derive(Debug, Clone, Copy)]
pub struct TrafficSpec {
    /// Keys are drawn from `1..=key_range` according to `dist`.
    pub key_range: u64,
    /// sets per (sets + gets); the paper's 1:4 set:get mix is 0.2.
    pub set_fraction: f64,
    /// Seed for reproducible runs.
    pub seed: u64,
    /// Which keys the traffic concentrates on.
    pub dist: KeyDist,
    /// Modeled value payload sizes.
    pub value: ValueDist,
}

impl TrafficSpec {
    /// The paper's configuration: uniform keys, 1:4 set:get, 64-byte
    /// values over `key_range` keys.
    pub fn paper(key_range: u64, seed: u64) -> Self {
        Self {
            key_range,
            set_fraction: PAPER_SET_FRACTION,
            seed,
            dist: KeyDist::Uniform,
            value: ValueDist::PAPER,
        }
    }

    /// The same spec with a different key distribution.
    pub fn with_dist(mut self, dist: KeyDist) -> Self {
        self.dist = dist;
        self
    }

    /// The same spec with a different value-size distribution.
    pub fn with_value(mut self, value: ValueDist) -> Self {
        self.value = value;
        self
    }

    /// The warm-up key set: the first half of the key range, as in the
    /// paper ("we warm up the cache by inserting items covering half of
    /// the key range"). For zipfian and hotspot traffic the hot keys are
    /// the low keys, so the warm-up covers the hot set; latest's hot
    /// region sweeps the whole range and is only half-covered at any
    /// instant.
    pub fn warmup_keys(&self) -> impl Iterator<Item = u64> {
        1..=(self.key_range / 2).max(1)
    }

    /// The sampler this spec's streams draw keys from. Zipfian/latest
    /// construction is O(key_range) (the zeta sum); the sampler itself
    /// is `Copy`, so build it once per run and hand it to every thread
    /// via [`TrafficSpec::stream_with`].
    pub fn sampler(&self) -> KeySampler {
        KeySampler::new(self.dist, self.key_range.max(1))
    }

    /// The deterministic request stream for one worker thread, building
    /// a fresh sampler (fine for one-off streams; drivers spawning many
    /// threads should share one via [`TrafficSpec::stream_with`]).
    pub fn stream(&self, thread: usize) -> CacheStream {
        self.stream_with(self.sampler(), thread)
    }

    /// The request stream for one worker thread over a pre-built
    /// sampler (which must come from [`TrafficSpec::sampler`] of an
    /// identical spec).
    pub fn stream_with(&self, sampler: KeySampler, thread: usize) -> CacheStream {
        let set_threshold = (self.set_fraction.clamp(0.0, 1.0) * u32::MAX as f64) as u32;
        let key_range = self.key_range.max(1);
        let gen = if self.dist == KeyDist::Uniform && matches!(self.value, ValueDist::Fixed(_)) {
            // Bit-exact pre-refactor generator (see `Gen::Legacy`),
            // including its historical seeding verbatim.
            Gen::Legacy {
                rng: Xorshift::from_raw_state(
                    self.seed ^ crate::rng::GOLDEN.wrapping_mul(thread as u64 + 1),
                ),
            }
        } else {
            Gen::Sampled { rng: Xorshift::for_thread(self.seed, thread), sampler, clock: 0 }
        };
        CacheStream { gen, key_range, set_threshold, value: self.value }
    }
}

/// One cache request, as generated by a [`CacheStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// Store `key -> value` (payload modeled as `vsize` bytes).
    Set {
        /// The key to store.
        key: u64,
        /// The 64-bit value word the in-process caches store.
        value: u64,
        /// Modeled payload size in bytes (see [`ValueDist`]).
        vsize: u32,
    },
    /// Fetch `key`.
    Get {
        /// The key to fetch.
        key: u64,
    },
}

impl CacheOp {
    /// The key this op touches.
    pub fn key(&self) -> u64 {
        match *self {
            CacheOp::Set { key, .. } | CacheOp::Get { key } => key,
        }
    }
}

/// How a [`CacheStream`] draws its randomness.
enum Gen {
    /// The pre-refactor `memtier::RequestStream` generator, kept
    /// bit-exact so every historical uniform run stays replayable: raw
    /// (unfinalized) xorshift draws, op chosen by the first draw's low 32
    /// bits, key by the second draw **modulo** the range. The modulo bias
    /// is ≤ `key_range / 2^64` per key — unobservable for any realistic
    /// range — and pinned by the cross-layer equivalence test; all other
    /// configurations use the bias-free sampled path.
    Legacy { rng: Xorshift },
    /// The engine path: finalized RNG + [`KeySampler`] (Lemire-bounded
    /// uniform, zipfian/hotspot/latest as configured).
    Sampled { rng: Xorshift, sampler: KeySampler, clock: u64 },
}

/// Deterministic per-thread cache request generator. Infinite iterator.
pub struct CacheStream {
    gen: Gen,
    key_range: u64,
    set_threshold: u32,
    value: ValueDist,
}

impl Iterator for CacheStream {
    type Item = CacheOp;

    #[inline]
    fn next(&mut self) -> Option<CacheOp> {
        Some(match &mut self.gen {
            Gen::Legacy { rng } => {
                let r = rng.next_raw();
                let key = rng.next_raw() % self.key_range + 1;
                if (r as u32) < self.set_threshold {
                    let ValueDist::Fixed(vsize) = self.value else {
                        unreachable!("legacy is fixed")
                    };
                    CacheOp::Set { key, value: r, vsize }
                } else {
                    CacheOp::Get { key }
                }
            }
            Gen::Sampled { rng, sampler, clock } => {
                let r = rng.next_u64();
                let key = sampler.sample(rng, *clock);
                *clock += 1;
                if (r as u32) < self.set_threshold {
                    CacheOp::Set { key, value: r, vsize: self.value.sample(rng) }
                } else {
                    CacheOp::Get { key }
                }
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Set-structure traffic (insert/remove/lookup)
// ---------------------------------------------------------------------------

/// The shape of a set-structure workload (the paper's §6.2 mix):
/// `update_pct`% of ops are updates — half inserts, half removes — and
/// the rest are lookups.
#[derive(Debug, Clone, Copy)]
pub struct MixSpec {
    /// Keys are drawn from `1..=key_range` according to `dist`.
    pub key_range: u64,
    /// Percent of operations that are updates (0..=100).
    pub update_pct: u32,
    /// Seed for reproducible runs.
    pub seed: u64,
    /// Which keys the traffic concentrates on.
    pub dist: KeyDist,
}

impl MixSpec {
    /// The deterministic op stream for one worker thread, building a
    /// fresh sampler. When many threads share one spec, build the
    /// sampler once with [`KeySampler::new`] and use
    /// [`MixSpec::stream_with`] (zipfian construction is O(key_range)).
    pub fn stream(&self, thread: usize) -> MixStream {
        self.stream_with(KeySampler::new(self.dist, self.key_range), thread)
    }

    /// The op stream for one worker thread over a pre-built sampler.
    pub fn stream_with(&self, sampler: KeySampler, thread: usize) -> MixStream {
        MixStream {
            rng: Xorshift::for_thread(self.seed, thread),
            sampler,
            clock: 0,
            update_pct: self.update_pct.min(100),
        }
    }
}

/// One set-structure operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixOp {
    /// Insert `key -> value`.
    Insert(u64, u64),
    /// Remove `key`.
    Remove(u64),
    /// Look up `key`.
    Get(u64),
}

/// Deterministic per-thread set-structure op generator. Infinite
/// iterator.
pub struct MixStream {
    rng: Xorshift,
    sampler: KeySampler,
    clock: u64,
    update_pct: u32,
}

impl Iterator for MixStream {
    type Item = MixOp;

    #[inline]
    fn next(&mut self) -> Option<MixOp> {
        let key = self.sampler.sample(&mut self.rng, self.clock);
        self.clock += 1;
        let roll = self.rng.bounded(100) as u32;
        Some(if roll < self.update_pct {
            // The roll's parity splits updates into inserts and removes,
            // as the pre-refactor bench loop did.
            if roll % 2 == 0 {
                MixOp::Insert(key, key)
            } else {
                MixOp::Remove(key)
            }
        } else {
            MixOp::Get(key)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_dist_parses_and_samples() {
        assert_eq!(ValueDist::parse("fixed-64"), Ok(ValueDist::Fixed(64)));
        assert_eq!(
            ValueDist::parse("uniform-64-4096"),
            Ok(ValueDist::Uniform { min: 64, max: 4096 })
        );
        assert!(ValueDist::parse("uniform-10-5").is_err());
        assert!(ValueDist::parse("huge").is_err());
        for v in [ValueDist::Fixed(64), ValueDist::Uniform { min: 16, max: 128 }] {
            assert_eq!(ValueDist::parse(&v.label()), Ok(v));
        }
        let mut rng = Xorshift::new(9);
        let v = ValueDist::Uniform { min: 16, max: 128 };
        let mut seen_min = false;
        let mut seen_large = false;
        for _ in 0..10_000 {
            let s = v.sample(&mut rng);
            assert!((16..=128).contains(&s));
            seen_min |= s == 16;
            seen_large |= s >= 120;
        }
        assert!(seen_min && seen_large, "uniform sizes cover the range");
    }

    #[test]
    fn cache_stream_set_fraction_holds() {
        for dist in [KeyDist::Uniform, KeyDist::ZIPF_99] {
            let spec = TrafficSpec::paper(1000, 42).with_dist(dist);
            let sets =
                spec.stream(0).take(100_000).filter(|op| matches!(op, CacheOp::Set { .. })).count();
            let frac = sets as f64 / 100_000.0;
            assert!((0.18..0.22).contains(&frac), "{dist:?} set fraction {frac}");
        }
    }

    #[test]
    fn cache_stream_keys_in_range_for_all_dists() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::ZIPF_99,
            KeyDist::HOTSPOT_10_90,
            KeyDist::Latest { theta: 0.99 },
        ] {
            let spec = TrafficSpec::paper(100, 7).with_dist(dist);
            for op in spec.stream(3).take(10_000) {
                assert!((1..=100).contains(&op.key()), "{dist:?} drew {}", op.key());
            }
        }
    }

    #[test]
    fn streams_replay_deterministically_per_thread() {
        for dist in [KeyDist::Uniform, KeyDist::ZIPF_99, KeyDist::Latest { theta: 0.99 }] {
            let spec = TrafficSpec::paper(500, 7).with_dist(dist);
            let a: Vec<_> = spec.stream(1).take(200).collect();
            let b: Vec<_> = spec.stream(1).take(200).collect();
            let c: Vec<_> = spec.stream(2).take(200).collect();
            assert_eq!(a, b, "{dist:?}: same (seed, thread) replays");
            assert_ne!(a, c, "{dist:?}: threads differ");
        }
        let m = MixSpec { key_range: 500, update_pct: 50, seed: 7, dist: KeyDist::ZIPF_99 };
        let a: Vec<_> = m.stream(1).take(200).collect();
        let b: Vec<_> = m.stream(1).take(200).collect();
        assert_eq!(a, b);
        assert_ne!(a, m.stream(0).take(200).collect::<Vec<_>>());
    }

    #[test]
    fn mix_stream_honors_update_pct() {
        let spec = MixSpec { key_range: 1000, update_pct: 20, seed: 3, dist: KeyDist::Uniform };
        let (mut ins, mut rem, mut get) = (0u64, 0u64, 0u64);
        for op in spec.stream(0).take(100_000) {
            match op {
                MixOp::Insert(k, v) => {
                    assert_eq!(k, v);
                    ins += 1;
                }
                MixOp::Remove(_) => rem += 1,
                MixOp::Get(_) => get += 1,
            }
        }
        let upd = (ins + rem) as f64 / 100_000.0;
        assert!((0.18..0.22).contains(&upd), "update fraction {upd}");
        assert!(get > 0);
        let split = ins as f64 / (ins + rem) as f64;
        assert!((0.45..0.55).contains(&split), "insert/remove split {split}");
    }

    #[test]
    fn update_pct_100_yields_no_lookups() {
        let spec = MixSpec { key_range: 100, update_pct: 100, seed: 1, dist: KeyDist::Uniform };
        assert!(spec.stream(0).take(10_000).all(|op| !matches!(op, MixOp::Get(_))));
    }

    #[test]
    fn nonuniform_value_dist_leaves_the_legacy_path() {
        let spec = TrafficSpec::paper(100, 1).with_value(ValueDist::Uniform { min: 8, max: 32 });
        let mut saw = std::collections::HashSet::new();
        for op in spec.stream(0).take(10_000) {
            if let CacheOp::Set { vsize, .. } = op {
                assert!((8..=32).contains(&vsize));
                saw.insert(vsize);
            }
        }
        assert!(saw.len() > 10, "sampled sizes vary");
    }
}

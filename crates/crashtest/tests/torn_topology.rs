//! Recovery fixtures for torn reshard-topology states — the edges of
//! the `[OLD][NEW][CURSOR][VERSION]` state machine that the random
//! crash enumeration cannot pin deterministically:
//!
//! * **committed-pending** (cursor behind the migration): recovery must
//!   *roll forward* — re-drain from the recorded cursor (idempotent
//!   under the new-wins claim) and serve the new topology.
//! * **torn or foreign state words** (stale version, wild shard counts,
//!   cursor past the old shard count): recovery must *cleanly reject*
//!   the union with [`GeometryError::TornReshard`] instead of migrating
//!   by a record that does not describe the pools in hand.
//!
//! The fixtures forge the state word directly (the same idiom as the
//! torn resize-header fixtures in `torn_geometry.rs`), pinning each
//! edge deterministically.

use std::sync::Arc;

use nvmemcached::{GeometryError, ShardedNvMemcached, RESHARD_STATE_ROOT};
use pmem::{LatencyModel, Mode, PmemPool, PoolBuilder};

fn pools(n: usize) -> Vec<Arc<PmemPool>> {
    (0..n)
        .map(|_| {
            PoolBuilder::new(16 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
        })
        .collect()
}

const CAP: usize = 100_000;
const KEYS: u64 = 400;

/// `[OLD:16][NEW:16][CURSOR:16][VERSION:16]`, the durable layout
/// documented on `nvmemcached::RESHARD_STATE_ROOT`.
fn state_word(old: u64, new: u64, cursor: u64, version: u64) -> u64 {
    (old << 48) | (new << 32) | (cursor << 16) | version
}

/// Builds a 2-shard cache with `KEYS` keys, runs a full 2→4 reshard,
/// and returns `(old pools, new pools)` — both groups durable, the
/// state word reading "complete".
fn reshard_complete() -> (Vec<Arc<PmemPool>>, Vec<Arc<PmemPool>>) {
    let old = pools(2);
    let new = pools(4);
    let mc = ShardedNvMemcached::create(&old, 64, CAP, false).unwrap();
    let mut ctx = mc.register();
    for k in 1..=KEYS {
        mc.set(&mut ctx, k, k * 7).unwrap();
    }
    mc.reshard(&new, 64).unwrap();
    (old, new)
}

/// Durably overwrites the reshard state word on old pool 0.
fn forge_state_word(pool: &Arc<PmemPool>, value: u64) {
    let mut flusher = pool.flusher();
    pool.set_root(RESHARD_STATE_ROOT, value, &mut flusher);
}

fn crash_all(pools: &[Arc<PmemPool>]) {
    for pool in pools {
        // SAFETY: no threads are running.
        unsafe { pool.simulate_crash().unwrap() };
    }
}

#[test]
fn committed_pending_cursor_replays_the_migration_idempotently() {
    let (old, new) = reshard_complete();
    // Forge the cursor back to 0: the image now claims no shard was
    // drained, though every key already sits in its new home. Recovery
    // must re-drain both shards — a no-op under the new-wins claim —
    // and converge on the same new topology, no key lost or doubled.
    forge_state_word(&old[0], state_word(2, 4, 0, 2));
    let all: Vec<Arc<PmemPool>> = old.iter().chain(&new).cloned().collect();
    crash_all(&all);

    let (mc, _report) = ShardedNvMemcached::recover(&all, CAP).unwrap();
    assert_eq!((mc.version(), mc.n_shards()), (2, 4));
    assert!(!mc.reshard_in_flight());
    assert_eq!(mc.len(), KEYS as usize, "no key lost or doubled by the replayed migration");
    let mut ctx = mc.register();
    for k in 1..=KEYS {
        assert_eq!(mc.get(&mut ctx, k), Some(k * 7));
    }
    for (i, shard) in mc.shards().iter().enumerate() {
        for (k, _) in shard.snapshot() {
            assert_eq!(mc.shard_of(k), i, "key {k} in wrong shard after replay");
        }
    }
}

#[test]
fn half_drained_cursor_rolls_forward_from_the_record() {
    let (old, new) = reshard_complete();
    // Cursor 1: shard 0 drained, shard 1 allegedly not. Roll-forward
    // resumes exactly at the recorded cursor.
    forge_state_word(&old[0], state_word(2, 4, 1, 2));
    let all: Vec<Arc<PmemPool>> = old.iter().chain(&new).cloned().collect();
    crash_all(&all);

    let (mc, _) = ShardedNvMemcached::recover(&all, CAP).unwrap();
    assert_eq!((mc.version(), mc.n_shards()), (2, 4));
    assert_eq!(mc.len(), KEYS as usize);
}

#[test]
fn stale_version_state_word_is_rejected() {
    let (old, new) = reshard_complete();
    // A state word whose version does not name the younger geometry
    // generation in hand: a leftover from some earlier life of the
    // pools. Migrating by it would drain into the wrong group.
    forge_state_word(&old[0], state_word(2, 4, 2, 7));
    let all: Vec<Arc<PmemPool>> = old.iter().chain(&new).cloned().collect();
    crash_all(&all);

    let err = ShardedNvMemcached::recover(&all, CAP).unwrap_err();
    assert_eq!(err, GeometryError::TornReshard { old: 2, new: 4, cursor: 2, version: 7 });
}

#[test]
fn wild_shard_counts_are_rejected() {
    let (old, new) = reshard_complete();
    // Counts that match no group in hand — a torn write or a foreign
    // record. 2 + 4 pools are present, the word claims 57 → 3.
    forge_state_word(&old[0], state_word(57, 3, 1, 2));
    let all: Vec<Arc<PmemPool>> = old.iter().chain(&new).cloned().collect();
    crash_all(&all);

    let err = ShardedNvMemcached::recover(&all, CAP).unwrap_err();
    assert_eq!(err, GeometryError::TornReshard { old: 57, new: 3, cursor: 1, version: 2 });
}

#[test]
fn cursor_past_the_old_shard_count_is_rejected() {
    let (old, new) = reshard_complete();
    forge_state_word(&old[0], state_word(2, 4, 9, 2));
    let all: Vec<Arc<PmemPool>> = old.iter().chain(&new).cloned().collect();
    crash_all(&all);

    let err = ShardedNvMemcached::recover(&all, CAP).unwrap_err();
    assert_eq!(err, GeometryError::TornReshard { old: 2, new: 4, cursor: 9, version: 2 });
}

#[test]
fn zeroed_state_word_means_uncommitted() {
    let (old, new) = reshard_complete();
    // Both geometry generations durable but no commit record at all:
    // recovery must refuse the union (the old group alone is the
    // authoritative cache — the formatted targets were never adopted).
    forge_state_word(&old[0], 0);
    let all: Vec<Arc<PmemPool>> = old.iter().chain(&new).cloned().collect();
    crash_all(&all);

    let err = ShardedNvMemcached::recover(&all, CAP).unwrap_err();
    assert_eq!(err, GeometryError::Uncommitted { version: 2 });
}

//! Acceptance tests of the crashtest subsystem itself: exhaustive
//! crash-point enumeration over every target, determinism of the count
//! phase, the multi-threaded quiesce-and-crash smoke, and — most
//! importantly — the mutation test proving a deliberately-omitted flush
//! is *caught* (a harness that cannot fail proves nothing).

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crashtest::{
    count_events, count_sharded_events, run_crash_points, run_sharded_crash_points, run_torture,
    seed_from_env, BstTarget, CrashConfig, CrashTarget, HashTarget, ListTarget, MemcachedTarget,
    OpMix, ResizeTarget, SkipTarget, TortureConfig, TraceOp,
};
use nvalloc::{NvDomain, RecoveryReport, ThreadCtx};
use pmem::PmemPool;

fn cfg() -> CrashConfig {
    CrashConfig::small(seed_from_env())
}

#[test]
fn linked_list_survives_every_crash_point() {
    run_crash_points::<ListTarget>(&cfg()).assert_clean();
}

#[test]
fn hash_table_survives_every_crash_point() {
    run_crash_points::<HashTarget>(&cfg()).assert_clean();
}

#[test]
fn skip_list_survives_every_crash_point() {
    run_crash_points::<SkipTarget>(&cfg()).assert_clean();
}

#[test]
fn bst_survives_every_crash_point() {
    run_crash_points::<BstTarget>(&cfg()).assert_clean();
}

#[test]
fn nv_memcached_survives_every_crash_point() {
    run_crash_points::<MemcachedTarget>(&cfg()).assert_clean();
}

#[test]
fn resize_in_flight_survives_every_crash_point() {
    // The tentpole guarantee: a 4x grow fires mid-trace, so the
    // enumeration crashes the table at every clwb/fence/link-publish/
    // resize-state event of a live migration — publish of the new
    // array, per-node claim/copy/delete/unlink, cursor advances, the
    // CUR swing and the commit. Every point must recover to the oracle
    // state with zero leaks, correct routing and no resize left in
    // flight (recovery rolls it forward).
    let report = run_crash_points::<ResizeTarget>(&cfg());
    assert!(report.event_kinds.4 > 0, "the trace produced no resize-state crash points");
    report.assert_clean();
}

#[test]
fn resize_trace_covers_every_event_kind() {
    let (plan, _, _) = count_events::<ResizeTarget>(&cfg());
    use pmem::CrashEvent::*;
    for kind in [Clwb, Fence, LinkPublish, TlabLease, ResizeState] {
        assert!(plan.kind_count(kind) > 0, "no {kind:?} events in the resize trace");
    }
}

#[test]
fn sharded_nv_memcached_survives_every_crash_point() {
    // 4 shards: the crash lands in one shard's event stream while the
    // others hold committed state — the per-shard oracles, the routing
    // containment check and the per-shard leak audits all must pass at
    // every global crash point.
    run_sharded_crash_points(&cfg(), 4).assert_clean();
}

#[test]
fn sharded_routing_with_odd_shard_count_survives() {
    // A non-power-of-two shard count exercises the modulo router.
    let mut c = cfg();
    c.trace_len = 32;
    run_sharded_crash_points(&c, 3).assert_clean();
}

#[test]
fn live_reshard_survives_every_crash_point() {
    // The elastic-topology guarantee: a 2→4 reshard starts a third of
    // the way through the trace and is driven to completion alongside
    // it, so the enumeration crashes the cache at every event of the
    // whole state machine — target-pool formatting, the durable
    // `[OLD][NEW][CURSOR][VERSION]` commit record, every migrated key's
    // copy-then-delete, every durable cursor advance, the final swap.
    // Every point must recover (union roll-forward after the commit,
    // old-pools fallback before it) to the global oracle state with
    // routing containment and zero leaks.
    let report = crashtest::run_reshard_crash_points(&cfg());
    assert!(report.event_kinds.5 > 0, "the schedule produced no reshard-state crash points");
    report.assert_clean();
}

#[test]
fn reshard_count_phase_is_deterministic() {
    let c = cfg();
    let (plan_a, spans_a, trace_a) = crashtest::count_reshard_events(&c);
    let (plan_b, spans_b, trace_b) = crashtest::count_reshard_events(&c);
    assert_eq!(plan_a.events(), plan_b.events(), "event totals must replay exactly");
    assert_eq!(spans_a, spans_b, "op spans must replay exactly");
    assert_eq!(trace_a, trace_b, "traces must regenerate exactly");
    // Commit plus one advance per old shard: the state word is written
    // exactly RESHARD_FROM + 1 times.
    assert_eq!(
        plan_a.kind_count(pmem::CrashEvent::ReshardState),
        crashtest::RESHARD_FROM as u64 + 1,
        "one commit record plus one durable cursor advance per drained shard"
    );
}

#[test]
fn sharded_count_phase_is_deterministic() {
    let c = cfg();
    let (plan_a, spans_a, trace_a) = count_sharded_events(&c, 4);
    let (plan_b, spans_b, trace_b) = count_sharded_events(&c, 4);
    assert_eq!(plan_a.events(), plan_b.events(), "event totals must replay exactly");
    assert_eq!(spans_a, spans_b, "op spans must replay exactly");
    assert_eq!(trace_a, trace_b, "traces must regenerate exactly");
}

#[test]
fn hash_table_with_link_cache_survives_relaxed() {
    let mut c = cfg();
    c.use_link_cache = true;
    let report = run_crash_points::<HashTarget>(&c);
    report.assert_clean();
}

#[test]
fn count_phase_is_deterministic() {
    let c = cfg();
    let (plan_a, spans_a, trace_a) = count_events::<SkipTarget>(&c);
    let (plan_b, spans_b, trace_b) = count_events::<SkipTarget>(&c);
    assert_eq!(plan_a.events(), plan_b.events(), "event totals must replay exactly");
    assert_eq!(spans_a, spans_b, "op spans must replay exactly");
    assert_eq!(trace_a, trace_b, "traces must regenerate exactly");
    assert!(plan_a.events() > c.trace_len as u64, "update-heavy trace produces events");
    // The taxonomy is populated: all four event kinds occur.
    use pmem::CrashEvent::*;
    for kind in [Clwb, Fence, LinkPublish, TlabLease] {
        assert!(plan_a.kind_count(kind) > 0, "no {kind:?} events recorded");
    }
}

/// Every structure target and the sharded cache emit TLAB lease crash
/// points, so the exhaustive matrix above enumerates lease
/// publish/retire transitions for all of them (zero-leak audited by
/// `crash_at`'s `count_unreachable` check at every index).
#[test]
fn tlab_lease_events_cover_all_targets() {
    let c = cfg();
    let lease =
        |plan: &std::sync::Arc<pmem::CrashPlan>| plan.kind_count(pmem::CrashEvent::TlabLease);
    assert!(lease(&count_events::<ListTarget>(&c).0) > 0, "list");
    assert!(lease(&count_events::<HashTarget>(&c).0) > 0, "hash");
    assert!(lease(&count_events::<SkipTarget>(&c).0) > 0, "skiplist");
    assert!(lease(&count_events::<BstTarget>(&c).0) > 0, "bst");
    assert!(lease(&count_events::<MemcachedTarget>(&c).0) > 0, "memcached");
    assert!(lease(&count_sharded_events(&c, 3).0) > 0, "sharded cache");
}

#[test]
fn torture_quiesce_and_crash_skiplist() {
    run_torture::<SkipTarget>(&TortureConfig::small(seed_from_env())).assert_clean();
}

#[test]
fn torture_quiesce_and_crash_hash_table() {
    run_torture::<HashTarget>(&TortureConfig::small(seed_from_env())).assert_clean();
}

#[test]
fn torture_quiesce_and_crash_racing_resizes() {
    // 4 workers hammer the table while the shared op counter keeps
    // starting fresh 4x grows (every RESIZE_GROW_EVERY ops), so the
    // mid-run crash lands with high probability inside a migration
    // raced by concurrent inserts/removes.
    run_torture::<ResizeTarget>(&TortureConfig::small(seed_from_env())).assert_clean();
}

// ---------------------------------------------------------------------
// Mutation test: a structure whose insert deliberately omits the flush
// of the published head link. The harness must flag it.
// ---------------------------------------------------------------------

const KEY_OFF: usize = 0;
const VAL_OFF: usize = 8;
const NEXT_OFF: usize = 16;
const NODE_SIZE: usize = 24;
const ROOT: usize = 1;

/// A push-front linked list with correct volatile semantics but a broken
/// durability story: node contents are persisted, the head link is
/// published with a plain store and **never written back**.
struct BrokenChain {
    domain: Arc<NvDomain>,
    head_link: usize,
}

impl BrokenChain {
    fn pool(&self) -> &Arc<PmemPool> {
        self.domain.pool()
    }

    fn walk(&self) -> Vec<usize> {
        let pool = self.pool();
        let mut out = Vec::new();
        let mut curr = pool.atomic_u64(self.head_link).load(Ordering::Acquire) as usize;
        while curr != 0 {
            out.push(curr);
            curr = pool.atomic_u64(curr + NEXT_OFF).load(Ordering::Acquire) as usize;
        }
        out
    }
}

impl CrashTarget for BrokenChain {
    const NAME: &'static str = "BrokenChain";

    fn create(pool: &Arc<PmemPool>, _use_link_cache: bool) -> Self {
        let domain = NvDomain::create(Arc::clone(pool));
        let head_link = pool.start() + ROOT * 8;
        let mut flusher = pool.flusher();
        pool.atomic_u64(head_link).store(0, Ordering::Release);
        flusher.persist(head_link, 8);
        Self { domain, head_link }
    }

    fn domain(&self) -> &Arc<NvDomain> {
        &self.domain
    }

    fn apply(&self, ctx: &mut ThreadCtx, op: TraceOp) -> bool {
        let TraceOp::Insert(key, value) = op else {
            panic!("the mutation trace is insert-only");
        };
        let pool = Arc::clone(self.pool());
        ctx.begin_op();
        let head = pool.atomic_u64(self.head_link).load(Ordering::Acquire);
        let exists = self
            .walk()
            .iter()
            .any(|&n| pool.atomic_u64(n + KEY_OFF).load(Ordering::Acquire) == key);
        let changed = if exists {
            false
        } else {
            let node = ctx.alloc(NODE_SIZE).expect("pool sized");
            pool.atomic_u64(node + KEY_OFF).store(key, Ordering::Relaxed);
            pool.atomic_u64(node + VAL_OFF).store(value, Ordering::Relaxed);
            pool.atomic_u64(node + NEXT_OFF).store(head, Ordering::Release);
            ctx.flusher.clwb_range(node, NODE_SIZE);
            ctx.flusher.fence();
            // THE BUG: the head link is published but never written back;
            // a crash at any later point silently forgets the insert.
            pool.atomic_u64(self.head_link).store(node as u64, Ordering::Release);
            true
        };
        ctx.end_op();
        changed
    }

    fn recover(pool: &Arc<PmemPool>) -> (Self, RecoveryReport) {
        let domain = NvDomain::attach(Arc::clone(pool));
        let head_link = pool.start() + ROOT * 8;
        let chain = Self { domain, head_link };
        let live: std::collections::HashSet<usize> = chain.walk().into_iter().collect();
        let report = chain.domain.recover_leaks(|addr| live.contains(&addr));
        (chain, report)
    }

    fn snapshot(&self) -> Vec<(u64, u64)> {
        let pool = self.pool();
        self.walk()
            .into_iter()
            .map(|n| {
                (
                    pool.atomic_u64(n + KEY_OFF).load(Ordering::Acquire),
                    pool.atomic_u64(n + VAL_OFF).load(Ordering::Acquire),
                )
            })
            .collect()
    }

    fn reachable(&self, addr: usize) -> bool {
        self.walk().contains(&addr)
    }
}

#[test]
fn omitted_flush_is_caught() {
    let mut c = cfg();
    c.trace_len = 16;
    c.mix = OpMix { insert_pct: 100, remove_pct: 0 };
    let report = run_crash_points::<BrokenChain>(&c);
    assert!(
        !report.violations.is_empty(),
        "the harness failed to flag a deliberately-omitted flush"
    );
    // Specifically: a completed insert was lost (key-level violation, not
    // just a leak report).
    assert!(
        report.violations.iter().any(|v| v.key != 0 && v.got.is_none()),
        "expected lost completed inserts, got: {:?}",
        report.violations
    );
}

// ---------------------------------------------------------------------
// Mutation test for the resize word: a table whose resize-state updates
// (NEW/CUR/CURSOR) are stored but never written back. The enumeration
// must flag it — either as lost completed updates (the durable header
// never learns about the new array, so migrated keys vanish) or as a
// recovery-time geometry rejection (the stale durable CUR points at a
// bucket array whose region reclamation already zeroed).
// ---------------------------------------------------------------------

/// [`ResizeTarget`] with the resize-word write-backs suppressed.
struct BrokenResize(ResizeTarget);

impl CrashTarget for BrokenResize {
    const NAME: &'static str = "BrokenResize";

    fn create(pool: &Arc<PmemPool>, use_link_cache: bool) -> Self {
        let target = ResizeTarget::create(pool, use_link_cache);
        target.table().set_omit_resize_word_flush(true);
        Self(target)
    }

    fn domain(&self) -> &Arc<NvDomain> {
        self.0.domain()
    }

    fn apply(&self, ctx: &mut ThreadCtx, op: TraceOp) -> bool {
        self.0.apply(ctx, op)
    }

    fn recover(pool: &Arc<PmemPool>) -> (Self, RecoveryReport) {
        let (target, report) = ResizeTarget::recover(pool);
        (Self(target), report)
    }

    fn snapshot(&self) -> Vec<(u64, u64)> {
        self.0.snapshot()
    }

    fn reachable(&self, addr: usize) -> bool {
        self.0.reachable(addr)
    }

    fn post_recovery_check(&self) -> Option<String> {
        self.0.post_recovery_check()
    }
}

#[test]
fn omitted_resize_word_flush_is_caught() {
    use crashtest::crash_at;

    let c = cfg();
    let (plan, spans, trace) = count_events::<BrokenResize>(&c);
    let total = plan.events();
    assert!(plan.kind_count(pmem::CrashEvent::ResizeState) > 0, "the grow never fired");

    // A torn-geometry image can also make recovery reject the pool
    // outright (attach panics on the zeroed stale array) — that counts
    // as detection, so each point runs under catch_unwind. Silence the
    // expected panic backtraces for the duration.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let step = (total / 16).max(1) as usize;
    let mut detections = 0usize;
    let mut points: Vec<u64> = (0..total).step_by(step).collect();
    points.push(total); // crash after completion: migration certainly ran
    let mut completion_detected = false;
    for &k in &points {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crash_at::<BrokenResize>(&c, &trace, &spans, k)
        }));
        let detected = match outcome {
            Ok(violations) => !violations.is_empty(),
            Err(_) => true, // recovery rejected the torn image
        };
        if detected {
            detections += 1;
            if k == total {
                completion_detected = true;
            }
        }
    }
    std::panic::set_hook(prev_hook);
    assert!(
        detections > 0,
        "the harness failed to flag deliberately-omitted resize-word flushes \
         ({} points tested)",
        points.len()
    );
    assert!(completion_detected, "a full trace past an unflushed grow must lose its migrated keys");
}

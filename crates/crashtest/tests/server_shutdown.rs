//! Server-shutdown crash coverage: every `STORED`/`DELETED` the TCP
//! server acknowledged must survive a power loss *at any point after*
//! graceful shutdown.
//!
//! The durability contract of the server layer is that
//! `Server::shutdown` joins every worker and quiesces the cache's
//! epochs before returning — from that moment on, the durable image is
//! complete. This test drives real clients over loopback TCP, records
//! exactly which responses were acknowledged on the wire, shuts the
//! server down, then *crashes the pools* (restores the shadow image a
//! real power loss would leave) and recovers a fresh
//! [`ShardedNvMemcached`] from them. Every acknowledged write must be
//! visible in the recovered cache.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use nvmemcached::sharded::ShardedNvMemcached;
use pmem::{LatencyModel, Mode, PmemPool, PoolBuilder};
use server::{Server, ServerConfig};

fn pools(n: usize) -> Vec<Arc<PmemPool>> {
    (0..n)
        .map(|_| {
            PoolBuilder::new(16 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
        })
        .collect()
}

fn read_line(r: &mut impl BufRead) -> String {
    let mut s = String::new();
    r.read_line(&mut s).expect("line");
    assert!(s.ends_with("\r\n"), "unterminated line {s:?}");
    s.truncate(s.len() - 2);
    s
}

#[test]
fn acknowledged_writes_survive_crash_after_graceful_shutdown() {
    const CLIENTS: u64 = 4;
    const OPS: u64 = 120;
    let pools = pools(2);
    let cache =
        Arc::new(ShardedNvMemcached::create(&pools, 1024, 100_000, true).expect("pools sized"));
    let server = Server::start(
        Arc::clone(&cache),
        ServerConfig { workers: Some(CLIENTS as usize), ..ServerConfig::default() },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Disjoint key spaces per client, so the last acknowledged state of
    // every key is known without cross-thread ordering questions. Each
    // client interleaves sets, overwrites and deletes; only responses
    // actually read off the wire count as acknowledged.
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut w = stream;
                let mut acked: HashMap<u64, Option<u64>> = HashMap::new();
                for i in 0..OPS {
                    let key = t * 10_000 + i % 40 + 1;
                    if i % 7 == 6 {
                        w.write_all(format!("delete {key}\r\n").as_bytes()).unwrap();
                        let resp = read_line(&mut reader);
                        assert!(resp == "DELETED" || resp == "NOT_FOUND", "{resp}");
                        acked.insert(key, None);
                    } else {
                        let val = t * 1_000_000 + i;
                        let data = val.to_string();
                        w.write_all(
                            format!("set {key} 0 0 {}\r\n{data}\r\n", data.len()).as_bytes(),
                        )
                        .unwrap();
                        assert_eq!(read_line(&mut reader), "STORED");
                        acked.insert(key, Some(val));
                    }
                }
                acked
            })
        })
        .collect();
    let mut expected: HashMap<u64, Option<u64>> = HashMap::new();
    for h in handles {
        expected.extend(h.join().expect("client thread"));
    }

    // Graceful shutdown: workers joined, epochs quiesced. The returned
    // Arc is the last live handle; dropping it releases the pools.
    let cache = server.shutdown();
    drop(cache);

    // Power loss after shutdown: revert every pool to exactly what a
    // crash would leave durable, then recover from the images.
    for pool in &pools {
        let img = pool.capture_crash_image().expect("crash-sim pool");
        // SAFETY: no live cache references the pools (dropped above).
        unsafe { pool.crash_to_image(&img).expect("crash-sim pool") };
    }
    let (recovered, _report) =
        ShardedNvMemcached::recover(&pools, 100_000).expect("geometry recorded");

    let mut ctx = recovered.register();
    for (&key, &want) in &expected {
        assert_eq!(
            recovered.get(&mut ctx, key),
            want,
            "key {key}: acknowledged state lost across shutdown + crash + recovery"
        );
    }
    let live = expected.values().filter(|v| v.is_some()).count();
    assert_eq!(recovered.len(), live, "recovered item count != acknowledged live keys");
}

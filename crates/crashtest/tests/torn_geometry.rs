//! Recovery fixtures for torn resize-header states — the two edges of
//! the resize state machine that the random crash enumeration cannot
//! pin deterministically:
//!
//! * **committed-pending** (`CUR == NEW != 0`): the crash landed between
//!   the CUR swing and the NEW clear. Recovery must *roll forward* —
//!   accept the image, clear NEW, and serve the fully migrated table.
//! * **corrupt NEW**: the durable NEW word points at garbage (a torn or
//!   foreign write). `try_attach` must *cleanly reject* the pool with a
//!   [`GeometryError`] instead of walking wild pointers.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use logfree::hash::{H_CUR, H_NEW};
use logfree::{GeometryError, HashTable, LinkOps};
use nvalloc::NvDomain;
use pmem::{LatencyModel, Mode, PmemPool, PoolBuilder};

const ROOT: usize = 1;

fn crashsim_pool() -> Arc<PmemPool> {
    PoolBuilder::new(16 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
}

/// Builds a 16-bucket table, fills it with `1..=n` (value `k * 7`), and
/// runs one full 4x grow so the image is steady at 64 buckets.
fn grown_table(pool: &Arc<PmemPool>, n: u64) -> Arc<NvDomain> {
    let domain = NvDomain::create(Arc::clone(pool));
    let ops = LinkOps::new(Arc::clone(pool), None);
    let ht = HashTable::create(&domain, ROOT, 16, ops).unwrap();
    let mut ctx = domain.register();
    for k in 1..=n {
        ht.insert(&mut ctx, k, k * 7).unwrap();
    }
    ht.grow(&mut ctx, 4).unwrap();
    ht.finish_resize(&mut ctx).unwrap();
    ctx.drain_all();
    domain
}

/// Durably overwrites the header word at `hdr + off` with `value`.
fn forge_header_word(pool: &Arc<PmemPool>, off: usize, value: u64) {
    let hdr = pool.root(ROOT) as usize;
    let mut flusher = pool.flusher();
    pool.atomic_u64(hdr + off).store(value, Ordering::Release);
    flusher.persist(hdr + off, 8);
}

#[test]
fn committed_pending_header_rolls_forward() {
    let pool = crashsim_pool();
    {
        let domain = grown_table(&pool, 100);
        // Forge the committed-pending state the crash enumeration can
        // only hit probabilistically: CUR already swung to the new
        // array, NEW not yet cleared.
        let hdr = pool.root(ROOT) as usize;
        let cur = pool.atomic_u64(hdr + H_CUR).load(Ordering::Acquire);
        forge_header_word(&pool, H_NEW, cur);
        drop(domain);
    }
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };

    let domain = NvDomain::attach(Arc::clone(&pool));
    let ht = HashTable::try_attach(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None))
        .expect("committed-pending geometry is valid, not torn");
    assert!(ht.resize_in_flight(), "CUR == NEW reads as a pending resize");
    let mut flusher = pool.flusher();
    ht.recover(&mut flusher);
    let report = domain.recover_leaks(|a| ht.contains_node_at(a));
    let mut ctx = domain.register();
    assert!(ht.finish_resize(&mut ctx).unwrap(), "roll-forward clears the pending commit");
    ctx.drain_all();
    ht.sweep_orphan_regions(&mut ctx);

    assert!(!ht.resize_in_flight());
    assert_eq!(ht.n_buckets(), 64);
    assert_eq!(ht.check_routing(), 0);
    let mut snap = ht.snapshot();
    snap.sort_unstable();
    let expect: Vec<_> = (1..=100u64).map(|k| (k, k * 7)).collect();
    assert_eq!(snap, expect, "no key lost in roll-forward (leaks: {report:?})");
    let reachable = ht.collect_reachable();
    assert_eq!(domain.count_unreachable(|a| reachable.contains(&a)), 0, "zero leaks");

    // The rolled-forward table keeps serving.
    assert!(ht.insert(&mut ctx, 9999, 1).unwrap());
    assert_eq!(ht.get(&mut ctx, 9999), Some(1));
}

#[test]
fn corrupt_new_array_is_cleanly_rejected() {
    let pool = crashsim_pool();
    {
        let domain = grown_table(&pool, 50);
        // Forge a NEW word pointing far outside the pool — a torn write
        // or a foreign root. Low mark bits must stay clear so the word
        // parses as an address, not as an in-flight dirty update.
        forge_header_word(&pool, H_NEW, u64::MAX << 3);
        drop(domain);
    }
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };

    let domain = NvDomain::attach(Arc::clone(&pool));
    let err = HashTable::try_attach(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None))
        .expect_err("a wild NEW pointer must not be walked");
    assert!(
        matches!(err, GeometryError::BadArray { .. }),
        "expected BadArray for the forged NEW word, got {err:?}"
    );
}

#[test]
fn new_array_with_bogus_bucket_count_is_cleanly_rejected() {
    let pool = crashsim_pool();
    {
        let domain = grown_table(&pool, 50);
        // Point NEW *inside* the current array: in bounds, but the word
        // read as `n_buckets` is a bucket link (an address, far from a
        // plausible power-of-two count) or zero.
        let hdr = pool.root(ROOT) as usize;
        let cur = pool.atomic_u64(hdr + H_CUR).load(Ordering::Acquire);
        forge_header_word(&pool, H_NEW, cur + 8);
        drop(domain);
    }
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };

    let domain = NvDomain::attach(Arc::clone(&pool));
    let err = HashTable::try_attach(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None))
        .expect_err("a mis-aimed NEW pointer must not be accepted");
    assert!(matches!(err, GeometryError::BadArray { .. }), "got {err:?}");
}

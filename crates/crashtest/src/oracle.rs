//! The operation oracle: what must (and may) survive a crash at event
//! index `k`.
//!
//! The driver records, during the count phase, the event-counter value at
//! every operation boundary (`spans[i]` = events before op `i` started;
//! `spans[n]` = total). A crash at event `k` therefore partitions the
//! trace into
//!
//! * **completed** operations — every op `i` with `spans[i + 1] <= k`
//!   returned before the crash; its effects are durably owed,
//! * at most one **in-flight** operation (single-threaded traces) — the
//!   op `m` with `spans[m] <= k < spans[m + 1]`; it must be *atomic*:
//!   its key is in the pre-state or the post-state (or a documented
//!   intermediate for upserts), never anything else,
//! * **unstarted** operations — no trace of them may exist.
//!
//! Two strictness levels:
//!
//! * **Strict** (no link cache): the recovered state must equal the
//!   completed-prefix state exactly, modulo the in-flight key.
//! * **Cache-relaxed** (link cache attached): a completed update whose
//!   link still sits in the volatile link cache is lost by a crash (§4.1
//!   defers its durability to the next dependent operation). Because
//!   every operation scans its own key *before* modifying, at most the
//!   **last** operation per key can be cached — so each key may also
//!   legitimately hold its state from just before that last operation,
//!   and nothing older or foreign.

use std::collections::BTreeMap;

use crate::trace::TraceOp;

/// How the oracle interprets the trace for a given target.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// `Insert` is an upsert (replaces an existing value, with a
    /// transient remove+reinsert window), as in `NvMemcached::set`.
    pub upsert: bool,
    /// Cache-relaxed validation (see module docs).
    pub relaxed: bool,
}

/// One durability violation found at a crash point.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The `(trace seed, event index)` reproduction pair.
    pub seed: u64,
    /// Crash point (event index) at which the violation was observed.
    pub crash_point: u64,
    /// Offending key (0 for structural violations such as leaks).
    pub key: u64,
    /// What the recovered structure reported for the key.
    pub got: Option<u64>,
    /// The states the oracle would have accepted.
    pub allowed: Vec<Option<u64>>,
    /// Human-readable context.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crash point (seed={}, event={}) key {}: recovered {:?}, allowed {:?} — {}",
            self.seed, self.crash_point, self.key, self.got, self.allowed, self.detail
        )
    }
}

/// Applies `op` to `state`, returning `(key, pre_state)` —
/// the model of a *completed* operation.
fn apply_model(state: &mut BTreeMap<u64, u64>, op: &TraceOp, upsert: bool) -> (u64, Option<u64>) {
    match *op {
        TraceOp::Insert(k, v) => {
            let pre = state.get(&k).copied();
            if upsert || pre.is_none() {
                state.insert(k, v);
            }
            (k, pre)
        }
        TraceOp::Remove(k) => (k, state.remove(&k)),
        TraceOp::Get(k) => (k, state.get(&k).copied()),
    }
}

/// The states the in-flight operation's key may legitimately hold.
fn in_flight_allowed(op: &TraceOp, pre: Option<u64>, upsert: bool) -> Vec<Option<u64>> {
    match *op {
        TraceOp::Insert(k, v) => {
            let _ = k;
            if upsert {
                // Upsert over an existing key passes through a transient
                // "removed" state (remove + reinsert).
                let mut allowed = vec![pre, Some(v)];
                if pre.is_some() {
                    allowed.push(None);
                }
                allowed
            } else if pre.is_some() {
                vec![pre] // failed insert: no change permitted
            } else {
                vec![None, Some(v)]
            }
        }
        TraceOp::Remove(_) => {
            if pre.is_some() {
                vec![pre, None]
            } else {
                vec![pre]
            }
        }
        TraceOp::Get(_) => vec![pre],
    }
}

/// Validates the recovered key/value map against the oracle for a crash
/// at event `k`. Returns every violation found (empty = consistent).
pub fn validate(
    seed: u64,
    ops: &[TraceOp],
    spans: &[u64],
    k: u64,
    recovered: &BTreeMap<u64, u64>,
    cfg: OracleConfig,
) -> Vec<Violation> {
    assert_eq!(spans.len(), ops.len() + 1, "one span boundary per op plus the total");
    let completed = (0..ops.len()).take_while(|&i| spans[i + 1] <= k).count();

    let mut state: BTreeMap<u64, u64> = BTreeMap::new();
    // Cache-relaxed: per key, the set of additionally tolerated states
    // (the pre-state of the last completed op on that key).
    let mut relaxed_extra: BTreeMap<u64, Option<u64>> = BTreeMap::new();
    for op in &ops[..completed] {
        let (key, pre) = apply_model(&mut state, op, cfg.upsert);
        if cfg.relaxed {
            // Each op scans its key before modifying, so every *earlier*
            // update to this key is durable; only this op's own update
            // (if any) may still be cached — tolerate its pre-state.
            let post = state.get(&key).copied();
            if post != pre {
                relaxed_extra.insert(key, pre);
            } else {
                relaxed_extra.remove(&key);
            }
        }
    }

    let in_flight = (completed < ops.len() && spans[completed] <= k).then(|| &ops[completed]);

    // Per-key allowed states.
    let mut allowed: BTreeMap<u64, Vec<Option<u64>>> = BTreeMap::new();
    let mut note = |key: u64, s: Option<u64>| {
        let v = allowed.entry(key).or_default();
        if !v.contains(&s) {
            v.push(s);
        }
    };
    for op in &ops[..completed] {
        note(op.key(), state.get(&op.key()).copied());
    }
    if cfg.relaxed {
        for (&key, &pre) in &relaxed_extra {
            note(key, pre);
        }
    }
    if let Some(op) = in_flight {
        for s in in_flight_allowed(op, state.get(&op.key()).copied(), cfg.upsert) {
            note(op.key(), s);
        }
    }

    // Every key any op touched, plus every recovered key (foreign keys
    // must be flagged as corruption).
    let mut keys: Vec<u64> =
        ops.iter().map(|op| op.key()).chain(recovered.keys().copied()).collect();
    keys.sort_unstable();
    keys.dedup();

    let mut violations = Vec::new();
    for key in keys {
        let got = recovered.get(&key).copied();
        let accept = allowed.get(&key).cloned().unwrap_or_else(|| vec![None]);
        if !accept.contains(&got) {
            violations.push(Violation {
                seed,
                crash_point: k,
                key,
                got,
                allowed: accept,
                detail: format!(
                    "{} ops completed before the crash{}",
                    completed,
                    if in_flight.is_some() { ", one in flight" } else { "" }
                ),
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceOp::*;

    fn strict() -> OracleConfig {
        OracleConfig { upsert: false, relaxed: false }
    }

    #[test]
    fn completed_prefix_must_match_exactly() {
        let ops = [Insert(1, 10), Insert(2, 20), Remove(1)];
        let spans = [0, 4, 8, 12];
        // Crash after everything: {2: 20} is the only valid state.
        let good: BTreeMap<u64, u64> = [(2, 20)].into();
        assert!(validate(0, &ops, &spans, 12, &good, strict()).is_empty());
        // A lost completed insert is a violation.
        let bad: BTreeMap<u64, u64> = BTreeMap::new();
        assert!(!validate(0, &ops, &spans, 12, &bad, strict()).is_empty());
        // A completed remove resurfacing is a violation.
        let bad: BTreeMap<u64, u64> = [(1, 10), (2, 20)].into();
        assert!(!validate(0, &ops, &spans, 12, &bad, strict()).is_empty());
    }

    #[test]
    fn in_flight_op_is_atomic() {
        let ops = [Insert(1, 10), Insert(2, 20)];
        let spans = [0, 4, 9];
        // Crash mid-insert of key 2: present or absent both fine...
        let pre: BTreeMap<u64, u64> = [(1, 10)].into();
        let post: BTreeMap<u64, u64> = [(1, 10), (2, 20)].into();
        assert!(validate(0, &ops, &spans, 6, &pre, strict()).is_empty());
        assert!(validate(0, &ops, &spans, 6, &post, strict()).is_empty());
        // ...a corrupt value is not.
        let corrupt: BTreeMap<u64, u64> = [(1, 10), (2, 999)].into();
        assert!(!validate(0, &ops, &spans, 6, &corrupt, strict()).is_empty());
        // ...and losing the *completed* key 1 is not.
        let lost: BTreeMap<u64, u64> = [(2, 20)].into();
        assert!(!validate(0, &ops, &spans, 6, &lost, strict()).is_empty());
    }

    #[test]
    fn foreign_keys_are_corruption() {
        let ops = [Insert(1, 10)];
        let spans = [0, 4];
        let bad: BTreeMap<u64, u64> = [(1, 10), (77, 1)].into();
        let v = validate(0, &ops, &spans, 4, &bad, strict());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].key, 77);
    }

    #[test]
    fn relaxed_tolerates_only_the_last_update_per_key() {
        let ops = [Insert(1, 10), Remove(1)];
        let spans = [0, 4, 8];
        let cfg = OracleConfig { upsert: false, relaxed: true };
        // The completed remove may still sit in the link cache: key 1 may
        // survive with its pre-remove value...
        let stale: BTreeMap<u64, u64> = [(1, 10)].into();
        assert!(validate(0, &ops, &spans, 8, &stale, cfg).is_empty());
        // ...but a never-stored value is still corruption.
        let corrupt: BTreeMap<u64, u64> = [(1, 9)].into();
        assert!(!validate(0, &ops, &spans, 8, &corrupt, cfg).is_empty());
        // Strict mode rejects the stale survivor.
        assert!(!validate(0, &ops, &spans, 8, &stale, strict()).is_empty());
    }

    #[test]
    fn upsert_in_flight_may_pass_through_absent() {
        let ops = [Insert(1, 10), Insert(1, 11)];
        let spans = [0, 4, 9];
        let cfg = OracleConfig { upsert: true, relaxed: false };
        for img in [vec![(1u64, 10u64)], vec![(1, 11)], vec![]] {
            let m: BTreeMap<u64, u64> = img.into_iter().collect();
            assert!(validate(0, &ops, &spans, 6, &m, cfg).is_empty(), "{m:?}");
        }
        // Set semantics would reject the replacement value mid-flight...
        let m: BTreeMap<u64, u64> = [(1, 11)].into();
        assert!(!validate(0, &ops, &spans, 6, &m, strict()).is_empty());
    }

    #[test]
    fn unstarted_ops_must_leave_no_trace() {
        let ops = [Insert(1, 10), Insert(2, 20)];
        let spans = [0, 4, 9];
        // Crash before op 1 started any event: key 2 must be absent.
        let m: BTreeMap<u64, u64> = [(1, 10), (2, 20)].into();
        assert!(!validate(0, &ops, &spans, 3, &m, strict()).is_empty());
    }
}

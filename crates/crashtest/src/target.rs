//! The [`CrashTarget`] abstraction: everything the drivers need to crash
//! and recover a structure, implemented for all four log-free structures
//! and NV-Memcached.

use std::sync::Arc;

use linkcache::LinkCache;
use logfree::{marked::DIRTY, Bst, HashTable, LinkOps, LinkedList, SkipList};
use nvalloc::{NvDomain, RecoveryReport, ThreadCtx};
use nvmemcached::NvMemcached;
use pmem::PmemPool;

use crate::trace::TraceOp;

/// Root-directory slot used by the structure targets.
pub const CRASHTEST_ROOT: usize = 1;

/// Hash-table bucket count used by the table-based targets (small, so
/// short traces still produce per-bucket chains).
pub const N_BUCKETS: usize = 16;

/// A structure the crash-point drivers can create, exercise, crash and
/// recover.
///
/// `create` and `recover` own the whole lifecycle (domain + structure +
/// post-crash repair) so the drivers stay generic; `recover` must run the
/// structure's `recover` pass *and* [`NvDomain::recover_leaks`].
pub trait CrashTarget: Sized + Send + Sync {
    /// Display name for reports.
    const NAME: &'static str;
    /// Whether [`TraceOp::Insert`] replaces an existing value (upsert).
    const UPSERT: bool = false;

    /// Creates a fresh instance (formats the domain) over `pool`.
    fn create(pool: &Arc<PmemPool>, use_link_cache: bool) -> Self;

    /// The allocation domain (drivers register worker threads here).
    fn domain(&self) -> &Arc<NvDomain>;

    /// Applies one trace operation; returns whether it changed the
    /// structure (insert stored / remove removed), for the
    /// multi-threaded audit log.
    fn apply(&self, ctx: &mut ThreadCtx, op: TraceOp) -> bool;

    /// Re-attaches after a crash, repairs the structure, and reclaims
    /// leaks.
    fn recover(pool: &Arc<PmemPool>) -> (Self, RecoveryReport);

    /// Quiescent snapshot of live `(key, value)` pairs.
    fn snapshot(&self) -> Vec<(u64, u64)>;

    /// §5.5 reachability oracle for the leak audit.
    fn reachable(&self, addr: usize) -> bool;
}

fn make_ops(pool: &Arc<PmemPool>, use_link_cache: bool) -> LinkOps {
    let lc =
        use_link_cache.then(|| Arc::new(LinkCache::with_default_size(Arc::clone(pool), DIRTY)));
    LinkOps::new(Arc::clone(pool), lc)
}

/// Generates the four structure targets, which share their shape.
macro_rules! structure_target {
    ($target:ident, $name:literal, $structure:ident, $create:expr) => {
        /// Crash-target wrapper (domain + structure).
        pub struct $target {
            domain: Arc<NvDomain>,
            ds: $structure,
        }

        impl CrashTarget for $target {
            const NAME: &'static str = $name;

            fn create(pool: &Arc<PmemPool>, use_link_cache: bool) -> Self {
                let domain = NvDomain::create(Arc::clone(pool));
                let ops = make_ops(pool, use_link_cache);
                #[allow(clippy::redundant_closure_call)]
                let ds = ($create)(&domain, ops);
                Self { domain, ds }
            }

            fn domain(&self) -> &Arc<NvDomain> {
                &self.domain
            }

            fn apply(&self, ctx: &mut ThreadCtx, op: TraceOp) -> bool {
                match op {
                    TraceOp::Insert(k, v) => {
                        self.ds.insert(ctx, k, v).expect("pool sized for trace")
                    }
                    TraceOp::Remove(k) => self.ds.remove(ctx, k).is_some(),
                    TraceOp::Get(k) => {
                        let _ = self.ds.get(ctx, k);
                        false
                    }
                }
            }

            fn recover(pool: &Arc<PmemPool>) -> (Self, RecoveryReport) {
                let domain = NvDomain::attach(Arc::clone(pool));
                let ds = $structure::attach(&domain, CRASHTEST_ROOT, make_ops(pool, false));
                let mut flusher = pool.flusher();
                ds.recover(&mut flusher);
                let report = domain.recover_leaks(|addr| ds.contains_node_at(addr));
                (Self { domain, ds }, report)
            }

            fn snapshot(&self) -> Vec<(u64, u64)> {
                self.ds.snapshot()
            }

            fn reachable(&self, addr: usize) -> bool {
                self.ds.contains_node_at(addr)
            }
        }
    };
}

structure_target!(ListTarget, "LinkedList", LinkedList, |domain: &Arc<NvDomain>, ops| {
    LinkedList::create(domain, CRASHTEST_ROOT, ops)
});

structure_target!(HashTarget, "HashTable", HashTable, |domain: &Arc<NvDomain>, ops| {
    HashTable::create(domain, CRASHTEST_ROOT, N_BUCKETS, ops).expect("pool sized for table")
});

structure_target!(SkipTarget, "SkipList", SkipList, |domain: &Arc<NvDomain>, ops| {
    let mut ctx = domain.register();
    SkipList::create(domain, &mut ctx, CRASHTEST_ROOT, ops).expect("pool sized for skip list")
});

structure_target!(BstTarget, "Bst", Bst, |domain: &Arc<NvDomain>, ops| {
    let mut ctx = domain.register();
    Bst::create(domain, &mut ctx, CRASHTEST_ROOT, ops).expect("pool sized for bst")
});

/// NV-Memcached as a crash target. `Insert` maps to `set` (upsert),
/// `Remove` to `delete`. Capacity is effectively unbounded so eviction
/// never perturbs the oracle.
pub struct MemcachedTarget {
    mc: NvMemcached,
}

/// Soft capacity far above any trace size: eviction must never fire.
pub(crate) const MC_CAPACITY: usize = 1 << 30;

impl CrashTarget for MemcachedTarget {
    const NAME: &'static str = "NvMemcached";
    const UPSERT: bool = true;

    fn create(pool: &Arc<PmemPool>, use_link_cache: bool) -> Self {
        let mc = NvMemcached::create(Arc::clone(pool), N_BUCKETS, MC_CAPACITY, use_link_cache)
            .expect("pool sized for cache");
        Self { mc }
    }

    fn domain(&self) -> &Arc<NvDomain> {
        self.mc.domain()
    }

    fn apply(&self, ctx: &mut ThreadCtx, op: TraceOp) -> bool {
        match op {
            TraceOp::Insert(k, v) => {
                self.mc.set(ctx, k, v).expect("pool sized for trace");
                true
            }
            TraceOp::Remove(k) => self.mc.delete(ctx, k).is_some(),
            TraceOp::Get(k) => {
                let _ = self.mc.get(ctx, k);
                false
            }
        }
    }

    fn recover(pool: &Arc<PmemPool>) -> (Self, RecoveryReport) {
        let (mc, report) = NvMemcached::recover(Arc::clone(pool), MC_CAPACITY);
        (Self { mc }, report)
    }

    fn snapshot(&self) -> Vec<(u64, u64)> {
        self.mc.snapshot()
    }

    fn reachable(&self, addr: usize) -> bool {
        self.mc.contains_node_at(addr)
    }
}

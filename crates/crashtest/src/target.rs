//! The [`CrashTarget`] abstraction: everything the drivers need to crash
//! and recover a structure, implemented for all four log-free structures
//! and NV-Memcached.

use std::sync::Arc;

use linkcache::LinkCache;
use logfree::{marked::DIRTY, Bst, HashTable, LinkOps, LinkedList, SkipList};
use nvalloc::{NvDomain, RecoveryReport, ThreadCtx};
use nvmemcached::NvMemcached;
use pmem::PmemPool;

use crate::trace::TraceOp;

/// Root-directory slot used by the structure targets.
pub const CRASHTEST_ROOT: usize = 1;

/// Hash-table bucket count used by the table-based targets (small, so
/// short traces still produce per-bucket chains).
pub const N_BUCKETS: usize = 16;

/// A structure the crash-point drivers can create, exercise, crash and
/// recover.
///
/// `create` and `recover` own the whole lifecycle (domain + structure +
/// post-crash repair) so the drivers stay generic; `recover` must run the
/// structure's `recover` pass *and* [`NvDomain::recover_leaks`].
pub trait CrashTarget: Sized + Send + Sync {
    /// Display name for reports.
    const NAME: &'static str;
    /// Whether [`TraceOp::Insert`] replaces an existing value (upsert).
    const UPSERT: bool = false;

    /// Creates a fresh instance (formats the domain) over `pool`.
    fn create(pool: &Arc<PmemPool>, use_link_cache: bool) -> Self;

    /// The allocation domain (drivers register worker threads here).
    fn domain(&self) -> &Arc<NvDomain>;

    /// Applies one trace operation; returns whether it changed the
    /// structure (insert stored / remove removed), for the
    /// multi-threaded audit log.
    fn apply(&self, ctx: &mut ThreadCtx, op: TraceOp) -> bool;

    /// Re-attaches after a crash, repairs the structure, and reclaims
    /// leaks.
    fn recover(pool: &Arc<PmemPool>) -> (Self, RecoveryReport);

    /// Quiescent snapshot of live `(key, value)` pairs.
    fn snapshot(&self) -> Vec<(u64, u64)>;

    /// §5.5 reachability oracle for the leak audit.
    fn reachable(&self, addr: usize) -> bool;

    /// Target-specific structural invariant, audited after every
    /// recovery (e.g. bucket routing and resize quiescence for the hash
    /// table). `None` means healthy; `Some(detail)` becomes a violation.
    fn post_recovery_check(&self) -> Option<String> {
        None
    }
}

fn make_ops(pool: &Arc<PmemPool>, use_link_cache: bool) -> LinkOps {
    let lc =
        use_link_cache.then(|| Arc::new(LinkCache::with_default_size(Arc::clone(pool), DIRTY)));
    LinkOps::new(Arc::clone(pool), lc)
}

/// Generates the four structure targets, which share their shape.
macro_rules! structure_target {
    ($target:ident, $name:literal, $structure:ident, $create:expr) => {
        /// Crash-target wrapper (domain + structure).
        pub struct $target {
            domain: Arc<NvDomain>,
            ds: $structure,
        }

        impl CrashTarget for $target {
            const NAME: &'static str = $name;

            fn create(pool: &Arc<PmemPool>, use_link_cache: bool) -> Self {
                let domain = NvDomain::create(Arc::clone(pool));
                let ops = make_ops(pool, use_link_cache);
                #[allow(clippy::redundant_closure_call)]
                let ds = ($create)(&domain, ops);
                Self { domain, ds }
            }

            fn domain(&self) -> &Arc<NvDomain> {
                &self.domain
            }

            fn apply(&self, ctx: &mut ThreadCtx, op: TraceOp) -> bool {
                match op {
                    TraceOp::Insert(k, v) => {
                        self.ds.insert(ctx, k, v).expect("pool sized for trace")
                    }
                    TraceOp::Remove(k) => self.ds.remove(ctx, k).is_some(),
                    TraceOp::Get(k) => {
                        let _ = self.ds.get(ctx, k);
                        false
                    }
                }
            }

            fn recover(pool: &Arc<PmemPool>) -> (Self, RecoveryReport) {
                let domain = NvDomain::attach(Arc::clone(pool));
                let ds = $structure::attach(&domain, CRASHTEST_ROOT, make_ops(pool, false));
                let mut flusher = pool.flusher();
                ds.recover(&mut flusher);
                let report = domain.recover_leaks(|addr| ds.contains_node_at(addr));
                (Self { domain, ds }, report)
            }

            fn snapshot(&self) -> Vec<(u64, u64)> {
                self.ds.snapshot()
            }

            fn reachable(&self, addr: usize) -> bool {
                self.ds.contains_node_at(addr)
            }
        }
    };
}

structure_target!(ListTarget, "LinkedList", LinkedList, |domain: &Arc<NvDomain>, ops| {
    LinkedList::create(domain, CRASHTEST_ROOT, ops)
});

structure_target!(SkipTarget, "SkipList", SkipList, |domain: &Arc<NvDomain>, ops| {
    let mut ctx = domain.register();
    SkipList::create(domain, &mut ctx, CRASHTEST_ROOT, ops).expect("pool sized for skip list")
});

structure_target!(BstTarget, "Bst", Bst, |domain: &Arc<NvDomain>, ops| {
    let mut ctx = domain.register();
    Bst::create(domain, &mut ctx, CRASHTEST_ROOT, ops).expect("pool sized for bst")
});

/// Applies one trace op to a hash table (shared by the hash-flavoured
/// targets).
fn apply_hash(ds: &HashTable, ctx: &mut ThreadCtx, op: TraceOp) -> bool {
    match op {
        TraceOp::Insert(k, v) => ds.insert(ctx, k, v).expect("pool sized for trace"),
        TraceOp::Remove(k) => ds.remove(ctx, k).is_some(),
        TraceOp::Get(k) => {
            let _ = ds.get(ctx, k);
            false
        }
    }
}

/// The full resize-aware hash-table recovery sequence: attach, repair
/// the chains, reclaim leaks (with the both-arrays reachability oracle,
/// *before* any allocation), then roll any in-flight resize forward and
/// sweep bucket-array regions orphaned by a crash between
/// allocate-and-publish.
fn recover_hash(pool: &Arc<PmemPool>) -> (Arc<NvDomain>, HashTable, RecoveryReport) {
    let domain = NvDomain::attach(Arc::clone(pool));
    let ds = HashTable::attach(&domain, CRASHTEST_ROOT, make_ops(pool, false));
    let mut flusher = pool.flusher();
    ds.recover(&mut flusher);
    let report = domain.recover_leaks(|addr| ds.contains_node_at(addr));
    let mut ctx = domain.register();
    ds.finish_resize(&mut ctx).expect("pool sized to finish the resize");
    ctx.drain_all();
    ds.sweep_orphan_regions(&mut ctx);
    drop(ctx);
    (domain, ds, report)
}

/// Post-recovery structural audit shared by the hash-flavoured targets:
/// the resize must be quiescent and every live node must hash to the
/// bucket chain it sits in.
fn check_hash(ds: &HashTable) -> Option<String> {
    if ds.resize_in_flight() {
        return Some("resize still in flight after recovery".into());
    }
    let misrouted = ds.check_routing();
    (misrouted != 0).then(|| format!("{misrouted} live node(s) in the wrong bucket after recovery"))
}

/// The hash table. Hand-written rather than macro-generated: its
/// recovery is resize-aware and its post-recovery check audits bucket
/// routing, neither of which the other structures have.
pub struct HashTarget {
    domain: Arc<NvDomain>,
    ds: HashTable,
}

impl CrashTarget for HashTarget {
    const NAME: &'static str = "HashTable";

    fn create(pool: &Arc<PmemPool>, use_link_cache: bool) -> Self {
        let domain = NvDomain::create(Arc::clone(pool));
        let ops = make_ops(pool, use_link_cache);
        let ds = HashTable::create(&domain, CRASHTEST_ROOT, N_BUCKETS, ops)
            .expect("pool sized for table");
        Self { domain, ds }
    }

    fn domain(&self) -> &Arc<NvDomain> {
        &self.domain
    }

    fn apply(&self, ctx: &mut ThreadCtx, op: TraceOp) -> bool {
        apply_hash(&self.ds, ctx, op)
    }

    fn recover(pool: &Arc<PmemPool>) -> (Self, RecoveryReport) {
        let (domain, ds, report) = recover_hash(pool);
        (Self { domain, ds }, report)
    }

    fn snapshot(&self) -> Vec<(u64, u64)> {
        self.ds.snapshot()
    }

    fn reachable(&self, addr: usize) -> bool {
        self.ds.contains_node_at(addr)
    }

    fn post_recovery_check(&self) -> Option<String> {
        check_hash(&self.ds)
    }
}

/// Trace-op index at which [`ResizeTarget`] kicks off a 4x grow (modulo
/// [`RESIZE_GROW_EVERY`]). Early enough that the default 64-op trace
/// covers publish, migration *and* commit crash points in one pass.
pub const RESIZE_GROW_AT: u64 = 20;
/// Grow period in ops: a long (torture) run keeps starting fresh grows,
/// a short exhaustive trace sees exactly one.
pub const RESIZE_GROW_EVERY: u64 = 2_500;

/// A hash table whose trace triggers an incremental 4x grow mid-run, so
/// the exhaustive driver enumerates a crash at every clwb, fence,
/// link-publish and resize-state event of a live migration — and the
/// torture driver races worker threads against repeated grows.
pub struct ResizeTarget {
    domain: Arc<NvDomain>,
    ds: HashTable,
    ops_applied: std::sync::atomic::AtomicU64,
}

impl ResizeTarget {
    /// The underlying table (mutation tests flip its fault-injection
    /// knobs).
    pub fn table(&self) -> &HashTable {
        &self.ds
    }
}

impl CrashTarget for ResizeTarget {
    const NAME: &'static str = "HashTable+resize";

    fn create(pool: &Arc<PmemPool>, use_link_cache: bool) -> Self {
        let domain = NvDomain::create(Arc::clone(pool));
        let ops = make_ops(pool, use_link_cache);
        let ds = HashTable::create(&domain, CRASHTEST_ROOT, N_BUCKETS, ops)
            .expect("pool sized for table");
        Self { domain, ds, ops_applied: std::sync::atomic::AtomicU64::new(0) }
    }

    fn domain(&self) -> &Arc<NvDomain> {
        &self.domain
    }

    fn apply(&self, ctx: &mut ThreadCtx, op: TraceOp) -> bool {
        let n = self.ops_applied.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if n % RESIZE_GROW_EVERY == RESIZE_GROW_AT {
            // Best effort: a grow already in flight refuses, and OOM just
            // leaves the table denser — neither may fail the trace.
            let _ = self.ds.grow(ctx, 4);
        }
        apply_hash(&self.ds, ctx, op)
    }

    fn recover(pool: &Arc<PmemPool>) -> (Self, RecoveryReport) {
        let (domain, ds, report) = recover_hash(pool);
        (Self { domain, ds, ops_applied: std::sync::atomic::AtomicU64::new(0) }, report)
    }

    fn snapshot(&self) -> Vec<(u64, u64)> {
        self.ds.snapshot()
    }

    fn reachable(&self, addr: usize) -> bool {
        self.ds.contains_node_at(addr)
    }

    fn post_recovery_check(&self) -> Option<String> {
        check_hash(&self.ds)
    }
}

/// NV-Memcached as a crash target. `Insert` maps to `set` (upsert),
/// `Remove` to `delete`. Capacity is effectively unbounded so eviction
/// never perturbs the oracle.
pub struct MemcachedTarget {
    mc: NvMemcached,
}

/// Soft capacity far above any trace size: eviction must never fire.
pub(crate) const MC_CAPACITY: usize = 1 << 30;

impl CrashTarget for MemcachedTarget {
    const NAME: &'static str = "NvMemcached";
    const UPSERT: bool = true;

    fn create(pool: &Arc<PmemPool>, use_link_cache: bool) -> Self {
        let mc = NvMemcached::create(Arc::clone(pool), N_BUCKETS, MC_CAPACITY, use_link_cache)
            .expect("pool sized for cache");
        Self { mc }
    }

    fn domain(&self) -> &Arc<NvDomain> {
        self.mc.domain()
    }

    fn apply(&self, ctx: &mut ThreadCtx, op: TraceOp) -> bool {
        match op {
            TraceOp::Insert(k, v) => {
                self.mc.set(ctx, k, v).expect("pool sized for trace");
                true
            }
            TraceOp::Remove(k) => self.mc.delete(ctx, k).is_some(),
            TraceOp::Get(k) => {
                let _ = self.mc.get(ctx, k);
                false
            }
        }
    }

    fn recover(pool: &Arc<PmemPool>) -> (Self, RecoveryReport) {
        let (mc, report) = NvMemcached::recover(Arc::clone(pool), MC_CAPACITY);
        (Self { mc }, report)
    }

    fn snapshot(&self) -> Vec<(u64, u64)> {
        self.mc.snapshot()
    }

    fn reachable(&self, addr: usize) -> bool {
        self.mc.contains_node_at(addr)
    }

    fn post_recovery_check(&self) -> Option<String> {
        self.mc
            .resize_in_flight()
            .then(|| "cache resize still in flight after recovery".to_string())
    }
}

//! Crash-point enumeration over the **sharded** NV-Memcached.
//!
//! The sharded cache spreads keys over N independent pools, so a power
//! failure is an *instantaneous cut across all shards at once*. The
//! driver models exactly that: one shared [`CrashPlan`] is installed on
//! every shard pool (the event counter is global, so a crash point `k`
//! means "the k-th persist-relevant event of the whole cache"), and when
//! the plan fires the durable images of **all** pools are captured in one
//! synchronous callback — a consistent cross-shard cut, since the trace
//! is single-threaded.
//!
//! Validation then checks the cross-shard invariant the sharding design
//! promises — *a crash during an operation in shard i never corrupts
//! shard j*:
//!
//! 1. the **global oracle** over the merged snapshot (same upsert oracle
//!    as the unsharded `MemcachedTarget`),
//! 2. **routing containment** — every recovered key lives in exactly the
//!    shard it routes to,
//! 3. a **per-shard oracle** — each shard's recovered state is validated
//!    independently against the sub-trace that routed to it (so a shard
//!    losing a completed update is attributed to that shard, not to the
//!    cache as a whole), and
//! 4. a **per-shard leak audit** — zero allocated-but-unreachable slots
//!    in every shard after its recovery pass.
//!
//! The per-shard sub-spans use each sub-operation's *end* boundary from
//! the global span table. Between one shard's consecutive operations the
//! global event counter advances through other shards' events; a crash
//! landing in that gap treats the shard's next operation as (vacuously)
//! in-flight, which only widens the accepted states of that single key by
//! its own post-state — every lost-update, corruption and foreign-key
//! check stays exact, and the global oracle of step 1 is exact for
//! everything.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use nvmemcached::sharded::shard_of;
use nvmemcached::ShardedNvMemcached;
use pmem::{CrashEvent, CrashPlan, Mode, PmemPool, PoolBuilder};

use crate::driver::{select_points, CrashConfig, CrashReport};
use crate::oracle::{validate, OracleConfig, Violation};
use crate::target::{MC_CAPACITY, N_BUCKETS};
use crate::trace::{gen_trace, TraceOp};

fn new_pools(cfg: &CrashConfig, n_shards: usize) -> Vec<Arc<PmemPool>> {
    (0..n_shards)
        .map(|_| PoolBuilder::new(cfg.pool_mb << 20).mode(Mode::CrashSim).build())
        .collect()
}

/// Runs the trace once over a fresh sharded cache on `pools` under
/// `plan`, returning the global event counter at every op boundary (the
/// same contract as the unsharded driver's span table).
fn run_trace(
    cfg: &CrashConfig,
    pools: &[Arc<PmemPool>],
    plan: &Arc<CrashPlan>,
    trace: &[TraceOp],
) -> Vec<u64> {
    let cache = ShardedNvMemcached::create(pools, N_BUCKETS, MC_CAPACITY, cfg.use_link_cache)
        .expect("pools sized for trace");
    for pool in pools {
        pool.install_crash_plan(Arc::clone(plan));
    }
    let mut ctx = cache.register();
    let mut spans = Vec::with_capacity(trace.len() + 1);
    spans.push(plan.events());
    for &op in trace {
        match op {
            TraceOp::Insert(k, v) => {
                cache.set(&mut ctx, k, v).expect("pools sized for trace");
            }
            TraceOp::Remove(k) => {
                cache.delete(&mut ctx, k);
            }
            TraceOp::Get(k) => {
                let _ = cache.get(&mut ctx, k);
            }
        }
        spans.push(plan.events());
    }
    for pool in pools {
        pool.clear_crash_plan();
    }
    spans
}

/// Phase 1: counts the persist-relevant events of the configured trace
/// over an `n_shards`-way cache and records per-op spans.
pub fn count_sharded_events(
    cfg: &CrashConfig,
    n_shards: usize,
) -> (Arc<CrashPlan>, Vec<u64>, Vec<TraceOp>) {
    let trace = gen_trace(cfg.seed, cfg.trace_len, cfg.key_range, cfg.mix);
    let pools = new_pools(cfg, n_shards);
    let plan = CrashPlan::count_only();
    let spans = run_trace(cfg, &pools, &plan, &trace);
    (plan, spans, trace)
}

/// Phase 2 for one crash point: replays the trace, captures the durable
/// images of **every** shard pool immediately before event `k` (one
/// consistent cut), crashes all shards to them, recovers in parallel,
/// and validates globally and per shard.
pub fn sharded_crash_at(
    cfg: &CrashConfig,
    n_shards: usize,
    trace: &[TraceOp],
    spans: &[u64],
    k: u64,
) -> Vec<Violation> {
    let pools = new_pools(cfg, n_shards);
    type Images = Vec<Vec<u64>>;
    let images: Arc<Mutex<Option<Images>>> = Arc::new(Mutex::new(None));
    let plan = CrashPlan::fire_at(k, {
        let pools = pools.clone();
        let images = Arc::clone(&images);
        Box::new(move || {
            let cut: Images =
                pools.iter().map(|p| p.capture_crash_image().expect("crash-sim pool")).collect();
            *images.lock().expect("image cell poisoned") = Some(cut);
        })
    });
    let replay_spans = run_trace(cfg, &pools, &plan, trace);

    let mut violations = Vec::new();
    if replay_spans != spans {
        violations.push(Violation {
            seed: cfg.seed,
            crash_point: k,
            key: 0,
            got: None,
            allowed: vec![],
            detail: format!(
                "nondeterministic sharded replay: op spans diverged from the count phase \
                 (count total {}, replay total {})",
                spans.last().unwrap_or(&0),
                replay_spans.last().unwrap_or(&0)
            ),
        });
        return violations;
    }
    // `k` past the end of the trace means "crash after completion".
    let imgs = images.lock().expect("image cell poisoned").take().unwrap_or_else(|| {
        pools.iter().map(|p| p.capture_crash_image().expect("crash-sim pool")).collect()
    });
    for (pool, img) in pools.iter().zip(&imgs) {
        // SAFETY: the trace ran on this thread and has finished; no other
        // thread touches the pools.
        unsafe { pool.crash_to_image(img).expect("crash-sim pool") };
    }

    let (cache, _report) =
        ShardedNvMemcached::recover(&pools, MC_CAPACITY).expect("geometry written at create");
    let oracle_cfg = OracleConfig { upsert: true, relaxed: cfg.use_link_cache };

    // 1. Global oracle over the merged snapshot (exact).
    let recovered: BTreeMap<u64, u64> = cache.snapshot().into_iter().collect();
    violations.extend(validate(cfg.seed, trace, spans, k, &recovered, oracle_cfg));

    for (i, shard) in cache.shards().iter().enumerate() {
        let shard_state: BTreeMap<u64, u64> = shard.snapshot().into_iter().collect();

        // 2. Routing containment: no shard may hold a foreign key.
        for &key in shard_state.keys() {
            let home = shard_of(key, n_shards);
            if home != i {
                violations.push(Violation {
                    seed: cfg.seed,
                    crash_point: k,
                    key,
                    got: shard_state.get(&key).copied(),
                    allowed: vec![],
                    detail: format!("key routed to shard {home} recovered inside shard {i}"),
                });
            }
        }

        // 3. Per-shard oracle: the shard's own sub-trace, with end-boundary
        //    sub-spans from the global span table (see module docs).
        let mut sub_ops: Vec<TraceOp> = Vec::new();
        let mut sub_spans: Vec<u64> = Vec::new();
        for (idx, op) in trace.iter().enumerate() {
            if shard_of(op.key(), n_shards) == i {
                if sub_spans.is_empty() {
                    sub_spans.push(spans[idx]);
                }
                sub_ops.push(*op);
                sub_spans.push(spans[idx + 1]);
            }
        }
        if !sub_ops.is_empty() {
            for mut v in validate(cfg.seed, &sub_ops, &sub_spans, k, &shard_state, oracle_cfg) {
                v.detail = format!("shard {i}: {}", v.detail);
                violations.push(v);
            }
        }

        // 4. §5.5 per shard: zero unreachable slots after recovery.
        let leaked = shard.domain().count_unreachable(|addr| shard.contains_node_at(addr));
        if leaked != 0 {
            violations.push(Violation {
                seed: cfg.seed,
                crash_point: k,
                key: 0,
                got: None,
                allowed: vec![],
                detail: format!(
                    "shard {i}: {leaked} allocated-but-unreachable slot(s) after recover_leaks"
                ),
            });
        }
    }
    violations
}

/// The full sharded enumeration: count, then crash at every selected
/// event index (plus the post-completion point), recovering all shards in
/// parallel and validating each time.
pub fn run_sharded_crash_points(cfg: &CrashConfig, n_shards: usize) -> CrashReport {
    let (count_plan, spans, trace) = count_sharded_events(cfg, n_shards);
    let total = count_plan.events();
    let mut points = select_points(total, cfg.sample, cfg.seed);
    points.push(total);

    let mut violations = Vec::new();
    for &k in &points {
        violations.extend(sharded_crash_at(cfg, n_shards, &trace, &spans, k));
    }
    CrashReport {
        target: "ShardedNvMemcached",
        seed: cfg.seed,
        total_events: total,
        event_kinds: (
            count_plan.kind_count(CrashEvent::Clwb),
            count_plan.kind_count(CrashEvent::Fence),
            count_plan.kind_count(CrashEvent::LinkPublish),
            count_plan.kind_count(CrashEvent::TlabLease),
            count_plan.kind_count(CrashEvent::ResizeState),
            count_plan.kind_count(CrashEvent::ReshardState),
        ),
        points_tested: points.len(),
        violations,
    }
}

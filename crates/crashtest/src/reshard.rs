//! Crash-point enumeration over a **live reshard** of the sharded
//! NV-Memcached.
//!
//! The elastic-topology design (`nvmemcached::reshard`) promises that a
//! power failure at *any* instant of a live reshard loses no
//! acknowledged write: before the durable commit record the old
//! topology is the authoritative cache, after it recovery rolls the
//! migration forward to the new topology. This driver makes that an
//! enumerable claim, the same way the resize driver does for the
//! in-table migration:
//!
//! * One deterministic single-threaded schedule interleaves client
//!   operations with the admin actions — [`ShardedNvMemcached::
//!   reshard_start`] a third of the way through the trace, one
//!   [`ShardedNvMemcached::reshard_step`] every few operations after
//!   it, and the remaining steps after the last operation — so every
//!   persist-relevant event of the *whole* reshard state machine
//!   (target-pool formatting, the `[OLD][NEW][CURSOR][VERSION]` commit
//!   record, every durable cursor advance, every migrated key's
//!   copy-then-delete) gets a global event index.
//! * One shared [`CrashPlan`] is installed on **all** pools — the old
//!   shards and the reshard targets — and the firing hook captures
//!   every pool's durable image in one synchronous callback: a
//!   consistent cross-pool cut, which is what a power failure is.
//! * Recovery is attempted over the union of old and new pools, which
//!   must resolve exactly like the operator's restart would:
//!   - **Committed** (the state word is durable): recovery must
//!     succeed, roll the migration forward, and serve the *new*
//!     topology.
//!   - **Uncommitted** (targets formatted, no durable commit): recovery
//!     of the union must *refuse* ([`GeometryError::Uncommitted`] /
//!     [`GeometryError::NotSharded`] for half-formatted targets), and
//!     the old pools alone must recover as the still-authoritative
//!     version-1 cache.
//!
//!   Any other outcome is reported as a violation.
//! * The recovered cache is validated with the **global oracle** (every
//!   acknowledged write present, every acknowledged delete absent, the
//!   at-most-one in-flight operation atomic), **routing containment**
//!   over the recovered topology, and the §5.5 **zero-leak audit** on
//!   every serving shard.
//!
//! Unlike the static sharded driver, the per-shard sub-trace oracle is
//! deliberately *not* run here: a key's home shard changes mid-trace
//! (that is the point of the exercise), so no single shard owns a key's
//! sub-history. The global oracle stays exact — it is the one that
//! encodes "zero lost acknowledged writes".

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use nvmemcached::{GeometryError, ShardedNvMemcached};
use pmem::{CrashEvent, CrashPlan, Mode, PmemPool, PoolBuilder};

use crate::driver::{select_points, CrashConfig, CrashReport};
use crate::oracle::{validate, OracleConfig, Violation};
use crate::target::{MC_CAPACITY, N_BUCKETS};
use crate::trace::{gen_trace, TraceOp};

/// Shard count the trace starts with.
pub const RESHARD_FROM: usize = 2;
/// Shard count the live reshard grows to.
pub const RESHARD_TO: usize = 4;
/// One `reshard_step` runs every this many operations after the start.
pub const RESHARD_STEP_EVERY: usize = 4;

fn new_pools(cfg: &CrashConfig, n: usize) -> Vec<Arc<PmemPool>> {
    (0..n).map(|_| PoolBuilder::new(cfg.pool_mb << 20).mode(Mode::CrashSim).build()).collect()
}

/// The op index at which `reshard_start` runs (a third of the way in,
/// so crash points cover pre-flight, in-flight and post-flight windows).
fn start_at(trace_len: usize) -> usize {
    trace_len / 3
}

/// Runs the deterministic trace-plus-reshard schedule once over fresh
/// caches on `old`/`new` under `plan`, returning the global event
/// counter at every op boundary.
fn run_reshard_trace(
    cfg: &CrashConfig,
    old: &[Arc<PmemPool>],
    new: &[Arc<PmemPool>],
    plan: &Arc<CrashPlan>,
    trace: &[TraceOp],
) -> Vec<u64> {
    let cache = ShardedNvMemcached::create(old, N_BUCKETS, MC_CAPACITY, cfg.use_link_cache)
        .expect("pools sized for trace");
    for pool in old.iter().chain(new) {
        pool.install_crash_plan(Arc::clone(plan));
    }
    let start = start_at(trace.len());
    let mut ctx = cache.register();
    let mut spans = Vec::with_capacity(trace.len() + 1);
    spans.push(plan.events());
    for (i, &op) in trace.iter().enumerate() {
        if i == start {
            cache.reshard_start(new, N_BUCKETS).expect("fresh target pools");
        } else if i > start && (i - start) % RESHARD_STEP_EVERY == 0 {
            let _ = cache.reshard_step().expect("pools sized for migration");
        }
        match op {
            TraceOp::Insert(k, v) => {
                cache.set(&mut ctx, k, v).expect("pools sized for trace");
            }
            TraceOp::Remove(k) => {
                cache.delete(&mut ctx, k);
            }
            TraceOp::Get(k) => {
                let _ = cache.get(&mut ctx, k);
            }
        }
        spans.push(plan.events());
    }
    // Drive the migration to completion after the last operation, so
    // the tail crash points cover the final cursor advances and the
    // topology swap.
    while !cache.reshard_step().expect("pools sized for migration") {}
    for pool in old.iter().chain(new) {
        pool.clear_crash_plan();
    }
    spans
}

/// Phase 1: counts the persist-relevant events of the full
/// trace-plus-reshard schedule and records per-op spans.
pub fn count_reshard_events(cfg: &CrashConfig) -> (Arc<CrashPlan>, Vec<u64>, Vec<TraceOp>) {
    let trace = gen_trace(cfg.seed, cfg.trace_len, cfg.key_range, cfg.mix);
    let old = new_pools(cfg, RESHARD_FROM);
    let new = new_pools(cfg, RESHARD_TO);
    let plan = CrashPlan::count_only();
    let spans = run_reshard_trace(cfg, &old, &new, &plan, &trace);
    (plan, spans, trace)
}

/// Phase 2 for one crash point: replays the schedule, captures a
/// consistent cut of **all** pools immediately before event `k`,
/// crashes every pool to it, recovers like an operator restart would,
/// and validates the survivor cache.
pub fn reshard_crash_at(
    cfg: &CrashConfig,
    trace: &[TraceOp],
    spans: &[u64],
    k: u64,
) -> Vec<Violation> {
    let old = new_pools(cfg, RESHARD_FROM);
    let new = new_pools(cfg, RESHARD_TO);
    let all: Vec<Arc<PmemPool>> = old.iter().chain(&new).cloned().collect();
    type Images = Vec<Vec<u64>>;
    let images: Arc<Mutex<Option<Images>>> = Arc::new(Mutex::new(None));
    let plan = CrashPlan::fire_at(k, {
        let all = all.clone();
        let images = Arc::clone(&images);
        Box::new(move || {
            let cut: Images =
                all.iter().map(|p| p.capture_crash_image().expect("crash-sim pool")).collect();
            *images.lock().expect("image cell poisoned") = Some(cut);
        })
    });
    let replay_spans = run_reshard_trace(cfg, &old, &new, &plan, trace);

    let mut violations = Vec::new();
    if replay_spans != spans {
        violations.push(Violation {
            seed: cfg.seed,
            crash_point: k,
            key: 0,
            got: None,
            allowed: vec![],
            detail: format!(
                "nondeterministic reshard replay: op spans diverged from the count phase \
                 (count total {}, replay total {})",
                spans.last().unwrap_or(&0),
                replay_spans.last().unwrap_or(&0)
            ),
        });
        return violations;
    }
    // `k` past the end of the schedule means "crash after completion".
    let imgs = images.lock().expect("image cell poisoned").take().unwrap_or_else(|| {
        all.iter().map(|p| p.capture_crash_image().expect("crash-sim pool")).collect()
    });
    for (pool, img) in all.iter().zip(&imgs) {
        // SAFETY: the schedule ran on this thread and has finished; no
        // other thread touches the pools.
        unsafe { pool.crash_to_image(img).expect("crash-sim pool") };
    }

    // The operator's restart: try the union first; on a pre-commit
    // image fall back to the old pools, which must still be whole.
    let cache = match ShardedNvMemcached::recover(&all, MC_CAPACITY) {
        Ok((cache, _report)) => {
            if cache.n_shards() != RESHARD_TO || cache.version() != 2 {
                violations.push(Violation {
                    seed: cfg.seed,
                    crash_point: k,
                    key: 0,
                    got: None,
                    allowed: vec![],
                    detail: format!(
                        "union recovery accepted a committed reshard but serves \
                         {} shard(s) at version {} (want {RESHARD_TO} at version 2)",
                        cache.n_shards(),
                        cache.version()
                    ),
                });
            }
            cache
        }
        Err(GeometryError::Uncommitted { .. }) | Err(GeometryError::NotSharded { .. }) => {
            // No durable commit: the old topology is authoritative.
            match ShardedNvMemcached::recover(&old, MC_CAPACITY) {
                Ok((cache, _report)) => {
                    if cache.n_shards() != RESHARD_FROM || cache.version() != 1 {
                        violations.push(Violation {
                            seed: cfg.seed,
                            crash_point: k,
                            key: 0,
                            got: None,
                            allowed: vec![],
                            detail: format!(
                                "pre-commit fallback recovered {} shard(s) at version {} \
                                 (want {RESHARD_FROM} at version 1)",
                                cache.n_shards(),
                                cache.version()
                            ),
                        });
                    }
                    cache
                }
                Err(e) => {
                    violations.push(Violation {
                        seed: cfg.seed,
                        crash_point: k,
                        key: 0,
                        got: None,
                        allowed: vec![],
                        detail: format!(
                            "old pools refused to recover after an uncommitted reshard: {e}"
                        ),
                    });
                    return violations;
                }
            }
        }
        Err(e) => {
            violations.push(Violation {
                seed: cfg.seed,
                crash_point: k,
                key: 0,
                got: None,
                allowed: vec![],
                detail: format!("union recovery failed with an unexpected error: {e}"),
            });
            return violations;
        }
    };

    let oracle_cfg = OracleConfig { upsert: true, relaxed: cfg.use_link_cache };

    // 1. Global oracle over the merged snapshot (exact): zero lost
    //    acknowledged writes, whichever topology survived.
    let recovered: BTreeMap<u64, u64> = cache.snapshot().into_iter().collect();
    violations.extend(validate(cfg.seed, trace, spans, k, &recovered, oracle_cfg));

    let n_shards = cache.n_shards();
    for (i, shard) in cache.shards().iter().enumerate() {
        // 2. Routing containment over the *recovered* topology.
        for (key, value) in shard.snapshot() {
            let home = cache.shard_of(key);
            if home != i {
                violations.push(Violation {
                    seed: cfg.seed,
                    crash_point: k,
                    key,
                    got: Some(value),
                    allowed: vec![],
                    detail: format!(
                        "key routed to shard {home}/{n_shards} recovered inside shard {i}"
                    ),
                });
            }
        }
        // 3. §5.5 per serving shard: zero unreachable slots after
        //    recovery (retired pools are about to be discarded and are
        //    not audited).
        let leaked = shard.domain().count_unreachable(|addr| shard.contains_node_at(addr));
        if leaked != 0 {
            violations.push(Violation {
                seed: cfg.seed,
                crash_point: k,
                key: 0,
                got: None,
                allowed: vec![],
                detail: format!(
                    "shard {i}: {leaked} allocated-but-unreachable slot(s) after recover_leaks"
                ),
            });
        }
    }
    violations
}

/// The full reshard enumeration: count, then crash at every selected
/// event index (plus the post-completion point), recovering and
/// validating each time.
pub fn run_reshard_crash_points(cfg: &CrashConfig) -> CrashReport {
    let (count_plan, spans, trace) = count_reshard_events(cfg);
    let total = count_plan.events();
    let mut points = select_points(total, cfg.sample, cfg.seed);
    points.push(total);

    let mut violations = Vec::new();
    for &k in &points {
        violations.extend(reshard_crash_at(cfg, &trace, &spans, k));
    }
    CrashReport {
        target: "ShardedNvMemcached::reshard",
        seed: cfg.seed,
        total_events: total,
        event_kinds: (
            count_plan.kind_count(CrashEvent::Clwb),
            count_plan.kind_count(CrashEvent::Fence),
            count_plan.kind_count(CrashEvent::LinkPublish),
            count_plan.kind_count(CrashEvent::TlabLease),
            count_plan.kind_count(CrashEvent::ResizeState),
            count_plan.kind_count(CrashEvent::ReshardState),
        ),
        points_tested: points.len(),
        violations,
    }
}

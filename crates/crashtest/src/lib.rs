//! Systematic crash-point injection for the log-free structures.
//!
//! The paper's central claim is durability: after a crash at *any*
//! instant, every log-free structure recovers to a consistent state with
//! no leaks (§3, §5.5). The `pmem` shadow-image simulator makes
//! missing-flush bugs deterministic, but a simulator only catches the
//! crash points someone thinks to test. This crate makes "crash anywhere"
//! an *enumerable* dimension instead of a sampled one:
//!
//! 1. **Count** — an operation trace is run to completion under a
//!    [`pmem::CrashPlan`] that counts every persist-relevant event
//!    (`clwb`, fence, link-CAS publish; see [`pmem::CrashEvent`]).
//! 2. **Replay** — the same trace is re-run once per crash point `k`
//!    (or a seeded stratified sample above a threshold). A plan firing at
//!    event `k` captures the durable image *before the event takes
//!    effect* — exactly what a power failure at that instant leaves.
//! 3. **Recover + validate** — the image is restored, the structure's
//!    `recover` and [`nvalloc::NvDomain::recover_leaks`] run, and the
//!    survivor set is checked against an operation oracle: every
//!    completed insert present, every completed remove absent, the (at
//!    most one, single-threaded) in-flight operation atomic —
//!    present-or-absent, never corrupt — and zero allocated-but-
//!    unreachable slots afterwards.
//!
//! Generic [`target::CrashTarget`] drivers cover all four log-free
//! structures plus `NvMemcached`, in single-threaded exhaustive mode
//! ([`driver::run_crash_points`]) and multi-threaded quiesce-and-crash
//! mode ([`driver::run_torture`]).
//!
//! # Reproducing a failure
//!
//! Every reported violation carries the `(trace seed, event index)` pair
//! that produced it. Runs are seeded from the `CRASHTEST_SEED`
//! environment variable (one knob shared with the workspace property
//! tests); `CRASHTEST_SAMPLE=n` caps the number of replayed crash points
//! per trace (seeded stratified sampling). See DESIGN.md, "Crash-point
//! coverage".

#![warn(missing_docs)]

pub mod driver;
pub mod oracle;
pub mod reshard;
pub mod sharded;
pub mod target;
pub mod trace;

pub use driver::{
    count_events, crash_at, run_crash_points, run_torture, CrashConfig, CrashReport, TortureConfig,
    TortureReport,
};
pub use oracle::{OracleConfig, Violation};
pub use reshard::{
    count_reshard_events, reshard_crash_at, run_reshard_crash_points, RESHARD_FROM,
    RESHARD_STEP_EVERY, RESHARD_TO,
};
pub use sharded::{count_sharded_events, run_sharded_crash_points, sharded_crash_at};
pub use target::{
    BstTarget, CrashTarget, HashTarget, ListTarget, MemcachedTarget, ResizeTarget, SkipTarget,
    RESIZE_GROW_AT, RESIZE_GROW_EVERY,
};
pub use trace::{gen_trace, OpMix, TraceOp};

use std::sync::OnceLock;

/// The workspace-wide deterministic test seed: `CRASHTEST_SEED` from the
/// environment, or 0 — the same default the vendored proptest runner
/// uses, so the one knob means the same thing everywhere. Parsed once;
/// printed by every failure report so a run can be reproduced exactly.
pub fn seed_from_env() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("CRASHTEST_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
    })
}

/// Crash-point sampling cap from `CRASHTEST_SAMPLE` (absent or
/// unparsable means exhaustive enumeration).
pub fn sample_from_env() -> Option<usize> {
    std::env::var("CRASHTEST_SAMPLE").ok().and_then(|v| v.parse().ok())
}

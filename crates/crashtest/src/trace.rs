//! Deterministic operation traces.

/// One operation of a trace. `Insert` is an upsert for targets whose
/// natural store operation replaces (`NvMemcached::set`); the oracle
/// accounts for the difference via [`crate::oracle::OracleConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// Insert (or upsert) `key -> value`.
    Insert(u64, u64),
    /// Remove `key`.
    Remove(u64),
    /// Look up `key`.
    Get(u64),
}

impl TraceOp {
    /// The key this operation touches.
    pub fn key(&self) -> u64 {
        match *self {
            TraceOp::Insert(k, _) | TraceOp::Remove(k) | TraceOp::Get(k) => k,
        }
    }
}

/// Operation mix in percent; the remainder up to 100 are lookups.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Percentage of inserts.
    pub insert_pct: u32,
    /// Percentage of removes.
    pub remove_pct: u32,
}

impl Default for OpMix {
    /// 45% insert / 35% remove / 20% get: update-heavy, so most crash
    /// points interrupt a durability obligation.
    fn default() -> Self {
        Self { insert_pct: 45, remove_pct: 35 }
    }
}

#[inline]
pub(crate) fn xorshift(x: &mut u64) -> u64 {
    let mut v = *x;
    v ^= v << 13;
    v ^= v >> 7;
    v ^= v << 17;
    *x = v;
    v
}

/// Generates a deterministic trace of `len` operations over keys
/// `1..=key_range` from `seed`.
pub fn gen_trace(seed: u64, len: usize, key_range: u64, mix: OpMix) -> Vec<TraceOp> {
    assert!(key_range >= 1, "key range must be non-empty");
    assert!(mix.insert_pct + mix.remove_pct <= 100, "op mix over 100%");
    // Scramble so adjacent seeds diverge; xorshift state must be non-zero.
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    (0..len)
        .map(|_| {
            let r = xorshift(&mut x) % 100;
            let key = (xorshift(&mut x) % key_range) + 1;
            if r < mix.insert_pct as u64 {
                TraceOp::Insert(key, xorshift(&mut x) & 0xFFFF)
            } else if r < (mix.insert_pct + mix.remove_pct) as u64 {
                TraceOp::Remove(key)
            } else {
                TraceOp::Get(key)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_in_range() {
        let a = gen_trace(42, 200, 16, OpMix::default());
        let b = gen_trace(42, 200, 16, OpMix::default());
        let c = gen_trace(43, 200, 16, OpMix::default());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|op| (1..=16).contains(&op.key())));
    }

    #[test]
    fn mix_is_respected() {
        let t = gen_trace(7, 10_000, 64, OpMix { insert_pct: 100, remove_pct: 0 });
        assert!(t.iter().all(|op| matches!(op, TraceOp::Insert(..))));
        let t = gen_trace(7, 10_000, 64, OpMix { insert_pct: 0, remove_pct: 100 });
        assert!(t.iter().all(|op| matches!(op, TraceOp::Remove(_))));
    }
}

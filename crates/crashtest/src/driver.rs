//! The crash-point drivers: single-threaded exhaustive enumeration and
//! the multi-threaded quiesce-and-crash torture mode.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use pmem::{CrashEvent, CrashPlan, Mode, PmemPool, PoolBuilder};

use crate::oracle::{validate, OracleConfig, Violation};
use crate::target::CrashTarget;
use crate::trace::{gen_trace, xorshift, OpMix, TraceOp};

/// Configuration of a single-threaded crash-point enumeration.
#[derive(Debug, Clone)]
pub struct CrashConfig {
    /// Trace seed (reported with every violation).
    pub seed: u64,
    /// Operations per trace.
    pub trace_len: usize,
    /// Keys are drawn from `1..=key_range`.
    pub key_range: u64,
    /// Pool size in MiB (small: every replay allocates a fresh pool).
    pub pool_mb: usize,
    /// Attach a link cache (switches the oracle to cache-relaxed mode).
    pub use_link_cache: bool,
    /// Replay at most this many crash points (seeded stratified sample);
    /// `None` replays every event index.
    pub sample: Option<usize>,
    /// Operation mix of the generated trace.
    pub mix: OpMix,
}

impl CrashConfig {
    /// The default small-instance configuration: a 64-op update-heavy
    /// trace over 24 keys, exhaustive unless `CRASHTEST_SAMPLE` caps it.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            trace_len: 64,
            key_range: 24,
            pool_mb: 2,
            use_link_cache: false,
            sample: crate::sample_from_env(),
            mix: OpMix::default(),
        }
    }
}

/// Outcome of a crash-point enumeration run.
#[derive(Debug)]
pub struct CrashReport {
    /// Target name.
    pub target: &'static str,
    /// Trace seed.
    pub seed: u64,
    /// Total persist-relevant events in the trace (= crash points).
    pub total_events: u64,
    /// Event taxonomy: `(clwbs, fences, link publishes, TLAB leases,
    /// resize-state updates, reshard-state updates)`.
    pub event_kinds: (u64, u64, u64, u64, u64, u64),
    /// Crash points actually replayed (less than `total_events` when
    /// sampled).
    pub points_tested: usize,
    /// Every violation found, across all crash points.
    pub violations: Vec<Violation>,
}

impl CrashReport {
    /// Panics with a reproduction recipe if any crash point failed.
    pub fn assert_clean(&self) {
        if self.violations.is_empty() {
            return;
        }
        for v in &self.violations {
            eprintln!("crashtest[{}]: {v}", self.target);
        }
        panic!(
            "crashtest[{}]: {} violation(s) across {} crash points; reproduce with \
             CRASHTEST_SEED={} (failing event indices above)",
            self.target,
            self.violations.len(),
            self.points_tested,
            self.seed
        );
    }
}

fn new_pool(cfg: &CrashConfig) -> Arc<PmemPool> {
    PoolBuilder::new(cfg.pool_mb << 20).mode(Mode::CrashSim).build()
}

/// Runs the trace once over a fresh target on `pool` under `plan`,
/// returning the event-counter value at every op boundary
/// (`spans[i]` = events before op `i`; `spans[len]` = total).
fn run_trace<T: CrashTarget>(
    cfg: &CrashConfig,
    pool: &Arc<PmemPool>,
    plan: &Arc<CrashPlan>,
    trace: &[TraceOp],
) -> Vec<u64> {
    // The skip list's tower-height RNG is thread-local and would
    // otherwise drift between the count and replay phases.
    logfree::skiplist::reset_height_rng(cfg.seed);
    let target = T::create(pool, cfg.use_link_cache);
    pool.install_crash_plan(Arc::clone(plan));
    let mut ctx = target.domain().register();
    let mut spans = Vec::with_capacity(trace.len() + 1);
    spans.push(plan.events());
    for &op in trace {
        target.apply(&mut ctx, op);
        spans.push(plan.events());
    }
    pool.clear_crash_plan();
    spans
}

/// Phase 1: counts the total number of persist-relevant events in the
/// configured trace and records per-op spans. Returns the plan (event
/// totals + taxonomy), the spans, and the trace itself — `crash_at` must
/// be driven with exactly this `(trace, spans)` pair.
pub fn count_events<T: CrashTarget>(cfg: &CrashConfig) -> (Arc<CrashPlan>, Vec<u64>, Vec<TraceOp>) {
    let trace = gen_trace(cfg.seed, cfg.trace_len, cfg.key_range, cfg.mix);
    let pool = new_pool(cfg);
    let plan = CrashPlan::count_only();
    let spans = run_trace::<T>(cfg, &pool, &plan, &trace);
    (plan, spans, trace)
}

/// Phase 2 for one crash point: replays the trace, captures the durable
/// image immediately before event `k`, crashes to it, recovers, and
/// validates. `spans` must come from the count phase of the same config.
pub fn crash_at<T: CrashTarget>(
    cfg: &CrashConfig,
    trace: &[TraceOp],
    spans: &[u64],
    k: u64,
) -> Vec<Violation> {
    let pool = new_pool(cfg);
    let image: Arc<Mutex<Option<Vec<u64>>>> = Arc::new(Mutex::new(None));
    let plan = CrashPlan::fire_at(k, {
        let pool = Arc::clone(&pool);
        let image = Arc::clone(&image);
        Box::new(move || {
            *image.lock().expect("image cell poisoned") =
                Some(pool.capture_crash_image().expect("crash-sim pool"));
        })
    });
    let replay_spans = run_trace::<T>(cfg, &pool, &plan, trace);

    let mut violations = Vec::new();
    if replay_spans != spans {
        violations.push(Violation {
            seed: cfg.seed,
            crash_point: k,
            key: 0,
            got: None,
            allowed: vec![],
            detail: format!(
                "nondeterministic replay: op spans diverged from the count phase \
                 (count total {}, replay total {})",
                spans.last().unwrap_or(&0),
                replay_spans.last().unwrap_or(&0)
            ),
        });
        return violations;
    }
    // `k` past the end of the trace means "crash after completion".
    let img = image
        .lock()
        .expect("image cell poisoned")
        .take()
        .unwrap_or_else(|| pool.capture_crash_image().expect("crash-sim pool"));
    // SAFETY: the trace runs on this thread and has finished; no other
    // thread touches the pool.
    unsafe { pool.crash_to_image(&img).expect("crash-sim pool") };

    let (target, _report) = T::recover(&pool);
    let recovered: BTreeMap<u64, u64> = target.snapshot().into_iter().collect();
    let cfg_oracle = OracleConfig { upsert: T::UPSERT, relaxed: cfg.use_link_cache };
    violations.extend(validate(cfg.seed, trace, spans, k, &recovered, cfg_oracle));

    // §5.5: after leak recovery no allocated slot may be unreachable.
    let leaked = target.domain().count_unreachable(|addr| target.reachable(addr));
    if leaked != 0 {
        violations.push(Violation {
            seed: cfg.seed,
            crash_point: k,
            key: 0,
            got: None,
            allowed: vec![],
            detail: format!("{leaked} allocated-but-unreachable slot(s) after recover_leaks"),
        });
    }
    // Target-specific structural audit (e.g. hash-bucket routing and
    // resize quiescence).
    if let Some(detail) = target.post_recovery_check() {
        violations.push(Violation {
            seed: cfg.seed,
            crash_point: k,
            key: 0,
            got: None,
            allowed: vec![],
            detail,
        });
    }
    violations
}

/// Seeded stratified selection of up to `sample` points from `0..total`:
/// one uniform draw per stratum, so no event range is skipped entirely.
pub(crate) fn select_points(total: u64, sample: Option<usize>, seed: u64) -> Vec<u64> {
    match sample {
        Some(s) if (s as u64) < total => {
            let s = s as u64;
            let mut x = seed | 1;
            (0..s)
                .map(|i| {
                    let lo = i * total / s;
                    let hi = ((i + 1) * total / s).max(lo + 1);
                    lo + xorshift(&mut x) % (hi - lo)
                })
                .collect()
        }
        _ => (0..total).collect(),
    }
}

/// The full enumeration: count, then crash at every selected event index
/// (plus the post-completion point), recovering and validating each time.
pub fn run_crash_points<T: CrashTarget>(cfg: &CrashConfig) -> CrashReport {
    let (count_plan, spans, trace) = count_events::<T>(cfg);
    let total = count_plan.events();
    let mut points = select_points(total, cfg.sample, cfg.seed);
    // Always include the crash-after-completion point.
    points.push(total);

    let mut violations = Vec::new();
    for &k in &points {
        violations.extend(crash_at::<T>(cfg, &trace, &spans, k));
    }
    CrashReport {
        target: T::NAME,
        seed: cfg.seed,
        total_events: total,
        event_kinds: (
            count_plan.kind_count(CrashEvent::Clwb),
            count_plan.kind_count(CrashEvent::Fence),
            count_plan.kind_count(CrashEvent::LinkPublish),
            count_plan.kind_count(CrashEvent::TlabLease),
            count_plan.kind_count(CrashEvent::ResizeState),
            count_plan.kind_count(CrashEvent::ReshardState),
        ),
        points_tested: points.len(),
        violations,
    }
}

/// Configuration of the multi-threaded quiesce-and-crash mode.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Workload seed.
    pub seed: u64,
    /// Worker threads (each owns a disjoint key range).
    pub threads: usize,
    /// Operations per worker.
    pub ops_per_thread: u64,
    /// Keys per worker's private range.
    pub keys_per_thread: u64,
    /// Pool size in MiB.
    pub pool_mb: usize,
    /// Attach a link cache. The multi-threaded audit only supports the
    /// strict oracle, so this must currently stay `false`.
    pub use_link_cache: bool,
}

impl TortureConfig {
    /// A small smoke-test configuration.
    pub fn small(seed: u64) -> Self {
        Self {
            seed,
            threads: 4,
            ops_per_thread: 2_000,
            keys_per_thread: 300,
            pool_mb: 64,
            use_link_cache: false,
        }
    }
}

/// Outcome of a quiesce-and-crash run.
#[derive(Debug)]
pub struct TortureReport {
    /// Target name.
    pub target: &'static str,
    /// Workload seed.
    pub seed: u64,
    /// Event index the crash image was captured at (None: the plan never
    /// fired and the image was captured after completion).
    pub crash_event: Option<u64>,
    /// Keys whose pre-capture completed state was checked.
    pub audited: u64,
    /// Durable-linearizability violations found.
    pub violations: u64,
    /// Leaked nodes reclaimed by recovery.
    pub leaks_freed: u64,
    /// Allocated-but-unreachable slots remaining *after* recovery
    /// (must be 0).
    pub leaked_after_recovery: u64,
}

impl TortureReport {
    /// Panics with a reproduction recipe if the audit failed — or if the
    /// run never actually crashed mid-flight (a no-crash audit proves
    /// nothing, so silent degradation is an error too).
    pub fn assert_clean(&self) {
        assert!(
            self.crash_event.is_some(),
            "crashtest[{}]: the crash plan never fired mid-run (workload too small?); \
             reproduce with CRASHTEST_SEED={}",
            self.target,
            self.seed
        );
        assert!(
            self.violations == 0 && self.leaked_after_recovery == 0,
            "crashtest[{}]: {} violation(s), {} leak(s) after recovery at crash event {:?}; \
             reproduce with CRASHTEST_SEED={}",
            self.target,
            self.violations,
            self.leaked_after_recovery,
            self.crash_event,
            self.seed
        );
    }
}

/// A completed update, recorded by its worker *after* the operation
/// returned: `(key, state the key was left in)`.
type DoneLog = Vec<(u64, Option<u64>)>;

fn torture_worker<T: CrashTarget>(target: &T, cfg: &TortureConfig, tid: u64, log: &Mutex<DoneLog>) {
    let mut ctx = target.domain().register();
    let base = 1 + tid * cfg.keys_per_thread;
    // `.max(1)`: xorshift state must never be zero, whatever the seed.
    let mut x = (cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(tid + 1)).max(1);
    for _ in 0..cfg.ops_per_thread {
        let r = xorshift(&mut x) % 100;
        let key = base + xorshift(&mut x) % cfg.keys_per_thread.max(1);
        let op = if r < 45 {
            TraceOp::Insert(key, xorshift(&mut x) & 0xFFFF)
        } else if r < 80 {
            TraceOp::Remove(key)
        } else {
            TraceOp::Get(key)
        };
        let changed = target.apply(&mut ctx, op);
        if changed {
            let state = match op {
                TraceOp::Insert(_, v) => Some(v),
                TraceOp::Remove(_) => None,
                TraceOp::Get(_) => unreachable!("lookups never report a change"),
            };
            log.lock().expect("done log poisoned").push((key, state));
        }
    }
    // Epoch-respecting collection only: peers are still running, and an
    // unconditional `drain_all` would free a retired bucket-array region
    // out from under a concurrent reader mid-resize.
    ctx.try_collect();
}

/// Multi-threaded quiesce-and-crash: workers hammer the structure while
/// a crash plan fires mid-run at a seeded event index, capturing the
/// audit horizon (per-thread completed-op counts) and the durable image
/// in one cut. Workers then run to completion (quiesce), the pool
/// crashes to the captured image, and recovery is audited: every update
/// completed before the horizon must be reflected, keys touched later
/// are exempt (their in-flight ops may legitimately have landed either
/// way).
///
/// The crash point is drawn from a count-phase estimate; since the
/// multi-threaded event total is not deterministic, the run is retried
/// with a halved crash point if the plan did not fire. A report whose
/// `crash_event` is still `None` fails [`TortureReport::assert_clean`].
pub fn run_torture<T: CrashTarget>(cfg: &TortureConfig) -> TortureReport {
    assert!(!cfg.use_link_cache, "the multi-threaded audit needs the strict oracle");
    // Phase 1: estimate the total event count for this workload so the
    // crash point can land mid-run (the interleaving is not
    // deterministic, but the magnitude is stable).
    let est_total = {
        let pool = PoolBuilder::new(cfg.pool_mb << 20).mode(Mode::CrashSim).build();
        let target = T::create(&pool, cfg.use_link_cache);
        let plan = CrashPlan::count_only();
        pool.install_crash_plan(Arc::clone(&plan));
        let logs: Vec<Mutex<DoneLog>> = (0..cfg.threads).map(|_| Mutex::new(Vec::new())).collect();
        std::thread::scope(|s| {
            for (t, log) in logs.iter().enumerate() {
                let target = &target;
                s.spawn(move || torture_worker(target, cfg, t as u64, log));
            }
        });
        pool.clear_crash_plan();
        plan.events()
    };

    // Phase 2: crash at a seeded point in the middle half of the run.
    // Halve the target and retry if the plan missed (the rerun emitted
    // fewer events than the estimate).
    let mut x = cfg.seed | 1;
    let mut crash_at = est_total / 4 + xorshift(&mut x) % (est_total / 2).max(1);
    loop {
        let report = torture_once::<T>(cfg, crash_at);
        if report.crash_event.is_some() || crash_at == 0 {
            return report;
        }
        crash_at /= 2;
    }
}

/// One quiesce-and-crash attempt at a fixed crash point (see
/// [`run_torture`]).
fn torture_once<T: CrashTarget>(cfg: &TortureConfig, crash_at: u64) -> TortureReport {
    let pool = PoolBuilder::new(cfg.pool_mb << 20).mode(Mode::CrashSim).build();
    let target = T::create(&pool, cfg.use_link_cache);
    let logs: Arc<Vec<Mutex<DoneLog>>> =
        Arc::new((0..cfg.threads).map(|_| Mutex::new(Vec::new())).collect());
    type Captured = (Vec<usize>, Vec<u64>);
    let captured: Arc<Mutex<Option<Captured>>> = Arc::new(Mutex::new(None));
    let plan = CrashPlan::fire_at(crash_at, {
        let pool = Arc::clone(&pool);
        let logs = Arc::clone(&logs);
        let captured = Arc::clone(&captured);
        Box::new(move || {
            // Horizon first, then the image: any op whose completion was
            // already visible in a log is durably owed to the user.
            let horizon: Vec<usize> =
                logs.iter().map(|l| l.lock().expect("done log poisoned").len()).collect();
            let img = pool.capture_crash_image().expect("crash-sim pool");
            *captured.lock().expect("capture cell poisoned") = Some((horizon, img));
        })
    });
    pool.install_crash_plan(Arc::clone(&plan));
    std::thread::scope(|s| {
        for (t, log) in logs.iter().enumerate() {
            let target = &target;
            s.spawn(move || torture_worker(target, cfg, t as u64, log));
        }
    });
    pool.clear_crash_plan();
    let fired = plan.fired();
    let (horizon, img) =
        captured.lock().expect("capture cell poisoned").take().unwrap_or_else(|| {
            // The second run had fewer events than estimated: crash after
            // completion instead (full horizon).
            let horizon = logs.iter().map(|l| l.lock().expect("done log poisoned").len()).collect();
            (horizon, pool.capture_crash_image().expect("crash-sim pool"))
        });
    drop(target);
    // SAFETY: all workers joined above; no other thread uses the pool.
    unsafe { pool.crash_to_image(&img).expect("crash-sim pool") };

    let (recovered_target, report) = T::recover(&pool);
    let recovered: BTreeMap<u64, u64> = recovered_target.snapshot().into_iter().collect();

    let mut audited = 0u64;
    let mut violations = 0u64;
    for (t, log_cell) in logs.iter().enumerate() {
        let log = log_cell.lock().expect("done log poisoned");
        let mut expect: BTreeMap<u64, Option<u64>> = BTreeMap::new();
        for &(key, state) in &log[..horizon[t]] {
            expect.insert(key, state);
        }
        let exempt: std::collections::BTreeSet<u64> =
            log[horizon[t]..].iter().map(|&(key, _)| key).collect();
        for (key, want) in expect {
            if exempt.contains(&key) {
                continue;
            }
            audited += 1;
            let got = recovered.get(&key).copied();
            if got != want {
                violations += 1;
                eprintln!(
                    "crashtest[{}] torture (seed={}): key {key}: completed state {want:?}, \
                     recovered {got:?}",
                    T::NAME,
                    cfg.seed
                );
            }
        }
    }
    if let Some(detail) = recovered_target.post_recovery_check() {
        violations += 1;
        eprintln!("crashtest[{}] torture (seed={}): {detail}", T::NAME, cfg.seed);
    }
    let leaked_after_recovery =
        recovered_target.domain().count_unreachable(|addr| recovered_target.reachable(addr));
    TortureReport {
        target: T::NAME,
        seed: cfg.seed,
        crash_event: fired.then_some(crash_at),
        audited,
        violations,
        leaks_freed: report.leaks_freed,
        leaked_after_recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::select_points;

    #[test]
    fn exhaustive_when_unsampled_or_small() {
        assert_eq!(select_points(5, None, 1), vec![0, 1, 2, 3, 4]);
        assert_eq!(select_points(5, Some(5), 1), vec![0, 1, 2, 3, 4]);
        assert_eq!(select_points(5, Some(50), 1), vec![0, 1, 2, 3, 4]);
        assert!(select_points(0, None, 1).is_empty());
    }

    #[test]
    fn sample_is_stratified_in_bounds_and_seeded() {
        let total = 1000;
        let picks = select_points(total, Some(10), 7);
        assert_eq!(picks.len(), 10);
        for (i, &p) in picks.iter().enumerate() {
            let (lo, hi) = (i as u64 * 100, (i as u64 + 1) * 100);
            assert!((lo..hi).contains(&p), "pick {p} outside stratum {i}");
        }
        assert_eq!(picks, select_points(total, Some(10), 7), "seeded: reproducible");
        assert_ne!(picks, select_points(total, Some(10), 8), "seeded: seed-sensitive");
    }

    #[test]
    fn sample_covers_ragged_strata() {
        // total not divisible by the sample: every stratum still non-empty.
        let picks = select_points(7, Some(3), 42);
        assert_eq!(picks.len(), 3);
        assert!(picks.windows(2).all(|w| w[0] < w[1]), "strata are ordered and disjoint");
        assert!(picks.iter().all(|&p| p < 7));
    }
}

//! Lock-based external BST in the style of **bst-tk** (David, Guerraoui,
//! Trigonakis — ASPLOS 2015), with redo logging — the paper's BST
//! baseline (§6.2).
//!
//! Searches are wait-free; an insert locks the parent, a delete locks the
//! grandparent and parent, validates, and commits the splice as one
//! redo-logged transaction.
//!
//! # Node layout (one 64-byte slot, internal and leaf)
//!
//! ```text
//! +0   key      u64
//! +8   value    u64    (leaves)
//! +16  left     u64    (0 in leaves)
//! +24  right    u64    (0 in leaves)
//! +32  lock     u64    (volatile spinlock)
//! +40  removed  u64    (validation flag, logged)
//! ```

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use nvalloc::{NvDomain, OutOfMemory, ThreadCtx};
use pmem::{Flusher, PmemPool};

use crate::redo::RedoLog;

const KEY_OFF: usize = 0;
const VAL_OFF: usize = 8;
const LEFT_OFF: usize = 16;
const RIGHT_OFF: usize = 24;
const LOCK_OFF: usize = 32;
const REMOVED_OFF: usize = 40;
const NODE_SIZE: usize = 48;

/// Largest user key (three values reserved for sentinels).
pub const MAX_BST_KEY: u64 = u64::MAX - 3;
const INF0: u64 = u64::MAX - 2;
const INF1: u64 = u64::MAX - 1;
const INF2: u64 = u64::MAX;

/// The log-based lock-based external BST.
pub struct BstTk {
    pool: Arc<PmemPool>,
    root: usize,
}

impl BstTk {
    /// Creates an empty tree anchored at root slot `root_idx`.
    pub fn create(
        domain: &NvDomain,
        ctx: &mut ThreadCtx,
        root_idx: usize,
    ) -> Result<Self, OutOfMemory> {
        let pool = Arc::clone(domain.pool());
        ctx.begin_op();
        let mk =
            |ctx: &mut ThreadCtx, key: u64, l: usize, r: usize| -> Result<usize, OutOfMemory> {
                let n = ctx.alloc(NODE_SIZE)?;
                pool.atomic_u64(n + KEY_OFF).store(key, Ordering::Relaxed);
                pool.atomic_u64(n + VAL_OFF).store(0, Ordering::Relaxed);
                pool.atomic_u64(n + LEFT_OFF).store(l as u64, Ordering::Relaxed);
                pool.atomic_u64(n + RIGHT_OFF).store(r as u64, Ordering::Relaxed);
                pool.atomic_u64(n + LOCK_OFF).store(0, Ordering::Relaxed);
                pool.atomic_u64(n + REMOVED_OFF).store(0, Ordering::Release);
                ctx.flusher.clwb_range(n, NODE_SIZE);
                Ok(n)
            };
        let inf0 = mk(ctx, INF0, 0, 0)?;
        let inf1 = mk(ctx, INF1, 0, 0)?;
        let inf2 = mk(ctx, INF2, 0, 0)?;
        let s = mk(ctx, INF1, inf0, inf1)?;
        let r = mk(ctx, INF2, s, inf2)?;
        ctx.flusher.fence();
        pool.set_root(root_idx, r as u64, &mut ctx.flusher);
        ctx.end_op();
        Ok(Self { pool, root: r })
    }

    /// Re-attaches after a crash (replay the log directory first).
    pub fn attach(domain: &NvDomain, root_idx: usize) -> Self {
        let pool = Arc::clone(domain.pool());
        let root = pool.root(root_idx) as usize;
        Self { pool, root }
    }

    #[inline]
    fn key_at(&self, n: usize) -> u64 {
        self.pool.atomic_u64(n + KEY_OFF).load(Ordering::Acquire)
    }

    #[inline]
    fn child_off(&self, n: usize, key: u64) -> usize {
        if key < self.key_at(n) {
            LEFT_OFF
        } else {
            RIGHT_OFF
        }
    }

    #[inline]
    fn child(&self, n: usize, off: usize) -> usize {
        self.pool.atomic_u64(n + off).load(Ordering::Acquire) as usize
    }

    #[inline]
    fn is_leaf(&self, n: usize) -> bool {
        self.child(n, LEFT_OFF) == 0 && self.child(n, RIGHT_OFF) == 0
    }

    #[inline]
    fn removed(&self, n: usize) -> bool {
        self.pool.atomic_u64(n + REMOVED_OFF).load(Ordering::Acquire) != 0
    }

    fn lock(&self, n: usize) {
        let w = self.pool.atomic_u64(n + LOCK_OFF);
        loop {
            if w.compare_exchange_weak(0, 1, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                return;
            }
            while w.load(Ordering::Relaxed) != 0 {
                std::hint::spin_loop();
            }
        }
    }

    fn unlock(&self, n: usize) {
        self.pool.atomic_u64(n + LOCK_OFF).store(0, Ordering::Release);
    }

    /// Wait-free search: returns `(grandparent, parent, leaf)`.
    fn search(&self, key: u64) -> (usize, usize, usize) {
        let mut gp = self.root;
        let mut p = self.child(self.root, LEFT_OFF);
        let mut leaf = self.child(p, self.child_off(p, key));
        while !self.is_leaf(leaf) {
            gp = p;
            p = leaf;
            leaf = self.child(leaf, self.child_off(leaf, key));
        }
        (gp, p, leaf)
    }

    /// Inserts `key -> value`; `Ok(false)` if present.
    pub fn insert(
        &self,
        ctx: &mut ThreadCtx,
        log: &mut RedoLog,
        key: u64,
        value: u64,
    ) -> Result<bool, OutOfMemory> {
        debug_assert!(key <= MAX_BST_KEY);
        ctx.begin_op();
        let r = self.insert_inner(ctx, log, key, value);
        ctx.end_op();
        r
    }

    fn insert_inner(
        &self,
        ctx: &mut ThreadCtx,
        log: &mut RedoLog,
        key: u64,
        value: u64,
    ) -> Result<bool, OutOfMemory> {
        let pool = &self.pool;
        loop {
            let (_gp, p, leaf) = self.search(key);
            let leaf_key = self.key_at(leaf);
            if leaf_key == key {
                return Ok(false);
            }
            let edge_off = self.child_off(p, key);
            self.lock(p);
            if self.removed(p) || self.child(p, edge_off) != leaf {
                self.unlock(p);
                continue;
            }
            let new_leaf = ctx.alloc(NODE_SIZE)?;
            pool.atomic_u64(new_leaf + KEY_OFF).store(key, Ordering::Relaxed);
            pool.atomic_u64(new_leaf + VAL_OFF).store(value, Ordering::Relaxed);
            pool.atomic_u64(new_leaf + LEFT_OFF).store(0, Ordering::Relaxed);
            pool.atomic_u64(new_leaf + RIGHT_OFF).store(0, Ordering::Relaxed);
            pool.atomic_u64(new_leaf + LOCK_OFF).store(0, Ordering::Relaxed);
            pool.atomic_u64(new_leaf + REMOVED_OFF).store(0, Ordering::Release);
            let (l, r) = if key < leaf_key { (new_leaf, leaf) } else { (leaf, new_leaf) };
            let internal = ctx.alloc(NODE_SIZE)?;
            pool.atomic_u64(internal + KEY_OFF).store(key.max(leaf_key), Ordering::Relaxed);
            pool.atomic_u64(internal + VAL_OFF).store(0, Ordering::Relaxed);
            pool.atomic_u64(internal + LEFT_OFF).store(l as u64, Ordering::Relaxed);
            pool.atomic_u64(internal + RIGHT_OFF).store(r as u64, Ordering::Relaxed);
            pool.atomic_u64(internal + LOCK_OFF).store(0, Ordering::Relaxed);
            pool.atomic_u64(internal + REMOVED_OFF).store(0, Ordering::Release);
            ctx.flusher.clwb_range(new_leaf, NODE_SIZE);
            ctx.flusher.clwb_range(internal, NODE_SIZE);
            log.record(p + edge_off, internal as u64, &mut ctx.flusher);
            log.commit_apply(&mut ctx.flusher);
            self.unlock(p);
            return Ok(true);
        }
    }

    /// Removes `key`.
    pub fn remove(&self, ctx: &mut ThreadCtx, log: &mut RedoLog, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = self.remove_inner(ctx, log, key);
        ctx.end_op();
        r
    }

    fn remove_inner(&self, ctx: &mut ThreadCtx, log: &mut RedoLog, key: u64) -> Option<u64> {
        loop {
            let (gp, p, leaf) = self.search(key);
            if self.key_at(leaf) != key {
                return None;
            }
            let gp_off = self.child_off(gp, key);
            let p_off = self.child_off(p, key);
            self.lock(gp);
            self.lock(p);
            let valid = !self.removed(gp)
                && !self.removed(p)
                && self.child(gp, gp_off) == p
                && self.child(p, p_off) == leaf;
            if !valid {
                self.unlock(p);
                self.unlock(gp);
                continue;
            }
            let sibling_off = if p_off == LEFT_OFF { RIGHT_OFF } else { LEFT_OFF };
            let sibling = self.child(p, sibling_off);
            let val = self.pool.atomic_u64(leaf + VAL_OFF).load(Ordering::Acquire);
            // One transaction: splice + tombstones for validation.
            log.record(gp + gp_off, sibling as u64, &mut ctx.flusher);
            log.record(p + REMOVED_OFF, 1, &mut ctx.flusher);
            log.record(leaf + REMOVED_OFF, 1, &mut ctx.flusher);
            log.commit_apply(&mut ctx.flusher);
            self.unlock(p);
            self.unlock(gp);
            ctx.retire(p);
            ctx.retire(leaf);
            return Some(val);
        }
    }

    /// Wait-free lookup.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let (_gp, _p, leaf) = self.search(key);
        let r = (self.key_at(leaf) == key)
            .then(|| self.pool.atomic_u64(leaf + VAL_OFF).load(Ordering::Acquire));
        ctx.end_op();
        r
    }

    /// Quiescent post-crash fixup (after log replay): clear stale locks.
    pub fn recover(&self, flusher: &mut Flusher) {
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            self.pool.atomic_u64(n + LOCK_OFF).store(0, Ordering::Release);
            flusher.clwb(n + LOCK_OFF);
            for off in [LEFT_OFF, RIGHT_OFF] {
                let c = self.child(n, off);
                if c != 0 {
                    stack.push(c);
                }
            }
        }
        flusher.fence();
    }

    /// Reachability set (internal nodes, leaves, sentinels).
    pub fn collect_reachable(&self) -> HashSet<usize> {
        let mut s = HashSet::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            if !s.insert(n) {
                continue;
            }
            for off in [LEFT_OFF, RIGHT_OFF] {
                let c = self.child(n, off);
                if c != 0 {
                    stack.push(c);
                }
            }
        }
        s
    }

    /// Quiescent snapshot of live user pairs in key order.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            if self.is_leaf(n) {
                let k = self.key_at(n);
                if k <= MAX_BST_KEY {
                    v.push((k, self.pool.atomic_u64(n + VAL_OFF).load(Ordering::Acquire)));
                }
                continue;
            }
            for off in [LEFT_OFF, RIGHT_OFF] {
                let c = self.child(n, off);
                if c != 0 {
                    stack.push(c);
                }
            }
        }
        v.sort_unstable();
        v
    }
}

// SAFETY: all shared state lives in the pool, accessed atomically.
unsafe impl Send for BstTk {}
// SAFETY: see above.
unsafe impl Sync for BstTk {}

//! Lock-based **lazy linked list** (Heller et al., OPODIS 2005) with
//! hand-placed redo logging — the paper's baseline for the linked list
//! and (one list per bucket) the hash table (§6.2).
//!
//! Traversals are lock-free; updates lock the predecessor and current
//! node, validate, then run a two-sync redo-logged transaction
//! ([`crate::redo`]). A removal logically deletes (`marked := 1`) and
//! physically unlinks in the *same* transaction, which keeps replay
//! atomic.
//!
//! # Node layout (one 64-byte slot)
//!
//! ```text
//! +0   key     u64
//! +8   value   u64
//! +16  next    u64   (plain address; no mark bits needed)
//! +24  marked  u64   (logical deletion flag, logged)
//! +32  lock    u64   (spinlock; volatile — cleared by recovery)
//! ```

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use nvalloc::{NvDomain, OutOfMemory, ThreadCtx};
use pmem::{Flusher, PmemPool};

use crate::redo::RedoLog;

pub(crate) const KEY_OFF: usize = 0;
pub(crate) const VAL_OFF: usize = 8;
pub(crate) const NEXT_OFF: usize = 16;
pub(crate) const MARK_OFF: usize = 24;
pub(crate) const LOCK_OFF: usize = 32;
pub(crate) const NODE_SIZE: usize = 40;

/// Smallest user key (0 is the head sentinel).
pub const MIN_KEY: u64 = 1;
/// Largest user key (`u64::MAX` is the tail sentinel).
pub const MAX_KEY: u64 = u64::MAX - 1;

#[inline]
pub(crate) fn key_at(pool: &PmemPool, n: usize) -> u64 {
    pool.atomic_u64(n + KEY_OFF).load(Ordering::Acquire)
}

#[inline]
pub(crate) fn next_of(pool: &PmemPool, n: usize) -> usize {
    pool.atomic_u64(n + NEXT_OFF).load(Ordering::Acquire) as usize
}

#[inline]
pub(crate) fn is_marked(pool: &PmemPool, n: usize) -> bool {
    pool.atomic_u64(n + MARK_OFF).load(Ordering::Acquire) != 0
}

#[inline]
pub(crate) fn lock(pool: &PmemPool, n: usize) {
    let w = pool.atomic_u64(n + LOCK_OFF);
    loop {
        if w.compare_exchange_weak(0, 1, Ordering::AcqRel, Ordering::Acquire).is_ok() {
            return;
        }
        while w.load(Ordering::Relaxed) != 0 {
            std::hint::spin_loop();
        }
    }
}

#[inline]
pub(crate) fn unlock(pool: &PmemPool, n: usize) {
    pool.atomic_u64(n + LOCK_OFF).store(0, Ordering::Release);
}

/// Allocates and initialises a sentinel node; returns its address.
pub(crate) fn make_sentinel(
    ctx: &mut ThreadCtx,
    pool: &PmemPool,
    key: u64,
    next: usize,
) -> Result<usize, OutOfMemory> {
    let n = ctx.alloc(NODE_SIZE)?;
    pool.atomic_u64(n + KEY_OFF).store(key, Ordering::Relaxed);
    pool.atomic_u64(n + VAL_OFF).store(0, Ordering::Relaxed);
    pool.atomic_u64(n + NEXT_OFF).store(next as u64, Ordering::Relaxed);
    pool.atomic_u64(n + MARK_OFF).store(0, Ordering::Relaxed);
    pool.atomic_u64(n + LOCK_OFF).store(0, Ordering::Release);
    ctx.flusher.clwb_range(n, NODE_SIZE);
    Ok(n)
}

/// Lock-free traversal from `head`: returns `(pred, curr)` with
/// `curr.key >= key` (curr may be the tail sentinel).
#[inline]
fn traverse(pool: &PmemPool, head: usize, key: u64) -> (usize, usize) {
    let mut pred = head;
    let mut curr = next_of(pool, pred);
    while key_at(pool, curr) < key {
        pred = curr;
        curr = next_of(pool, curr);
    }
    (pred, curr)
}

fn validate(pool: &PmemPool, pred: usize, curr: usize) -> bool {
    !is_marked(pool, pred) && !is_marked(pool, curr) && next_of(pool, pred) == curr
}

/// Core insert into the chain anchored at sentinel `head`.
pub(crate) fn insert(
    pool: &PmemPool,
    ctx: &mut ThreadCtx,
    log: &mut RedoLog,
    head: usize,
    key: u64,
    value: u64,
) -> Result<bool, OutOfMemory> {
    debug_assert!((MIN_KEY..=MAX_KEY).contains(&key));
    loop {
        let (pred, curr) = traverse(pool, head, key);
        lock(pool, pred);
        lock(pool, curr);
        if validate(pool, pred, curr) {
            if key_at(pool, curr) == key {
                unlock(pool, curr);
                unlock(pool, pred);
                return Ok(false);
            }
            let node = ctx.alloc(NODE_SIZE)?;
            pool.atomic_u64(node + KEY_OFF).store(key, Ordering::Relaxed);
            pool.atomic_u64(node + VAL_OFF).store(value, Ordering::Relaxed);
            pool.atomic_u64(node + NEXT_OFF).store(curr as u64, Ordering::Relaxed);
            pool.atomic_u64(node + MARK_OFF).store(0, Ordering::Relaxed);
            pool.atomic_u64(node + LOCK_OFF).store(0, Ordering::Release);
            ctx.flusher.clwb_range(node, NODE_SIZE);
            // The commit's first sync covers the node contents (same
            // batch); the transaction is the single link write.
            log.record(pred + NEXT_OFF, node as u64, &mut ctx.flusher);
            log.commit_apply(&mut ctx.flusher);
            unlock(pool, curr);
            unlock(pool, pred);
            return Ok(true);
        }
        unlock(pool, curr);
        unlock(pool, pred);
    }
}

/// Core remove from the chain anchored at `head`.
pub(crate) fn remove(
    pool: &PmemPool,
    ctx: &mut ThreadCtx,
    log: &mut RedoLog,
    head: usize,
    key: u64,
) -> Option<u64> {
    loop {
        let (pred, curr) = traverse(pool, head, key);
        lock(pool, pred);
        lock(pool, curr);
        if validate(pool, pred, curr) {
            if key_at(pool, curr) != key {
                unlock(pool, curr);
                unlock(pool, pred);
                return None;
            }
            let val = pool.atomic_u64(curr + VAL_OFF).load(Ordering::Acquire);
            // Logical delete + physical unlink, atomically replayable.
            log.record(curr + MARK_OFF, 1, &mut ctx.flusher);
            log.record(pred + NEXT_OFF, next_of(pool, curr) as u64, &mut ctx.flusher);
            log.commit_apply(&mut ctx.flusher);
            unlock(pool, curr);
            unlock(pool, pred);
            ctx.retire(curr);
            return Some(val);
        }
        unlock(pool, curr);
        unlock(pool, pred);
    }
}

/// Core wait-free lookup.
pub(crate) fn get(pool: &PmemPool, head: usize, key: u64) -> Option<u64> {
    let mut curr = next_of(pool, head);
    while key_at(pool, curr) < key {
        curr = next_of(pool, curr);
    }
    (key_at(pool, curr) == key && !is_marked(pool, curr))
        .then(|| pool.atomic_u64(curr + VAL_OFF).load(Ordering::Acquire))
}

/// Quiescent recovery of one chain: clears stale lock words (the redo
/// replay has already restored logical consistency).
pub(crate) fn recover_chain(pool: &PmemPool, head: usize, flusher: &mut Flusher) {
    let mut n = head;
    loop {
        pool.atomic_u64(n + LOCK_OFF).store(0, Ordering::Release);
        flusher.clwb(n + LOCK_OFF);
        n = next_of(pool, n);
        if n == 0 {
            break;
        }
        if key_at(pool, n) == u64::MAX {
            pool.atomic_u64(n + LOCK_OFF).store(0, Ordering::Release);
            flusher.clwb(n + LOCK_OFF);
            break;
        }
    }
}

/// Reachable live nodes of one chain, including sentinels.
pub(crate) fn reachable_chain(pool: &PmemPool, head: usize, out: &mut HashSet<usize>) {
    let mut n = head;
    loop {
        if !is_marked(pool, n) {
            out.insert(n);
        }
        if key_at(pool, n) == u64::MAX {
            break;
        }
        n = next_of(pool, n);
    }
}

/// Snapshot of live user pairs of one chain.
pub(crate) fn snapshot_chain(pool: &PmemPool, head: usize, out: &mut Vec<(u64, u64)>) {
    let mut n = next_of(pool, head);
    while key_at(pool, n) != u64::MAX {
        if !is_marked(pool, n) {
            out.push((key_at(pool, n), pool.atomic_u64(n + VAL_OFF).load(Ordering::Acquire)));
        }
        n = next_of(pool, n);
    }
}

/// The standalone log-based lazy list.
pub struct LazyList {
    pool: Arc<PmemPool>,
    head: usize,
}

impl LazyList {
    /// Creates an empty list (head + tail sentinels) anchored at root
    /// slot `root_idx`.
    pub fn create(
        domain: &NvDomain,
        ctx: &mut ThreadCtx,
        root_idx: usize,
    ) -> Result<Self, OutOfMemory> {
        let pool = Arc::clone(domain.pool());
        ctx.begin_op();
        let tail = make_sentinel(ctx, &pool, u64::MAX, 0)?;
        let head = make_sentinel(ctx, &pool, 0, tail)?;
        ctx.flusher.fence();
        pool.set_root(root_idx, head as u64, &mut ctx.flusher);
        ctx.end_op();
        Ok(Self { pool, head })
    }

    /// Re-attaches after a crash (replay the log directory first).
    pub fn attach(domain: &NvDomain, root_idx: usize) -> Self {
        let pool = Arc::clone(domain.pool());
        let head = pool.root(root_idx) as usize;
        Self { pool, head }
    }

    /// Inserts `key -> value`; `Ok(false)` if present.
    pub fn insert(
        &self,
        ctx: &mut ThreadCtx,
        log: &mut RedoLog,
        key: u64,
        value: u64,
    ) -> Result<bool, OutOfMemory> {
        ctx.begin_op();
        let r = insert(&self.pool, ctx, log, self.head, key, value);
        ctx.end_op();
        r
    }

    /// Removes `key`.
    pub fn remove(&self, ctx: &mut ThreadCtx, log: &mut RedoLog, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = remove(&self.pool, ctx, log, self.head, key);
        ctx.end_op();
        r
    }

    /// Looks up `key`.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = get(&self.pool, self.head, key);
        ctx.end_op();
        r
    }

    /// Quiescent post-crash fixup (after log replay): clear stale locks.
    pub fn recover(&self, flusher: &mut Flusher) {
        recover_chain(&self.pool, self.head, flusher);
        flusher.fence();
    }

    /// Reachability set for leak recovery.
    pub fn collect_reachable(&self) -> HashSet<usize> {
        let mut s = HashSet::new();
        reachable_chain(&self.pool, self.head, &mut s);
        s
    }

    /// Quiescent snapshot of live pairs in key order.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        snapshot_chain(&self.pool, self.head, &mut v);
        v
    }

    /// Quiescent bulk load of sorted pairs into an empty list (bench
    /// prefill).
    pub fn bulk_load_sorted(
        &self,
        ctx: &mut ThreadCtx,
        items: &[(u64, u64)],
    ) -> Result<(), OutOfMemory> {
        let pool = &self.pool;
        let tail = next_of(pool, self.head);
        debug_assert_eq!(key_at(pool, tail), u64::MAX, "bulk load requires empty list");
        ctx.begin_op();
        let mut prev = self.head;
        for &(key, value) in items {
            let node = ctx.alloc(NODE_SIZE)?;
            pool.atomic_u64(node + KEY_OFF).store(key, Ordering::Relaxed);
            pool.atomic_u64(node + VAL_OFF).store(value, Ordering::Relaxed);
            pool.atomic_u64(node + NEXT_OFF).store(tail as u64, Ordering::Relaxed);
            pool.atomic_u64(node + MARK_OFF).store(0, Ordering::Relaxed);
            pool.atomic_u64(node + LOCK_OFF).store(0, Ordering::Release);
            pool.atomic_u64(prev + NEXT_OFF).store(node as u64, Ordering::Release);
            ctx.flusher.clwb_range(node, NODE_SIZE);
            ctx.flusher.clwb(prev + NEXT_OFF);
            prev = node;
        }
        ctx.flusher.fence();
        ctx.end_op();
        Ok(())
    }
}

// SAFETY: all shared state lives in the pool, accessed atomically.
unsafe impl Send for LazyList {}
// SAFETY: see above.
unsafe impl Sync for LazyList {}

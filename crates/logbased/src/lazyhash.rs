//! Log-based hash table baseline: one lazy linked list per bucket
//! (§6.2), with a shared tail sentinel.

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use nvalloc::{NvDomain, OutOfMemory, ThreadCtx};
use pmem::{Flusher, PmemPool};

use crate::lazylist;
use crate::redo::RedoLog;

/// Log-based lock-based hash table (lazy list per bucket).
pub struct LazyHashTable {
    pool: Arc<PmemPool>,
    /// Region data: `[n_buckets: u64][head sentinel addrs ...]`.
    meta: usize,
    n_buckets: usize,
}

impl LazyHashTable {
    /// Creates a table with `n_buckets` buckets (rounded to a power of
    /// two) anchored at root slot `root_idx`.
    pub fn create(
        domain: &NvDomain,
        ctx: &mut ThreadCtx,
        root_idx: usize,
        n_buckets: usize,
    ) -> Result<Self, OutOfMemory> {
        let n_buckets = n_buckets.next_power_of_two();
        let pool = Arc::clone(domain.pool());
        ctx.begin_op();
        let meta = domain.heap().alloc_region(8 + n_buckets * 8, &mut ctx.flusher)?;
        pool.atomic_u64(meta).store(n_buckets as u64, Ordering::Release);
        let tail = lazylist::make_sentinel(ctx, &pool, u64::MAX, 0)?;
        for b in 0..n_buckets {
            let head = lazylist::make_sentinel(ctx, &pool, 0, tail)?;
            pool.atomic_u64(meta + 8 + b * 8).store(head as u64, Ordering::Release);
        }
        ctx.flusher.clwb_range(meta, 8 + n_buckets * 8);
        ctx.flusher.fence();
        pool.set_root(root_idx, meta as u64, &mut ctx.flusher);
        ctx.end_op();
        Ok(Self { pool, meta, n_buckets })
    }

    /// Re-attaches after a crash (replay the log directory first).
    pub fn attach(domain: &NvDomain, root_idx: usize) -> Self {
        let pool = Arc::clone(domain.pool());
        let meta = pool.root(root_idx) as usize;
        let n_buckets = pool.atomic_u64(meta).load(Ordering::Acquire) as usize;
        Self { pool, meta, n_buckets }
    }

    #[inline]
    fn head_of(&self, key: u64) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let b = (h >> 32) as usize & (self.n_buckets - 1);
        self.pool.atomic_u64(self.meta + 8 + b * 8).load(Ordering::Acquire) as usize
    }

    /// Inserts `key -> value`; `Ok(false)` if present.
    pub fn insert(
        &self,
        ctx: &mut ThreadCtx,
        log: &mut RedoLog,
        key: u64,
        value: u64,
    ) -> Result<bool, OutOfMemory> {
        ctx.begin_op();
        let r = lazylist::insert(&self.pool, ctx, log, self.head_of(key), key, value);
        ctx.end_op();
        r
    }

    /// Removes `key`.
    pub fn remove(&self, ctx: &mut ThreadCtx, log: &mut RedoLog, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = lazylist::remove(&self.pool, ctx, log, self.head_of(key), key);
        ctx.end_op();
        r
    }

    /// Looks up `key`.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = lazylist::get(&self.pool, self.head_of(key), key);
        ctx.end_op();
        r
    }

    /// Quiescent post-crash fixup (after log replay).
    pub fn recover(&self, flusher: &mut Flusher) {
        for b in 0..self.n_buckets {
            let head = self.pool.atomic_u64(self.meta + 8 + b * 8).load(Ordering::Acquire) as usize;
            lazylist::recover_chain(&self.pool, head, flusher);
        }
        flusher.fence();
    }

    /// Reachability set (sentinels included) for leak recovery.
    pub fn collect_reachable(&self) -> HashSet<usize> {
        let mut s = HashSet::new();
        for b in 0..self.n_buckets {
            let head = self.pool.atomic_u64(self.meta + 8 + b * 8).load(Ordering::Acquire) as usize;
            lazylist::reachable_chain(&self.pool, head, &mut s);
        }
        s
    }

    /// Quiescent snapshot of live pairs (unordered across buckets).
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        for b in 0..self.n_buckets {
            let head = self.pool.atomic_u64(self.meta + 8 + b * 8).load(Ordering::Acquire) as usize;
            lazylist::snapshot_chain(&self.pool, head, &mut v);
        }
        v
    }
}

// SAFETY: all shared state lives in the pool, accessed atomically.
unsafe impl Send for LazyHashTable {}
// SAFETY: see above.
unsafe impl Sync for LazyHashTable {}

//! **Log-based durable baselines** — the comparison points of the paper's
//! evaluation (§6.2).
//!
//! The paper compares its log-free structures against the
//! best-performing *lock-based* algorithms, each made durable with
//! hand-placed **redo logging** tuned to minimise syncs:
//!
//! * [`LazyList`] — lazy linked list (Heller et al., OPODIS 2005);
//! * [`LazyHashTable`] — one lazy list per bucket;
//! * [`LockSkipList`] — optimistic lock-based skip list (Herlihy et al.,
//!   SIROCCO 2007);
//! * [`BstTk`] — lock-based external BST in the style of bst-tk (David
//!   et al., ASPLOS 2015).
//!
//! Every update costs **two syncs** (commit the redo log, persist the
//! application — see [`redo`]) plus, in the traditional memory-management
//! configuration ([`nvalloc::MemMode::IntentLog`]), one waiting intent
//! write per allocation/retire. The log-free structures pay one sync per
//! link (or amortised less with the link cache) and none for memory
//! management in the common case — that difference is exactly what
//! Figures 5–9 of the paper quantify.

pub mod bsttk;
pub mod lazyhash;
pub mod lazylist;
pub mod lockskip;
pub mod redo;

pub use bsttk::BstTk;
pub use lazyhash::LazyHashTable;
pub use lazylist::LazyList;
pub use lockskip::LockSkipList;
pub use redo::{LogDirectory, RedoLog, LOG_BYTES, MAX_ENTRIES};

//! Lock-based **optimistic skip list** (Herlihy, Lev, Luchangco, Shavit —
//! SIROCCO 2007) with redo logging — the paper's skip-list baseline.
//!
//! As the paper notes (§6.2), a log-based skip-list update holds a
//! logarithmic number of locks while logging a logarithmic number of link
//! writes, which is why Figure 5 shows the largest gains for this
//! structure.
//!
//! # Node layout
//!
//! ```text
//! +0   key         u64
//! +8   value       u64
//! +16  height      u64
//! +24  flags       u64   bit0 = marked, bit1 = fully linked (logged)
//! +32  lock        u64   (volatile spinlock)
//! +40  tower       height × u64
//! ```

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use nvalloc::{NvDomain, OutOfMemory, ThreadCtx};
use pmem::{Flusher, PmemPool};

use crate::redo::RedoLog;

/// Maximum tower height (fits the 256-byte slab class).
pub const MAX_HEIGHT: usize = 24;

const KEY_OFF: usize = 0;
const VAL_OFF: usize = 8;
const HEIGHT_OFF: usize = 16;
const FLAGS_OFF: usize = 24;
const LOCK_OFF: usize = 32;
const TOWER_OFF: usize = 40;

const MARKED: u64 = 1;
const FULLY_LINKED: u64 = 2;

#[inline]
fn node_size(height: usize) -> usize {
    TOWER_OFF + 8 * height
}

#[inline]
fn tower(n: usize, level: usize) -> usize {
    n + TOWER_OFF + 8 * level
}

use std::cell::Cell;
thread_local! {
    static HEIGHT_RNG: Cell<u64> = const { Cell::new(0xDEAD_BEEF_1234_5678) };
}

fn random_height() -> usize {
    HEIGHT_RNG.with(|c| {
        let mut x = c.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        c.set(x);
        ((x.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
    })
}

/// The log-based lock-based skip list.
pub struct LockSkipList {
    pool: Arc<PmemPool>,
    head: usize,
    tail: usize,
}

impl LockSkipList {
    /// Creates an empty skip list anchored at root slot `root_idx`.
    pub fn create(
        domain: &NvDomain,
        ctx: &mut ThreadCtx,
        root_idx: usize,
    ) -> Result<Self, OutOfMemory> {
        let pool = Arc::clone(domain.pool());
        ctx.begin_op();
        let mk = |ctx: &mut ThreadCtx, key: u64| -> Result<usize, OutOfMemory> {
            let n = ctx.alloc(node_size(MAX_HEIGHT))?;
            for off in (0..node_size(MAX_HEIGHT)).step_by(8) {
                pool.atomic_u64(n + off).store(0, Ordering::Relaxed);
            }
            pool.atomic_u64(n + KEY_OFF).store(key, Ordering::Relaxed);
            pool.atomic_u64(n + HEIGHT_OFF).store(MAX_HEIGHT as u64, Ordering::Relaxed);
            pool.atomic_u64(n + FLAGS_OFF).store(FULLY_LINKED, Ordering::Release);
            ctx.flusher.clwb_range(n, node_size(MAX_HEIGHT));
            Ok(n)
        };
        let tail = mk(ctx, u64::MAX)?;
        let head = mk(ctx, 0)?;
        for level in 0..MAX_HEIGHT {
            pool.atomic_u64(tower(head, level)).store(tail as u64, Ordering::Release);
        }
        ctx.flusher.clwb_range(head, node_size(MAX_HEIGHT));
        ctx.flusher.fence();
        pool.set_root(root_idx, head as u64, &mut ctx.flusher);
        pool.set_root(root_idx + 1, tail as u64, &mut ctx.flusher);
        ctx.end_op();
        Ok(Self { pool, head, tail })
    }

    /// Re-attaches after a crash (replay the log directory first). Uses
    /// root slots `root_idx` and `root_idx + 1`.
    pub fn attach(domain: &NvDomain, root_idx: usize) -> Self {
        let pool = Arc::clone(domain.pool());
        let head = pool.root(root_idx) as usize;
        let tail = pool.root(root_idx + 1) as usize;
        Self { pool, head, tail }
    }

    #[inline]
    fn key_at(&self, n: usize) -> u64 {
        self.pool.atomic_u64(n + KEY_OFF).load(Ordering::Acquire)
    }

    #[inline]
    fn flags(&self, n: usize) -> u64 {
        self.pool.atomic_u64(n + FLAGS_OFF).load(Ordering::Acquire)
    }

    #[inline]
    fn height_at(&self, n: usize) -> usize {
        self.pool.atomic_u64(n + HEIGHT_OFF).load(Ordering::Acquire) as usize
    }

    #[inline]
    fn next_at(&self, n: usize, level: usize) -> usize {
        self.pool.atomic_u64(tower(n, level)).load(Ordering::Acquire) as usize
    }

    fn lock(&self, n: usize) {
        let w = self.pool.atomic_u64(n + LOCK_OFF);
        loop {
            if w.compare_exchange_weak(0, 1, Ordering::AcqRel, Ordering::Acquire).is_ok() {
                return;
            }
            while w.load(Ordering::Relaxed) != 0 {
                std::hint::spin_loop();
            }
        }
    }

    fn unlock(&self, n: usize) {
        self.pool.atomic_u64(n + LOCK_OFF).store(0, Ordering::Release);
    }

    /// Optimistic find: fills `preds`/`succs`, returns the highest level
    /// at which the key was found (or `None`).
    fn find(
        &self,
        key: u64,
        preds: &mut [usize; MAX_HEIGHT],
        succs: &mut [usize; MAX_HEIGHT],
    ) -> Option<usize> {
        let mut found = None;
        let mut pred = self.head;
        for level in (0..MAX_HEIGHT).rev() {
            let mut curr = self.next_at(pred, level);
            while self.key_at(curr) < key {
                pred = curr;
                curr = self.next_at(pred, level);
            }
            if found.is_none() && self.key_at(curr) == key {
                found = Some(level);
            }
            preds[level] = pred;
            succs[level] = curr;
        }
        found
    }

    /// Inserts `key -> value`; `Ok(false)` if present.
    pub fn insert(
        &self,
        ctx: &mut ThreadCtx,
        log: &mut RedoLog,
        key: u64,
        value: u64,
    ) -> Result<bool, OutOfMemory> {
        debug_assert!(key > 0 && key < u64::MAX);
        ctx.begin_op();
        let r = self.insert_inner(ctx, log, key, value);
        ctx.end_op();
        r
    }

    // Tower levels index `preds`/`succs` and feed `tower()` at once; range
    // loops read better than iterator adapters here.
    #[allow(clippy::needless_range_loop)]
    fn insert_inner(
        &self,
        ctx: &mut ThreadCtx,
        log: &mut RedoLog,
        key: u64,
        value: u64,
    ) -> Result<bool, OutOfMemory> {
        let top = random_height();
        let mut preds = [0usize; MAX_HEIGHT];
        let mut succs = [0usize; MAX_HEIGHT];
        loop {
            if let Some(_lvl) = self.find(key, &mut preds, &mut succs) {
                let node = succs[0];
                if self.flags(node) & MARKED == 0 {
                    // Wait until the in-flight insert finishes linking.
                    while self.flags(node) & FULLY_LINKED == 0 {
                        std::hint::spin_loop();
                    }
                    return Ok(false);
                }
                continue; // marked: about to disappear, retry
            }
            // Lock predecessors bottom-up, skipping duplicates.
            let mut locked: Vec<usize> = Vec::with_capacity(top);
            let mut valid = true;
            for level in 0..top {
                let pred = preds[level];
                if locked.last() != Some(&pred) && !locked.contains(&pred) {
                    self.lock(pred);
                    locked.push(pred);
                }
                let succ = succs[level];
                valid = self.flags(pred) & MARKED == 0
                    && self.flags(succ) & MARKED == 0
                    && self.next_at(pred, level) == succ;
                if !valid {
                    break;
                }
            }
            if !valid {
                for &n in locked.iter().rev() {
                    self.unlock(n);
                }
                continue;
            }
            let node = ctx.alloc(node_size(top))?;
            let pool = &self.pool;
            pool.atomic_u64(node + KEY_OFF).store(key, Ordering::Relaxed);
            pool.atomic_u64(node + VAL_OFF).store(value, Ordering::Relaxed);
            pool.atomic_u64(node + HEIGHT_OFF).store(top as u64, Ordering::Relaxed);
            pool.atomic_u64(node + FLAGS_OFF).store(0, Ordering::Relaxed);
            pool.atomic_u64(node + LOCK_OFF).store(0, Ordering::Relaxed);
            for level in 0..top {
                pool.atomic_u64(tower(node, level)).store(succs[level] as u64, Ordering::Release);
            }
            ctx.flusher.clwb_range(node, node_size(top));
            // One transaction: a logarithmic number of link writes plus
            // the fully-linked flag (§6.2).
            for level in 0..top {
                log.record(tower(preds[level], level), node as u64, &mut ctx.flusher);
            }
            log.record(node + FLAGS_OFF, FULLY_LINKED, &mut ctx.flusher);
            log.commit_apply(&mut ctx.flusher);
            for &n in locked.iter().rev() {
                self.unlock(n);
            }
            return Ok(true);
        }
    }

    /// Removes `key`.
    pub fn remove(&self, ctx: &mut ThreadCtx, log: &mut RedoLog, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = self.remove_inner(ctx, log, key);
        ctx.end_op();
        r
    }

    #[allow(clippy::needless_range_loop)]
    fn remove_inner(&self, ctx: &mut ThreadCtx, log: &mut RedoLog, key: u64) -> Option<u64> {
        let mut preds = [0usize; MAX_HEIGHT];
        let mut succs = [0usize; MAX_HEIGHT];
        let mut victim_locked = 0usize;
        loop {
            let lfound = self.find(key, &mut preds, &mut succs);
            let victim = match lfound {
                Some(l) => succs[l],
                None => {
                    if victim_locked != 0 {
                        self.unlock(victim_locked);
                    }
                    return None;
                }
            };
            if victim_locked == 0 {
                let f = self.flags(victim);
                let top = self.height_at(victim);
                if f & FULLY_LINKED == 0 || f & MARKED != 0 || lfound != Some(top - 1) {
                    return None;
                }
                self.lock(victim);
                if self.flags(victim) & MARKED != 0 {
                    self.unlock(victim);
                    return None;
                }
                victim_locked = victim;
            } else if victim != victim_locked {
                // Should not happen while we hold the victim's lock and
                // it is unmarked; retry defensively.
                continue;
            }
            let top = self.height_at(victim);
            // Lock predecessors and validate.
            let mut locked: Vec<usize> = Vec::with_capacity(top);
            let mut valid = true;
            for level in 0..top {
                let pred = preds[level];
                if pred != victim_locked && !locked.contains(&pred) {
                    self.lock(pred);
                    locked.push(pred);
                }
                valid = self.flags(pred) & MARKED == 0 && self.next_at(pred, level) == victim;
                if !valid {
                    break;
                }
            }
            if !valid {
                for &n in locked.iter().rev() {
                    self.unlock(n);
                }
                continue;
            }
            let val = self.pool.atomic_u64(victim + VAL_OFF).load(Ordering::Acquire);
            // One transaction: mark + all unlinks.
            log.record(victim + FLAGS_OFF, MARKED | FULLY_LINKED, &mut ctx.flusher);
            for level in 0..top {
                log.record(
                    tower(preds[level], level),
                    self.next_at(victim, level) as u64,
                    &mut ctx.flusher,
                );
            }
            log.commit_apply(&mut ctx.flusher);
            for &n in locked.iter().rev() {
                self.unlock(n);
            }
            self.unlock(victim);
            ctx.retire(victim);
            return Some(val);
        }
    }

    /// Wait-free lookup.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let mut pred = self.head;
        let mut level = MAX_HEIGHT - 1;
        let r = loop {
            let curr = self.next_at(pred, level);
            if self.key_at(curr) < key {
                pred = curr;
                continue;
            }
            if level > 0 {
                level -= 1;
                continue;
            }
            let f = self.flags(curr);
            break (self.key_at(curr) == key && f & FULLY_LINKED != 0 && f & MARKED == 0)
                .then(|| self.pool.atomic_u64(curr + VAL_OFF).load(Ordering::Acquire));
        };
        ctx.end_op();
        r
    }

    /// Quiescent post-crash fixup (after log replay): clear stale locks
    /// along the bottom level.
    pub fn recover(&self, flusher: &mut Flusher) {
        let mut n = self.head;
        loop {
            self.pool.atomic_u64(n + LOCK_OFF).store(0, Ordering::Release);
            flusher.clwb(n + LOCK_OFF);
            if n == self.tail {
                break;
            }
            n = self.next_at(n, 0);
            if n == 0 {
                break;
            }
        }
        flusher.fence();
    }

    /// Reachability set (sentinels included).
    pub fn collect_reachable(&self) -> HashSet<usize> {
        let mut s = HashSet::new();
        let mut n = self.head;
        loop {
            if self.flags(n) & MARKED == 0 {
                s.insert(n);
            }
            if n == self.tail {
                break;
            }
            n = self.next_at(n, 0);
            if n == 0 {
                break;
            }
        }
        s
    }

    /// Quiescent snapshot of live user pairs in key order.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        let mut n = self.next_at(self.head, 0);
        while n != 0 && n != self.tail {
            if self.flags(n) & MARKED == 0 {
                v.push((self.key_at(n), self.pool.atomic_u64(n + VAL_OFF).load(Ordering::Acquire)));
            }
            n = self.next_at(n, 0);
        }
        v
    }
}

// SAFETY: all shared state lives in the pool, accessed atomically.
unsafe impl Send for LockSkipList {}
// SAFETY: see above.
unsafe impl Sync for LockSkipList {}

//! Per-thread redo logging — the durability mechanism of the paper's
//! baseline implementations (§6.2).
//!
//! The paper compares its log-free structures against lock-based
//! algorithms with **hand-placed redo logging**, tuned to minimise syncs
//! (a generic transactional framework would be slower). This module
//! implements that baseline faithfully:
//!
//! 1. The critical section durably appends each store to the log as it
//!    is staged ([`RedoLog::record`]) — one waiting sync per logged
//!    store, the defining cost of log-based approaches (§1: "this
//!    entails waiting for stores to be written to NVRAM before
//!    proceeding").
//! 2. [`RedoLog::commit_apply`] makes the commit record — count +
//!    checksum — durable (it must not reach NVRAM before the entries it
//!    covers).
//! 3. The stores are applied to the structure, written back, and one
//!    more fence makes them durable.
//! 4. The log is truncated lazily (no fence: replaying a committed redo
//!    log is idempotent).
//!
//! So a transaction with `n` logged stores pays `n + 2` syncs, versus
//! the log-free structures' one per link update (insert: pre-link fence
//! plus link persist; amortised below one with the link cache) — exactly
//! the cost gap Figures 5–8 measure, and why the gap grows with the
//! number of logged stores (the skip list logs one per tower level).
//!
//! After a crash, [`LogDirectory::replay_all`] re-applies every
//! still-committed log before structure recovery runs.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use nvalloc::{NvDomain, OutOfMemory};
use pmem::{Flusher, PmemPool};

/// Maximum `(addr, value)` entries per transaction. The skip list logs
/// up to `2 * MAX_HEIGHT` link writes; 64 leaves ample room.
pub const MAX_ENTRIES: usize = 64;

const COUNT_OFF: usize = 0;
const CHECKSUM_OFF: usize = 8;
const ENTRIES_OFF: usize = 16;
/// Bytes of one thread's log area, padded to whole cache lines so
/// adjacent threads' logs never share a line.
pub const LOG_BYTES: usize = (ENTRIES_OFF + MAX_ENTRIES * 16 + 63) & !63;

fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29)
}

/// A per-thread redo log over a durable log area.
pub struct RedoLog {
    pool: Arc<PmemPool>,
    /// Durable log area (entries + count + checksum).
    area: usize,
    /// Volatile staging buffer.
    staged: Vec<(usize, u64)>,
}

impl RedoLog {
    fn new(pool: Arc<PmemPool>, area: usize) -> Self {
        Self { pool, area, staged: Vec::with_capacity(MAX_ENTRIES) }
    }

    /// Stages a durable store of `value` at `addr` for the current
    /// transaction, durably appending it to the log **and waiting** — the
    /// paper's characterisation of log-based approaches ("this entails
    /// waiting for stores to be written to NVRAM before proceeding",
    /// §1). One sync per logged store; this is what makes the skip-list
    /// baseline (which logs one store per tower level) so expensive
    /// (§6.2).
    #[inline]
    pub fn record(&mut self, addr: usize, value: u64, flusher: &mut Flusher) {
        debug_assert!(self.staged.len() < MAX_ENTRIES, "transaction too large");
        let e = self.area + ENTRIES_OFF + self.staged.len() * 16;
        self.pool.atomic_u64(e).store(addr as u64, Ordering::Relaxed);
        self.pool.atomic_u64(e + 8).store(value, Ordering::Release);
        flusher.clwb_range(e, 16);
        flusher.fence();
        self.staged.push((addr, value));
    }

    /// Number of staged entries.
    pub fn staged(&self) -> usize {
        self.staged.len()
    }

    /// Drops the staged entries without committing (validation failed).
    pub fn abort(&mut self) {
        self.staged.clear();
    }

    /// Durably commits the staged entries (sync #1), applies them to the
    /// structure and makes the application durable (sync #2), then
    /// truncates lazily.
    pub fn commit_apply(&mut self, flusher: &mut Flusher) {
        if self.staged.is_empty() {
            return;
        }
        let pool = &self.pool;
        // Entries are already durable (persisted by `record`); write the
        // commit record (count + checksum) and make it durable — it must
        // not reach NVRAM before the entries it covers. (The checksum
        // also rejects a log torn between entry lines.)
        let mut checksum = 0xC0FF_EE00_D15C_0B01u64;
        for &(addr, value) in self.staged.iter() {
            checksum = mix(mix(checksum, addr as u64), value);
        }
        pool.atomic_u64(self.area + COUNT_OFF).store(self.staged.len() as u64, Ordering::Relaxed);
        pool.atomic_u64(self.area + CHECKSUM_OFF).store(checksum, Ordering::Release);
        flusher.clwb(self.area);
        flusher.fence(); // commit sync: the transaction is now decided
                         // Apply.
        for &(addr, value) in &self.staged {
            pool.atomic_u64(addr).store(value, Ordering::Release);
            flusher.clwb(addr);
        }
        flusher.fence(); // apply sync: the home locations are durable
                         // Truncate lazily (idempotent replay makes this safe without a
                         // fence).
        pool.atomic_u64(self.area + COUNT_OFF).store(0, Ordering::Release);
        flusher.clwb(self.area);
        self.staged.clear();
    }
}

/// Durable directory of per-thread log areas, anchored in a root slot so
/// crashes can find and replay every log.
pub struct LogDirectory {
    pool: Arc<PmemPool>,
    /// Region: `[MAX_THREADS log areas]`, 4 KiB-page aligned.
    base: usize,
}

impl LogDirectory {
    /// Allocates the directory and publishes it at `root_idx`.
    pub fn create(domain: &NvDomain, root_idx: usize) -> Result<Self, OutOfMemory> {
        let pool = Arc::clone(domain.pool());
        let mut flusher = pool.flusher();
        let bytes = nvalloc::MAX_THREADS * LOG_BYTES;
        let base = domain.heap().alloc_region(bytes, &mut flusher)?;
        pool.set_root(root_idx, base as u64, &mut flusher);
        Ok(Self { pool, base })
    }

    /// Re-attaches to an existing directory.
    pub fn attach(domain: &NvDomain, root_idx: usize) -> Self {
        let pool = Arc::clone(domain.pool());
        let base = pool.root(root_idx) as usize;
        Self { pool, base }
    }

    /// Opens thread `tid`'s log.
    pub fn open(&self, tid: usize) -> RedoLog {
        assert!(tid < nvalloc::MAX_THREADS);
        RedoLog::new(Arc::clone(&self.pool), self.base + tid * LOG_BYTES)
    }

    /// Replays every committed log (post-crash, quiescent). Returns the
    /// number of transactions re-applied.
    pub fn replay_all(&self, flusher: &mut Flusher) -> usize {
        let mut replayed = 0;
        for tid in 0..nvalloc::MAX_THREADS {
            let area = self.base + tid * LOG_BYTES;
            let count = self.pool.atomic_u64(area + COUNT_OFF).load(Ordering::Acquire) as usize;
            if count == 0 || count > MAX_ENTRIES {
                continue;
            }
            // Validate the checksum; a torn log means the transaction
            // never committed.
            let mut checksum = 0xC0FF_EE00_D15C_0B01u64;
            let mut entries = Vec::with_capacity(count);
            let mut valid = true;
            for i in 0..count {
                let e = area + ENTRIES_OFF + i * 16;
                let addr = self.pool.atomic_u64(e).load(Ordering::Acquire) as usize;
                let value = self.pool.atomic_u64(e + 8).load(Ordering::Acquire);
                checksum = mix(mix(checksum, addr as u64), value);
                if addr % 8 != 0 || !self.pool.contains(addr) {
                    valid = false;
                    break;
                }
                entries.push((addr, value));
            }
            if !valid
                || checksum != self.pool.atomic_u64(area + CHECKSUM_OFF).load(Ordering::Acquire)
            {
                continue;
            }
            for (addr, value) in entries {
                self.pool.atomic_u64(addr).store(value, Ordering::Release);
                flusher.clwb(addr);
            }
            self.pool.atomic_u64(area + COUNT_OFF).store(0, Ordering::Release);
            flusher.clwb(area);
            replayed += 1;
        }
        flusher.fence();
        replayed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::{Mode, PoolBuilder};

    fn setup() -> (Arc<PmemPool>, Arc<NvDomain>, LogDirectory) {
        let pool = PoolBuilder::new(8 << 20).mode(Mode::CrashSim).build();
        let domain = NvDomain::create(Arc::clone(&pool));
        let dir = LogDirectory::create(&domain, 0).unwrap();
        (pool, domain, dir)
    }

    #[test]
    fn commit_apply_is_durable() {
        let (pool, domain, dir) = setup();
        let mut ctx = domain.register();
        ctx.begin_op();
        let a = ctx.alloc(64).unwrap();
        ctx.end_op();
        let mut log = dir.open(0);
        log.record(a, 42, &mut ctx.flusher);
        log.record(a + 8, 43, &mut ctx.flusher);
        log.commit_apply(&mut ctx.flusher);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        assert_eq!(pool.atomic_u64(a).load(Ordering::Relaxed), 42);
        assert_eq!(pool.atomic_u64(a + 8).load(Ordering::Relaxed), 43);
    }

    #[test]
    fn committed_but_unapplied_log_replays() {
        let (pool, domain, dir) = setup();
        let mut ctx = domain.register();
        ctx.begin_op();
        let a = ctx.alloc(64).unwrap();
        ctx.flusher.persist(a, 8);
        ctx.end_op();
        // Hand-craft a committed-but-not-applied crash state: commit the
        // log image only.
        let _log = dir.open(0);
        // Simulate: write log area manually (count+checksum+entry) and
        // persist just that, as if we crashed right after the commit
        // sync but before the apply.
        {
            let area = pool.root(0) as usize;
            let mut checksum = 0xC0FF_EE00_D15C_0B01u64;
            checksum = mix(mix(checksum, a as u64), 77);
            pool.atomic_u64(area + ENTRIES_OFF).store(a as u64, Ordering::Relaxed);
            pool.atomic_u64(area + ENTRIES_OFF + 8).store(77, Ordering::Relaxed);
            pool.atomic_u64(area + COUNT_OFF).store(1, Ordering::Relaxed);
            pool.atomic_u64(area + CHECKSUM_OFF).store(checksum, Ordering::Relaxed);
            ctx.flusher.clwb_range(area, ENTRIES_OFF + 16);
            ctx.flusher.fence();
        }
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        let domain2 = NvDomain::attach(Arc::clone(&pool));
        let dir2 = LogDirectory::attach(&domain2, 0);
        let mut f = pool.flusher();
        assert_eq!(dir2.replay_all(&mut f), 1);
        assert_eq!(pool.atomic_u64(a).load(Ordering::Relaxed), 77);
        // Replay truncated the log; a second replay is a no-op.
        assert_eq!(dir2.replay_all(&mut f), 0);
    }

    #[test]
    fn torn_log_is_discarded() {
        let (pool, domain, _dir) = setup();
        let mut ctx = domain.register();
        ctx.begin_op();
        let a = ctx.alloc(64).unwrap();
        ctx.flusher.persist(a, 8);
        ctx.end_op();
        let area = pool.root(0) as usize;
        // A count with a mismatched checksum (torn write).
        pool.atomic_u64(area + ENTRIES_OFF).store(a as u64, Ordering::Relaxed);
        pool.atomic_u64(area + ENTRIES_OFF + 8).store(99, Ordering::Relaxed);
        pool.atomic_u64(area + COUNT_OFF).store(1, Ordering::Relaxed);
        pool.atomic_u64(area + CHECKSUM_OFF).store(0xBAD, Ordering::Relaxed);
        ctx.flusher.clwb_range(area, ENTRIES_OFF + 16);
        ctx.flusher.fence();
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        let domain2 = NvDomain::attach(Arc::clone(&pool));
        let dir2 = LogDirectory::attach(&domain2, 0);
        let mut f = pool.flusher();
        assert_eq!(dir2.replay_all(&mut f), 0, "torn log must not replay");
        assert_ne!(pool.atomic_u64(a).load(Ordering::Relaxed), 99);
    }

    #[test]
    fn commit_costs_exactly_three_syncs() {
        let (_pool, domain, dir) = setup();
        let mut ctx = domain.register();
        ctx.begin_op();
        let a = ctx.alloc(64).unwrap();
        ctx.end_op();
        let mut log = dir.open(0);
        let before = ctx.flusher.stats().sync_batches;
        log.record(a, 1, &mut ctx.flusher);
        log.commit_apply(&mut ctx.flusher);
        assert_eq!(
            ctx.flusher.stats().sync_batches - before,
            3,
            "one entry sync + commit sync + apply sync"
        );
    }

    #[test]
    fn empty_commit_is_free() {
        let (_pool, domain, dir) = setup();
        let mut ctx = domain.register();
        let mut log = dir.open(0);
        let before = ctx.flusher.stats().fences;
        log.commit_apply(&mut ctx.flusher);
        assert_eq!(ctx.flusher.stats().fences, before);
    }
}

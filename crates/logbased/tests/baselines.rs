//! Integration tests for the log-based baseline structures: semantics,
//! concurrency, and crash recovery via redo-log replay.

use std::collections::BTreeMap;
use std::sync::Arc;

use logbased::{BstTk, LazyHashTable, LazyList, LockSkipList, LogDirectory};
use nvalloc::{MemMode, NvDomain};
use pmem::{LatencyModel, Mode, PmemPool, PoolBuilder};
use rand::prelude::*;

const LOG_ROOT: usize = 0;
const DS_ROOT: usize = 1;

fn crash_pool(mb: usize) -> Arc<PmemPool> {
    PoolBuilder::new(mb << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
}

#[test]
fn lazylist_oracle_and_crash() {
    let pool = crash_pool(16);
    let domain = NvDomain::create(Arc::clone(&pool));
    let dir = LogDirectory::create(&domain, LOG_ROOT).unwrap();
    let mut ctx = domain.register();
    ctx.set_mem_mode(MemMode::IntentLog);
    let mut log = dir.open(ctx.tid());
    let list = LazyList::create(&domain, &mut ctx, DS_ROOT).unwrap();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..3000 {
        let k = rng.gen_range(1..150u64);
        match rng.gen_range(0..3) {
            0 => assert_eq!(
                list.insert(&mut ctx, &mut log, k, k * 2).unwrap(),
                oracle.insert(k, k * 2).is_none()
            ),
            1 => assert_eq!(list.remove(&mut ctx, &mut log, k), oracle.remove(&k)),
            _ => assert_eq!(list.get(&mut ctx, k), oracle.get(&k).copied()),
        }
    }
    drop(ctx);
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain2 = NvDomain::attach(Arc::clone(&pool));
    let dir2 = LogDirectory::attach(&domain2, LOG_ROOT);
    let mut f = pool.flusher();
    dir2.replay_all(&mut f);
    let list2 = LazyList::attach(&domain2, DS_ROOT);
    list2.recover(&mut f);
    let reachable = list2.collect_reachable();
    domain2.recover_leaks(|a| reachable.contains(&a));
    assert_eq!(list2.snapshot(), oracle.into_iter().collect::<Vec<_>>());
}

#[test]
fn lazylist_concurrent() {
    let pool = PoolBuilder::new(64 << 20).mode(Mode::Perf).build();
    let domain = NvDomain::create(Arc::clone(&pool));
    let dir = LogDirectory::create(&domain, LOG_ROOT).unwrap();
    let mut ctx0 = domain.register();
    let list = LazyList::create(&domain, &mut ctx0, DS_ROOT).unwrap();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let domain = Arc::clone(&domain);
            let dir = &dir;
            let list = &list;
            s.spawn(move || {
                let mut ctx = domain.register();
                let mut log = dir.open(ctx.tid());
                let mut rng = StdRng::seed_from_u64(t);
                for _ in 0..1500 {
                    let k = rng.gen_range(1..64u64);
                    match rng.gen_range(0..3) {
                        0 => {
                            let _ = list.insert(&mut ctx, &mut log, k, t).unwrap();
                        }
                        1 => {
                            let _ = list.remove(&mut ctx, &mut log, k);
                        }
                        _ => {
                            let _ = list.get(&mut ctx, k);
                        }
                    }
                }
                ctx.drain_all();
            });
        }
    });
    let snap = list.snapshot();
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn lazyhash_oracle_and_crash() {
    let pool = crash_pool(16);
    let domain = NvDomain::create(Arc::clone(&pool));
    let dir = LogDirectory::create(&domain, LOG_ROOT).unwrap();
    let mut ctx = domain.register();
    let mut log = dir.open(ctx.tid());
    let ht = LazyHashTable::create(&domain, &mut ctx, DS_ROOT, 32).unwrap();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..3000 {
        let k = rng.gen_range(1..400u64);
        match rng.gen_range(0..3) {
            0 => assert_eq!(
                ht.insert(&mut ctx, &mut log, k, k).unwrap(),
                oracle.insert(k, k).is_none()
            ),
            1 => assert_eq!(ht.remove(&mut ctx, &mut log, k), oracle.remove(&k)),
            _ => assert_eq!(ht.get(&mut ctx, k), oracle.get(&k).copied()),
        }
    }
    drop(ctx);
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain2 = NvDomain::attach(Arc::clone(&pool));
    let dir2 = LogDirectory::attach(&domain2, LOG_ROOT);
    let mut f = pool.flusher();
    dir2.replay_all(&mut f);
    let ht2 = LazyHashTable::attach(&domain2, DS_ROOT);
    ht2.recover(&mut f);
    let reachable = ht2.collect_reachable();
    domain2.recover_leaks(|a| reachable.contains(&a));
    let mut snap = ht2.snapshot();
    snap.sort_unstable();
    assert_eq!(snap, oracle.into_iter().collect::<Vec<_>>());
}

#[test]
fn lockskip_oracle_and_crash() {
    let pool = crash_pool(32);
    let domain = NvDomain::create(Arc::clone(&pool));
    let dir = LogDirectory::create(&domain, LOG_ROOT).unwrap();
    let mut ctx = domain.register();
    let mut log = dir.open(ctx.tid());
    let sl = LockSkipList::create(&domain, &mut ctx, DS_ROOT).unwrap();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..4000 {
        let k = rng.gen_range(1..250u64);
        match rng.gen_range(0..3) {
            0 => assert_eq!(
                sl.insert(&mut ctx, &mut log, k, k + 5).unwrap(),
                oracle.insert(k, k + 5).is_none(),
                "insert({k})"
            ),
            1 => assert_eq!(sl.remove(&mut ctx, &mut log, k), oracle.remove(&k), "remove({k})"),
            _ => assert_eq!(sl.get(&mut ctx, k), oracle.get(&k).copied(), "get({k})"),
        }
    }
    drop(ctx);
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain2 = NvDomain::attach(Arc::clone(&pool));
    let dir2 = LogDirectory::attach(&domain2, LOG_ROOT);
    let mut f = pool.flusher();
    dir2.replay_all(&mut f);
    let sl2 = LockSkipList::attach(&domain2, DS_ROOT);
    sl2.recover(&mut f);
    let reachable = sl2.collect_reachable();
    domain2.recover_leaks(|a| reachable.contains(&a));
    assert_eq!(sl2.snapshot(), oracle.into_iter().collect::<Vec<_>>());
}

#[test]
fn lockskip_concurrent() {
    let pool = PoolBuilder::new(128 << 20).mode(Mode::Perf).build();
    let domain = NvDomain::create(Arc::clone(&pool));
    let dir = LogDirectory::create(&domain, LOG_ROOT).unwrap();
    let mut ctx0 = domain.register();
    let sl = LockSkipList::create(&domain, &mut ctx0, DS_ROOT).unwrap();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let domain = Arc::clone(&domain);
            let dir = &dir;
            let sl = &sl;
            s.spawn(move || {
                let mut ctx = domain.register();
                let mut log = dir.open(ctx.tid());
                let mut rng = StdRng::seed_from_u64(t + 9);
                let base = 1000 + t * 500;
                for i in 0..300 {
                    assert!(sl.insert(&mut ctx, &mut log, base + i, t).unwrap());
                }
                for i in (0..300).step_by(2) {
                    assert_eq!(sl.remove(&mut ctx, &mut log, base + i), Some(t));
                }
                for _ in 0..1000 {
                    let k = rng.gen_range(1..48u64);
                    if rng.gen_bool(0.5) {
                        let _ = sl.insert(&mut ctx, &mut log, k, t).unwrap();
                    } else {
                        let _ = sl.remove(&mut ctx, &mut log, k);
                    }
                }
                ctx.drain_all();
            });
        }
    });
    let snap = sl.snapshot();
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn bsttk_oracle_and_crash() {
    let pool = crash_pool(32);
    let domain = NvDomain::create(Arc::clone(&pool));
    let dir = LogDirectory::create(&domain, LOG_ROOT).unwrap();
    let mut ctx = domain.register();
    let mut log = dir.open(ctx.tid());
    let bst = BstTk::create(&domain, &mut ctx, DS_ROOT).unwrap();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..4000 {
        let k = rng.gen_range(0..250u64);
        match rng.gen_range(0..3) {
            0 => assert_eq!(
                bst.insert(&mut ctx, &mut log, k, k + 5).unwrap(),
                oracle.insert(k, k + 5).is_none()
            ),
            1 => assert_eq!(bst.remove(&mut ctx, &mut log, k), oracle.remove(&k)),
            _ => assert_eq!(bst.get(&mut ctx, k), oracle.get(&k).copied()),
        }
    }
    drop(ctx);
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain2 = NvDomain::attach(Arc::clone(&pool));
    let dir2 = LogDirectory::attach(&domain2, LOG_ROOT);
    let mut f = pool.flusher();
    dir2.replay_all(&mut f);
    let bst2 = BstTk::attach(&domain2, DS_ROOT);
    bst2.recover(&mut f);
    let reachable = bst2.collect_reachable();
    domain2.recover_leaks(|a| reachable.contains(&a));
    assert_eq!(bst2.snapshot(), oracle.into_iter().collect::<Vec<_>>());
}

#[test]
fn bsttk_concurrent() {
    let pool = PoolBuilder::new(128 << 20).mode(Mode::Perf).build();
    let domain = NvDomain::create(Arc::clone(&pool));
    let dir = LogDirectory::create(&domain, LOG_ROOT).unwrap();
    let mut ctx0 = domain.register();
    let bst = BstTk::create(&domain, &mut ctx0, DS_ROOT).unwrap();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let domain = Arc::clone(&domain);
            let dir = &dir;
            let bst = &bst;
            s.spawn(move || {
                let mut ctx = domain.register();
                let mut log = dir.open(ctx.tid());
                let mut rng = StdRng::seed_from_u64(t + 77);
                for _ in 0..2000 {
                    let k = rng.gen_range(0..64u64);
                    match rng.gen_range(0..3) {
                        0 => {
                            let _ = bst.insert(&mut ctx, &mut log, k, t).unwrap();
                        }
                        1 => {
                            let _ = bst.remove(&mut ctx, &mut log, k);
                        }
                        _ => {
                            let _ = bst.get(&mut ctx, k);
                        }
                    }
                }
                ctx.drain_all();
            });
        }
    });
    let snap = bst.snapshot();
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn crash_image_checkpoints_lazylist() {
    // Durable linearizability for the baseline too: every completed op
    // must be visible after replay + recovery.
    let pool = crash_pool(16);
    let domain = NvDomain::create(Arc::clone(&pool));
    let dir = LogDirectory::create(&domain, LOG_ROOT).unwrap();
    let mut ctx = domain.register();
    let mut log = dir.open(ctx.tid());
    let list = LazyList::create(&domain, &mut ctx, DS_ROOT).unwrap();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(5);
    let mut checkpoints = Vec::new();
    for i in 0..300 {
        let k = rng.gen_range(1..40u64);
        if rng.gen_bool(0.5) {
            list.insert(&mut ctx, &mut log, k, k).unwrap();
            oracle.insert(k, k);
        } else {
            list.remove(&mut ctx, &mut log, k);
            oracle.remove(&k);
        }
        if i % 43 == 0 {
            checkpoints.push((pool.capture_crash_image().unwrap(), oracle.clone()));
        }
    }
    drop(ctx);
    for (img, expect) in checkpoints {
        // SAFETY: no threads are running.
        unsafe { pool.crash_to_image(&img).unwrap() };
        let domain2 = NvDomain::attach(Arc::clone(&pool));
        let dir2 = LogDirectory::attach(&domain2, LOG_ROOT);
        let mut f = pool.flusher();
        dir2.replay_all(&mut f);
        let list2 = LazyList::attach(&domain2, DS_ROOT);
        list2.recover(&mut f);
        assert_eq!(list2.snapshot(), expect.into_iter().collect::<Vec<_>>());
    }
}

//! Marked pointer words.
//!
//! Every link in a log-free structure is a 64-bit word holding a node
//! address plus up to three low-order mark bits (nodes are allocated at
//! 64-byte-aligned addresses, so the low 3 bits of a real address are
//! always zero):
//!
//! * [`DELETED`] (bit 0) — the Harris logical-deletion mark on a node's
//!   `next` pointer; in the Natarajan–Mittal BST this is the edge *flag*.
//! * [`DIRTY`] (bit 1) — the link-and-persist mark (§3): the link's new
//!   value may not have reached NVRAM yet. Set atomically together with
//!   the link change; cleared (without needing persistence) once the link
//!   has been written back.
//! * [`TAG`] (bit 2) — the Natarajan–Mittal edge *tag* used during
//!   deletion cleanup. The hash table reuses this bit during an
//!   incremental resize: on a bucket's head word it is the "drained into
//!   the new array" sentinel, and on a node's `next` word it is the
//!   migrator's claim (see `core::hash`).

/// Logical-deletion mark (Harris) / edge flag (Natarajan–Mittal).
pub const DELETED: u64 = 1;
/// Link-and-persist "possibly not durable yet" mark (§3).
pub const DIRTY: u64 = 1 << 1;
/// Natarajan–Mittal edge tag.
pub const TAG: u64 = 1 << 2;
/// All mark bits.
pub const MARKS: u64 = DELETED | DIRTY | TAG;
/// Address bits.
pub const ADDR: u64 = !MARKS;

/// Extracts the node address from a link word.
#[inline]
pub fn addr_of(word: u64) -> usize {
    (word & ADDR) as usize
}

/// Whether the link carries the logical-deletion mark / flag.
#[inline]
pub fn is_deleted(word: u64) -> bool {
    word & DELETED != 0
}

/// Whether the link carries the dirty (not-yet-durable) mark.
#[inline]
pub fn is_dirty(word: u64) -> bool {
    word & DIRTY != 0
}

/// Whether the link carries the Natarajan–Mittal tag.
#[inline]
pub fn is_tagged(word: u64) -> bool {
    word & TAG != 0
}

/// The word with the dirty mark removed (the logical value of the link).
#[inline]
pub fn clean(word: u64) -> u64 {
    word & !DIRTY
}

/// The word stripped of all marks (a bare address).
#[inline]
pub fn bare(word: u64) -> u64 {
    word & ADDR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_are_distinct_low_bits() {
        assert_eq!(DELETED & DIRTY, 0);
        assert_eq!(DELETED & TAG, 0);
        assert_eq!(DIRTY & TAG, 0);
        assert_eq!(MARKS, 0b111);
    }

    #[test]
    fn addr_round_trips_through_marks() {
        let a = 0xdead_bee0u64; // 64-aligned-ish (low 3 bits clear)
        assert_eq!(addr_of(a | DELETED | DIRTY | TAG), a as usize);
        assert_eq!(bare(a | MARKS), a);
    }

    #[test]
    fn clean_removes_only_dirty() {
        let w = 0x1000u64 | DELETED | DIRTY;
        assert_eq!(clean(w), 0x1000 | DELETED);
        assert!(is_deleted(clean(w)));
        assert!(!is_dirty(clean(w)));
    }

    #[test]
    fn predicates() {
        assert!(is_deleted(DELETED));
        assert!(is_dirty(DIRTY));
        assert!(is_tagged(TAG));
        assert!(!is_deleted(DIRTY | TAG));
    }
}

//! Durable lock-free skip list — the Herlihy–Shavit lock-free algorithm
//! (*The Art of Multiprocessor Programming*, via Fraser), with the paper's
//! link-and-persist durability rules applied to the bottom level.
//!
//! Set membership is defined entirely by the level-0 chain: a node is in
//! the set iff it is reachable at level 0 with an unmarked level-0 next
//! pointer. Consequently (§3):
//!
//! * level-0 link updates — the linearization points — go through
//!   [`LinkOps::link_cas`] (link-and-persist / link cache);
//! * upper-level (index) links are written back with `clwb` but never
//!   fenced or dirty-marked: losing them cannot affect durable
//!   linearizability, and recovery rebuilds the whole index from the
//!   level-0 chain in one pass (see DESIGN.md, "Known deviations").
//!
//! # Node layout
//!
//! ```text
//! +0   key     u64
//! +8   value   u64
//! +16  height  u64            (1..=MAX_HEIGHT)
//! +24  tower   height × u64   (next pointers; [0] carries DELETED/DIRTY)
//! ```
//!
//! A node of height `h` occupies `24 + 8h` bytes, placed in the matching
//! slab class (64/128/192/256 B). The head sentinel has full height and
//! key 0 (keys 0 and `u64::MAX` are reserved).

use std::cell::Cell;
use std::collections::HashSet;
use std::sync::atomic::Ordering;

use nvalloc::{NvDomain, OutOfMemory, ThreadCtx};
use pmem::Flusher;

use crate::marked::{addr_of, bare, clean, is_deleted, is_dirty, DELETED};
use crate::ops::{CasOutcome, LinkOps};

/// Maximum tower height (fits the 256-byte slab class).
pub const MAX_HEIGHT: usize = 24;

const KEY_OFF: usize = 0;
const VAL_OFF: usize = 8;
const HEIGHT_OFF: usize = 16;
const TOWER_OFF: usize = 24;

#[inline]
fn node_size(height: usize) -> usize {
    TOWER_OFF + 8 * height
}

#[inline]
fn tower(node: usize, level: usize) -> usize {
    node + TOWER_OFF + 8 * level
}

thread_local! {
    /// Per-thread xorshift state for geometric height selection.
    static HEIGHT_RNG: Cell<u64> = const { Cell::new(0x9E37_79B9_7F4A_7C15) };
}

fn random_height() -> usize {
    HEIGHT_RNG.with(|c| {
        let mut x = c.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        c.set(x);
        // Geometric with p = 1/2, capped.
        ((x.trailing_ones() as usize) + 1).min(MAX_HEIGHT)
    })
}

/// Reseeds this thread's tower-height RNG. The crashtest subsystem calls
/// this before every trace run so that counting and replay phases draw
/// identical tower heights (the thread-local state otherwise persists
/// across skip-list instances on the same thread).
pub fn reset_height_rng(seed: u64) {
    // Xorshift must never be seeded with 0.
    HEIGHT_RNG.with(|c| c.set(seed | 1));
}

/// The durable lock-free skip list.
pub struct SkipList {
    ops: LinkOps,
    /// Address of the full-height head sentinel.
    head: usize,
}

struct FindResult {
    preds: [usize; MAX_HEIGHT],
    succs: [usize; MAX_HEIGHT],
    found: bool,
}

impl SkipList {
    /// Creates an empty skip list anchored at root slot `root_idx`. The
    /// head sentinel is allocated through `ctx`.
    pub fn create(
        domain: &NvDomain,
        ctx: &mut ThreadCtx,
        root_idx: usize,
        ops: LinkOps,
    ) -> Result<Self, OutOfMemory> {
        let pool = domain.pool();
        ctx.begin_op();
        let head = ctx.alloc(node_size(MAX_HEIGHT))?;
        for off in (0..node_size(MAX_HEIGHT)).step_by(8) {
            pool.atomic_u64(head + off).store(0, Ordering::Relaxed);
        }
        pool.atomic_u64(head + HEIGHT_OFF).store(MAX_HEIGHT as u64, Ordering::Release);
        ctx.flusher.clwb_range(head, node_size(MAX_HEIGHT));
        ctx.flusher.fence();
        pool.set_root(root_idx, head as u64, &mut ctx.flusher);
        ctx.end_op();
        Ok(Self { ops, head })
    }

    /// Re-attaches after a crash; run [`Self::recover`] before use.
    pub fn attach(domain: &NvDomain, root_idx: usize, ops: LinkOps) -> Self {
        let head = domain.pool().root(root_idx) as usize;
        Self { ops, head }
    }

    /// The persistence engine.
    pub fn ops(&self) -> &LinkOps {
        &self.ops
    }

    #[inline]
    fn key_at(&self, node: usize) -> u64 {
        self.ops.pool().atomic_u64(node + KEY_OFF).load(Ordering::Acquire)
    }

    #[inline]
    fn value_at(&self, node: usize) -> u64 {
        self.ops.pool().atomic_u64(node + VAL_OFF).load(Ordering::Acquire)
    }

    #[inline]
    fn height_at(&self, node: usize) -> usize {
        self.ops.pool().atomic_u64(node + HEIGHT_OFF).load(Ordering::Acquire) as usize
    }

    /// Herlihy–Shavit `find`: locates preds/succs at every level, snipping
    /// marked nodes. Level-0 snips are durable unlinks (and the snipping
    /// thread retires the node); upper-level snips are index-only.
    fn find(&self, ctx: &mut ThreadCtx, key: u64) -> FindResult {
        'retry: loop {
            let mut preds = [self.head; MAX_HEIGHT];
            let mut succs = [0usize; MAX_HEIGHT];
            let mut pred = self.head;
            for level in (0..MAX_HEIGHT).rev() {
                let mut curr = addr_of(self.ops.load(tower(pred, level)));
                loop {
                    if curr == 0 {
                        break;
                    }
                    let mut succ_w = self.ops.load(tower(curr, level));
                    while is_deleted(succ_w) {
                        // Snip the marked node at this level.
                        if level == 0 {
                            let succ_w2 =
                                self.ops.ensure_durable(tower(curr, 0), succ_w, &mut ctx.flusher);
                            let pw = self.ops.load(tower(pred, 0));
                            let pw = self.ops.ensure_durable(tower(pred, 0), pw, &mut ctx.flusher);
                            if bare(pw) != curr as u64 || is_deleted(pw) {
                                continue 'retry;
                            }
                            match self.ops.link_cas(
                                self.key_at(curr),
                                tower(pred, 0),
                                curr as u64,
                                bare(succ_w2),
                                &mut ctx.flusher,
                            ) {
                                CasOutcome::Ok => ctx.retire(curr),
                                CasOutcome::Retry => continue 'retry,
                            }
                            curr = addr_of(succ_w2);
                        } else {
                            let pool = self.ops.pool();
                            if pool
                                .atomic_u64(tower(pred, level))
                                .compare_exchange(
                                    curr as u64,
                                    bare(succ_w),
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                )
                                .is_err()
                            {
                                continue 'retry;
                            }
                            if self.ops.durable() {
                                ctx.flusher.clwb(tower(pred, level));
                            }
                            curr = addr_of(succ_w);
                        }
                        if curr == 0 {
                            break;
                        }
                        succ_w = self.ops.load(tower(curr, level));
                    }
                    if curr == 0 {
                        break;
                    }
                    if self.key_at(curr) < key {
                        pred = curr;
                        curr = addr_of(succ_w);
                    } else {
                        break;
                    }
                }
                preds[level] = pred;
                succs[level] = curr;
            }
            // Durable adjacency at the decision level (§3 rule 2).
            if self.ops.durable() {
                let pl = tower(preds[0], 0);
                let w = self.ops.load(pl);
                self.ops.ensure_durable(pl, w, &mut ctx.flusher);
                if succs[0] != 0 {
                    let sl = tower(succs[0], 0);
                    let w = self.ops.load(sl);
                    self.ops.ensure_durable(sl, w, &mut ctx.flusher);
                }
            }
            let found = succs[0] != 0 && self.key_at(succs[0]) == key;
            return FindResult { preds, succs, found };
        }
    }

    /// Inserts `key -> value`; returns `Ok(false)` if present.
    pub fn insert(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        debug_assert!(key > 0 && key < u64::MAX, "key out of range");
        ctx.begin_op();
        let r = self.insert_inner(ctx, key, value);
        ctx.end_op();
        r
    }

    fn insert_inner(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        let pool = self.ops.pool().clone();
        loop {
            let f = self.find(ctx, key);
            self.ops.scan(key, &mut ctx.flusher);
            if f.found {
                return Ok(false);
            }
            let pk = self.key_at(f.preds[0]);
            if pk != 0 {
                self.ops.scan(pk, &mut ctx.flusher);
            }
            let height = random_height();
            let node = ctx.alloc(node_size(height))?;
            pool.atomic_u64(node + KEY_OFF).store(key, Ordering::Relaxed);
            pool.atomic_u64(node + VAL_OFF).store(value, Ordering::Relaxed);
            pool.atomic_u64(node + HEIGHT_OFF).store(height as u64, Ordering::Relaxed);
            for level in 0..height {
                pool.atomic_u64(tower(node, level)).store(f.succs[level] as u64, Ordering::Release);
            }
            self.ops.persist_node(node, node_size(height), &mut ctx.flusher);
            self.ops.pre_link_fence(&mut ctx.flusher);
            // Level-0 link: the linearization point, durably installed.
            match self.ops.link_cas(
                key,
                tower(f.preds[0], 0),
                f.succs[0] as u64,
                node as u64,
                &mut ctx.flusher,
            ) {
                CasOutcome::Retry => {
                    ctx.dealloc_unlinked(node);
                    continue;
                }
                CasOutcome::Ok => {}
            }
            // Index levels: plain CAS + write-back, helped by re-finding.
            let mut f = f;
            for level in 1..height {
                loop {
                    let link = tower(node, level);
                    let w = self.ops.load(link);
                    if is_deleted(w) || is_deleted(self.ops.load(tower(node, 0))) {
                        return Ok(true); // concurrently deleted; stop indexing
                    }
                    let succ = f.succs[level];
                    if addr_of(w) != succ
                        && pool
                            .atomic_u64(link)
                            .compare_exchange(w, succ as u64, Ordering::AcqRel, Ordering::Acquire)
                            .is_err()
                    {
                        continue; // node's tower changed (mark?); re-check
                    }
                    if pool
                        .atomic_u64(tower(f.preds[level], level))
                        .compare_exchange(
                            succ as u64,
                            node as u64,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        if self.ops.durable() {
                            ctx.flusher.clwb(tower(f.preds[level], level));
                        }
                        break;
                    }
                    f = self.find(ctx, key);
                    if f.succs[0] != node {
                        return Ok(true); // deleted and replaced meanwhile
                    }
                }
            }
            return Ok(true);
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = self.remove_inner(ctx, key);
        ctx.end_op();
        r
    }

    fn remove_inner(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let pool = self.ops.pool();
        let f = self.find(ctx, key);
        self.ops.scan(key, &mut ctx.flusher);
        if !f.found {
            return None;
        }
        let pk = self.key_at(f.preds[0]);
        if pk != 0 {
            self.ops.scan(pk, &mut ctx.flusher);
        }
        let node = f.succs[0];
        let height = self.height_at(node);
        // Mark index levels top-down (volatile index state).
        for level in (1..height).rev() {
            loop {
                let w = self.ops.load(tower(node, level));
                if is_deleted(w) {
                    break;
                }
                if pool
                    .atomic_u64(tower(node, level))
                    .compare_exchange(w, w | DELETED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    break;
                }
            }
        }
        // Mark level 0: the durable linearization point.
        loop {
            let w = self.ops.load(tower(node, 0));
            let w = self.ops.ensure_durable(tower(node, 0), w, &mut ctx.flusher);
            if is_deleted(w) {
                return None; // another remover linearized first
            }
            match self.ops.link_cas(key, tower(node, 0), w, w | DELETED, &mut ctx.flusher) {
                CasOutcome::Ok => {
                    let val = self.value_at(node);
                    // Physical removal (snips at every level; the level-0
                    // snipper retires the node).
                    let _ = self.find(ctx, key);
                    return Some(val);
                }
                CasOutcome::Retry => continue,
            }
        }
    }

    /// Looks up `key` without modifying the structure.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = self.get_inner(ctx, key);
        ctx.end_op();
        r
    }

    fn get_inner(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let mut pred = self.head;
        let mut level = MAX_HEIGHT - 1;
        let mut result = None;
        loop {
            let w = self.ops.load(tower(pred, level));
            let curr = addr_of(w);
            if curr != 0 && self.key_at(curr) < key {
                pred = curr;
                continue;
            }
            if level > 0 {
                level -= 1;
                continue;
            }
            // Level 0 decision point.
            if curr != 0 && self.key_at(curr) == key {
                let cw = self.ops.load(tower(curr, 0));
                if !is_deleted(cw) {
                    if self.ops.durable() {
                        self.ops.ensure_durable(tower(pred, 0), w, &mut ctx.flusher);
                        self.ops.ensure_durable(tower(curr, 0), cw, &mut ctx.flusher);
                    }
                    result = Some(self.value_at(curr));
                } else {
                    // Absence relies on the mark: make it durable.
                    self.ops.ensure_durable(tower(curr, 0), cw, &mut ctx.flusher);
                }
            }
            break;
        }
        self.ops.scan(key, &mut ctx.flusher);
        result
    }

    /// Whether `key` is present.
    pub fn contains(&self, ctx: &mut ThreadCtx, key: u64) -> bool {
        self.get(ctx, key).is_some()
    }

    /// Quiescent post-crash fixup: repairs the level-0 chain exactly like
    /// the linked list (clear dirty marks, complete unlinks of marked
    /// nodes), then rebuilds the entire index from the surviving chain in
    /// a single pass. Returns `(dirty_cleared, unlinked)`.
    // Tower levels index `last` and feed `tower()` at once; a range loop
    // reads better than iterator adapters here.
    #[allow(clippy::needless_range_loop)]
    pub fn recover(&self, flusher: &mut Flusher) -> (u64, u64) {
        let pool = self.ops.pool();
        let mut dirty = 0;
        let mut unlinked = 0;
        // Pass 1: fix the level-0 chain.
        let mut pred_link = tower(self.head, 0);
        let mut curr = addr_of(self.ops.load(pred_link));
        {
            let hw = self.ops.load(pred_link);
            if is_dirty(hw) {
                pool.atomic_u64(pred_link).store(clean(hw), Ordering::Release);
                flusher.clwb(pred_link);
                dirty += 1;
            }
        }
        while curr != 0 {
            let mut w = self.ops.load(tower(curr, 0));
            if is_dirty(w) {
                w = clean(w);
                pool.atomic_u64(tower(curr, 0)).store(w, Ordering::Release);
                flusher.clwb(tower(curr, 0));
                dirty += 1;
            }
            if is_deleted(w) {
                pool.atomic_u64(pred_link).store(bare(w), Ordering::Release);
                flusher.clwb(pred_link);
                unlinked += 1;
            } else {
                pred_link = tower(curr, 0);
            }
            curr = addr_of(w);
        }
        // Pass 2: rebuild the index. `last[l]` is the most recent node of
        // height > l whose level-l link is still open.
        let mut last = [self.head; MAX_HEIGHT];
        let mut curr = addr_of(self.ops.load(tower(self.head, 0)));
        while curr != 0 {
            let h = self.height_at(curr).min(MAX_HEIGHT);
            for level in 1..h {
                pool.atomic_u64(tower(last[level], level)).store(curr as u64, Ordering::Release);
                flusher.clwb(tower(last[level], level));
                last[level] = curr;
            }
            curr = addr_of(self.ops.load(tower(curr, 0)));
        }
        for level in 1..MAX_HEIGHT {
            pool.atomic_u64(tower(last[level], level)).store(0, Ordering::Release);
            flusher.clwb(tower(last[level], level));
        }
        flusher.fence();
        (dirty, unlinked)
    }

    /// §5.5 first-approach oracle: node-identity search.
    pub fn contains_node_at(&self, addr: usize) -> bool {
        let key = self.ops.pool().atomic_u64(addr + KEY_OFF).load(Ordering::Acquire);
        if addr == self.head {
            return true;
        }
        let mut pred = self.head;
        let mut level = MAX_HEIGHT - 1;
        loop {
            let curr = addr_of(self.ops.load(tower(pred, level)));
            if curr != 0 && self.key_at(curr) < key {
                pred = curr;
                continue;
            }
            if level > 0 {
                level -= 1;
                continue;
            }
            return curr == addr && !is_deleted(self.ops.load(tower(curr, 0)));
        }
    }

    /// Reachable live nodes, including the head sentinel (quiescent).
    pub fn collect_reachable(&self) -> HashSet<usize> {
        let mut set = HashSet::new();
        set.insert(self.head);
        let mut curr = addr_of(self.ops.load(tower(self.head, 0)));
        while curr != 0 {
            let w = self.ops.load(tower(curr, 0));
            if !is_deleted(w) {
                set.insert(curr);
            }
            curr = addr_of(w);
        }
        set
    }

    /// Quiescent snapshot of live pairs in key order.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        let mut curr = addr_of(self.ops.load(tower(self.head, 0)));
        while curr != 0 {
            let w = self.ops.load(tower(curr, 0));
            if !is_deleted(w) {
                v.push((self.key_at(curr), self.value_at(curr)));
            }
            curr = addr_of(w);
        }
        v
    }
}

// SAFETY: all shared state lives in the pool and is accessed atomically.
unsafe impl Send for SkipList {}
// SAFETY: see above.
unsafe impl Sync for SkipList {}

//! **Log-free durable concurrent data structures** — the primary
//! contribution of David, Dragojević, Guerraoui and Zablotchi, *Log-Free
//! Concurrent Data Structures* (USENIX ATC 2018).
//!
//! Four lock-free structures modelling a set of `(u64, u64)` pairs, made
//! durable with **no logging in the data-structure operations**:
//!
//! * [`LinkedList`] — Harris's lock-free list (DISC 2001),
//! * [`HashTable`] — one Harris list per bucket,
//! * [`SkipList`] — the Herlihy–Shavit lock-free skip list,
//! * [`Bst`] — the Natarajan–Mittal external BST (PPoPP 2014),
//!
//! each combined with:
//!
//! * **link-and-persist** ([`ops::LinkOps`], §3): state-changing links are
//!   CASed with a transient [`marked::DIRTY`] bit, written back, fenced,
//!   then unmarked — with helping, so nothing blocks;
//! * optionally the **link cache** (§4) for batched write-backs;
//! * **NV-epochs** (the `nvalloc` crate, §5) for log-free memory
//!   management.
//!
//! All structures guarantee **durable linearizability** (Izraelevitz et
//! al.): after a crash, recovery restores a state reflecting every
//! operation that completed before the crash. Construct them over a pool
//! in [`pmem::Mode::Volatile`] to get the NVRAM-oblivious baseline of the
//! paper's Figure 7 (all durability work compiles down to no-ops).

pub mod bst;
pub mod hash;
pub mod list;
pub mod marked;
pub mod ops;
pub mod skiplist;

pub use bst::Bst;
pub use hash::{GeometryError, HashTable};
pub use list::{LinkedList, MAX_KEY, MIN_KEY};
pub use ops::{CasOutcome, LinkOps};
pub use skiplist::SkipList;

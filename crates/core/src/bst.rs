//! Durable lock-free external binary search tree — the Natarajan–Mittal
//! algorithm (PPoPP 2014) with link-and-persist durability (§3).
//!
//! Keys live in **leaves**; internal nodes hold routing keys and exactly
//! two children. The deletion protocol marks *edges*: the edge to the
//! victim leaf is **flagged** (the durable linearization point of a
//! remove) and the sibling edge is **tagged** during cleanup, which then
//! swings the *ancestor* edge to the sibling, splicing out the parent and
//! the victim in one CAS. Flag, tag and the link-and-persist dirty mark
//! share the three low bits of every edge word ([`crate::marked`]).
//!
//! Durability placement:
//!
//! * insert CAS (parent edge: leaf → new internal) — durable
//!   ([`LinkOps::link_cas`]);
//! * remove's flag CAS — durable (it linearizes the remove);
//! * cleanup's bypass CAS (ancestor edge) — durable;
//! * the tag CAS is **not** persisted: tags are cleanup-internal and
//!   recovery recomputes cleanups from flags alone, clearing stray tags.
//!
//! # Node layout (one 64-byte slot, both kinds)
//!
//! ```text
//! +0   key    u64     (sentinels: MAX-2, MAX-1, MAX; user keys <= MAX-3)
//! +8   value  u64     (leaves only)
//! +16  left   u64     edge word (0 in leaves)
//! +24  right  u64     edge word (0 in leaves)
//! ```

use std::collections::HashSet;
use std::sync::atomic::Ordering;

use nvalloc::{NvDomain, OutOfMemory, ThreadCtx};
use pmem::Flusher;

use crate::marked::{addr_of, bare, clean, is_deleted, is_dirty, is_tagged, DELETED, DIRTY, TAG};
use crate::ops::{CasOutcome, LinkOps};

const KEY_OFF: usize = 0;
const VAL_OFF: usize = 8;
const LEFT_OFF: usize = 16;
const RIGHT_OFF: usize = 24;
const NODE_SIZE: usize = 32;

/// Largest user key (three values are reserved for sentinels).
pub const MAX_BST_KEY: u64 = u64::MAX - 3;
const INF0: u64 = u64::MAX - 2;
const INF1: u64 = u64::MAX - 1;
const INF2: u64 = u64::MAX;

/// Result of `seek` (the NM seek record).
struct SeekRecord {
    ancestor: usize,
    successor: usize,
    parent: usize,
    leaf: usize,
}

/// The durable lock-free external BST.
pub struct Bst {
    ops: LinkOps,
    /// Address of the root sentinel R.
    root: usize,
}

impl Bst {
    /// Creates an empty tree anchored at root slot `root_idx`.
    pub fn create(
        domain: &NvDomain,
        ctx: &mut ThreadCtx,
        root_idx: usize,
        ops: LinkOps,
    ) -> Result<Self, OutOfMemory> {
        let pool = domain.pool();
        ctx.begin_op();
        let mk_leaf = |ctx: &mut ThreadCtx, key: u64| -> Result<usize, OutOfMemory> {
            let n = ctx.alloc(NODE_SIZE)?;
            pool.atomic_u64(n + KEY_OFF).store(key, Ordering::Relaxed);
            pool.atomic_u64(n + VAL_OFF).store(0, Ordering::Relaxed);
            pool.atomic_u64(n + LEFT_OFF).store(0, Ordering::Relaxed);
            pool.atomic_u64(n + RIGHT_OFF).store(0, Ordering::Release);
            ctx.flusher.clwb_range(n, NODE_SIZE);
            Ok(n)
        };
        let inf0 = mk_leaf(ctx, INF0)?;
        let inf1 = mk_leaf(ctx, INF1)?;
        let inf2 = mk_leaf(ctx, INF2)?;
        let s = ctx.alloc(NODE_SIZE)?;
        pool.atomic_u64(s + KEY_OFF).store(INF1, Ordering::Relaxed);
        pool.atomic_u64(s + VAL_OFF).store(0, Ordering::Relaxed);
        pool.atomic_u64(s + LEFT_OFF).store(inf0 as u64, Ordering::Relaxed);
        pool.atomic_u64(s + RIGHT_OFF).store(inf1 as u64, Ordering::Release);
        ctx.flusher.clwb_range(s, NODE_SIZE);
        let r = ctx.alloc(NODE_SIZE)?;
        pool.atomic_u64(r + KEY_OFF).store(INF2, Ordering::Relaxed);
        pool.atomic_u64(r + VAL_OFF).store(0, Ordering::Relaxed);
        pool.atomic_u64(r + LEFT_OFF).store(s as u64, Ordering::Relaxed);
        pool.atomic_u64(r + RIGHT_OFF).store(inf2 as u64, Ordering::Release);
        ctx.flusher.clwb_range(r, NODE_SIZE);
        ctx.flusher.fence();
        pool.set_root(root_idx, r as u64, &mut ctx.flusher);
        ctx.end_op();
        Ok(Self { ops, root: r })
    }

    /// Re-attaches after a crash; run [`Self::recover`] before use.
    pub fn attach(domain: &NvDomain, root_idx: usize, ops: LinkOps) -> Self {
        let root = domain.pool().root(root_idx) as usize;
        Self { ops, root }
    }

    /// The persistence engine.
    pub fn ops(&self) -> &LinkOps {
        &self.ops
    }

    #[inline]
    fn key_at(&self, node: usize) -> u64 {
        self.ops.pool().atomic_u64(node + KEY_OFF).load(Ordering::Acquire)
    }

    #[inline]
    fn value_at(&self, node: usize) -> u64 {
        self.ops.pool().atomic_u64(node + VAL_OFF).load(Ordering::Acquire)
    }

    /// Address of the edge word of `node` on the search path of `key`.
    #[inline]
    fn child_edge(&self, node: usize, key: u64) -> usize {
        if key < self.key_at(node) {
            node + LEFT_OFF
        } else {
            node + RIGHT_OFF
        }
    }

    /// Address of the other edge word.
    #[inline]
    fn sibling_edge(&self, node: usize, key: u64) -> usize {
        if key < self.key_at(node) {
            node + RIGHT_OFF
        } else {
            node + LEFT_OFF
        }
    }

    #[inline]
    fn is_leaf(&self, node: usize) -> bool {
        addr_of(self.ops.load(node + LEFT_OFF)) == 0
            && addr_of(self.ops.load(node + RIGHT_OFF)) == 0
    }

    /// NM `seek`: descends to the leaf on `key`'s search path, recording
    /// the deepest untagged ancestor edge.
    fn seek(&self, key: u64) -> SeekRecord {
        let s = addr_of(self.ops.load(self.root + LEFT_OFF));
        let mut rec = SeekRecord {
            ancestor: self.root,
            successor: s,
            parent: s,
            leaf: addr_of(self.ops.load(s + LEFT_OFF)),
        };
        let mut parent_field = self.ops.load(s + LEFT_OFF);
        let mut current_field = self.ops.load(rec.leaf + LEFT_OFF);
        let mut current = addr_of(current_field);
        while current != 0 {
            if !is_tagged(parent_field) {
                rec.ancestor = rec.parent;
                rec.successor = rec.leaf;
            }
            rec.parent = rec.leaf;
            rec.leaf = current;
            parent_field = current_field;
            current_field = self.ops.load(self.child_edge(current, key));
            current = addr_of(current_field);
        }
        rec
    }

    /// Inserts `key -> value`; returns `Ok(false)` if present.
    pub fn insert(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        debug_assert!(key <= MAX_BST_KEY, "key out of range");
        ctx.begin_op();
        let r = self.insert_inner(ctx, key, value);
        ctx.end_op();
        r
    }

    fn insert_inner(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        let pool = self.ops.pool().clone();
        loop {
            let rec = self.seek(key);
            self.ops.scan(key, &mut ctx.flusher);
            let leaf_key = self.key_at(rec.leaf);
            let parent_edge = self.child_edge(rec.parent, key);
            if leaf_key == key {
                // Present: the decision depends on this edge (§3 rule 2).
                let w = self.ops.load(parent_edge);
                self.ops.ensure_durable(parent_edge, w, &mut ctx.flusher);
                return Ok(false);
            }
            let pk = self.key_at(rec.parent);
            if pk <= MAX_BST_KEY {
                self.ops.scan(pk, &mut ctx.flusher);
            }
            let new_leaf = ctx.alloc(NODE_SIZE)?;
            pool.atomic_u64(new_leaf + KEY_OFF).store(key, Ordering::Relaxed);
            pool.atomic_u64(new_leaf + VAL_OFF).store(value, Ordering::Relaxed);
            pool.atomic_u64(new_leaf + LEFT_OFF).store(0, Ordering::Relaxed);
            pool.atomic_u64(new_leaf + RIGHT_OFF).store(0, Ordering::Release);
            let internal = ctx.alloc(NODE_SIZE)?;
            let (l, rt) = if key < leaf_key { (new_leaf, rec.leaf) } else { (rec.leaf, new_leaf) };
            pool.atomic_u64(internal + KEY_OFF).store(key.max(leaf_key), Ordering::Relaxed);
            pool.atomic_u64(internal + VAL_OFF).store(0, Ordering::Relaxed);
            pool.atomic_u64(internal + LEFT_OFF).store(l as u64, Ordering::Relaxed);
            pool.atomic_u64(internal + RIGHT_OFF).store(rt as u64, Ordering::Release);
            self.ops.persist_node(new_leaf, NODE_SIZE, &mut ctx.flusher);
            self.ops.persist_node(internal, NODE_SIZE, &mut ctx.flusher);
            self.ops.pre_link_fence(&mut ctx.flusher);
            match self.ops.link_cas(
                key,
                parent_edge,
                rec.leaf as u64,
                internal as u64,
                &mut ctx.flusher,
            ) {
                CasOutcome::Ok => return Ok(true),
                CasOutcome::Retry => {
                    ctx.dealloc_unlinked(new_leaf);
                    ctx.dealloc_unlinked(internal);
                    let w = self.ops.load(parent_edge);
                    let w = self.ops.ensure_durable(parent_edge, w, &mut ctx.flusher);
                    if addr_of(w) == rec.leaf && (is_deleted(w) || is_tagged(w)) {
                        // Help the delete that owns this edge.
                        self.cleanup(ctx, key, &rec);
                    }
                }
            }
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = self.remove_inner(ctx, key);
        ctx.end_op();
        r
    }

    fn remove_inner(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let mut injecting = true;
        let mut victim = 0usize;
        let mut val = 0u64;
        loop {
            let rec = self.seek(key);
            self.ops.scan(key, &mut ctx.flusher);
            let parent_edge = self.child_edge(rec.parent, key);
            if injecting {
                if self.key_at(rec.leaf) != key {
                    let w = self.ops.load(parent_edge);
                    self.ops.ensure_durable(parent_edge, w, &mut ctx.flusher);
                    return None;
                }
                let pk = self.key_at(rec.parent);
                if pk <= MAX_BST_KEY {
                    self.ops.scan(pk, &mut ctx.flusher);
                }
                val = self.value_at(rec.leaf);
                // Injection: flag the edge — the durable linearization
                // point of the remove.
                match self.ops.link_cas(
                    key,
                    parent_edge,
                    rec.leaf as u64,
                    rec.leaf as u64 | DELETED,
                    &mut ctx.flusher,
                ) {
                    CasOutcome::Ok => {
                        injecting = false;
                        victim = rec.leaf;
                        if self.cleanup(ctx, key, &rec) {
                            return Some(val);
                        }
                    }
                    CasOutcome::Retry => {
                        let w = self.ops.load(parent_edge);
                        let w = self.ops.ensure_durable(parent_edge, w, &mut ctx.flusher);
                        if addr_of(w) == rec.leaf && (is_deleted(w) || is_tagged(w)) {
                            self.cleanup(ctx, key, &rec);
                        }
                    }
                }
            } else {
                if rec.leaf != victim {
                    // Someone else's bypass already spliced our victim out.
                    return Some(val);
                }
                if self.cleanup(ctx, key, &rec) {
                    return Some(val);
                }
            }
        }
    }

    /// NM `cleanup`: tags the sibling edge, then swings the ancestor edge
    /// to the sibling, splicing out the parent chain and every flagged
    /// leaf hanging off it. Returns whether this call's CAS did the splice.
    fn cleanup(&self, ctx: &mut ThreadCtx, key: u64, rec: &SeekRecord) -> bool {
        let pool = self.ops.pool();
        let succ_edge = self.child_edge(rec.ancestor, key);
        let mut child_edge = self.child_edge(rec.parent, key);
        let mut sibling_edge = self.sibling_edge(rec.parent, key);
        let cw = self.ops.load(child_edge);
        if !is_deleted(cw) {
            // The flagged edge is on the other side (we are helping a
            // delete whose victim is the sibling).
            std::mem::swap(&mut child_edge, &mut sibling_edge);
        }
        // Tag the sibling edge so it cannot change under the splice. Tags
        // are volatile: recovery recomputes cleanup from flags (see module
        // docs).
        loop {
            let w = self.ops.load(sibling_edge);
            if is_tagged(w) {
                break;
            }
            let w = self.ops.ensure_durable(sibling_edge, w, &mut ctx.flusher);
            if pool
                .atomic_u64(sibling_edge)
                .compare_exchange(w, w | TAG, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break;
            }
        }
        let sib_w = self.ops.load(sibling_edge);
        // Splice: ancestor edge successor -> sibling child; the tag (and
        // any dirty bit) is stripped, a flag on the moved-up leaf is kept.
        let new_w = bare(sib_w) | (sib_w & DELETED);
        match self.ops.link_cas(key, succ_edge, rec.successor as u64, new_w, &mut ctx.flusher) {
            CasOutcome::Ok => {
                self.retire_chain(ctx, rec.successor, addr_of(sib_w));
                true
            }
            CasOutcome::Retry => {
                let w = self.ops.load(succ_edge);
                self.ops.ensure_durable(succ_edge, w, &mut ctx.flusher);
                false
            }
        }
    }

    /// Retires the spliced-out chain: every internal node from `successor`
    /// along tagged edges, plus each flagged (deleted) leaf hanging off
    /// it, stopping at the moved-up child. Defensive bounds make this leak
    /// (never corrupt) under pathological interleavings.
    fn retire_chain(&self, ctx: &mut ThreadCtx, successor: usize, moved_up: usize) {
        let mut node = successor;
        for _ in 0..128 {
            if node == moved_up || node == 0 {
                return;
            }
            let lw = self.ops.load(node + LEFT_OFF);
            let rw = self.ops.load(node + RIGHT_OFF);
            if addr_of(lw) == 0 && addr_of(rw) == 0 {
                // A leaf mid-chain: shouldn't happen; retire and stop.
                ctx.retire(node);
                return;
            }
            ctx.retire(node);
            let (follow, other) = if is_tagged(lw) && !is_tagged(rw) {
                (lw, rw)
            } else if is_tagged(rw) && !is_tagged(lw) {
                (rw, lw)
            } else {
                // Ambiguous (both/neither tagged): stop — leak, don't risk
                // retiring a live node.
                return;
            };
            if is_deleted(other) && !is_tagged(other) && addr_of(other) != 0 {
                ctx.retire(addr_of(other));
            }
            node = addr_of(follow);
        }
    }

    /// Looks up `key`.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = self.get_inner(ctx, key);
        ctx.end_op();
        r
    }

    fn get_inner(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        let mut edge = self.child_edge(self.root, key);
        let mut w = self.ops.load(edge);
        let mut node = addr_of(w);
        while node != 0 && !self.is_leaf(node) {
            edge = self.child_edge(node, key);
            w = self.ops.load(edge);
            node = addr_of(w);
        }
        let result = if node != 0 && self.key_at(node) == key {
            // The decision depends on this edge being durable (§3).
            self.ops.ensure_durable(edge, w, &mut ctx.flusher);
            Some(self.value_at(node))
        } else {
            if node != 0 {
                self.ops.ensure_durable(edge, w, &mut ctx.flusher);
            }
            None
        };
        self.ops.scan(key, &mut ctx.flusher);
        result
    }

    /// Whether `key` is present.
    pub fn contains(&self, ctx: &mut ThreadCtx, key: u64) -> bool {
        self.get(ctx, key).is_some()
    }

    /// Quiescent post-crash fixup:
    ///
    /// 1. clear every dirty mark,
    /// 2. complete every flagged deletion (splice out parent + victim),
    /// 3. clear stray tags (tags are never durable state).
    ///
    /// Returns `(dirty_cleared, deletions_completed)`.
    pub fn recover(&self, flusher: &mut Flusher) -> (u64, u64) {
        let pool = self.ops.pool();
        let mut dirty = 0u64;
        // Pass 1+3 combined helper: DFS clearing DIRTY (and later TAG).
        let clear_bits = |bits: u64, flusher: &mut Flusher| {
            let mut cleared = 0u64;
            let mut stack = vec![self.root];
            while let Some(n) = stack.pop() {
                for off in [LEFT_OFF, RIGHT_OFF] {
                    let w = pool.atomic_u64(n + off).load(Ordering::Acquire);
                    if w & bits != 0 {
                        pool.atomic_u64(n + off).store(w & !bits, Ordering::Release);
                        flusher.clwb(n + off);
                        cleared += 1;
                    }
                    let child = addr_of(w);
                    if child != 0 && !self.is_leaf(child) {
                        stack.push(child);
                    }
                }
            }
            cleared
        };
        dirty += clear_bits(DIRTY, flusher);
        // Pass 2: complete flagged deletions until none remain. Each DFS
        // tracks (grandparent edge, parent); a flagged child edge means
        // "parent and this leaf must go".
        let mut completed = 0u64;
        'restart: loop {
            let mut stack: Vec<(usize, usize)> = Vec::new();
            for off in [LEFT_OFF, RIGHT_OFF] {
                let w = pool.atomic_u64(self.root + off).load(Ordering::Acquire);
                let child = addr_of(w);
                if child != 0 && !self.is_leaf(child) {
                    stack.push((self.root + off, child));
                }
            }
            while let Some((gp_edge, parent)) = stack.pop() {
                for off in [LEFT_OFF, RIGHT_OFF] {
                    let w = pool.atomic_u64(parent + off).load(Ordering::Acquire);
                    if is_deleted(w) {
                        // Complete: splice the sibling up to the
                        // grandparent edge, keeping a flag on the sibling
                        // if it is itself a flagged leaf.
                        let sib_off = if off == LEFT_OFF { RIGHT_OFF } else { LEFT_OFF };
                        let sib_w = pool.atomic_u64(parent + sib_off).load(Ordering::Acquire);
                        let new_w = bare(sib_w) | (sib_w & DELETED);
                        pool.atomic_u64(gp_edge).store(new_w, Ordering::Release);
                        flusher.clwb(gp_edge);
                        completed += 1;
                        continue 'restart;
                    }
                    let child = addr_of(w);
                    if child != 0 && !self.is_leaf(child) {
                        stack.push((parent + off, child));
                    }
                }
            }
            break;
        }
        let _ = clear_bits(TAG | DIRTY, flusher);
        flusher.fence();
        (dirty, completed)
    }

    /// §5.5 first-approach oracle: is there a node (internal or leaf) at
    /// exactly `addr` on its own key's search path?
    pub fn contains_node_at(&self, addr: usize) -> bool {
        let key = self.ops.pool().atomic_u64(addr + KEY_OFF).load(Ordering::Acquire);
        let mut node = self.root;
        loop {
            if node == addr {
                return true;
            }
            if self.is_leaf(node) {
                return false;
            }
            node = addr_of(self.ops.load(self.child_edge(node, key)));
            if node == 0 {
                return false;
            }
        }
    }

    /// Full reachability set (§5.5 second approach; test support).
    pub fn collect_reachable(&self) -> HashSet<usize> {
        let mut set = HashSet::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            if !set.insert(n) {
                continue;
            }
            for off in [LEFT_OFF, RIGHT_OFF] {
                let c = addr_of(self.ops.load(n + off));
                if c != 0 {
                    stack.push(c);
                }
            }
        }
        set
    }

    /// Quiescent snapshot of live user pairs in key order.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        let mut stack = vec![(self.root, false)];
        // In-order DFS; leaves with user keys and unflagged incoming
        // edges are live. Quiescent, so no flags should remain after
        // recovery; during normal shutdown flagged leaves are skipped.
        let mut flagged = HashSet::new();
        let mut walk = vec![self.root];
        while let Some(n) = walk.pop() {
            for off in [LEFT_OFF, RIGHT_OFF] {
                let w = self.ops.load(n + off);
                let c = addr_of(w);
                if c == 0 {
                    continue;
                }
                if is_deleted(w) {
                    flagged.insert(c);
                }
                if !self.is_leaf(c) {
                    walk.push(c);
                }
            }
        }
        while let Some((n, _)) = stack.pop() {
            if self.is_leaf(n) {
                let k = self.key_at(n);
                if k <= MAX_BST_KEY && !flagged.contains(&n) {
                    v.push((k, self.value_at(n)));
                }
                continue;
            }
            // Push right first so left pops first (in-order for external
            // trees reduces to leaf order).
            let r = addr_of(self.ops.load(n + RIGHT_OFF));
            let l = addr_of(self.ops.load(n + LEFT_OFF));
            if r != 0 {
                stack.push((r, false));
            }
            if l != 0 {
                stack.push((l, false));
            }
        }
        // Left-first DFS yields ascending leaf order already; sort
        // defensively anyway (cheap for test support).
        v.sort_unstable();
        v
    }
}

// SAFETY: all shared state lives in the pool and is accessed atomically.
unsafe impl Send for Bst {}
// SAFETY: see above.
unsafe impl Sync for Bst {}

// Keep the unused `clean` import referenced (recovery uses bit clearing
// directly); silences pedantic builds without losing the helper.
#[allow(dead_code)]
fn _clean_is_used(w: u64) -> u64 {
    clean(w)
}

#[allow(dead_code)]
fn _dirty_probe(w: u64) -> bool {
    is_dirty(w)
}

//! The **link-and-persist** primitive (§3) and its link-cache-accelerated
//! variant (§4), shared by all four data structures.
//!
//! A state-changing link update must be durable before any operation that
//! depends on it returns. [`LinkOps::link_cas`] provides this in one of
//! three ways, chosen per structure instance:
//!
//! * **Volatile** (pool in [`pmem::Mode::Volatile`]): a plain CAS — the
//!   NVRAM-oblivious baseline of Figure 7.
//! * **Link-and-persist**: CAS the new value with the [`DIRTY`] mark set,
//!   write the line back, fence, then clear the mark. Any concurrent
//!   operation that observes the mark can complete the persist itself
//!   ([`LinkOps::ensure_durable`]) — helping, so no blocking anywhere.
//! * **Link cache**: deposit the link in the [`LinkCache`] instead of
//!   persisting it; a batched flush happens when (and only when) a
//!   dependent operation occurs.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use linkcache::{LinkCache, TryLink};
use pmem::{CrashEvent, Flusher, Mode, PmemPool};

use crate::marked::{clean, is_dirty, DIRTY};

/// Result of a conditional link update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasOutcome {
    /// The link was updated (and its durability arranged per the mode).
    Ok,
    /// The link's current value differed from `old`; retry the operation.
    Retry,
}

/// Per-structure persistence engine.
pub struct LinkOps {
    pool: Arc<PmemPool>,
    lc: Option<Arc<LinkCache>>,
    durable: bool,
}

impl LinkOps {
    /// Creates the engine for `pool`, optionally with a link cache. The
    /// volatile fast path is selected automatically when the pool is in
    /// [`Mode::Volatile`].
    pub fn new(pool: Arc<PmemPool>, lc: Option<Arc<LinkCache>>) -> Self {
        let durable = pool.mode() != Mode::Volatile;
        Self { pool, lc, durable }
    }

    /// The pool this engine writes to.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// The link cache, if one is attached.
    pub fn link_cache(&self) -> Option<&Arc<LinkCache>> {
        self.lc.as_ref()
    }

    /// Whether durability actions are enabled.
    pub fn durable(&self) -> bool {
        self.durable
    }

    /// Acquire-loads the link word at `addr`.
    #[inline]
    pub fn load(&self, addr: usize) -> u64 {
        self.pool.atomic_u64(addr).load(Ordering::Acquire)
    }

    /// Makes the logical value of the link at `addr` durable if its
    /// observed word carries the [`DIRTY`] mark (the helping path of
    /// link-and-persist), and returns the cleaned word.
    ///
    /// When the mark is absent the link is already durable — or sits in
    /// the link cache, which the operation-level `scan` handles — so this
    /// is a no-op returning `word` unchanged.
    #[inline]
    pub fn ensure_durable(&self, addr: usize, word: u64, flusher: &mut Flusher) -> u64 {
        if !self.durable || !is_dirty(word) {
            return word;
        }
        flusher.clwb(addr);
        flusher.fence();
        // Clear the mark; a failure means someone else cleared it (or
        // modified the link further after persisting it) — both fine.
        let _ = self.pool.atomic_u64(addr).compare_exchange(
            word,
            clean(word),
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        clean(word)
    }

    /// Atomically updates the link at `addr` from `old` to `new` and
    /// arranges durability of the new value. `old` and `new` must be
    /// *clean* words (no [`DIRTY`] bit); `key` attributes the update for
    /// link-cache scans.
    pub fn link_cas(
        &self,
        key: u64,
        addr: usize,
        old: u64,
        new: u64,
        flusher: &mut Flusher,
    ) -> CasOutcome {
        debug_assert!(!is_dirty(old) && !is_dirty(new), "marked words passed to link_cas");
        let link = self.pool.atomic_u64(addr);
        if !self.durable {
            return match link.compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => CasOutcome::Ok,
                Err(_) => CasOutcome::Retry,
            };
        }
        // Crash-point taxonomy: a state-changing link publish is about to
        // be attempted (no-op unless a crashtest plan is installed).
        flusher.note_crash_event(CrashEvent::LinkPublish);
        if let Some(lc) = &self.lc {
            match lc.try_link_and_add(key, addr, old, new) {
                TryLink::Added => return CasOutcome::Ok,
                TryLink::LinkCasFailed => return CasOutcome::Retry,
                TryLink::CacheFull => {} // fall through to link-and-persist
            }
        }
        // Link-and-persist (§3): install marked, write back, fence, clear.
        if link.compare_exchange(old, new | DIRTY, Ordering::AcqRel, Ordering::Acquire).is_err() {
            return CasOutcome::Retry;
        }
        flusher.clwb(addr);
        flusher.fence();
        let _ = link.compare_exchange(new | DIRTY, new, Ordering::AcqRel, Ordering::Acquire);
        CasOutcome::Ok
    }

    /// Link-cache scan for `key` (§4.2): guarantees that any *prior*
    /// cached update this operation's result depends on becomes durable
    /// before the operation returns. No-op without a link cache.
    #[inline]
    pub fn scan(&self, key: u64, flusher: &mut Flusher) {
        if let Some(lc) = &self.lc {
            if self.durable {
                lc.scan(key, flusher);
            }
        }
    }

    /// Schedules the write-back of a freshly initialised node's contents
    /// (no fence; the pre-link fence covers it).
    #[inline]
    pub fn persist_node(&self, addr: usize, len: usize, flusher: &mut Flusher) {
        if self.durable {
            flusher.clwb_range(addr, len);
        }
    }

    /// Issues the pre-link fence making node contents + allocator
    /// metadata durable before the node becomes reachable (§5.5).
    #[inline]
    pub fn pre_link_fence(&self, flusher: &mut Flusher) {
        if self.durable {
            flusher.fence();
        }
    }

    /// Flushes the whole link cache (durability barrier; used by tests,
    /// shutdown, and the APT trim hook).
    pub fn flush_link_cache(&self, flusher: &mut Flusher) {
        if let Some(lc) = &self.lc {
            lc.flush_all(flusher);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolBuilder;

    fn crash_pool() -> Arc<PmemPool> {
        PoolBuilder::new(1 << 20).mode(Mode::CrashSim).build()
    }

    #[test]
    fn link_cas_is_durable_without_cache() {
        let pool = crash_pool();
        let ops = LinkOps::new(Arc::clone(&pool), None);
        let mut f = pool.flusher();
        let a = pool.heap_start();
        assert_eq!(ops.link_cas(1, a, 0, 0x40, &mut f), CasOutcome::Ok);
        assert_eq!(ops.load(a), 0x40, "mark cleared after persist");
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        assert_eq!(ops.load(a) & !DIRTY, 0x40, "value survived");
    }

    #[test]
    fn link_cas_retries_on_mismatch() {
        let pool = crash_pool();
        let ops = LinkOps::new(Arc::clone(&pool), None);
        let mut f = pool.flusher();
        let a = pool.heap_start();
        assert_eq!(ops.link_cas(1, a, 0x8, 0x40, &mut f), CasOutcome::Retry);
    }

    #[test]
    fn dirty_link_blocks_cas_until_helped() {
        let pool = crash_pool();
        let ops = LinkOps::new(Arc::clone(&pool), None);
        let mut f = pool.flusher();
        let a = pool.heap_start();
        // Simulate an in-flight link-and-persist by another thread.
        pool.atomic_u64(a).store(0x40 | DIRTY, Ordering::Release);
        // A modification expecting the clean value must fail...
        assert_eq!(ops.link_cas(1, a, 0x40, 0x80, &mut f), CasOutcome::Retry);
        // ...until a helper persists and cleans the link.
        let w = ops.load(a);
        let cleaned = ops.ensure_durable(a, w, &mut f);
        assert_eq!(cleaned, 0x40);
        assert_eq!(ops.link_cas(1, a, 0x40, 0x80, &mut f), CasOutcome::Ok);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        assert_eq!(ops.load(a) & !DIRTY, 0x80);
    }

    #[test]
    fn ensure_durable_persists_the_marked_value() {
        let pool = crash_pool();
        let ops = LinkOps::new(Arc::clone(&pool), None);
        let mut f = pool.flusher();
        let a = pool.heap_start();
        pool.atomic_u64(a).store(0x40 | DIRTY, Ordering::Release);
        ops.ensure_durable(a, 0x40 | DIRTY, &mut f);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        // The durable word may retain the mark (cleared lazily at
        // recovery); the logical value must be there.
        assert_eq!(clean(ops.load(a)), 0x40);
    }

    #[test]
    fn volatile_pool_skips_marks_and_flushes() {
        let pool = PoolBuilder::new(1 << 20).mode(Mode::Volatile).build();
        let ops = LinkOps::new(Arc::clone(&pool), None);
        let mut f = pool.flusher();
        let a = pool.heap_start();
        assert_eq!(ops.link_cas(1, a, 0, 0x40, &mut f), CasOutcome::Ok);
        assert_eq!(ops.load(a), 0x40);
        assert_eq!(f.stats().clwbs, 0, "no write-backs in volatile mode");
        assert_eq!(f.stats().fences, 0);
    }

    #[test]
    fn cache_path_defers_durability_to_scan() {
        let pool = crash_pool();
        let lc = Arc::new(LinkCache::with_default_size(Arc::clone(&pool), DIRTY));
        let ops = LinkOps::new(Arc::clone(&pool), Some(lc));
        let mut f = pool.flusher();
        let a = pool.heap_start();
        assert_eq!(ops.link_cas(9, a, 0, 0x40, &mut f), CasOutcome::Ok);
        assert_eq!(f.stats().fences, 0, "no sync on the update itself");
        ops.scan(9, &mut f);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        assert_eq!(clean(ops.load(a)), 0x40);
    }
}

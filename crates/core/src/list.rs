//! Durable lock-free linked list — Harris's algorithm (DISC 2001) with the
//! paper's link-and-persist durability rules (§3).
//!
//! The list is sorted by key and models a set of `(u64 key, u64 value)`
//! pairs. Its anchor is a single persistent link word (for the standalone
//! [`LinkedList`], a root-directory slot; for the hash table, a bucket
//! word), so the same core — the free functions in this module — backs
//! both structures.
//!
//! # Node layout (one 64-byte slot)
//!
//! ```text
//! +0   key    u64   (immutable after init; recovery reads it, §5.5)
//! +8   value  u64
//! +16  next   u64   address | DELETED | DIRTY marks
//! ```
//!
//! # Durability rules implemented (§3, "Correctness")
//!
//! 1. An update's changes are durable before it returns: every
//!    state-changing CAS goes through [`LinkOps::link_cas`]
//!    (link-and-persist or link cache).
//! 2. Operations make the edges they depend on durable before
//!    deciding/modifying: dirty links encountered at decision points are
//!    helped via [`LinkOps::ensure_durable`], and a dirty link can never
//!    be overwritten because CASes expect the *clean* word.
//! 3. With a link cache, every operation scans its own key — and updates
//!    also their predecessor's key — **before** making changes, so all
//!    prior cached updates it depends on become durable first (§4.2).

use std::collections::HashSet;
use std::sync::atomic::Ordering;

use nvalloc::{NvDomain, OutOfMemory, ThreadCtx};
use pmem::Flusher;

use crate::marked::{addr_of, bare, clean, is_deleted, is_dirty, is_tagged, DELETED};
use crate::ops::{CasOutcome, LinkOps};

/// Byte offset of the key field.
pub const KEY_OFF: usize = 0;
/// Byte offset of the value field.
pub const VAL_OFF: usize = 8;
/// Byte offset of the next-link field.
pub const NEXT_OFF: usize = 16;
/// Bytes a list node occupies (rounded to a 64 B slot by the allocator).
pub const NODE_SIZE: usize = 24;

/// Smallest key a caller may use (0 is reserved as "no predecessor").
pub const MIN_KEY: u64 = 1;
/// Largest key a caller may use.
pub const MAX_KEY: u64 = u64::MAX - 1;

#[inline]
pub(crate) fn key_at(ops: &LinkOps, node: usize) -> u64 {
    ops.pool().atomic_u64(node + KEY_OFF).load(Ordering::Acquire)
}

#[inline]
pub(crate) fn value_at(ops: &LinkOps, node: usize) -> u64 {
    ops.pool().atomic_u64(node + VAL_OFF).load(Ordering::Acquire)
}

#[inline]
pub(crate) fn next_addr(node: usize) -> usize {
    node + NEXT_OFF
}

/// Outcome of a core insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Inserted {
    /// The key was linked in.
    Yes,
    /// The key already existed; nothing changed.
    Exists,
    /// The chain's anchor carries the migrated sentinel ([`crate::marked::TAG`]):
    /// this bucket has been drained into a new bucket array. The caller
    /// must re-read the table geometry and re-route.
    Migrated,
}

/// Outcome of a core remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Removed {
    /// The key was removed; carries its value.
    Yes(u64),
    /// The key was absent.
    No,
    /// The anchor carries the migrated sentinel, or the target node is
    /// claimed by a bucket migrator (its `next` word is tagged): the
    /// caller must re-read the table geometry and re-route.
    Migrated,
}

/// Outcome of a core lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lookup {
    /// The key is present; carries its value.
    Found(u64),
    /// The key is absent from this chain.
    Absent,
    /// The anchor carries the migrated sentinel; re-route.
    Migrated,
}

/// Outcome of the parse phase: the link to CAS and the candidate node.
pub(crate) struct Found {
    /// Address of the link word whose value is `curr` (or 0).
    pub pred_link: usize,
    /// Key of the predecessor node (None when `pred_link` is the anchor).
    pub pred_key: Option<u64>,
    /// First node with key >= target, or 0.
    pub curr: usize,
    /// `curr`'s key (valid when `curr != 0`).
    pub curr_key: u64,
    /// The anchor carried the migrated sentinel; the other fields are
    /// meaningless and the caller must re-route.
    pub migrated: bool,
}

/// Harris search with durable cleanup: finds the first node with
/// key >= `key`, physically unlinking logically deleted nodes on the way
/// (each unlink is itself a durable link update, and the unlinker retires
/// the node). On return, the adjacent edges are durable (§3 rule 2).
pub(crate) fn search(ops: &LinkOps, ctx: &mut ThreadCtx, head_link: usize, key: u64) -> Found {
    'retry: loop {
        let hw = ops.load(head_link);
        if is_tagged(hw) {
            // The chain's anchor carries the migrated sentinel: the bucket
            // was drained into a new array. Help persist the sentinel and
            // bail out — the caller re-routes.
            ops.ensure_durable(head_link, hw, &mut ctx.flusher);
            return Found {
                pred_link: head_link,
                pred_key: None,
                curr: 0,
                curr_key: 0,
                migrated: true,
            };
        }
        let mut pred_link = head_link;
        let mut pred_key: Option<u64> = None;
        let mut curr = addr_of(hw);
        loop {
            if curr == 0 {
                finalize(ops, ctx, pred_link, 0);
                return Found { pred_link, pred_key, curr: 0, curr_key: 0, migrated: false };
            }
            let next_w = ops.load(next_addr(curr));
            if is_deleted(next_w) {
                // curr is logically deleted: complete the removal. The
                // deletion mark we act on must be durable first, and so
                // must the link we are about to modify.
                let next_w = ops.ensure_durable(next_addr(curr), next_w, &mut ctx.flusher);
                let observed = ops.load(pred_link);
                let observed = ops.ensure_durable(pred_link, observed, &mut ctx.flusher);
                if bare(observed) != curr as u64 || is_deleted(observed) {
                    continue 'retry;
                }
                match ops.link_cas(
                    key_at(ops, curr),
                    pred_link,
                    curr as u64,
                    bare(next_w),
                    &mut ctx.flusher,
                ) {
                    CasOutcome::Ok => {
                        ctx.retire(curr);
                        curr = addr_of(next_w);
                        continue;
                    }
                    CasOutcome::Retry => continue 'retry,
                }
            }
            let ck = key_at(ops, curr);
            if ck >= key {
                finalize(ops, ctx, pred_link, curr);
                return Found { pred_link, pred_key, curr, curr_key: ck, migrated: false };
            }
            pred_link = next_addr(curr);
            pred_key = Some(ck);
            curr = addr_of(next_w);
        }
    }
}

/// Makes the edges adjacent to the parse result durable (§3 rule 2).
fn finalize(ops: &LinkOps, ctx: &mut ThreadCtx, pred_link: usize, curr: usize) {
    if !ops.durable() {
        return;
    }
    let w = ops.load(pred_link);
    ops.ensure_durable(pred_link, w, &mut ctx.flusher);
    if curr != 0 {
        let w = ops.load(next_addr(curr));
        ops.ensure_durable(next_addr(curr), w, &mut ctx.flusher);
    }
}

/// Core insert into the list anchored at `head_link`.
pub(crate) fn insert(
    ops: &LinkOps,
    ctx: &mut ThreadCtx,
    head_link: usize,
    key: u64,
    value: u64,
) -> Result<Inserted, OutOfMemory> {
    insert_guarded(ops, ctx, head_link, key, value, |_| true)
}

/// [`insert`] with a validity guard run after the presence decision and
/// before the node is linked. The hash table passes a geometry re-check:
/// an absence observed in a chain is only actionable while that chain is
/// still where the key routes (a concurrent resize may have moved the key
/// to another array after the search walked past its gap). A `false`
/// guard aborts with [`Inserted::Migrated`] without allocating.
pub(crate) fn insert_guarded(
    ops: &LinkOps,
    ctx: &mut ThreadCtx,
    head_link: usize,
    key: u64,
    value: u64,
    mut guard: impl FnMut(&mut Flusher) -> bool,
) -> Result<Inserted, OutOfMemory> {
    debug_assert!((MIN_KEY..=MAX_KEY).contains(&key), "key out of range");
    loop {
        let f = search(ops, ctx, head_link, key);
        if f.migrated {
            return Ok(Inserted::Migrated);
        }
        // Durable-dependency scans (§4.2): the decision depends on the
        // state around `key` and the link being modified belongs to the
        // predecessor. Done before our own update so it stays cached.
        ops.scan(key, &mut ctx.flusher);
        if f.curr != 0 && f.curr_key == key {
            return Ok(Inserted::Exists);
        }
        if let Some(pk) = f.pred_key {
            ops.scan(pk, &mut ctx.flusher);
        }
        if !guard(&mut ctx.flusher) {
            return Ok(Inserted::Migrated);
        }
        let node = ctx.alloc(NODE_SIZE)?;
        let pool = ops.pool();
        pool.atomic_u64(node + KEY_OFF).store(key, Ordering::Relaxed);
        pool.atomic_u64(node + VAL_OFF).store(value, Ordering::Relaxed);
        pool.atomic_u64(node + NEXT_OFF).store(f.curr as u64, Ordering::Release);
        ops.persist_node(node, NODE_SIZE, &mut ctx.flusher);
        // Node contents and allocator metadata must be durable before the
        // node becomes reachable (§5.5).
        ops.pre_link_fence(&mut ctx.flusher);
        match ops.link_cas(key, f.pred_link, f.curr as u64, node as u64, &mut ctx.flusher) {
            CasOutcome::Ok => return Ok(Inserted::Yes),
            CasOutcome::Retry => ctx.dealloc_unlinked(node),
        }
    }
}

/// Core remove.
pub(crate) fn remove(ops: &LinkOps, ctx: &mut ThreadCtx, head_link: usize, key: u64) -> Removed {
    loop {
        let f = search(ops, ctx, head_link, key);
        if f.migrated {
            return Removed::Migrated;
        }
        ops.scan(key, &mut ctx.flusher);
        if f.curr == 0 || f.curr_key != key {
            return Removed::No;
        }
        if let Some(pk) = f.pred_key {
            ops.scan(pk, &mut ctx.flusher);
        }
        let next_w = ops.load(next_addr(f.curr));
        let next_w = ops.ensure_durable(next_addr(f.curr), next_w, &mut ctx.flusher);
        if is_deleted(next_w) {
            // Racing remover won; let the next search clean up, then the
            // key will be gone.
            continue;
        }
        if is_tagged(next_w) {
            // The node is claimed by a bucket migrator: its copy to the
            // destination array may already exist, so deleting it here
            // would resurrect the key. Re-route through the table.
            return Removed::Migrated;
        }
        // Logical deletion: the linearization point, made durable by
        // link-and-persist / the link cache.
        match ops.link_cas(key, next_addr(f.curr), next_w, next_w | DELETED, &mut ctx.flusher) {
            CasOutcome::Retry => continue,
            CasOutcome::Ok => {
                let val = value_at(ops, f.curr);
                // Physical unlink; on failure a search (ours or anyone's)
                // completes it — the successful unlinker retires.
                match ops.link_cas(key, f.pred_link, f.curr as u64, bare(next_w), &mut ctx.flusher)
                {
                    CasOutcome::Ok => ctx.retire(f.curr),
                    CasOutcome::Retry => {
                        let _ = search(ops, ctx, head_link, key);
                    }
                }
                return Removed::Yes(val);
            }
        }
    }
}

/// Core read-only lookup. Does not unlink, but helps persist the edges it
/// depends on and performs the link-cache scan before returning (§4.2).
pub(crate) fn get(ops: &LinkOps, ctx: &mut ThreadCtx, head_link: usize, key: u64) -> Lookup {
    let hw = ops.load(head_link);
    if is_tagged(hw) {
        ops.ensure_durable(head_link, hw, &mut ctx.flusher);
        ops.scan(key, &mut ctx.flusher);
        return Lookup::Migrated;
    }
    let mut prev_link = head_link;
    let mut curr = addr_of(hw);
    let mut result = Lookup::Absent;
    while curr != 0 {
        let w = ops.load(next_addr(curr));
        let ck = key_at(ops, curr);
        if ck > key {
            break;
        }
        if ck == key {
            if !is_deleted(w) {
                // Present: its adjacent edges must be durable before we
                // report it (§3 rule 2).
                if ops.durable() {
                    let pw = ops.load(prev_link);
                    ops.ensure_durable(prev_link, pw, &mut ctx.flusher);
                    ops.ensure_durable(next_addr(curr), w, &mut ctx.flusher);
                }
                result = Lookup::Found(value_at(ops, curr));
                break;
            }
            // Marked ghost: the absence we report relies on the deletion
            // mark — make it durable (§3: "durably unreachable").
            ops.ensure_durable(next_addr(curr), w, &mut ctx.flusher);
        }
        prev_link = next_addr(curr);
        curr = addr_of(w);
    }
    ops.scan(key, &mut ctx.flusher);
    result
}

/// Quiescent post-crash fixup of the list anchored at `head_link`:
/// clears leftover dirty marks and completes the unlink of logically
/// deleted nodes (their slots are then reclaimed by the leak scan).
/// Returns `(dirty_cleared, unlinked)`.
pub(crate) fn recover_chain(ops: &LinkOps, head_link: usize, flusher: &mut Flusher) -> (u64, u64) {
    let pool = ops.pool();
    let mut dirty_cleared = 0;
    let mut unlinked = 0;
    // Clean the anchor itself.
    let hw = ops.load(head_link);
    if is_dirty(hw) {
        pool.atomic_u64(head_link).store(clean(hw), Ordering::Release);
        flusher.clwb(head_link);
        dirty_cleared += 1;
    }
    let mut pred_link = head_link;
    let mut curr = addr_of(ops.load(head_link));
    while curr != 0 {
        let mut w = ops.load(next_addr(curr));
        if is_dirty(w) {
            w = clean(w);
            pool.atomic_u64(next_addr(curr)).store(w, Ordering::Release);
            flusher.clwb(next_addr(curr));
            dirty_cleared += 1;
        }
        if is_deleted(w) {
            // Complete the durable deletion: bypass the node.
            pool.atomic_u64(pred_link).store(bare(w), Ordering::Release);
            flusher.clwb(pred_link);
            unlinked += 1;
            curr = addr_of(w);
        } else {
            pred_link = next_addr(curr);
            curr = addr_of(w);
        }
    }
    flusher.fence();
    (dirty_cleared, unlinked)
}

/// Collects the addresses of all reachable, live nodes (quiescent). Used
/// as the §5.5 "second approach" recovery oracle for linear structures.
pub(crate) fn reachable_chain(ops: &LinkOps, head_link: usize, out: &mut HashSet<usize>) {
    let mut curr = addr_of(ops.load(head_link));
    while curr != 0 {
        let w = ops.load(next_addr(curr));
        if !is_deleted(w) {
            out.insert(curr);
        }
        curr = addr_of(w);
    }
}

/// Quiescent snapshot of live `(key, value)` pairs, in key order.
pub(crate) fn snapshot_chain(ops: &LinkOps, head_link: usize, out: &mut Vec<(u64, u64)>) {
    let mut curr = addr_of(ops.load(head_link));
    while curr != 0 {
        let w = ops.load(next_addr(curr));
        if !is_deleted(w) {
            out.push((key_at(ops, curr), value_at(ops, curr)));
        }
        curr = addr_of(w);
    }
}

/// The standalone durable linked list. Anchored in a root-directory slot
/// so it can be re-attached after a crash.
pub struct LinkedList {
    ops: LinkOps,
    head_link: usize,
}

impl LinkedList {
    /// Creates an empty list whose anchor is root slot `root_idx`.
    pub fn create(domain: &NvDomain, root_idx: usize, ops: LinkOps) -> Self {
        let pool = domain.pool();
        let mut flusher = pool.flusher();
        let head_link = pool.start() + root_idx * 8;
        pool.atomic_u64(head_link).store(0, Ordering::Release);
        flusher.persist(head_link, 8);
        Self { ops, head_link }
    }

    /// Re-attaches to the list anchored at root slot `root_idx` after a
    /// crash. Run [`Self::recover`] before serving operations.
    pub fn attach(domain: &NvDomain, root_idx: usize, ops: LinkOps) -> Self {
        let head_link = domain.pool().start() + root_idx * 8;
        Self { ops, head_link }
    }

    /// The persistence engine (for tests and instrumentation).
    pub fn ops(&self) -> &LinkOps {
        &self.ops
    }

    /// Inserts `key -> value`; returns `Ok(false)` if the key existed.
    pub fn insert(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        ctx.begin_op();
        let r = insert(&self.ops, ctx, self.head_link, key, value);
        ctx.end_op();
        match r? {
            Inserted::Yes => Ok(true),
            Inserted::Exists => Ok(false),
            Inserted::Migrated => unreachable!("a standalone list anchor is never migrated"),
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = remove(&self.ops, ctx, self.head_link, key);
        ctx.end_op();
        match r {
            Removed::Yes(v) => Some(v),
            Removed::No => None,
            Removed::Migrated => unreachable!("a standalone list anchor is never migrated"),
        }
    }

    /// Looks up `key`.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = get(&self.ops, ctx, self.head_link, key);
        ctx.end_op();
        match r {
            Lookup::Found(v) => Some(v),
            Lookup::Absent => None,
            Lookup::Migrated => unreachable!("a standalone list anchor is never migrated"),
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, ctx: &mut ThreadCtx, key: u64) -> bool {
        self.get(ctx, key).is_some()
    }

    /// Quiescent post-crash fixup; returns `(dirty_cleared, unlinked)`.
    pub fn recover(&self, flusher: &mut Flusher) -> (u64, u64) {
        recover_chain(&self.ops, self.head_link, flusher)
    }

    /// §5.5 first-approach oracle: is the node at exactly `addr` linked
    /// (and live) in the list? Key search plus address identity, like the
    /// other structures' oracles.
    pub fn contains_node_at(&self, addr: usize) -> bool {
        let key = key_at(&self.ops, addr);
        let mut curr = addr_of(self.ops.load(self.head_link));
        while curr != 0 {
            let w = self.ops.load(next_addr(curr));
            if curr == addr {
                return !is_deleted(w);
            }
            if key_at(&self.ops, curr) > key {
                return false;
            }
            curr = addr_of(w);
        }
        false
    }

    /// Reachability set for [`NvDomain::recover_leaks`] (§5.5 second
    /// approach: one traversal, then set membership per allocated slot).
    pub fn collect_reachable(&self) -> HashSet<usize> {
        let mut set = HashSet::new();
        reachable_chain(&self.ops, self.head_link, &mut set);
        set
    }

    /// Quiescent snapshot of live pairs in key order (test support).
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        snapshot_chain(&self.ops, self.head_link, &mut v);
        v
    }

    /// Quiescent bulk load of strictly ascending `(key, value)` pairs
    /// into an empty list; one fence at the end makes everything durable.
    /// Used to pre-fill large experiment instances in O(n).
    pub fn bulk_load_sorted(
        &self,
        ctx: &mut ThreadCtx,
        items: &[(u64, u64)],
    ) -> Result<(), OutOfMemory> {
        debug_assert!(items.windows(2).all(|w| w[0].0 < w[1].0), "items must be sorted");
        debug_assert_eq!(self.ops.load(self.head_link), 0, "bulk load requires empty list");
        let pool = self.ops.pool();
        ctx.begin_op();
        let mut prev_link = self.head_link;
        for &(key, value) in items {
            let node = ctx.alloc(NODE_SIZE)?;
            pool.atomic_u64(node + KEY_OFF).store(key, Ordering::Relaxed);
            pool.atomic_u64(node + VAL_OFF).store(value, Ordering::Relaxed);
            pool.atomic_u64(node + NEXT_OFF).store(0, Ordering::Release);
            pool.atomic_u64(prev_link).store(node as u64, Ordering::Release);
            ctx.flusher.clwb_range(node, NODE_SIZE);
            ctx.flusher.clwb(prev_link);
            prev_link = node + NEXT_OFF;
        }
        ctx.flusher.fence();
        ctx.end_op();
        Ok(())
    }
}

// SAFETY: all shared state lives in the pool and is accessed atomically;
// the struct itself only holds an address and the (Sync) engine.
unsafe impl Send for LinkedList {}
// SAFETY: see above.
unsafe impl Sync for LinkedList {}

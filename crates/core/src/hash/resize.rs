//! The incremental-resize state machine: grow, per-bucket migration,
//! sweep helping, commit, and the recovery roll-forward. See the module
//! docs in [`super`] for the durable layout and the crash argument.
//!
//! Blocking inventory: only *migration* takes locks (a volatile stripe
//! mutex per bucket plus one resize mutex around grow/commit), and only
//! inserts and removes migrate. Lookups never lock, never allocate, and
//! never migrate — they stay lock-free throughout a resize.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use nvalloc::{OutOfMemory, ThreadCtx};
use pmem::{CrashEvent, Flusher};

use super::table::N_STRIPES;
use super::{bucket_index, bucket_link_at, HashTable, H_CUR, H_CURSOR, H_NEW};
use crate::list::{self, Inserted};
use crate::marked::{bare, is_deleted, is_tagged, DELETED, DIRTY, TAG};
use crate::ops::CasOutcome;

/// Buckets an insert/remove migrates on behalf of the in-order sweep,
/// on top of the bucket it touches itself. Keeps helping O(1) per op
/// while guaranteeing the sweep finishes even if no one calls
/// [`HashTable::finish_resize`].
const HELP_BUCKETS: usize = 2;

impl HashTable {
    /// Durably stores resize-header word `off` (link-and-persist
    /// discipline, preceded by a [`CrashEvent::ResizeState`] crash
    /// point). Only called with the resize lock held — or, for the
    /// cursor reset in [`Self::grow`], while no resize is in flight —
    /// so a plain store cannot race another writer of the same word.
    pub(super) fn store_resize_word(&self, off: usize, value: u64, flusher: &mut Flusher) {
        debug_assert_eq!(value & (DELETED | DIRTY | TAG), 0);
        let addr = self.hdr + off;
        let word = self.ops.pool().atomic_u64(addr);
        if !self.ops.durable() {
            word.store(value, Ordering::Release);
            return;
        }
        flusher.note_crash_event(CrashEvent::ResizeState);
        if self.omit_resize_word_flush.load(Ordering::Relaxed) {
            // Deliberately broken variant for the crashtest mutation
            // test: the new value is stored clean but never written
            // back, so it silently misses the durable image.
            word.store(value, Ordering::Release);
            return;
        }
        word.store(value | DIRTY, Ordering::Release);
        flusher.clwb(addr);
        flusher.fence();
        // A concurrent reader may have helped via `ensure_durable`.
        let _ = word.compare_exchange(value | DIRTY, value, Ordering::AcqRel, Ordering::Acquire);
    }

    /// CAS-advances the migration cursor from the observed bare word to
    /// index `idx` (same discipline as [`Self::store_resize_word`], but
    /// conditional: helpers race each other, and a cursor must never
    /// move backwards). The cursor is purely an optimisation — recovery
    /// ignores its value and revalidates every bucket — so a failed CAS
    /// is simply dropped.
    fn advance_cursor(&self, observed: u64, idx: usize, flusher: &mut Flusher) {
        let value = (idx as u64) << 3;
        if observed >= value {
            return;
        }
        let word = self.ops.pool().atomic_u64(self.hdr + H_CURSOR);
        if !self.ops.durable() {
            let _ = word.compare_exchange(observed, value, Ordering::AcqRel, Ordering::Acquire);
            return;
        }
        flusher.note_crash_event(CrashEvent::ResizeState);
        if self.omit_resize_word_flush.load(Ordering::Relaxed) {
            let _ = word.compare_exchange(observed, value, Ordering::AcqRel, Ordering::Acquire);
            return;
        }
        if word
            .compare_exchange(observed, value | DIRTY, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            let addr = self.hdr + H_CURSOR;
            flusher.clwb(addr);
            flusher.fence();
            let _ =
                word.compare_exchange(value | DIRTY, value, Ordering::AcqRel, Ordering::Acquire);
        }
    }

    /// Starts a resize to `factor`× the current bucket count (factor
    /// clamped to a power of two ≥ 2). Returns `Ok(false)` if a resize
    /// was already in flight (including committed-pending cleanup).
    ///
    /// Publication order: allocate + initialise the new array, reset the
    /// cursor, then publish `NEW` — so a crash before the publish leaves
    /// only an orphan region (reclaimed by
    /// [`Self::sweep_orphan_regions`]), never a half-described resize.
    pub fn grow(&self, ctx: &mut ThreadCtx, factor: usize) -> Result<bool, OutOfMemory> {
        ctx.begin_op();
        let r = self.grow_inner(ctx, factor);
        ctx.end_op();
        r
    }

    fn grow_inner(&self, ctx: &mut ThreadCtx, factor: usize) -> Result<bool, OutOfMemory> {
        let factor = factor.max(2).next_power_of_two();
        let _g = self.resize_lock.lock().expect("resize lock");
        let (cur, new) = self.geometry(&mut ctx.flusher);
        if new != 0 {
            return Ok(false);
        }
        let new_n = self.arr_n(cur) * factor;
        let domain = Arc::clone(ctx.domain());
        let arr = domain.heap().alloc_region(8 + new_n * 8, &mut ctx.flusher)?;
        // Bucket words start zeroed (fresh regions are untouched pool
        // pages; recycled ones were durably zeroed by `free_region`), so
        // only the geometry word needs persisting.
        self.ops.pool().atomic_u64(arr).store(new_n as u64, Ordering::Release);
        ctx.flusher.persist(arr, 8);
        self.store_resize_word(H_CURSOR, 0, &mut ctx.flusher);
        self.store_resize_word(H_NEW, arr as u64, &mut ctx.flusher);
        Ok(true)
    }

    /// Drains old bucket `b` into the new array if it has not been
    /// drained yet. Fast path: one load of the head word.
    pub(super) fn ensure_migrated(
        &self,
        ctx: &mut ThreadCtx,
        old: usize,
        new: usize,
        b: usize,
    ) -> Result<(), OutOfMemory> {
        let head = bucket_link_at(old, b);
        let hw = self.ops.load(head);
        if is_tagged(hw) {
            self.ops.ensure_durable(head, hw, &mut ctx.flusher);
            return Ok(());
        }
        let _g = self.stripes[b % N_STRIPES].lock().expect("stripe lock");
        self.migrate_bucket(ctx, old, new, b)
    }

    /// Copy-then-delete drain of one bucket, front node first (caller
    /// holds the stripe lock). Each step is a durable `link_cas`, so at
    /// any crash point a key is in its old chain, in both chains with
    /// the same value, or in the new chain — never absent:
    ///
    /// 1. **claim** — tag the front node's `next` word. Removers seeing
    ///    the tag re-route instead of deleting (a delete here could
    ///    resurrect via the copy).
    /// 2. **copy** — insert `(key, value)` into the destination bucket
    ///    (insert-if-absent; `Exists` after a recovery re-run is benign
    ///    because pairs are immutable). The insert's §4.2 scans flush any
    ///    cached updates the copy's durability depends on.
    /// 3. **delete + unlink** — standard durable two-step removal of the
    ///    original; `scan(key)` first, so a cached copy always becomes
    ///    durable before the delete can.
    ///
    /// When the chain is empty the head word is CASed `0 → TAG`: the
    /// permanent "drained" sentinel every list operation re-routes on.
    fn migrate_bucket(
        &self,
        ctx: &mut ThreadCtx,
        old: usize,
        new: usize,
        b: usize,
    ) -> Result<(), OutOfMemory> {
        let head = bucket_link_at(old, b);
        let new_n = self.arr_n(new);
        loop {
            let f = list::search(&self.ops, ctx, head, list::MIN_KEY);
            if f.migrated {
                return Ok(());
            }
            if f.curr == 0 {
                match self.ops.link_cas(0, head, 0, TAG, &mut ctx.flusher) {
                    CasOutcome::Ok => return Ok(()),
                    // A racing insert with a stale steady-state view got
                    // its node in first; drain it too.
                    CasOutcome::Retry => continue,
                }
            }
            let node = f.curr;
            let key = f.curr_key;
            let nw_addr = list::next_addr(node);
            let mut cw = self.ops.load(nw_addr);
            if is_deleted(cw) {
                // A remover linearised first; the next search unlinks it.
                continue;
            }
            cw = self.ops.ensure_durable(nw_addr, cw, &mut ctx.flusher);
            if !is_tagged(cw) {
                match self.ops.link_cas(key, nw_addr, cw, cw | TAG, &mut ctx.flusher) {
                    CasOutcome::Ok => cw |= TAG,
                    CasOutcome::Retry => continue,
                }
            }
            let val = list::value_at(&self.ops, node);
            let dest = bucket_link_at(new, bucket_index(key, new_n));
            match list::insert(&self.ops, ctx, dest, key, val) {
                Ok(Inserted::Yes | Inserted::Exists) => {}
                Ok(Inserted::Migrated) => {
                    unreachable!("destination bucket of an in-flight resize is never sentineled")
                }
                Err(oom) => {
                    // Roll the claim back so removers are not blocked on
                    // a migration that cannot progress.
                    let _ = self.ops.link_cas(key, nw_addr, cw, cw & !TAG, &mut ctx.flusher);
                    return Err(oom);
                }
            }
            // Copy durable before the delete can be (same-key scan).
            self.ops.scan(key, &mut ctx.flusher);
            match self.ops.link_cas(key, nw_addr, cw, cw | DELETED, &mut ctx.flusher) {
                // Our claimed node's successor was unlinked under us;
                // re-search (the claim survives address changes).
                CasOutcome::Retry => continue,
                CasOutcome::Ok => {
                    if let Some(pk) = f.pred_key {
                        self.ops.scan(pk, &mut ctx.flusher);
                    }
                    match self.ops.link_cas(
                        key,
                        f.pred_link,
                        node as u64,
                        bare(cw),
                        &mut ctx.flusher,
                    ) {
                        CasOutcome::Ok => ctx.retire(node),
                        // Someone else's search completes the unlink.
                        CasOutcome::Retry => {}
                    }
                }
            }
        }
    }

    /// Bounded helping: advances the in-order sweep by up to
    /// [`HELP_BUCKETS`] buckets, then tries to commit if the cursor has
    /// passed the end. Called by every insert/remove that observes an
    /// in-flight resize.
    pub(super) fn help_sweep(
        &self,
        ctx: &mut ThreadCtx,
        old: usize,
        new: usize,
    ) -> Result<(), OutOfMemory> {
        let old_n = self.arr_n(old);
        for _ in 0..HELP_BUCKETS {
            let cw = self.read_word(H_CURSOR, &mut ctx.flusher);
            let idx = (cw >> 3) as usize;
            if idx >= old_n {
                self.try_finish(ctx);
                return Ok(());
            }
            self.ensure_migrated(ctx, old, new, idx)?;
            self.advance_cursor(cw, idx + 1, &mut ctx.flusher);
        }
        Ok(())
    }

    /// Commits a fully-drained resize: `CUR ← NEW`, retire the old
    /// array under epochs, `NEW ← 0`. No-op unless every old bucket
    /// carries the drained sentinel (the cursor is not trusted). Also
    /// clears a committed-pending (`CUR == NEW`) state left by a crash —
    /// the then-orphaned old region is swept separately at recovery.
    fn try_finish(&self, ctx: &mut ThreadCtx) {
        let Ok(_g) = self.resize_lock.try_lock() else {
            return;
        };
        let (cur, new) = self.geometry(&mut ctx.flusher);
        if new == 0 {
            return;
        }
        if new != cur {
            for b in 0..self.arr_n(cur) {
                if !is_tagged(self.ops.load(bucket_link_at(cur, b))) {
                    return;
                }
            }
            self.store_resize_word(H_CUR, new as u64, &mut ctx.flusher);
            ctx.retire_region(cur);
        }
        self.store_resize_word(H_NEW, 0, &mut ctx.flusher);
    }

    /// Drives an in-flight resize to completion (migrating every
    /// remaining bucket on this thread) and returns whether there was
    /// one. Used by recovery to roll a half-migrated table forward, and
    /// by tests/benchmarks to bound a grow.
    pub fn finish_resize(&self, ctx: &mut ThreadCtx) -> Result<bool, OutOfMemory> {
        ctx.begin_op();
        let r = self.finish_resize_inner(ctx);
        ctx.end_op();
        r
    }

    fn finish_resize_inner(&self, ctx: &mut ThreadCtx) -> Result<bool, OutOfMemory> {
        let mut was_in_flight = false;
        loop {
            let (cur, new) = self.geometry(&mut ctx.flusher);
            if new == 0 {
                return Ok(was_in_flight);
            }
            was_in_flight = true;
            if new != cur {
                let old_n = self.arr_n(cur);
                for b in 0..old_n {
                    self.ensure_migrated(ctx, cur, new, b)?;
                }
                let cw = self.read_word(H_CURSOR, &mut ctx.flusher);
                self.advance_cursor(cw, old_n, &mut ctx.flusher);
            }
            self.try_finish(ctx);
        }
    }

    /// Frees every heap region that is not the header or a live bucket
    /// array. **Recovery-only** (quiescent, and assumes this table is
    /// the pool's only region user): reclaims arrays orphaned by a crash
    /// between allocation and publish, or between commit and the
    /// epoch-deferred free of the old array. Returns the count freed.
    pub fn sweep_orphan_regions(&self, ctx: &mut ThreadCtx) -> usize {
        let (cur, new) = self.live_arrays();
        let domain = Arc::clone(ctx.domain());
        let mut freed = 0;
        for r in domain.heap().regions() {
            if r != self.hdr && r != cur && Some(r) != new {
                domain.heap().free_region(r, &mut ctx.flusher);
                freed += 1;
            }
        }
        freed
    }

    /// Test-only mutation switch: suppresses the write-back of every
    /// resize-header update (publish, cursor, commit, clear). The
    /// crashtest mutation test flips this on and asserts the crash
    /// enumeration reports the resulting lost-key violations — proving
    /// the harness actually exercises resize-state durability.
    #[doc(hidden)]
    pub fn set_omit_resize_word_flush(&self, on: bool) {
        self.omit_resize_word_flush.store(on, Ordering::Relaxed);
    }
}

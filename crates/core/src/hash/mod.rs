//! Durable lock-free hash table: one Harris linked list per bucket (§3),
//! exactly as in the paper's evaluation — extended with **non-blocking
//! incremental resize** (the paper sizes its table per experiment; a
//! long-running cache cannot).
//!
//! The module is split in two:
//!
//! * [`table`] — steady-state operations and the resize-aware routing
//!   loop (which array does a key live in right now?),
//! * [`resize`] — the grow/migrate/commit state machine and its
//!   recovery roll-forward.
//!
//! # Durable layout
//!
//! The root slot points at a small **header region** of three words:
//!
//! ```text
//! +0   CUR     data address of the current bucket-array region
//! +8   NEW     0 = steady state; == CUR = committed, cleanup pending;
//!              otherwise the in-flight destination array
//! +16  CURSOR  next old-bucket index of the in-order sweep, << 3
//! ```
//!
//! Each bucket-array region is self-describing:
//! `[n_buckets: u64][bucket link words ...]`.
//!
//! Header words are updated with the link-and-persist discipline (store
//! `value | DIRTY`, write back, fence, clear), each update preceded by a
//! [`pmem::CrashEvent::ResizeState`] crash event so the crashtest
//! subsystem can enumerate a crash at every resize-state transition. The
//! cursor is an index, so it is stored shifted left by 3 to keep the low
//! mark bits free.
//!
//! # Resize state machine
//!
//! ```text
//!   steady (CUR=A, NEW=0)
//!      │  grow(): alloc array B, CURSOR←0, publish NEW←B
//!      ▼
//!   migrating (CUR=A, NEW=B)       every insert/remove migrates the
//!      │                           bucket it touches + helps the sweep
//!      │  all A-buckets drained and sentineled
//!      ▼
//!   committed (CUR=B, NEW=B)
//!      │  NEW←0; retire region A under epochs
//!      ▼
//!   steady (CUR=B, NEW=0)
//! ```
//!
//! Per-bucket migration is copy-then-delete: the migrator **claims** the
//! front node by tagging its `next` word ([`crate::marked::TAG`]),
//! inserts a copy into the destination bucket (insert-if-absent; the
//! `(key, value)` pair is immutable, so a transient duplicate is benign),
//! then durably deletes and unlinks the original. A drained bucket's
//! head word is CASed from 0 to the `TAG` sentinel, which makes every
//! later list operation on it report "migrated" so the caller re-routes.
//! Because every per-node step is a durable `link_cas`, a crash anywhere
//! leaves each key either in its old chain, in both (same value), or in
//! the new chain — never lost — and recovery simply re-runs the sweep.

pub mod resize;
pub mod table;

pub use table::{GeometryError, HashTable};

/// Byte offset of the CUR header word (see the module docs). Public so
/// crash-recovery fixtures can forge torn header states.
pub const H_CUR: usize = 0;
/// Byte offset of the NEW header word.
pub const H_NEW: usize = 8;
/// Byte offset of the CURSOR header word.
pub const H_CURSOR: usize = 16;
/// Header region payload size.
pub(crate) const HDR_BYTES: usize = 24;

/// Bucket index of `key` in an array of `n` buckets (power of two):
/// Fibonacci hashing on the high 32 bits.
#[inline]
pub(crate) fn bucket_index(key: u64, n: usize) -> usize {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 32) as usize & (n - 1)
}

/// Address of bucket `b`'s link word in the array region at `arr`.
#[inline]
pub(crate) fn bucket_link_at(arr: usize, b: usize) -> usize {
    arr + 8 + b * 8
}

//! The resize-aware table: creation/attachment, the routing loop that
//! decides which bucket array an operation targets, and the quiescent
//! recovery fixup + oracles. The resize machinery itself lives in
//! [`super::resize`].

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use nvalloc::{NvDomain, OutOfMemory, ThreadCtx};
use pmem::Flusher;

use super::{bucket_index, bucket_link_at, HDR_BYTES, H_CUR, H_CURSOR, H_NEW};
use crate::list::{self, Inserted, Lookup, Removed};
use crate::marked::{addr_of, bare, clean, is_deleted, is_dirty};
use crate::ops::LinkOps;

/// Number of volatile stripe locks serialising per-bucket migration.
pub(super) const N_STRIPES: usize = 16;

/// A crash image whose table geometry cannot be trusted.
///
/// Returned by [`HashTable::try_attach`] when the root header or one of
/// the bucket-array regions it references is torn (e.g. a new array was
/// published but its geometry word never became durable). Recovery must
/// reject such an image rather than walk wild pointers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// The root slot does not point inside the pool's heap area.
    MissingHeader {
        /// The rejected root value.
        root: usize,
    },
    /// A referenced bucket-array region has an invalid bucket count.
    BadArray {
        /// Data address of the rejected array region.
        addr: usize,
        /// The bucket-count word found there.
        n_buckets: u64,
    },
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingHeader { root } => {
                write!(f, "hash-table root {root:#x} does not point at a header region")
            }
            Self::BadArray { addr, n_buckets } => {
                write!(f, "bucket array at {addr:#x} has invalid bucket count {n_buckets}")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// Durable lock-free hash table with non-blocking incremental resize.
pub struct HashTable {
    pub(super) ops: LinkOps,
    /// Address of the header region data: `[CUR][NEW][CURSOR]`.
    pub(super) hdr: usize,
    /// Serialises grow/commit transitions (volatile; rebuilt at attach).
    pub(super) resize_lock: Mutex<()>,
    /// Serialises migration per bucket (volatile). Gets never take these.
    pub(super) stripes: [Mutex<()>; N_STRIPES],
    /// Test-only mutation hook: when set, resize-state header updates are
    /// stored without any write-back (see the crashtest mutation test).
    pub(super) omit_resize_word_flush: AtomicBool,
}

impl std::fmt::Debug for HashTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashTable")
            .field("hdr", &format_args!("{:#x}", self.hdr))
            .field("n_buckets", &self.n_buckets())
            .field("resize_in_flight", &self.resize_in_flight())
            .finish()
    }
}

impl HashTable {
    fn build(ops: LinkOps, hdr: usize) -> Self {
        Self {
            ops,
            hdr,
            resize_lock: Mutex::new(()),
            stripes: std::array::from_fn(|_| Mutex::new(())),
            omit_resize_word_flush: AtomicBool::new(false),
        }
    }

    /// Creates a table with `n_buckets` buckets (rounded up to a power of
    /// two), anchored at root slot `root_idx`.
    pub fn create(
        domain: &NvDomain,
        root_idx: usize,
        n_buckets: usize,
        ops: LinkOps,
    ) -> Result<Self, OutOfMemory> {
        let n_buckets = n_buckets.next_power_of_two();
        let pool = domain.pool();
        let mut flusher = pool.flusher();
        let arr = domain.heap().alloc_region(8 + n_buckets * 8, &mut flusher)?;
        pool.atomic_u64(arr).store(n_buckets as u64, Ordering::Release);
        flusher.persist(arr, 8);
        let hdr = domain.heap().alloc_region(HDR_BYTES, &mut flusher)?;
        pool.atomic_u64(hdr + H_CUR).store(arr as u64, Ordering::Release);
        pool.atomic_u64(hdr + H_NEW).store(0, Ordering::Release);
        pool.atomic_u64(hdr + H_CURSOR).store(0, Ordering::Release);
        flusher.persist(hdr, HDR_BYTES);
        pool.set_root(root_idx, hdr as u64, &mut flusher);
        Ok(Self::build(ops, hdr))
    }

    /// Re-attaches after a crash to the table anchored at `root_idx`,
    /// validating the durable geometry first. Run [`Self::recover`] (and
    /// then [`Self::finish_resize`]) before serving operations.
    pub fn try_attach(
        domain: &NvDomain,
        root_idx: usize,
        ops: LinkOps,
    ) -> Result<Self, GeometryError> {
        let pool = domain.pool();
        let hdr = pool.root(root_idx) as usize;
        if hdr < pool.heap_start() || hdr + HDR_BYTES > pool.heap_end() {
            return Err(GeometryError::MissingHeader { root: hdr });
        }
        let t = Self::build(ops, hdr);
        let cur = t.load_bare(H_CUR);
        t.validate_array(cur)?;
        let new = t.load_bare(H_NEW);
        if new != 0 && new != cur {
            t.validate_array(new)?;
        }
        Ok(t)
    }

    /// Infallible [`Self::try_attach`] for images known to be well formed.
    pub fn attach(domain: &NvDomain, root_idx: usize, ops: LinkOps) -> Self {
        Self::try_attach(domain, root_idx, ops).expect("valid hash-table geometry")
    }

    fn validate_array(&self, arr: usize) -> Result<usize, GeometryError> {
        let pool = self.ops.pool();
        let bad = |n| GeometryError::BadArray { addr: arr, n_buckets: n };
        // Checked arithmetic throughout: a torn header word can hold any
        // bit pattern, and rejecting it must not overflow-panic.
        let in_heap = |end: Option<usize>| end.is_some_and(|e| e <= pool.heap_end());
        if arr < pool.heap_start() || !in_heap(arr.checked_add(8)) {
            return Err(bad(0));
        }
        let n = pool.atomic_u64(arr).load(Ordering::Acquire);
        let nb = n as usize;
        let end = nb.checked_mul(8).and_then(|b| b.checked_add(arr + 8));
        if nb == 0 || !nb.is_power_of_two() || !in_heap(end) {
            return Err(bad(n));
        }
        Ok(nb)
    }

    /// The persistence engine.
    pub fn ops(&self) -> &LinkOps {
        &self.ops
    }

    /// Bare (mark-stripped) value of header word `off`, without helping.
    #[inline]
    pub(super) fn load_bare(&self, off: usize) -> usize {
        bare(self.ops.load(self.hdr + off)) as usize
    }

    /// Reads a header word, helping persist it if it is mid-publish.
    #[inline]
    pub(super) fn read_word(&self, off: usize, flusher: &mut Flusher) -> u64 {
        let addr = self.hdr + off;
        let w = self.ops.load(addr);
        bare(self.ops.ensure_durable(addr, w, flusher))
    }

    /// The `(cur, new)` array pair an operation should route through.
    /// `new == 0`: steady state. `new == cur`: committed, cleanup
    /// pending — route to `cur`. Otherwise a resize is in flight.
    #[inline]
    pub(super) fn geometry(&self, flusher: &mut Flusher) -> (usize, usize) {
        // NEW is read before CUR; either order is actually safe (a stale
        // CUR routes to a fully-sentineled array, which bubbles
        // `Migrated`, and epochs keep retired arrays mapped while any
        // operation is in flight), but reading the resize word first
        // minimises pointless stale-route retries.
        let new = self.read_word(H_NEW, flusher) as usize;
        let cur = self.read_word(H_CUR, flusher) as usize;
        (cur, new)
    }

    /// Whether `(cur, new)` still describe the table. Negative results
    /// (get miss, remove miss, insert pre-link) must re-check: a resize
    /// that started or finished mid-operation may have moved the key to
    /// an array the operation never searched.
    #[inline]
    fn geometry_unchanged(&self, cur: usize, new: usize, flusher: &mut Flusher) -> bool {
        let (c, n) = self.geometry(flusher);
        c == cur && n == new
    }

    /// Bucket count of the array region at `arr`.
    #[inline]
    pub(super) fn arr_n(&self, arr: usize) -> usize {
        self.ops.pool().atomic_u64(arr).load(Ordering::Acquire) as usize
    }

    /// The number of buckets operations are currently routed into: the
    /// destination array during a resize, the current array otherwise.
    /// **Resize-aware**: callers sizing anything from this value must
    /// treat it as a hint that can grow between calls, never as an
    /// immutable geometry fact.
    pub fn capacity_hint(&self) -> usize {
        let new = self.load_bare(H_NEW);
        let arr = if new != 0 { new } else { self.load_bare(H_CUR) };
        self.arr_n(arr)
    }

    /// Number of buckets (alias of [`Self::capacity_hint`]; kept for the
    /// pre-resize API).
    pub fn n_buckets(&self) -> usize {
        self.capacity_hint()
    }

    /// Whether a resize is currently in flight (including the
    /// committed-but-not-cleaned state).
    pub fn resize_in_flight(&self) -> bool {
        self.load_bare(H_NEW) != 0
    }

    /// Inserts `key -> value`; returns `Ok(false)` if the key existed.
    pub fn insert(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        ctx.begin_op();
        let r = self.insert_inner(ctx, key, value);
        ctx.end_op();
        r
    }

    fn insert_inner(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        loop {
            let (cur, new) = self.geometry(&mut ctx.flusher);
            let dest = if new == 0 || new == cur {
                cur
            } else {
                // Resize in flight: drain this key's old bucket first so
                // the key cannot live in both arrays, then lend a hand to
                // the in-order sweep.
                let b = bucket_index(key, self.arr_n(cur));
                self.ensure_migrated(ctx, cur, new, b)?;
                self.help_sweep(ctx, cur, new)?;
                new
            };
            let head = bucket_link_at(dest, bucket_index(key, self.arr_n(dest)));
            // The absence decision must still describe the live geometry
            // when the link is published (see `geometry_unchanged`).
            let guard = |f: &mut Flusher| self.geometry_unchanged(cur, new, f);
            match list::insert_guarded(&self.ops, ctx, head, key, value, guard)? {
                Inserted::Yes => return Ok(true),
                Inserted::Exists => return Ok(false),
                Inserted::Migrated => continue,
            }
        }
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = self.remove_inner(ctx, key);
        ctx.end_op();
        r
    }

    fn remove_inner(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        loop {
            let (cur, new) = self.geometry(&mut ctx.flusher);
            let dest = if new == 0 || new == cur {
                cur
            } else {
                let b = bucket_index(key, self.arr_n(cur));
                if self.ensure_migrated(ctx, cur, new, b).is_ok() {
                    // Best-effort help; a remove must not fail on OOM.
                    let _ = self.help_sweep(ctx, cur, new);
                    new
                } else {
                    // Cannot migrate (pool exhausted). A remove frees
                    // memory rather than consuming it, so fall back to
                    // removing in place: the claim protocol keeps
                    // old-chain removes safe, and `Migrated` bubbles when
                    // the node is mid-move.
                    match list::remove(&self.ops, ctx, bucket_link_at(cur, b), key) {
                        Removed::Yes(v) => return Some(v),
                        Removed::Migrated => continue,
                        Removed::No => new,
                    }
                }
            };
            let head = bucket_link_at(dest, bucket_index(key, self.arr_n(dest)));
            match list::remove(&self.ops, ctx, head, key) {
                Removed::Yes(v) => return Some(v),
                Removed::Migrated => continue,
                Removed::No => {
                    if self.geometry_unchanged(cur, new, &mut ctx.flusher) {
                        return None;
                    }
                }
            }
        }
    }

    /// Looks up `key`. Fully lock-free: lookups never take stripe locks
    /// and never migrate; during a resize they read the old chain first,
    /// then the new one (the same direction moves travel, so a live key
    /// cannot be missed).
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = self.get_inner(ctx, key);
        ctx.end_op();
        r
    }

    fn get_inner(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        loop {
            let (cur, new) = self.geometry(&mut ctx.flusher);
            if new == 0 || new == cur {
                let head = bucket_link_at(cur, bucket_index(key, self.arr_n(cur)));
                match list::get(&self.ops, ctx, head, key) {
                    Lookup::Found(v) => return Some(v),
                    Lookup::Migrated => continue,
                    Lookup::Absent => {
                        if self.geometry_unchanged(cur, new, &mut ctx.flusher) {
                            return None;
                        }
                    }
                }
                continue;
            }
            // Resize in flight: old chain first, then new.
            let old_head = bucket_link_at(cur, bucket_index(key, self.arr_n(cur)));
            if let Lookup::Found(v) = list::get(&self.ops, ctx, old_head, key) {
                return Some(v);
            }
            let new_head = bucket_link_at(new, bucket_index(key, self.arr_n(new)));
            match list::get(&self.ops, ctx, new_head, key) {
                Lookup::Found(v) => return Some(v),
                Lookup::Migrated => continue,
                Lookup::Absent => {
                    if self.geometry_unchanged(cur, new, &mut ctx.flusher) {
                        return None;
                    }
                }
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, ctx: &mut ThreadCtx, key: u64) -> bool {
        self.get(ctx, key).is_some()
    }

    /// The live arrays: `cur` plus the in-flight destination, if any.
    pub(super) fn live_arrays(&self) -> (usize, Option<usize>) {
        let cur = self.load_bare(H_CUR);
        let new = self.load_bare(H_NEW);
        (cur, (new != 0 && new != cur).then_some(new))
    }

    /// Quiescent post-crash fixup: clears leftover dirty marks on the
    /// header words and every bucket chain of every live array, and
    /// completes pending unlinks; returns `(dirty_cleared, unlinked)`
    /// totals. A half-migrated table is left half-migrated — run
    /// [`Self::finish_resize`] afterwards (after the leak scan) to roll
    /// it forward.
    pub fn recover(&self, flusher: &mut Flusher) -> (u64, u64) {
        let pool = self.ops.pool();
        let mut dirty = 0;
        for off in [H_CUR, H_NEW, H_CURSOR] {
            let w = pool.atomic_u64(self.hdr + off).load(Ordering::Acquire);
            if is_dirty(w) {
                pool.atomic_u64(self.hdr + off).store(clean(w), Ordering::Release);
                flusher.clwb(self.hdr + off);
                dirty += 1;
            }
        }
        flusher.fence();
        let mut unlinked = 0;
        let (cur, new) = self.live_arrays();
        for arr in std::iter::once(cur).chain(new) {
            for b in 0..self.arr_n(arr) {
                let (d, u) = list::recover_chain(&self.ops, bucket_link_at(arr, b), flusher);
                dirty += d;
                unlinked += u;
            }
        }
        (dirty, unlinked)
    }

    fn chain_contains(&self, head: usize, addr: usize, key: u64) -> bool {
        let mut curr = addr_of(self.ops.load(head));
        while curr != 0 {
            let w = self.ops.load(list::next_addr(curr));
            if curr == addr {
                return !is_deleted(w);
            }
            if list::key_at(&self.ops, curr) > key {
                return false;
            }
            curr = addr_of(w);
        }
        false
    }

    /// §5.5 first-approach oracle: is there a node at exactly `addr`
    /// linked in the table? Mid-resize this consults the key's bucket in
    /// **both** arrays — a claimed original and its migrated copy are
    /// both reachable until the move's delete step lands.
    pub fn contains_node_at(&self, addr: usize) -> bool {
        let key = self.ops.pool().atomic_u64(addr + list::KEY_OFF).load(Ordering::Acquire);
        let (cur, new) = self.live_arrays();
        if self.chain_contains(bucket_link_at(cur, bucket_index(key, self.arr_n(cur))), addr, key) {
            return true;
        }
        if let Some(new) = new {
            return self.chain_contains(
                bucket_link_at(new, bucket_index(key, self.arr_n(new))),
                addr,
                key,
            );
        }
        false
    }

    /// Reachability set over all buckets of all live arrays (§5.5 second
    /// approach).
    pub fn collect_reachable(&self) -> HashSet<usize> {
        let mut set = HashSet::new();
        let (cur, new) = self.live_arrays();
        for arr in std::iter::once(cur).chain(new) {
            for b in 0..self.arr_n(arr) {
                list::reachable_chain(&self.ops, bucket_link_at(arr, b), &mut set);
            }
        }
        set
    }

    /// Quiescent snapshot of live pairs (unordered across buckets).
    /// Mid-resize a key mid-move can appear twice — with the same value,
    /// since pairs are immutable; after [`Self::finish_resize`] the
    /// snapshot is duplicate-free.
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        let (cur, new) = self.live_arrays();
        for arr in std::iter::once(cur).chain(new) {
            for b in 0..self.arr_n(arr) {
                list::snapshot_chain(&self.ops, bucket_link_at(arr, b), &mut v);
            }
        }
        v
    }

    /// Routing containment check (quiescent): counts live nodes linked
    /// from a bucket their key does not hash to. Must be 0; the crashtest
    /// resize driver asserts this at every crash point.
    pub fn check_routing(&self) -> u64 {
        let mut bad = 0;
        let (cur, new) = self.live_arrays();
        for arr in std::iter::once(cur).chain(new) {
            let n = self.arr_n(arr);
            for b in 0..n {
                let mut curr = addr_of(self.ops.load(bucket_link_at(arr, b)));
                while curr != 0 {
                    let w = self.ops.load(list::next_addr(curr));
                    if !is_deleted(w) && bucket_index(list::key_at(&self.ops, curr), n) != b {
                        bad += 1;
                    }
                    curr = addr_of(w);
                }
            }
        }
        bad
    }
}

// SAFETY: all shared state lives in the pool and is accessed atomically;
// the volatile locks are std mutexes (Sync).
unsafe impl Send for HashTable {}
// SAFETY: see above.
unsafe impl Sync for HashTable {}

//! Durable lock-free hash table: one Harris linked list per bucket (§3),
//! exactly as in the paper's evaluation. The bucket array is a persistent
//! region; each bucket is a single link word anchoring a [`crate::list`]
//! chain.
//!
//! The table does not resize (the paper sizes it per experiment); choose
//! `n_buckets` for the expected element count.

use std::collections::HashSet;
use std::sync::atomic::Ordering;

use nvalloc::{NvDomain, OutOfMemory, ThreadCtx};
use pmem::Flusher;

use crate::list;
use crate::marked::addr_of;
use crate::ops::LinkOps;

/// Durable lock-free hash table.
pub struct HashTable {
    ops: LinkOps,
    /// Address of the region data area: `[n_buckets: u64][bucket words]`.
    meta: usize,
    n_buckets: usize,
}

impl HashTable {
    /// Creates a table with `n_buckets` buckets (rounded up to a power of
    /// two), anchored at root slot `root_idx`.
    pub fn create(
        domain: &NvDomain,
        root_idx: usize,
        n_buckets: usize,
        ops: LinkOps,
    ) -> Result<Self, OutOfMemory> {
        let n_buckets = n_buckets.next_power_of_two();
        let pool = domain.pool();
        let mut flusher = pool.flusher();
        let meta = domain.heap().alloc_region(8 + n_buckets * 8, &mut flusher)?;
        pool.atomic_u64(meta).store(n_buckets as u64, Ordering::Release);
        // Bucket words start zeroed (fresh region pages are zero-filled);
        // persist the metadata word and the root.
        flusher.persist(meta, 8);
        pool.set_root(root_idx, meta as u64, &mut flusher);
        Ok(Self { ops, meta, n_buckets })
    }

    /// Re-attaches after a crash to the table anchored at `root_idx`. Run
    /// [`Self::recover`] before serving operations.
    pub fn attach(domain: &NvDomain, root_idx: usize, ops: LinkOps) -> Self {
        let pool = domain.pool();
        let meta = pool.root(root_idx) as usize;
        let n_buckets = pool.atomic_u64(meta).load(Ordering::Acquire) as usize;
        Self { ops, meta, n_buckets }
    }

    /// The persistence engine.
    pub fn ops(&self) -> &LinkOps {
        &self.ops
    }

    /// Number of buckets.
    pub fn n_buckets(&self) -> usize {
        self.n_buckets
    }

    #[inline]
    fn bucket_link(&self, key: u64) -> usize {
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let b = (h >> 32) as usize & (self.n_buckets - 1);
        self.meta + 8 + b * 8
    }

    /// Inserts `key -> value`; returns `Ok(false)` if the key existed.
    pub fn insert(&self, ctx: &mut ThreadCtx, key: u64, value: u64) -> Result<bool, OutOfMemory> {
        ctx.begin_op();
        let r = list::insert(&self.ops, ctx, self.bucket_link(key), key, value);
        ctx.end_op();
        r
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = list::remove(&self.ops, ctx, self.bucket_link(key), key);
        ctx.end_op();
        r
    }

    /// Looks up `key`.
    pub fn get(&self, ctx: &mut ThreadCtx, key: u64) -> Option<u64> {
        ctx.begin_op();
        let r = list::get(&self.ops, ctx, self.bucket_link(key), key);
        ctx.end_op();
        r
    }

    /// Whether `key` is present.
    pub fn contains(&self, ctx: &mut ThreadCtx, key: u64) -> bool {
        self.get(ctx, key).is_some()
    }

    /// Quiescent post-crash fixup of every bucket chain; returns
    /// `(dirty_cleared, unlinked)` totals.
    pub fn recover(&self, flusher: &mut Flusher) -> (u64, u64) {
        let mut dirty = 0;
        let mut unlinked = 0;
        for b in 0..self.n_buckets {
            let (d, u) = list::recover_chain(&self.ops, self.meta + 8 + b * 8, flusher);
            dirty += d;
            unlinked += u;
        }
        (dirty, unlinked)
    }

    /// §5.5 first-approach oracle: is there a node at exactly `addr`
    /// linked in the table? (Reads the candidate's key, searches its
    /// bucket, compares node identity.)
    pub fn contains_node_at(&self, addr: usize) -> bool {
        let key = self.ops.pool().atomic_u64(addr + list::KEY_OFF).load(Ordering::Acquire);
        let mut curr = addr_of(self.ops.load(self.bucket_link(key)));
        while curr != 0 {
            let w = self.ops.load(list::next_addr(curr));
            if curr == addr {
                return !crate::marked::is_deleted(w);
            }
            if list::key_at(&self.ops, curr) > key {
                return false;
            }
            curr = addr_of(w);
        }
        false
    }

    /// Reachability set over all buckets (§5.5 second approach).
    pub fn collect_reachable(&self) -> HashSet<usize> {
        let mut set = HashSet::new();
        for b in 0..self.n_buckets {
            list::reachable_chain(&self.ops, self.meta + 8 + b * 8, &mut set);
        }
        set
    }

    /// Quiescent snapshot of live pairs (unordered across buckets).
    pub fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut v = Vec::new();
        for b in 0..self.n_buckets {
            list::snapshot_chain(&self.ops, self.meta + 8 + b * 8, &mut v);
        }
        v
    }
}

// SAFETY: all shared state lives in the pool and is accessed atomically.
unsafe impl Send for HashTable {}
// SAFETY: see above.
unsafe impl Sync for HashTable {}

//! Integration tests for the durable skip list and Natarajan–Mittal BST.

use std::collections::BTreeMap;
use std::sync::Arc;

use logfree::{Bst, LinkOps, SkipList};
use nvalloc::NvDomain;
use pmem::{LatencyModel, Mode, PmemPool, PoolBuilder};
use rand::prelude::*;

const ROOT: usize = 2;

fn crash_pool(mb: usize) -> Arc<PmemPool> {
    PoolBuilder::new(mb << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
}

fn recover_skiplist(pool: &Arc<PmemPool>) -> (Arc<NvDomain>, SkipList) {
    let domain = NvDomain::attach(Arc::clone(pool));
    let sl = SkipList::attach(&domain, ROOT, LinkOps::new(Arc::clone(pool), None));
    let mut f = pool.flusher();
    sl.recover(&mut f);
    domain.recover_leaks(|a| sl.contains_node_at(a));
    (domain, sl)
}

fn recover_bst(pool: &Arc<PmemPool>) -> (Arc<NvDomain>, Bst) {
    let domain = NvDomain::attach(Arc::clone(pool));
    let bst = Bst::attach(&domain, ROOT, LinkOps::new(Arc::clone(pool), None));
    let mut f = pool.flusher();
    bst.recover(&mut f);
    domain.recover_leaks(|a| bst.contains_node_at(a));
    (domain, bst)
}

// ---------------------------------------------------------------------
// Skip list
// ---------------------------------------------------------------------

#[test]
fn skiplist_set_semantics() {
    let pool = crash_pool(8);
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let sl =
        SkipList::create(&domain, &mut ctx, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    assert!(sl.insert(&mut ctx, 10, 100).unwrap());
    assert!(!sl.insert(&mut ctx, 10, 101).unwrap());
    assert!(sl.insert(&mut ctx, 5, 50).unwrap());
    assert!(sl.insert(&mut ctx, 20, 200).unwrap());
    assert_eq!(sl.get(&mut ctx, 10), Some(100));
    assert_eq!(sl.get(&mut ctx, 11), None);
    assert_eq!(sl.remove(&mut ctx, 10), Some(100));
    assert_eq!(sl.remove(&mut ctx, 10), None);
    assert_eq!(sl.snapshot(), vec![(5, 50), (20, 200)]);
}

#[test]
fn skiplist_random_ops_match_oracle() {
    let pool = crash_pool(32);
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let sl =
        SkipList::create(&domain, &mut ctx, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..6000 {
        let k = rng.gen_range(1..400u64);
        match rng.gen_range(0..3) {
            0 => assert_eq!(
                sl.insert(&mut ctx, k, k * 3).unwrap(),
                oracle.insert(k, k * 3).is_none(),
                "insert({k})"
            ),
            1 => assert_eq!(sl.remove(&mut ctx, k), oracle.remove(&k), "remove({k})"),
            _ => assert_eq!(sl.get(&mut ctx, k), oracle.get(&k).copied(), "get({k})"),
        }
    }
    assert_eq!(sl.snapshot(), oracle.into_iter().collect::<Vec<_>>());
}

#[test]
fn skiplist_concurrent_disjoint_and_contended() {
    let pool = PoolBuilder::new(128 << 20).mode(Mode::Perf).build();
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx0 = domain.register();
    let sl =
        SkipList::create(&domain, &mut ctx0, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let domain = Arc::clone(&domain);
            let sl = &sl;
            s.spawn(move || {
                let mut ctx = domain.register();
                let mut rng = StdRng::seed_from_u64(t);
                // Disjoint range.
                let base = 10_000 + t * 1000;
                for i in 0..500 {
                    assert!(sl.insert(&mut ctx, base + i, t).unwrap());
                }
                for i in 0..500 {
                    assert_eq!(sl.get(&mut ctx, base + i), Some(t));
                }
                for i in (0..500).step_by(2) {
                    assert_eq!(sl.remove(&mut ctx, base + i), Some(t));
                }
                // Contended range.
                for _ in 0..1500 {
                    let k = rng.gen_range(1..64u64);
                    if rng.gen_bool(0.5) {
                        let _ = sl.insert(&mut ctx, k, t).unwrap();
                    } else {
                        let _ = sl.remove(&mut ctx, k);
                    }
                }
                ctx.drain_all();
            });
        }
    });
    let snap = sl.snapshot();
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "sorted unique keys");
}

#[test]
fn skiplist_crash_recovery_rebuilds_index() {
    let pool = crash_pool(32);
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let sl =
        SkipList::create(&domain, &mut ctx, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..3000 {
        let k = rng.gen_range(1..300u64);
        if rng.gen_bool(0.6) {
            sl.insert(&mut ctx, k, k + 7).unwrap();
            oracle.insert(k, k + 7);
        } else {
            sl.remove(&mut ctx, k);
            oracle.remove(&k);
        }
    }
    drop(ctx);
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };
    let (domain2, sl2) = recover_skiplist(&pool);
    assert_eq!(sl2.snapshot(), oracle.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>());
    // The rebuilt index must actually work for searches and updates.
    let mut ctx = domain2.register();
    for (&k, &v) in &oracle {
        assert_eq!(sl2.get(&mut ctx, k), Some(v), "get({k}) after recovery");
    }
    assert!(sl2.insert(&mut ctx, 100_000, 1).unwrap());
    assert_eq!(sl2.remove(&mut ctx, 100_000), Some(1));
}

#[test]
fn skiplist_crash_image_checkpoints_match_oracle() {
    let pool = crash_pool(16);
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let sl =
        SkipList::create(&domain, &mut ctx, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(9);
    let mut checkpoints = Vec::new();
    for i in 0..400 {
        let k = rng.gen_range(1..50u64);
        if rng.gen_bool(0.5) {
            sl.insert(&mut ctx, k, k).unwrap();
            oracle.insert(k, k);
        } else {
            sl.remove(&mut ctx, k);
            oracle.remove(&k);
        }
        if i % 53 == 0 {
            checkpoints.push((pool.capture_crash_image().unwrap(), oracle.clone()));
        }
    }
    drop(ctx);
    for (img, expect) in checkpoints {
        // SAFETY: no threads are running.
        unsafe { pool.crash_to_image(&img).unwrap() };
        let (_d, sl2) = recover_skiplist(&pool);
        assert_eq!(sl2.snapshot(), expect.into_iter().collect::<Vec<_>>());
    }
}

// ---------------------------------------------------------------------
// BST
// ---------------------------------------------------------------------

#[test]
fn bst_set_semantics() {
    let pool = crash_pool(8);
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let bst = Bst::create(&domain, &mut ctx, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    assert!(bst.insert(&mut ctx, 50, 500).unwrap());
    assert!(!bst.insert(&mut ctx, 50, 501).unwrap());
    assert!(bst.insert(&mut ctx, 30, 300).unwrap());
    assert!(bst.insert(&mut ctx, 70, 700).unwrap());
    assert!(bst.insert(&mut ctx, 20, 200).unwrap());
    assert_eq!(bst.get(&mut ctx, 50), Some(500));
    assert_eq!(bst.get(&mut ctx, 51), None);
    assert_eq!(bst.remove(&mut ctx, 50), Some(500));
    assert_eq!(bst.remove(&mut ctx, 50), None);
    assert_eq!(bst.get(&mut ctx, 30), Some(300));
    assert_eq!(bst.snapshot(), vec![(20, 200), (30, 300), (70, 700)]);
}

#[test]
fn bst_random_ops_match_oracle() {
    let pool = crash_pool(32);
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let bst = Bst::create(&domain, &mut ctx, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(123);
    for _ in 0..6000 {
        let k = rng.gen_range(0..400u64);
        match rng.gen_range(0..3) {
            0 => assert_eq!(
                bst.insert(&mut ctx, k, k * 3).unwrap(),
                oracle.insert(k, k * 3).is_none(),
                "insert({k})"
            ),
            1 => assert_eq!(bst.remove(&mut ctx, k), oracle.remove(&k), "remove({k})"),
            _ => assert_eq!(bst.get(&mut ctx, k), oracle.get(&k).copied(), "get({k})"),
        }
    }
    assert_eq!(bst.snapshot(), oracle.into_iter().collect::<Vec<_>>());
}

#[test]
fn bst_concurrent_mixed_workload() {
    let pool = PoolBuilder::new(256 << 20).mode(Mode::Perf).build();
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx0 = domain.register();
    let bst = Bst::create(&domain, &mut ctx0, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let domain = Arc::clone(&domain);
            let bst = &bst;
            s.spawn(move || {
                let mut ctx = domain.register();
                let mut rng = StdRng::seed_from_u64(t + 40);
                // Disjoint range with full verification.
                let base = 100_000 + t * 1000;
                for i in 0..400 {
                    assert!(bst.insert(&mut ctx, base + i, t).unwrap());
                }
                for i in (0..400).step_by(2) {
                    assert_eq!(bst.remove(&mut ctx, base + i), Some(t));
                }
                for i in 0..400 {
                    let expect = (i % 2 == 1).then_some(t);
                    assert_eq!(bst.get(&mut ctx, base + i), expect);
                }
                // Contended small range.
                for _ in 0..2000 {
                    let k = rng.gen_range(0..48u64);
                    match rng.gen_range(0..3) {
                        0 => {
                            let _ = bst.insert(&mut ctx, k, t).unwrap();
                        }
                        1 => {
                            let _ = bst.remove(&mut ctx, k);
                        }
                        _ => {
                            let _ = bst.get(&mut ctx, k);
                        }
                    }
                }
                ctx.drain_all();
            });
        }
    });
    let snap = bst.snapshot();
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "sorted unique keys");
}

#[test]
fn bst_crash_recovery_completes_flagged_deletions() {
    let pool = crash_pool(32);
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let bst = Bst::create(&domain, &mut ctx, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..4000 {
        let k = rng.gen_range(0..300u64);
        if rng.gen_bool(0.6) {
            bst.insert(&mut ctx, k, k + 9).unwrap();
            oracle.insert(k, k + 9);
        } else {
            bst.remove(&mut ctx, k);
            oracle.remove(&k);
        }
    }
    drop(ctx);
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };
    let (domain2, bst2) = recover_bst(&pool);
    assert_eq!(bst2.snapshot(), oracle.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>());
    let mut ctx = domain2.register();
    for (&k, &v) in &oracle {
        assert_eq!(bst2.get(&mut ctx, k), Some(v));
    }
    assert!(bst2.insert(&mut ctx, 999_999, 5).unwrap());
}

#[test]
fn bst_crash_image_checkpoints_match_oracle() {
    let pool = crash_pool(16);
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let bst = Bst::create(&domain, &mut ctx, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(19);
    let mut checkpoints = Vec::new();
    for i in 0..400 {
        let k = rng.gen_range(0..60u64);
        if rng.gen_bool(0.5) {
            bst.insert(&mut ctx, k, k).unwrap();
            oracle.insert(k, k);
        } else {
            bst.remove(&mut ctx, k);
            oracle.remove(&k);
        }
        if i % 41 == 0 {
            checkpoints.push((pool.capture_crash_image().unwrap(), oracle.clone()));
        }
    }
    drop(ctx);
    for (img, expect) in checkpoints {
        // SAFETY: no threads are running.
        unsafe { pool.crash_to_image(&img).unwrap() };
        let (_d, bst2) = recover_bst(&pool);
        assert_eq!(bst2.snapshot(), expect.into_iter().collect::<Vec<_>>());
    }
}

#[test]
fn bst_leak_recovery_frees_unreachable_slots() {
    let pool = crash_pool(16);
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let bst = Bst::create(&domain, &mut ctx, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    for k in 0..200u64 {
        bst.insert(&mut ctx, k, k).unwrap();
    }
    for k in (0..200u64).step_by(3) {
        bst.remove(&mut ctx, k);
    }
    drop(ctx);
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain2 = NvDomain::attach(Arc::clone(&pool));
    let bst2 = Bst::attach(&domain2, ROOT, LinkOps::new(Arc::clone(&pool), None));
    let mut f = pool.flusher();
    bst2.recover(&mut f);
    // Cross-check the identity-search oracle against the full traversal.
    let reachable = bst2.collect_reachable();
    let report = domain2.recover_leaks(|a| {
        let by_search = bst2.contains_node_at(a);
        let by_set = reachable.contains(&a);
        assert_eq!(by_search, by_set, "oracle disagreement at {a:#x}");
        by_search
    });
    assert!(report.slots_scanned > 0);
}

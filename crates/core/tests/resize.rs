//! Incremental-resize tests for the hash table: contents and routing
//! across a grow, concurrent operations racing a live resize, crash
//! recovery of a half-migrated table, and a proptest driving arbitrary
//! op interleavings against a `BTreeMap` oracle while a resize is in
//! flight. The exhaustive crash-point enumeration lives in the
//! `crashtest` crate; these tests pin the volatile and single-crash
//! semantics at the structure level.

use std::collections::BTreeMap;
use std::sync::Arc;

use logfree::{HashTable, LinkOps};
use nvalloc::NvDomain;
use pmem::{LatencyModel, Mode, PmemPool, PoolBuilder};
use proptest::prelude::*;
use rand::prelude::*;

const ROOT: usize = 1;

fn pool(mb: usize, mode: Mode) -> Arc<PmemPool> {
    PoolBuilder::new(mb << 20).mode(mode).latency(LatencyModel::ZERO).build()
}

fn make_hash(pool: &Arc<PmemPool>, buckets: usize) -> (Arc<NvDomain>, HashTable) {
    let domain = NvDomain::create(Arc::clone(pool));
    let ops = LinkOps::new(Arc::clone(pool), None);
    let ht = HashTable::create(&domain, ROOT, buckets, ops).unwrap();
    (domain, ht)
}

#[test]
fn grow_preserves_contents_and_routing() {
    let pool = pool(16, Mode::CrashSim);
    let (domain, ht) = make_hash(&pool, 16);
    let mut ctx = domain.register();
    let mut oracle = BTreeMap::new();
    for k in 1..=400u64 {
        ht.insert(&mut ctx, k, k * 3).unwrap();
        oracle.insert(k, k * 3);
    }
    assert_eq!(ht.n_buckets(), 16);

    assert!(ht.grow(&mut ctx, 4).unwrap());
    assert!(ht.resize_in_flight());
    // Routing is live immediately: new inserts/removes land correctly
    // while the table is mid-migration (each op drains its own bucket
    // plus two more on behalf of the sweep).
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..300 {
        let k = rng.gen_range(1..600u64);
        match rng.gen_range(0..3) {
            0 => {
                assert_eq!(
                    ht.insert(&mut ctx, k, k * 3).unwrap(),
                    oracle.insert(k, k * 3).is_none()
                );
            }
            1 => assert_eq!(ht.remove(&mut ctx, k), oracle.remove(&k)),
            _ => assert_eq!(ht.get(&mut ctx, k), oracle.get(&k).copied()),
        }
    }
    ht.finish_resize(&mut ctx).unwrap();
    assert!(!ht.resize_in_flight());
    assert_eq!(ht.n_buckets(), 64, "4x grow from 16 buckets");
    assert_eq!(ht.check_routing(), 0, "every key hashes to the bucket it lives in");
    let mut snap = ht.snapshot();
    snap.sort_unstable();
    let expect: Vec<_> = oracle.into_iter().collect();
    assert_eq!(snap, expect);

    // A second grow still works after the first completed.
    assert!(ht.grow(&mut ctx, 2).unwrap());
    assert!(!ht.grow(&mut ctx, 2).unwrap(), "grow while in flight is refused");
    ht.finish_resize(&mut ctx).unwrap();
    assert_eq!(ht.n_buckets(), 128);
    assert_eq!(ht.check_routing(), 0);
}

#[test]
fn concurrent_ops_race_a_live_grow() {
    let pool = PoolBuilder::new(256 << 20).mode(Mode::Perf).build();
    let (domain, ht) = make_hash(&pool, 16);
    {
        let mut ctx = domain.register();
        for k in 1..=1000u64 {
            ht.insert(&mut ctx, k, 1).unwrap();
        }
    }
    std::thread::scope(|s| {
        for t in 0..6u64 {
            let domain = Arc::clone(&domain);
            let ht = &ht;
            s.spawn(move || {
                let mut ctx = domain.register();
                let mut rng = StdRng::seed_from_u64(t + 100);
                // Thread-disjoint key ranges above the prefill, so each
                // thread can assert its own set semantics exactly.
                let base = 2000 + t * 500;
                for i in 0..500 {
                    let k = base + i;
                    assert!(ht.insert(&mut ctx, k, t).unwrap());
                    assert_eq!(ht.get(&mut ctx, k), Some(t));
                    if rng.gen_bool(0.5) {
                        assert_eq!(ht.remove(&mut ctx, k), Some(t));
                    }
                    // Shared prefill keys: result is racy, but must not
                    // wedge or corrupt.
                    let shared = rng.gen_range(1..=1000u64);
                    let _ = ht.get(&mut ctx, shared);
                }
                // Epoch-respecting only: peers still run, and draining
                // would free the retired old bucket array under them.
                ctx.try_collect();
            });
        }
        let domain = Arc::clone(&domain);
        let ht = &ht;
        s.spawn(move || {
            let mut ctx = domain.register();
            assert!(ht.grow(&mut ctx, 4).unwrap());
            ht.finish_resize(&mut ctx).unwrap();
            ctx.try_collect();
        });
    });
    let mut ctx = domain.register();
    ht.finish_resize(&mut ctx).unwrap();
    assert!(!ht.resize_in_flight());
    assert_eq!(ht.n_buckets(), 64);
    assert_eq!(ht.check_routing(), 0);
    let mut snap = ht.snapshot();
    snap.sort_unstable();
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "no duplicate keys");
    for k in 1..=1000u64 {
        assert_eq!(ht.get(&mut ctx, k), Some(1), "prefill key {k} survived the grow");
    }
}

#[test]
fn crash_mid_resize_rolls_forward() {
    let pool = pool(16, Mode::CrashSim);
    let (domain, ht) = make_hash(&pool, 16);
    let mut ctx = domain.register();
    let mut oracle = BTreeMap::new();
    for k in 1..=200u64 {
        ht.insert(&mut ctx, k, k + 9).unwrap();
        oracle.insert(k, k + 9);
    }
    assert!(ht.grow(&mut ctx, 4).unwrap());
    // Partially migrate: a few ops, each draining its own bucket plus two
    // for the sweep — well short of the 16 old buckets.
    for k in 1..=3u64 {
        assert_eq!(ht.remove(&mut ctx, k), oracle.remove(&k));
    }
    assert!(ht.resize_in_flight(), "only part of the table migrated");
    drop(ctx);
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };

    let domain2 = NvDomain::attach(Arc::clone(&pool));
    let ht2 = HashTable::try_attach(&domain2, ROOT, LinkOps::new(Arc::clone(&pool), None))
        .expect("geometry of a mid-resize image is valid");
    let mut f = pool.flusher();
    ht2.recover(&mut f);
    // Leak scan before any allocation, with the both-arrays oracle.
    let report = domain2.recover_leaks(|a| ht2.contains_node_at(a));
    let mut ctx2 = domain2.register();
    assert!(ht2.finish_resize(&mut ctx2).unwrap(), "roll the crashed resize forward");
    ctx2.drain_all();
    ht2.sweep_orphan_regions(&mut ctx2);
    assert!(!ht2.resize_in_flight());
    assert_eq!(ht2.n_buckets(), 64);
    assert_eq!(ht2.check_routing(), 0);
    let mut snap = ht2.snapshot();
    snap.sort_unstable();
    let expect: Vec<_> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(snap, expect, "no key lost or resurrected (leaks recovered: {report:?})");
    let reachable = ht2.collect_reachable();
    assert_eq!(
        domain2.count_unreachable(|a| reachable.contains(&a)),
        0,
        "zero leaks after mid-resize recovery"
    );
}

/// One scripted operation for the interleaving proptest.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Get(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1..64u64, 0..1000u64).prop_map(|(k, v)| Op::Insert(k, v)),
        (1..64u64).prop_map(Op::Remove),
        (1..64u64).prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Satellite: arbitrary insert/remove/get interleavings racing a
    /// resize on a volatile shadow table match a `BTreeMap` oracle
    /// snapshot-for-snapshot — every individual result and the final
    /// contents. The grow is injected at an arbitrary point in the
    /// sequence, so ops land on a steady table, a mid-migration table
    /// (draining buckets as they go), and a freshly committed table.
    #[test]
    fn interleaved_ops_racing_resize_match_oracle(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        grow_at in 0..120usize,
        factor in (1..3usize).prop_map(|p| 1usize << p),
        finish_eagerly in any::<bool>(),
    ) {
        let pool = pool(16, Mode::Volatile);
        let (domain, ht) = make_hash(&pool, 8);
        let mut ctx = domain.register();
        let mut oracle = BTreeMap::new();
        let mut grown = false;
        for (i, op) in ops.iter().enumerate() {
            if i == grow_at.min(ops.len() - 1) {
                prop_assert!(ht.grow(&mut ctx, factor).unwrap());
                grown = true;
                if finish_eagerly {
                    ht.finish_resize(&mut ctx).unwrap();
                }
            }
            match *op {
                Op::Insert(k, v) => {
                    // Set semantics: a duplicate insert does NOT
                    // overwrite, so only mirror successful inserts.
                    let inserted = ht.insert(&mut ctx, k, v).unwrap();
                    prop_assert_eq!(inserted, !oracle.contains_key(&k));
                    if inserted {
                        oracle.insert(k, v);
                    }
                }
                Op::Remove(k) => prop_assert_eq!(ht.remove(&mut ctx, k), oracle.remove(&k)),
                Op::Get(k) => prop_assert_eq!(ht.get(&mut ctx, k), oracle.get(&k).copied()),
            }
        }
        if !grown {
            prop_assert!(ht.grow(&mut ctx, factor).unwrap());
        }
        ht.finish_resize(&mut ctx).unwrap();
        prop_assert!(!ht.resize_in_flight());
        prop_assert_eq!(ht.n_buckets(), 8 * factor.next_power_of_two());
        prop_assert_eq!(ht.check_routing(), 0);
        let mut snap = ht.snapshot();
        snap.sort_unstable();
        let expect: Vec<_> = oracle.into_iter().collect();
        prop_assert_eq!(snap, expect);
    }
}

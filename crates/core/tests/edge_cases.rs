//! Edge-case tests: empty-structure recovery, recovery idempotence,
//! sentinel boundaries, mark coexistence, and crash-during-recovery.

use std::sync::Arc;

use logfree::{marked, Bst, HashTable, LinkOps, LinkedList, SkipList};
use nvalloc::NvDomain;
use pmem::{Mode, PmemPool, PoolBuilder};

const ROOT: usize = 3;

fn crash_pool(mb: usize) -> Arc<PmemPool> {
    PoolBuilder::new(mb << 20).mode(Mode::CrashSim).build()
}

#[test]
fn empty_structures_recover_cleanly() {
    let pool = crash_pool(16);
    {
        let domain = NvDomain::create(Arc::clone(&pool));
        let mut ctx = domain.register();
        let _ll = LinkedList::create(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None));
        let _ht = HashTable::create(&domain, ROOT + 1, 16, LinkOps::new(Arc::clone(&pool), None))
            .unwrap();
        let _sl =
            SkipList::create(&domain, &mut ctx, ROOT + 2, LinkOps::new(Arc::clone(&pool), None))
                .unwrap();
        let _bst = Bst::create(&domain, &mut ctx, ROOT + 3, LinkOps::new(Arc::clone(&pool), None))
            .unwrap();
        // Intentionally nothing inserted.
    }
    // SAFETY: no threads running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain = NvDomain::attach(Arc::clone(&pool));
    let ll = LinkedList::attach(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None));
    let ht = HashTable::attach(&domain, ROOT + 1, LinkOps::new(Arc::clone(&pool), None));
    let sl = SkipList::attach(&domain, ROOT + 2, LinkOps::new(Arc::clone(&pool), None));
    let bst = Bst::attach(&domain, ROOT + 3, LinkOps::new(Arc::clone(&pool), None));
    let mut f = pool.flusher();
    assert_eq!(ll.recover(&mut f), (0, 0));
    assert_eq!(ht.recover(&mut f), (0, 0));
    sl.recover(&mut f);
    bst.recover(&mut f);
    let sl_r = sl.collect_reachable();
    let bst_r = bst.collect_reachable();
    domain.recover_leaks(|a| sl_r.contains(&a) || bst_r.contains(&a) || ht.contains_node_at(a));
    assert!(ll.snapshot().is_empty());
    assert!(ht.snapshot().is_empty());
    assert!(sl.snapshot().is_empty());
    assert!(bst.snapshot().is_empty());
    // Fresh operations still work after recovering an empty image.
    let mut ctx = domain.register();
    assert!(ll.insert(&mut ctx, 1, 1).unwrap());
    assert!(ht.insert(&mut ctx, 1, 1).unwrap());
    assert!(sl.insert(&mut ctx, 1, 1).unwrap());
    assert!(bst.insert(&mut ctx, 1, 1).unwrap());
}

#[test]
fn recovery_is_idempotent() {
    // Running the full recovery pipeline twice must be a no-op the
    // second time: a crash *during* recovery is survivable by simply
    // recovering again.
    let pool = crash_pool(32);
    {
        let domain = NvDomain::create(Arc::clone(&pool));
        let ht =
            HashTable::create(&domain, ROOT, 32, LinkOps::new(Arc::clone(&pool), None)).unwrap();
        let mut ctx = domain.register();
        for k in 1..=200u64 {
            ht.insert(&mut ctx, k, k).unwrap();
        }
        for k in (1..=200u64).step_by(2) {
            ht.remove(&mut ctx, k);
        }
    }
    // SAFETY: no threads running.
    unsafe { pool.simulate_crash().unwrap() };
    // First recovery.
    let domain = NvDomain::attach(Arc::clone(&pool));
    let ht = HashTable::attach(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None));
    let mut f = pool.flusher();
    ht.recover(&mut f);
    let r1 = domain.recover_leaks(|a| ht.contains_node_at(a));
    let snap1 = {
        let mut s = ht.snapshot();
        s.sort_unstable();
        s
    };
    // Crash again immediately (mid-"restart"), recover again.
    drop(ht);
    // SAFETY: no threads running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain = NvDomain::attach(Arc::clone(&pool));
    let ht = HashTable::attach(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None));
    let mut f = pool.flusher();
    let (dirty2, unlinked2) = ht.recover(&mut f);
    let r2 = domain.recover_leaks(|a| ht.contains_node_at(a));
    let snap2 = {
        let mut s = ht.snapshot();
        s.sort_unstable();
        s
    };
    assert_eq!(snap1, snap2, "second recovery changes nothing");
    assert_eq!(dirty2, 0, "first recovery durably cleared all marks");
    assert_eq!(unlinked2, 0);
    assert_eq!(r2.leaks_freed, 0, "first recovery freed all leaks (r1 freed {})", r1.leaks_freed);
}

#[test]
fn crash_between_recover_and_leak_scan_is_safe() {
    // The two recovery phases are independently crash-safe: a crash
    // after the structural fixup but before the leak scan only costs
    // recovery work, never correctness.
    let pool = crash_pool(32);
    {
        let domain = NvDomain::create(Arc::clone(&pool));
        let ht =
            HashTable::create(&domain, ROOT, 32, LinkOps::new(Arc::clone(&pool), None)).unwrap();
        let mut ctx = domain.register();
        for k in 1..=100u64 {
            ht.insert(&mut ctx, k, k).unwrap();
        }
        for k in 1..=50u64 {
            ht.remove(&mut ctx, k);
        }
    }
    // SAFETY: no threads running.
    unsafe { pool.simulate_crash().unwrap() };
    {
        let domain = NvDomain::attach(Arc::clone(&pool));
        let ht = HashTable::attach(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None));
        let mut f = pool.flusher();
        ht.recover(&mut f);
        // No recover_leaks: crash here.
        drop(domain);
    }
    // SAFETY: no threads running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain = NvDomain::attach(Arc::clone(&pool));
    let ht = HashTable::attach(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None));
    let mut f = pool.flusher();
    ht.recover(&mut f);
    domain.recover_leaks(|a| ht.contains_node_at(a));
    let mut ctx = domain.register();
    for k in 1..=50u64 {
        assert_eq!(ht.get(&mut ctx, k), None);
    }
    for k in 51..=100u64 {
        assert_eq!(ht.get(&mut ctx, k), Some(k));
    }
}

#[test]
fn key_boundaries_are_respected() {
    let pool = crash_pool(16);
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let ll = LinkedList::create(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None));
    let bst =
        Bst::create(&domain, &mut ctx, ROOT + 1, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    // Extremes of the allowed ranges round-trip.
    assert!(ll.insert(&mut ctx, logfree::MIN_KEY, 1).unwrap());
    assert!(ll.insert(&mut ctx, logfree::MAX_KEY, 2).unwrap());
    assert_eq!(ll.get(&mut ctx, logfree::MIN_KEY), Some(1));
    assert_eq!(ll.get(&mut ctx, logfree::MAX_KEY), Some(2));
    assert!(bst.insert(&mut ctx, 0, 3).unwrap());
    assert!(bst.insert(&mut ctx, logfree::bst::MAX_BST_KEY, 4).unwrap());
    assert_eq!(bst.get(&mut ctx, 0), Some(3));
    assert_eq!(bst.get(&mut ctx, logfree::bst::MAX_BST_KEY), Some(4));
    assert_eq!(bst.remove(&mut ctx, logfree::bst::MAX_BST_KEY), Some(4));
}

#[test]
fn dirty_marked_anchor_recovers() {
    // A crash can persist a link together with its DIRTY mark (the mark
    // removal is never flushed). Recovery must treat the marked word as
    // durable and clean it — including on the anchor link itself.
    let pool = crash_pool(16);
    let domain = NvDomain::create(Arc::clone(&pool));
    let ll = LinkedList::create(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None));
    let mut ctx = domain.register();
    ll.insert(&mut ctx, 42, 420).unwrap();
    // Manually re-mark the anchor and persist the marked word, emulating
    // the worst-case crash window.
    let anchor = pool.start() + ROOT * 8;
    let w = pool.atomic_u64(anchor).load(std::sync::atomic::Ordering::Acquire);
    pool.atomic_u64(anchor).store(w | marked::DIRTY, std::sync::atomic::Ordering::Release);
    ctx.flusher.persist(anchor, 8);
    drop(ctx);
    // SAFETY: no threads running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain = NvDomain::attach(Arc::clone(&pool));
    let ll = LinkedList::attach(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None));
    let mut f = pool.flusher();
    let (dirty, _) = ll.recover(&mut f);
    assert!(dirty >= 1, "anchor mark cleared");
    let mut ctx = domain.register();
    assert_eq!(ll.get(&mut ctx, 42), Some(420));
}

#[test]
fn skiplist_survives_crash_with_garbage_towers() {
    // Tower links are index-only and never fenced: corrupt them all and
    // verify recovery rebuilds a fully working index from level 0.
    let pool = crash_pool(32);
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let sl =
        SkipList::create(&domain, &mut ctx, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    for k in 1..=500u64 {
        sl.insert(&mut ctx, k, k).unwrap();
    }
    drop(ctx);
    // SAFETY: no threads running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain = NvDomain::attach(Arc::clone(&pool));
    let sl = SkipList::attach(&domain, ROOT, LinkOps::new(Arc::clone(&pool), None));
    let mut f = pool.flusher();
    sl.recover(&mut f);
    domain.recover_leaks(|a| sl.contains_node_at(a));
    let mut ctx = domain.register();
    for k in 1..=500u64 {
        assert_eq!(sl.get(&mut ctx, k), Some(k), "index lookup after rebuild");
    }
    // Index must be structurally usable for updates too.
    for k in 1..=500u64 {
        assert_eq!(sl.remove(&mut ctx, k), Some(k));
    }
    assert!(sl.snapshot().is_empty());
}

#[test]
fn bst_helping_insert_completes_stuck_delete() {
    // An insert that collides with a flagged edge must help the delete
    // finish (NM helping): emulate by flagging an edge manually through
    // remove's injection path being "interrupted" — here simply
    // interleaved single-threaded via two contexts.
    let pool = PoolBuilder::new(32 << 20).mode(Mode::Perf).build();
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let bst = Bst::create(&domain, &mut ctx, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    for k in [50u64, 30, 70, 20, 40] {
        bst.insert(&mut ctx, k, k).unwrap();
    }
    // A full remove (injection + cleanup) followed by inserts around the
    // same region exercises the helping paths; correctness is covered by
    // the concurrent tests, this pins the sequential behaviour.
    assert_eq!(bst.remove(&mut ctx, 30), Some(30));
    assert!(bst.insert(&mut ctx, 30, 31).unwrap());
    assert!(bst.insert(&mut ctx, 25, 25).unwrap());
    assert_eq!(bst.get(&mut ctx, 30), Some(31));
    assert_eq!(bst.get(&mut ctx, 25), Some(25));
    assert_eq!(bst.snapshot(), vec![(20, 20), (25, 25), (30, 31), (40, 40), (50, 50), (70, 70)]);
}

#[test]
fn hash_table_bucket_count_rounds_to_power_of_two() {
    let pool = crash_pool(16);
    let domain = NvDomain::create(Arc::clone(&pool));
    let ht = HashTable::create(&domain, ROOT, 100, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    assert_eq!(ht.n_buckets(), 128);
}

#[test]
fn values_are_preserved_not_overwritten_by_failed_insert() {
    let pool = crash_pool(16);
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let sl =
        SkipList::create(&domain, &mut ctx, ROOT, LinkOps::new(Arc::clone(&pool), None)).unwrap();
    assert!(sl.insert(&mut ctx, 5, 100).unwrap());
    assert!(!sl.insert(&mut ctx, 5, 200).unwrap());
    assert_eq!(sl.get(&mut ctx, 5), Some(100), "set semantics: no overwrite");
}

//! Integration tests for the durable linked list and hash table: set
//! semantics, concurrency, durability across simulated crashes, and leak
//! recovery.

use std::collections::BTreeMap;
use std::sync::Arc;

use linkcache::LinkCache;
use logfree::{HashTable, LinkOps, LinkedList};
use nvalloc::NvDomain;
use pmem::{LatencyModel, Mode, PmemPool, PoolBuilder};
use rand::prelude::*;

const ROOT: usize = 1;

fn crash_pool(mb: usize) -> Arc<PmemPool> {
    PoolBuilder::new(mb << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
}

fn make_list(pool: &Arc<PmemPool>, lc: bool) -> (Arc<NvDomain>, LinkedList) {
    let domain = NvDomain::create(Arc::clone(pool));
    let cache = lc
        .then(|| Arc::new(LinkCache::with_default_size(Arc::clone(pool), logfree::marked::DIRTY)));
    let ops = LinkOps::new(Arc::clone(pool), cache);
    let list = LinkedList::create(&domain, ROOT, ops);
    (domain, list)
}

#[test]
fn list_set_semantics() {
    let pool = crash_pool(8);
    let (domain, list) = make_list(&pool, false);
    let mut ctx = domain.register();
    assert!(list.insert(&mut ctx, 5, 50).unwrap());
    assert!(!list.insert(&mut ctx, 5, 51).unwrap(), "duplicate rejected");
    assert!(list.insert(&mut ctx, 3, 30).unwrap());
    assert!(list.insert(&mut ctx, 9, 90).unwrap());
    assert_eq!(list.get(&mut ctx, 5), Some(50));
    assert_eq!(list.get(&mut ctx, 4), None);
    assert_eq!(list.remove(&mut ctx, 5), Some(50));
    assert_eq!(list.remove(&mut ctx, 5), None);
    assert_eq!(list.snapshot(), vec![(3, 30), (9, 90)]);
}

#[test]
fn list_random_ops_match_btreemap_oracle() {
    let pool = crash_pool(16);
    let (domain, list) = make_list(&pool, false);
    let mut ctx = domain.register();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..4000 {
        let k = rng.gen_range(1..200u64);
        match rng.gen_range(0..3) {
            0 => {
                let ours = list.insert(&mut ctx, k, k * 10).unwrap();
                let theirs = oracle.insert(k, k * 10).is_none();
                assert_eq!(ours, theirs, "insert({k})");
            }
            1 => {
                assert_eq!(list.remove(&mut ctx, k), oracle.remove(&k), "remove({k})");
            }
            _ => {
                assert_eq!(list.get(&mut ctx, k), oracle.get(&k).copied(), "get({k})");
            }
        }
    }
    let ours: Vec<_> = list.snapshot();
    let theirs: Vec<_> = oracle.into_iter().collect();
    assert_eq!(ours, theirs);
}

#[test]
fn list_survives_crash_with_recovery() {
    let pool = crash_pool(8);
    let (domain, list) = make_list(&pool, false);
    let mut ctx = domain.register();
    for k in 1..=100u64 {
        list.insert(&mut ctx, k, k + 1000).unwrap();
    }
    for k in (2..=100u64).step_by(2) {
        assert_eq!(list.remove(&mut ctx, k), Some(k + 1000));
    }
    drop(ctx);
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };

    let domain2 = NvDomain::attach(Arc::clone(&pool));
    let ops = LinkOps::new(Arc::clone(&pool), None);
    let list2 = LinkedList::attach(&domain2, ROOT, ops);
    let mut f = pool.flusher();
    list2.recover(&mut f);
    let reachable = list2.collect_reachable();
    let report = domain2.recover_leaks(|a| reachable.contains(&a));
    assert_eq!(report.leaks_freed as usize + reachable.len(), report.slots_scanned as usize);
    let snap = list2.snapshot();
    let expect: Vec<_> = (1..=100u64).step_by(2).map(|k| (k, k + 1000)).collect();
    assert_eq!(snap, expect, "all completed ops survive");
}

#[test]
fn list_durable_linearizability_single_thread_random_crash_points() {
    // Apply a random op sequence; capture a crash image after every op;
    // recovery from image i must equal the oracle state after op i
    // (single-threaded, every op has completed when the image is taken).
    let pool = crash_pool(8);
    let (domain, list) = make_list(&pool, false);
    let mut ctx = domain.register();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(7);
    let mut checkpoints = Vec::new();
    for i in 0..300 {
        let k = rng.gen_range(1..40u64);
        if rng.gen_bool(0.5) {
            list.insert(&mut ctx, k, k).unwrap();
            oracle.insert(k, k);
        } else {
            list.remove(&mut ctx, k);
            oracle.remove(&k);
        }
        if i % 37 == 0 {
            checkpoints.push((pool.capture_crash_image().unwrap(), oracle.clone()));
        }
    }
    drop(ctx);
    for (img, expect) in checkpoints {
        // SAFETY: no threads are running.
        unsafe { pool.crash_to_image(&img).unwrap() };
        let domain2 = NvDomain::attach(Arc::clone(&pool));
        let ops = LinkOps::new(Arc::clone(&pool), None);
        let list2 = LinkedList::attach(&domain2, ROOT, ops);
        let mut f = pool.flusher();
        list2.recover(&mut f);
        let reachable = list2.collect_reachable();
        domain2.recover_leaks(|a| reachable.contains(&a));
        let snap = list2.snapshot();
        let expect: Vec<_> = expect.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(snap, expect, "recovered state reflects all completed ops");
    }
}

#[test]
fn list_concurrent_updates_preserve_set_invariants() {
    let pool = PoolBuilder::new(64 << 20).mode(Mode::Perf).build();
    let (domain, list) = make_list(&pool, false);
    let threads = 8;
    let per = 400u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let domain = Arc::clone(&domain);
            let list = &list;
            s.spawn(move || {
                let mut ctx = domain.register();
                let mut rng = StdRng::seed_from_u64(t as u64);
                // Disjoint key ranges: each thread fully owns its keys.
                let base = 1 + t as u64 * per;
                for i in 0..per {
                    list.insert(&mut ctx, base + i, t as u64).unwrap();
                }
                for i in 0..per {
                    if rng.gen_bool(0.5) {
                        assert_eq!(list.remove(&mut ctx, base + i), Some(t as u64));
                        assert!(list.get(&mut ctx, base + i).is_none());
                    } else {
                        assert_eq!(list.get(&mut ctx, base + i), Some(t as u64));
                    }
                }
                ctx.drain_all();
            });
        }
    });
    let snap = list.snapshot();
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "sorted, no duplicates");
}

#[test]
fn list_concurrent_contended_keys() {
    // All threads fight over the same small key space; afterwards the
    // list must be a valid sorted set and every present key's value must
    // be one some thread wrote.
    let pool = PoolBuilder::new(64 << 20).mode(Mode::Perf).build();
    let (domain, list) = make_list(&pool, false);
    std::thread::scope(|s| {
        for t in 0..8 {
            let domain = Arc::clone(&domain);
            let list = &list;
            s.spawn(move || {
                let mut ctx = domain.register();
                let mut rng = StdRng::seed_from_u64(100 + t as u64);
                for _ in 0..2000 {
                    let k = rng.gen_range(1..32u64);
                    if rng.gen_bool(0.5) {
                        let _ = list.insert(&mut ctx, k, 1000 + t as u64).unwrap();
                    } else {
                        let _ = list.remove(&mut ctx, k);
                    }
                }
                ctx.drain_all();
            });
        }
    });
    let snap = list.snapshot();
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "sorted, no duplicates");
    assert!(snap.iter().all(|&(k, v)| k < 32 && (1000..1008).contains(&v)));
}

#[test]
fn list_with_link_cache_matches_oracle_and_survives_flush_barrier() {
    let pool = crash_pool(16);
    let (domain, list) = make_list(&pool, true);
    let mut ctx = domain.register();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..2500 {
        let k = rng.gen_range(1..100u64);
        if rng.gen_bool(0.5) {
            assert_eq!(list.insert(&mut ctx, k, k).unwrap(), oracle.insert(k, k).is_none());
        } else {
            assert_eq!(list.remove(&mut ctx, k), oracle.remove(&k));
        }
    }
    // Durability barrier: flush the cache, then crash.
    list.ops().flush_link_cache(&mut ctx.flusher);
    drop(ctx);
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain2 = NvDomain::attach(Arc::clone(&pool));
    let ops = LinkOps::new(Arc::clone(&pool), None);
    let list2 = LinkedList::attach(&domain2, ROOT, ops);
    let mut f = pool.flusher();
    list2.recover(&mut f);
    let reachable = list2.collect_reachable();
    domain2.recover_leaks(|a| reachable.contains(&a));
    let expect: Vec<_> = oracle.into_iter().collect();
    assert_eq!(list2.snapshot(), expect);
}

#[test]
fn list_link_cache_defers_syncs() {
    // With the cache, a run of inserts of distinct keys should issue far
    // fewer sync batches than without it.
    let count_batches = |lc: bool| {
        let pool =
            PoolBuilder::new(16 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build();
        let (domain, list) = make_list(&pool, lc);
        let mut ctx = domain.register();
        for k in 1..=64u64 {
            list.insert(&mut ctx, k * 3, k).unwrap();
        }
        ctx.flusher.stats().sync_batches
    };
    let with_lc = count_batches(true);
    let without_lc = count_batches(false);
    assert!(
        with_lc < without_lc,
        "link cache must reduce sync batches ({with_lc} vs {without_lc})"
    );
}

#[test]
fn volatile_mode_issues_no_writebacks() {
    let pool = PoolBuilder::new(8 << 20).mode(Mode::Volatile).build();
    let (domain, list) = make_list(&pool, false);
    let mut ctx = domain.register();
    for k in 1..=50u64 {
        list.insert(&mut ctx, k, k).unwrap();
    }
    for k in 1..=50u64 {
        assert!(list.contains(&mut ctx, k));
    }
    assert_eq!(ctx.flusher.stats().clwbs, 0);
    assert_eq!(ctx.flusher.stats().fences, 0);
}

#[test]
fn bulk_load_equivalent_to_inserts() {
    let pool = crash_pool(8);
    let (domain, list) = make_list(&pool, false);
    let mut ctx = domain.register();
    let items: Vec<(u64, u64)> = (1..=500u64).map(|k| (k * 2, k)).collect();
    list.bulk_load_sorted(&mut ctx, &items).unwrap();
    assert_eq!(list.snapshot(), items);
    // Bulk-loaded data is durable.
    drop(ctx);
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain2 = NvDomain::attach(Arc::clone(&pool));
    let list2 = LinkedList::attach(&domain2, ROOT, LinkOps::new(Arc::clone(&pool), None));
    let mut f = pool.flusher();
    list2.recover(&mut f);
    assert_eq!(list2.snapshot(), items);
}

// ---------------------------------------------------------------------
// Hash table
// ---------------------------------------------------------------------

fn make_hash(pool: &Arc<PmemPool>, buckets: usize) -> (Arc<NvDomain>, HashTable) {
    let domain = NvDomain::create(Arc::clone(pool));
    let ops = LinkOps::new(Arc::clone(pool), None);
    let ht = HashTable::create(&domain, ROOT, buckets, ops).unwrap();
    (domain, ht)
}

#[test]
fn hash_set_semantics_and_oracle() {
    let pool = crash_pool(16);
    let (domain, ht) = make_hash(&pool, 64);
    let mut ctx = domain.register();
    let mut oracle = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..4000 {
        let k = rng.gen_range(1..500u64);
        match rng.gen_range(0..3) {
            0 => assert_eq!(
                ht.insert(&mut ctx, k, k * 7).unwrap(),
                oracle.insert(k, k * 7).is_none()
            ),
            1 => assert_eq!(ht.remove(&mut ctx, k), oracle.remove(&k)),
            _ => assert_eq!(ht.get(&mut ctx, k), oracle.get(&k).copied()),
        }
    }
    let mut snap = ht.snapshot();
    snap.sort_unstable();
    let expect: Vec<_> = oracle.into_iter().collect();
    assert_eq!(snap, expect);
}

#[test]
fn hash_crash_recovery_with_node_identity_oracle() {
    let pool = crash_pool(16);
    let (domain, ht) = make_hash(&pool, 32);
    let mut ctx = domain.register();
    for k in 1..=300u64 {
        ht.insert(&mut ctx, k, k).unwrap();
    }
    for k in 1..=300u64 {
        if k % 3 == 0 {
            ht.remove(&mut ctx, k);
        }
    }
    drop(ctx);
    // SAFETY: no threads are running.
    unsafe { pool.simulate_crash().unwrap() };
    let domain2 = NvDomain::attach(Arc::clone(&pool));
    let ht2 = HashTable::attach(&domain2, ROOT, LinkOps::new(Arc::clone(&pool), None));
    assert_eq!(ht2.n_buckets(), 32);
    let mut f = pool.flusher();
    ht2.recover(&mut f);
    // First-approach oracle: per-slot search.
    domain2.recover_leaks(|a| ht2.contains_node_at(a));
    let mut snap = ht2.snapshot();
    snap.sort_unstable();
    let expect: Vec<_> = (1..=300u64).filter(|k| k % 3 != 0).map(|k| (k, k)).collect();
    assert_eq!(snap, expect);
}

#[test]
fn hash_concurrent_mixed_workload() {
    let pool = PoolBuilder::new(128 << 20).mode(Mode::Perf).build();
    let (domain, ht) = make_hash(&pool, 256);
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let domain = Arc::clone(&domain);
            let ht = &ht;
            s.spawn(move || {
                let mut ctx = domain.register();
                let mut rng = StdRng::seed_from_u64(t);
                for _ in 0..3000 {
                    let k = rng.gen_range(1..2000u64);
                    match rng.gen_range(0..4) {
                        0 | 1 => {
                            let _ = ht.insert(&mut ctx, k, t).unwrap();
                        }
                        2 => {
                            let _ = ht.remove(&mut ctx, k);
                        }
                        _ => {
                            let _ = ht.get(&mut ctx, k);
                        }
                    }
                }
                ctx.drain_all();
            });
        }
    });
    let mut snap = ht.snapshot();
    snap.sort_unstable();
    assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "no duplicate keys across buckets");
}

//! Simulated byte-addressable non-volatile memory (NVRAM).
//!
//! This crate is the substrate on which the log-free data structures of
//! David et al., *Log-Free Concurrent Data Structures* (USENIX ATC 2018),
//! are built. Real NVRAM with DRAM-like latency (and the `clwb`
//! instruction) was not available to the paper's authors either; they
//! simulate `clwb` by storing normally and then pausing for the projected
//! NVRAM write latency, once per *batch* of write-backs (§6.1). This crate
//! reproduces that methodology and adds a crash-simulation mode used by the
//! durability tests.
//!
//! # Model
//!
//! A [`PmemPool`] is a fixed-size region of memory with a stable base
//! address. Threads write to it with ordinary stores (through raw pointers
//! or the [`pool::PmemPool::atomic_u64`] view). Durability is controlled by
//! a per-thread [`Flusher`]:
//!
//! * [`Flusher::clwb`] schedules a cache-line write-back. Like the hardware
//!   instruction it is *asynchronous*: the line is guaranteed durable only
//!   after a subsequent [`Flusher::fence`].
//! * [`Flusher::fence`] drains all write-backs issued by this thread since
//!   the previous fence. In `Perf` mode this injects one latency pause per
//!   batch — the paper's cost model for batched `clwb`s. In `CrashSim` mode
//!   it also commits the affected lines to a durable *shadow image*.
//!
//! A simulated crash ([`pool::PmemPool::simulate_crash`]) discards every
//! store that was not committed by a fence, by restoring the working memory
//! from the shadow image. This is *stricter* than real hardware: a real
//! cache may evict (and thus persist) a dirty line that was never flushed,
//! whereas the simulator never does. Strictness is the adversarial choice —
//! it makes missing-flush bugs deterministic instead of latent.
//!
//! # Modes
//!
//! * [`Mode::Volatile`] — all durability calls are no-ops (used for the
//!   NVRAM-oblivious baselines of the paper's Figure 7).
//! * [`Mode::Perf`] — latency injection only, no shadow (Figures 5–9, 11).
//! * [`Mode::CrashSim`] — shadow image + line tracking (Figure 10 and all
//!   durability/recovery tests).

pub mod crashpoint;
pub mod flusher;
pub mod latency;
pub mod pool;
pub mod shadow;

pub use crashpoint::{CrashEvent, CrashHook, CrashPlan};
pub use flusher::{FlushStats, Flusher};
pub use latency::{LatencyModel, TechLatency, TABLE1};
pub use pool::{Mode, PmemPool, PoolBuilder};

/// Size of a cache line in bytes. All durability tracking is done at this
/// granularity, matching the granularity of `clwb`.
pub const CACHE_LINE: usize = 64;

/// Number of named persistent roots stored in the pool's root directory.
pub const NUM_ROOTS: usize = 64;

/// Returns the address of the first byte of the cache line containing
/// `addr`.
#[inline]
pub fn line_of(addr: usize) -> usize {
    addr & !(CACHE_LINE - 1)
}

/// Rounds `n` up to the next multiple of `align` (a power of two).
#[inline]
pub fn align_up(n: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    (n + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_of_masks_low_bits() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(130), 128);
    }

    #[test]
    fn align_up_rounds() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 8), 72);
    }
}

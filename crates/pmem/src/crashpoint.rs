//! Systematic crash-point injection: the [`CrashPlan`] hook.
//!
//! The shadow-image simulator makes missing-flush bugs deterministic, but
//! on its own it is only exercised at hand-picked moments. A `CrashPlan`
//! turns "crash anywhere" into an *enumerable* test dimension: it is a
//! counter consulted at every persist-relevant event —
//!
//! * [`CrashEvent::Clwb`] — a cache-line write-back is scheduled,
//! * [`CrashEvent::Fence`] — a fence is about to drain its batch,
//! * [`CrashEvent::LinkPublish`] — a state-changing link CAS is about to
//!   be attempted (emitted by the data-structure layer),
//! * [`CrashEvent::TlabLease`] — a thread-local allocation-buffer lease
//!   is about to be durably published or retired (emitted by the
//!   allocator layer),
//!
//! and when the counter reaches the plan's target the plan's one-shot
//! hook runs *before the event takes effect*. The hook typically captures
//! the durable image ([`crate::PmemPool::capture_crash_image`]): the image
//! then reflects exactly the events that preceded the crash point, which
//! is what a power failure at that instant would have left behind.
//!
//! Two phases make enumeration possible:
//!
//! 1. **Count**: run an operation trace to completion with a
//!    [`CrashPlan::count_only`] plan; [`CrashPlan::events`] is the total
//!    number of crash points.
//! 2. **Replay**: re-run the trace once per crash point `k` with
//!    [`CrashPlan::fire_at`]`(k, hook)`, then restore the captured image,
//!    recover, and validate against an operation oracle.
//!
//! The hook is installed on the pool ([`crate::PmemPool::install_crash_plan`])
//! and snapshotted by each [`crate::Flusher`] at creation, so the check on
//! the hot path is a single `Option` test — zero-cost for every pool that
//! never installs a plan (i.e. all production and benchmark paths).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The kinds of persist-relevant events a [`CrashPlan`] is consulted at.
///
/// The taxonomy matters for coverage, not for the image: the durable
/// image only changes at fences, but the *oracle horizon* (which
/// operations had completed) changes at every event, so crash points
/// between fences still exercise distinct durability obligations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashEvent {
    /// A cache-line write-back was scheduled ([`crate::Flusher::clwb`]).
    Clwb = 0,
    /// A fence is about to drain its outstanding write-backs
    /// ([`crate::Flusher::fence`]). Crashing *at* this event means the
    /// batch never became durable.
    Fence = 1,
    /// A state-changing link CAS (link-and-persist or link-cache publish)
    /// is about to be attempted. Emitted by the data-structure layer via
    /// [`crate::Flusher::note_crash_event`].
    LinkPublish = 2,
    /// A thread-local allocation-buffer lease word is about to be durably
    /// published (refill) or cleared (retire/park). Emitted by the
    /// allocator layer via [`crate::Flusher::note_crash_event`]; crashing
    /// here exercises recovery with a half-transferred lease.
    TlabLease = 3,
    /// A hash-table resize-in-progress word (new-array publish, migration
    /// cursor advance, commit, or clear) is about to be durably updated.
    /// Emitted by the data-structure layer via
    /// [`crate::Flusher::note_crash_event`]; crashing here exercises
    /// recovery of a half-migrated table.
    ResizeState = 4,
    /// A sharded-cache reshard topology word (`[OLD][NEW][CURSOR]
    /// [VERSION]`: commit record or migration-cursor advance) is about to
    /// be durably updated. Emitted by the cache layer via
    /// [`crate::Flusher::note_crash_event`]; crashing here exercises
    /// recovery of a half-migrated shard topology.
    ReshardState = 5,
}

/// Number of distinct [`CrashEvent`] kinds.
pub const N_EVENT_KINDS: usize = 6;

/// One-shot callback run when the plan's target event is reached.
pub type CrashHook = Box<dyn FnOnce() + Send>;

/// A deterministic crash-point schedule: a global event counter plus an
/// optional target index at which a one-shot hook fires.
///
/// Shared between all flushers of a pool (the counter is atomic, so the
/// multi-threaded quiesce-and-crash mode assigns each event a unique
/// index; in single-threaded mode the sequence is fully deterministic).
pub struct CrashPlan {
    next: AtomicU64,
    target: u64,
    fired: AtomicBool,
    hook: Mutex<Option<CrashHook>>,
    kind_counts: [AtomicU64; N_EVENT_KINDS],
}

impl CrashPlan {
    /// A plan that only counts events (phase 1 of enumeration). Never
    /// fires.
    pub fn count_only() -> Arc<Self> {
        Arc::new(Self {
            next: AtomicU64::new(0),
            target: u64::MAX,
            fired: AtomicBool::new(false),
            hook: Mutex::new(None),
            kind_counts: Default::default(),
        })
    }

    /// A plan that runs `hook` exactly once, immediately *before* event
    /// number `target` (0-based) takes effect.
    pub fn fire_at(target: u64, hook: CrashHook) -> Arc<Self> {
        Arc::new(Self {
            next: AtomicU64::new(0),
            target,
            fired: AtomicBool::new(false),
            hook: Mutex::new(Some(hook)),
            kind_counts: Default::default(),
        })
    }

    /// Records one event; runs the hook if this is the target event.
    ///
    /// Called from the flusher hot path only when a plan is installed.
    pub fn note(&self, kind: CrashEvent) {
        self.kind_counts[kind as usize].fetch_add(1, Ordering::Relaxed);
        let idx = self.next.fetch_add(1, Ordering::AcqRel);
        if idx == self.target {
            if let Some(hook) = self.hook.lock().expect("crash-plan hook poisoned").take() {
                hook();
            }
            self.fired.store(true, Ordering::Release);
        }
    }

    /// Total events recorded so far.
    pub fn events(&self) -> u64 {
        self.next.load(Ordering::Acquire)
    }

    /// The event index this plan fires at (`u64::MAX` for count-only).
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Whether the hook has run.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    /// Events recorded of one kind (taxonomy reporting).
    pub fn kind_count(&self, kind: CrashEvent) -> u64 {
        self.kind_counts[kind as usize].load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for CrashPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrashPlan")
            .field("events", &self.events())
            .field("target", &self.target)
            .field("fired", &self.fired())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_only_never_fires() {
        let plan = CrashPlan::count_only();
        for _ in 0..100 {
            plan.note(CrashEvent::Clwb);
        }
        assert_eq!(plan.events(), 100);
        assert!(!plan.fired());
    }

    #[test]
    fn fires_exactly_once_at_target() {
        use std::sync::atomic::AtomicU32;
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        let plan = CrashPlan::fire_at(
            3,
            Box::new(move || {
                h.fetch_add(1, Ordering::SeqCst);
            }),
        );
        for i in 0..10 {
            plan.note(CrashEvent::Fence);
            // The hook runs before event 3 "takes effect": after the
            // fourth note the counter reads 4 and the hook has run once.
            if i >= 3 {
                assert!(plan.fired());
            }
        }
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert_eq!(plan.events(), 10);
    }

    #[test]
    fn kind_counts_tracked() {
        let plan = CrashPlan::count_only();
        plan.note(CrashEvent::Clwb);
        plan.note(CrashEvent::Clwb);
        plan.note(CrashEvent::Fence);
        plan.note(CrashEvent::LinkPublish);
        plan.note(CrashEvent::TlabLease);
        plan.note(CrashEvent::TlabLease);
        plan.note(CrashEvent::ResizeState);
        plan.note(CrashEvent::ResizeState);
        plan.note(CrashEvent::ResizeState);
        plan.note(CrashEvent::ReshardState);
        plan.note(CrashEvent::ReshardState);
        plan.note(CrashEvent::ReshardState);
        plan.note(CrashEvent::ReshardState);
        assert_eq!(plan.kind_count(CrashEvent::Clwb), 2);
        assert_eq!(plan.kind_count(CrashEvent::Fence), 1);
        assert_eq!(plan.kind_count(CrashEvent::LinkPublish), 1);
        assert_eq!(plan.kind_count(CrashEvent::TlabLease), 2);
        assert_eq!(plan.kind_count(CrashEvent::ResizeState), 3);
        assert_eq!(plan.kind_count(CrashEvent::ReshardState), 4);
    }

    #[test]
    fn unique_indices_across_threads() {
        let plan = CrashPlan::fire_at(500, Box::new(|| {}));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let plan = Arc::clone(&plan);
                s.spawn(move || {
                    for _ in 0..250 {
                        plan.note(CrashEvent::Clwb);
                    }
                });
            }
        });
        assert_eq!(plan.events(), 1000);
        assert!(plan.fired());
    }
}

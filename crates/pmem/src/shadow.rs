//! The durable shadow image used in crash-simulation mode.
//!
//! The shadow holds the bytes that would have survived a power failure:
//! a cache line's content reaches the shadow only when a `clwb` for it is
//! drained by a fence. On a simulated crash, the shadow is copied back over
//! the working memory, discarding every store that was never durably
//! written back — the adversarial interpretation of a crash (see crate
//! docs).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::CACHE_LINE;

const WORDS_PER_LINE: usize = CACHE_LINE / 8;

/// Durable image of a pool, maintained at cache-line granularity.
///
/// All operations are word-atomic: concurrent committers of the same line
/// race benignly (both copy current-or-newer word values), which models the
/// fact that on real hardware the write-back of a line may complete at any
/// time between the `clwb` and the fence.
pub struct Shadow {
    words: Box<[AtomicU64]>,
    /// Commit batches take this shared; snapshot/restore take it
    /// exclusive. This makes a captured image an *instantaneous* cut of
    /// the durable state: without it, an address-order capture could
    /// include a later commit while missing an earlier one — a state no
    /// real power failure can produce (fences order commits in time).
    gate: RwLock<()>,
}

impl Shadow {
    /// Creates a shadow for a pool of `len` bytes, initialised from the
    /// pool's current (zeroed) contents.
    ///
    /// `len` must be a multiple of [`CACHE_LINE`].
    pub fn new(len: usize) -> Self {
        assert_eq!(len % CACHE_LINE, 0, "pool length must be line-aligned");
        let mut v = Vec::with_capacity(len / 8);
        v.resize_with(len / 8, || AtomicU64::new(0));
        Self { words: v.into_boxed_slice(), gate: RwLock::new(()) }
    }

    /// Takes the commit gate shared for the duration of a fence's batch.
    pub(crate) fn begin_commit_batch(&self) -> std::sync::RwLockReadGuard<'_, ()> {
        self.gate.read().expect("shadow gate poisoned")
    }

    /// Number of cache lines covered.
    pub fn lines(&self) -> usize {
        self.words.len() / WORDS_PER_LINE
    }

    /// Commits cache line `line` (index, not address) from the working
    /// memory starting at `base` into the shadow.
    ///
    /// # Safety
    ///
    /// `base` must point to a live allocation of at least
    /// `self.lines() * CACHE_LINE` bytes, and `line < self.lines()`.
    /// Concurrent ordinary stores to the same line are allowed; each
    /// 8-byte word is copied atomically.
    pub unsafe fn commit_line(&self, base: *const u8, line: usize) {
        debug_assert!(line < self.lines());
        let first_word = line * WORDS_PER_LINE;
        // SAFETY: caller guarantees `base` covers the line; word reads are
        // volatile so the compiler cannot elide or tear them, and the
        // underlying accesses are 8-byte aligned.
        unsafe {
            let src = (base as *const u64).add(first_word);
            for w in 0..WORDS_PER_LINE {
                let val = std::ptr::read_volatile(src.add(w));
                self.words[first_word + w].store(val, Ordering::Relaxed);
            }
        }
    }

    /// Restores the entire working memory at `base` from the shadow,
    /// simulating the post-crash state.
    ///
    /// # Safety
    ///
    /// `base` must point to a live allocation of at least
    /// `self.lines() * CACHE_LINE` bytes and no other thread may access the
    /// pool concurrently (the machine is "rebooting").
    pub unsafe fn restore(&self, base: *mut u8) {
        // SAFETY: caller guarantees exclusive access and sufficient length.
        unsafe {
            let dst = base as *mut u64;
            for (i, w) in self.words.iter().enumerate() {
                std::ptr::write_volatile(dst.add(i), w.load(Ordering::Relaxed));
            }
        }
    }

    /// Clones the current durable image. Used by concurrent torture tests
    /// to capture "the state NVRAM would have had if power failed now"
    /// while worker threads keep running.
    pub fn snapshot(&self) -> Vec<u64> {
        let _g = self.gate.write().expect("shadow gate poisoned");
        self.words.iter().map(|w| w.load(Ordering::Relaxed)).collect()
    }

    /// Overwrites the durable image with a previously captured snapshot.
    pub fn load_snapshot(&self, snap: &[u64]) {
        assert_eq!(snap.len(), self.words.len(), "snapshot length mismatch");
        for (w, &v) in self.words.iter().zip(snap) {
            w.store(v, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_restore_round_trip() {
        let mut buf = vec![0u8; 4 * CACHE_LINE];
        let shadow = Shadow::new(buf.len());
        // Write a pattern, commit only line 1.
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        // SAFETY: buf is live and long enough; single-threaded.
        unsafe { shadow.commit_line(buf.as_ptr(), 1) };
        // Scribble over everything, then restore.
        for b in buf.iter_mut() {
            *b = 0xFF;
        }
        // SAFETY: exclusive access to buf.
        unsafe { shadow.restore(buf.as_mut_ptr()) };
        // Line 1 survived; the others reverted to the initial zeros.
        for (i, &b) in buf.iter().enumerate() {
            let expected =
                if (CACHE_LINE..2 * CACHE_LINE).contains(&i) { (i % 251) as u8 } else { 0 };
            assert_eq!(b, expected, "byte {i}");
        }
    }

    #[test]
    fn snapshot_round_trip() {
        let mut buf = vec![0u8; 2 * CACHE_LINE];
        let shadow = Shadow::new(buf.len());
        buf[0] = 42;
        // SAFETY: buf is live; single-threaded.
        unsafe { shadow.commit_line(buf.as_ptr(), 0) };
        let snap = shadow.snapshot();
        buf[0] = 43;
        // SAFETY: as above.
        unsafe { shadow.commit_line(buf.as_ptr(), 0) };
        shadow.load_snapshot(&snap);
        // SAFETY: exclusive access.
        unsafe { shadow.restore(buf.as_mut_ptr()) };
        assert_eq!(buf[0], 42);
    }

    #[test]
    #[should_panic(expected = "line-aligned")]
    fn rejects_unaligned_length() {
        let _ = Shadow::new(100);
    }
}

//! The persistent memory pool.

use std::alloc::{self, Layout};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::crashpoint::CrashPlan;
use crate::flusher::{FlushStats, Flusher};
use crate::latency::LatencyModel;
use crate::shadow::Shadow;
use crate::{align_up, CACHE_LINE, NUM_ROOTS};

/// Durability mode of a pool. See the crate documentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No durability at all: `clwb`/`fence` are no-ops. Models the
    /// NVRAM-oblivious baselines (paper Figure 7).
    Volatile,
    /// Latency injection only: a fence with outstanding write-backs pauses
    /// for one batch write latency. No crash simulation. This is the
    /// paper's own evaluation methodology (§6.1).
    Perf,
    /// Full crash simulation: a durable shadow image tracks exactly the
    /// lines committed by `clwb`+`fence`; [`PmemPool::simulate_crash`]
    /// restores it. Latency injection still applies (use
    /// [`LatencyModel::ZERO`] in functional tests).
    CrashSim,
}

/// Builder for [`PmemPool`].
pub struct PoolBuilder {
    len: usize,
    mode: Mode,
    latency: LatencyModel,
}

impl PoolBuilder {
    /// Starts building a pool of `len` bytes (rounded up to a page).
    pub fn new(len: usize) -> Self {
        Self { len, mode: Mode::Perf, latency: LatencyModel::ZERO }
    }

    /// Selects the durability mode (default: [`Mode::Perf`]).
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects the NVRAM latency model (default: zero).
    pub fn latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Allocates the pool.
    pub fn build(self) -> Arc<PmemPool> {
        PmemPool::new(self.len, self.mode, self.latency)
    }
}

/// A region of simulated NVRAM with a stable base address.
///
/// The first page holds the *root directory*: [`NUM_ROOTS`] named 8-byte
/// slots through which data structures publish the durable address of
/// their persistent root, so they can be re-attached after a crash (the
/// paper assumes the region maps at the same virtual address across
/// restarts, §2). The remainder is the heap area managed by the `nvalloc`
/// crate.
pub struct PmemPool {
    base: *mut u8,
    layout: Layout,
    len: usize,
    mode: Mode,
    latency: LatencyModel,
    shadow: Option<Shadow>,
    /// Count of simulated crashes, for tests and harness reporting.
    crashes: AtomicU64,
    /// Crash-point injection plan (crashtest subsystem). Snapshotted by
    /// each flusher at creation; `None` on every production path.
    crash_plan: Mutex<Option<Arc<CrashPlan>>>,
    /// Lifetime durable-write totals, accumulated from every flusher as it
    /// drops (or resets). Backs [`PmemPool::flush_stats`].
    retired_clwbs: AtomicU64,
    retired_fences: AtomicU64,
    retired_sync_batches: AtomicU64,
}

// SAFETY: the pool hands out access to its memory only through atomic or
// volatile operations (or through raw pointers whose safe use is the
// caller's obligation, documented on each accessor). The raw `base` pointer
// itself is never aliased mutably by the pool's own methods except in
// `simulate_crash`, which requires external quiescence.
unsafe impl Send for PmemPool {}
// SAFETY: see above; all interior mutation is atomic/volatile.
unsafe impl Sync for PmemPool {}

const PAGE: usize = 4096;

impl PmemPool {
    /// Allocates a zeroed pool of at least `len` bytes.
    pub fn new(len: usize, mode: Mode, latency: LatencyModel) -> Arc<Self> {
        let len = align_up(len.max(2 * PAGE), PAGE);
        let layout = Layout::from_size_align(len, PAGE).expect("pool layout");
        // SAFETY: `layout` has non-zero size and valid power-of-two
        // alignment.
        let base = unsafe { alloc::alloc_zeroed(layout) };
        assert!(!base.is_null(), "pool allocation of {len} bytes failed");
        let shadow = match mode {
            Mode::CrashSim => Some(Shadow::new(len)),
            _ => None,
        };
        Arc::new(Self {
            base,
            layout,
            len,
            mode,
            latency,
            shadow,
            crashes: AtomicU64::new(0),
            crash_plan: Mutex::new(None),
            retired_clwbs: AtomicU64::new(0),
            retired_fences: AtomicU64::new(0),
            retired_sync_batches: AtomicU64::new(0),
        })
    }

    /// The pool's durability mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The pool's latency model.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Base address of the pool.
    pub fn start(&self) -> usize {
        self.base as usize
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the pool is empty (never true; pools have a minimum size).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// First address of the heap area (past the root directory page).
    pub fn heap_start(&self) -> usize {
        self.start() + PAGE
    }

    /// One past the last heap address.
    pub fn heap_end(&self) -> usize {
        self.start() + self.len
    }

    /// Whether `addr` lies within the pool.
    pub fn contains(&self, addr: usize) -> bool {
        addr >= self.start() && addr < self.start() + self.len
    }

    /// Creates a per-thread flusher for this pool.
    pub fn flusher(self: &Arc<Self>) -> Flusher {
        Flusher::new(Arc::clone(self))
    }

    /// Views the 8-byte-aligned word at `addr` as an atomic.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is unaligned or out of bounds.
    #[inline]
    pub fn atomic_u64(&self, addr: usize) -> &AtomicU64 {
        assert!(addr % 8 == 0 && self.contains(addr), "bad pmem address {addr:#x}");
        // SAFETY: the address is in-bounds, aligned, and lives as long as
        // `self`; `AtomicU64` permits shared mutation so handing out a
        // shared reference is sound even though other threads write the
        // same word (they do so through the same atomic view or through
        // word-atomic volatile accesses).
        unsafe { &*(addr as *const AtomicU64) }
    }

    /// Raw pointer to `addr` for typed node access.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of bounds.
    #[inline]
    pub fn as_mut_ptr(&self, addr: usize) -> *mut u8 {
        assert!(self.contains(addr), "bad pmem address {addr:#x}");
        addr as *mut u8
    }

    /// Index of the cache line containing `addr` (for the shadow).
    #[inline]
    pub(crate) fn line_index(&self, addr: usize) -> usize {
        debug_assert!(self.contains(addr));
        (addr - self.start()) / CACHE_LINE
    }

    pub(crate) fn shadow(&self) -> Option<&Shadow> {
        self.shadow.as_ref()
    }

    pub(crate) fn base_ptr(&self) -> *mut u8 {
        self.base
    }

    /// Address of root slot `i` in the root directory.
    fn root_addr(&self, i: usize) -> usize {
        assert!(i < NUM_ROOTS, "root index {i} out of range");
        self.start() + i * 8
    }

    /// Durably publishes `addr` in root slot `i`.
    pub fn set_root(&self, i: usize, addr: u64, flusher: &mut Flusher) {
        let slot = self.root_addr(i);
        self.atomic_u64(slot).store(addr, Ordering::Release);
        flusher.persist(slot, 8);
    }

    /// Reads root slot `i`.
    pub fn root(&self, i: usize) -> u64 {
        self.atomic_u64(self.root_addr(i)).load(Ordering::Acquire)
    }

    /// Number of simulated crashes so far.
    pub fn crash_count(&self) -> u64 {
        self.crashes.load(Ordering::Relaxed)
    }

    /// Lifetime [`FlushStats`] totals over every flusher that has been
    /// dropped (or explicitly reset) on this pool.
    ///
    /// Live flushers contribute only once they drop, so the intended use
    /// is a *per-run snapshot pair*: record `flush_stats()` once a phase's
    /// workers have quiesced, run the next phase to completion (joining
    /// its workers, which drops their flushers), then call it again and
    /// take [`FlushStats::diff`]. The bench harness reports durable-write
    /// traffic per timed run exactly this way.
    pub fn flush_stats(&self) -> FlushStats {
        FlushStats {
            clwbs: self.retired_clwbs.load(Ordering::Relaxed),
            fences: self.retired_fences.load(Ordering::Relaxed),
            sync_batches: self.retired_sync_batches.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn absorb_flush_stats(&self, s: FlushStats) {
        self.retired_clwbs.fetch_add(s.clwbs, Ordering::Relaxed);
        self.retired_fences.fetch_add(s.fences, Ordering::Relaxed);
        self.retired_sync_batches.fetch_add(s.sync_batches, Ordering::Relaxed);
    }

    /// Installs a crash-point injection plan. Only flushers created
    /// *after* installation observe it (each flusher snapshots the plan
    /// once, keeping the per-event check zero-cost when disabled).
    pub fn install_crash_plan(&self, plan: Arc<CrashPlan>) {
        *self.crash_plan.lock().expect("crash-plan lock poisoned") = Some(plan);
    }

    /// Removes the installed crash plan (flushers created afterwards —
    /// e.g. by recovery — see no plan).
    pub fn clear_crash_plan(&self) {
        *self.crash_plan.lock().expect("crash-plan lock poisoned") = None;
    }

    /// The currently installed crash plan, if any.
    pub fn crash_plan(&self) -> Option<Arc<CrashPlan>> {
        self.crash_plan.lock().expect("crash-plan lock poisoned").clone()
    }

    /// Simulates a power failure followed by a reboot: the working memory
    /// is replaced by the durable shadow image, discarding every store not
    /// committed by a fence.
    ///
    /// Returns `Err` if the pool was not built in [`Mode::CrashSim`].
    ///
    /// # Safety
    ///
    /// No other thread may be accessing the pool: the caller must have
    /// joined or otherwise quiesced all workers, exactly as a real power
    /// failure stops all CPUs.
    pub unsafe fn simulate_crash(&self) -> Result<(), NoShadow> {
        let shadow = self.shadow.as_ref().ok_or(NoShadow)?;
        // SAFETY: `base` covers `len` bytes; caller guarantees quiescence.
        unsafe { shadow.restore(self.base) };
        self.crashes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Captures the current durable image (what would survive a crash right
    /// now). Safe to call while workers are running; used by the
    /// durable-linearizability torture tests.
    pub fn capture_crash_image(&self) -> Result<Vec<u64>, NoShadow> {
        Ok(self.shadow.as_ref().ok_or(NoShadow)?.snapshot())
    }

    /// Replaces the durable image with `snap` and reboots from it, as
    /// [`Self::simulate_crash`] does.
    ///
    /// # Safety
    ///
    /// Same as [`Self::simulate_crash`]: exclusive access required.
    pub unsafe fn crash_to_image(&self, snap: &[u64]) -> Result<(), NoShadow> {
        let shadow = self.shadow.as_ref().ok_or(NoShadow)?;
        shadow.load_snapshot(snap);
        // SAFETY: forwarded from caller.
        unsafe { shadow.restore(self.base) };
        self.crashes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for PmemPool {
    fn drop(&mut self) {
        // SAFETY: `base` was allocated with `self.layout` in `new` and is
        // deallocated exactly once.
        unsafe { alloc::dealloc(self.base, self.layout) };
    }
}

/// Error returned when a crash-simulation API is used on a pool without a
/// shadow image (i.e. not in [`Mode::CrashSim`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoShadow;

impl std::fmt::Display for NoShadow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool was not created in CrashSim mode")
    }
}

impl std::error::Error for NoShadow {}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash_pool() -> Arc<PmemPool> {
        PoolBuilder::new(1 << 20).mode(Mode::CrashSim).build()
    }

    #[test]
    fn roots_survive_crash() {
        let pool = crash_pool();
        let mut f = pool.flusher();
        pool.set_root(3, 0xdead_beef, &mut f);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        assert_eq!(pool.root(3), 0xdead_beef);
        assert_eq!(pool.crash_count(), 1);
    }

    #[test]
    fn unflushed_stores_are_lost() {
        let pool = crash_pool();
        let addr = pool.heap_start();
        pool.atomic_u64(addr).store(7, Ordering::Relaxed);
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        assert_eq!(pool.atomic_u64(addr).load(Ordering::Relaxed), 0);
    }

    #[test]
    fn flushed_stores_survive() {
        let pool = crash_pool();
        let mut f = pool.flusher();
        let addr = pool.heap_start();
        pool.atomic_u64(addr).store(7, Ordering::Relaxed);
        f.clwb(addr);
        f.fence();
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        assert_eq!(pool.atomic_u64(addr).load(Ordering::Relaxed), 7);
    }

    #[test]
    fn clwb_without_fence_is_not_durable() {
        let pool = crash_pool();
        let mut f = pool.flusher();
        let addr = pool.heap_start();
        pool.atomic_u64(addr).store(7, Ordering::Relaxed);
        f.clwb(addr);
        // No fence: the write-back may not have completed. Our model is
        // strict (never completes without a fence).
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        assert_eq!(pool.atomic_u64(addr).load(Ordering::Relaxed), 0);
    }

    #[test]
    fn crash_image_round_trip() {
        let pool = crash_pool();
        let mut f = pool.flusher();
        let addr = pool.heap_start();
        pool.atomic_u64(addr).store(1, Ordering::Relaxed);
        f.persist(addr, 8);
        let img = pool.capture_crash_image().unwrap();
        pool.atomic_u64(addr).store(2, Ordering::Relaxed);
        f.persist(addr, 8);
        // SAFETY: single-threaded test.
        unsafe { pool.crash_to_image(&img).unwrap() };
        assert_eq!(pool.atomic_u64(addr).load(Ordering::Relaxed), 1);
    }

    #[test]
    fn perf_mode_has_no_shadow() {
        let pool = PoolBuilder::new(1 << 20).mode(Mode::Perf).build();
        // SAFETY: single-threaded test.
        assert!(unsafe { pool.simulate_crash() }.is_err());
        assert!(pool.capture_crash_image().is_err());
    }

    #[test]
    fn heap_is_past_root_directory() {
        let pool = crash_pool();
        assert!(pool.heap_start() >= pool.start() + NUM_ROOTS * 8);
        assert_eq!(pool.heap_start() % 4096, 0);
    }

    #[test]
    #[should_panic(expected = "bad pmem address")]
    fn atomic_view_rejects_foreign_address() {
        let pool = crash_pool();
        let _ = pool.atomic_u64(8);
    }
}

//! Per-thread write-back state: the software analogue of `clwb`/`sfence`.

use std::sync::Arc;

use crate::crashpoint::{CrashEvent, CrashPlan};
use crate::pool::{Mode, PmemPool};
use crate::{line_of, CACHE_LINE};

/// Counters describing the durable-write traffic a thread generated.
///
/// The paper's Figures 8 and 9 are explained by exactly these quantities:
/// the log-free designs win by issuing fewer fences (sync operations), and
/// the link cache wins further by increasing the batch size per fence.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlushStats {
    /// Cache-line write-backs issued (`clwb` count).
    pub clwbs: u64,
    /// Fences issued (`sfence` count).
    pub fences: u64,
    /// Fences that actually had outstanding write-backs to drain (these
    /// are the ones that pay NVRAM write latency).
    pub sync_batches: u64,
}

impl FlushStats {
    /// Counter-wise difference `self - earlier`, for delimiting a timed
    /// run between two snapshots (e.g. of [`PmemPool::flush_stats`]).
    ///
    /// Saturates rather than panicking so a snapshot pair taken across a
    /// [`Flusher::reset_stats`] stays well-defined.
    pub fn diff(self, earlier: FlushStats) -> FlushStats {
        FlushStats {
            clwbs: self.clwbs.saturating_sub(earlier.clwbs),
            fences: self.fences.saturating_sub(earlier.fences),
            sync_batches: self.sync_batches.saturating_sub(earlier.sync_batches),
        }
    }

    /// Counter-wise accumulation (for summing per-thread stats).
    pub fn merge(&mut self, other: FlushStats) {
        self.clwbs += other.clwbs;
        self.fences += other.fences;
        self.sync_batches += other.sync_batches;
    }
}

/// A per-thread handle through which stores to a [`PmemPool`] are made
/// durable.
///
/// Mirrors the hardware model: [`Flusher::clwb`] is asynchronous and only
/// [`Flusher::fence`] guarantees completion. One `Flusher` must not be
/// shared between threads (it is deliberately `!Sync`); create one per
/// worker via [`PmemPool::flusher`].
pub struct Flusher {
    pool: Arc<PmemPool>,
    /// Lines scheduled since the last fence (crash-sim mode only).
    pending: Vec<usize>,
    /// Whether any write-back is outstanding (perf mode batch flag).
    batch_open: bool,
    stats: FlushStats,
    /// Crash-point plan snapshotted at creation; `None` unless a crashtest
    /// driver installed one on the pool before this flusher was made.
    plan: Option<Arc<CrashPlan>>,
}

impl Flusher {
    pub(crate) fn new(pool: Arc<PmemPool>) -> Self {
        let plan = pool.crash_plan();
        Self {
            pool,
            pending: Vec::with_capacity(64),
            batch_open: false,
            stats: FlushStats::default(),
            plan,
        }
    }

    /// Records a persist-relevant event against the installed crash plan,
    /// if any. The `LinkPublish` events of the data-structure layer come
    /// through here too; with no plan installed this is a single branch.
    #[inline]
    pub fn note_crash_event(&self, kind: CrashEvent) {
        if let Some(plan) = &self.plan {
            plan.note(kind);
        }
    }

    /// The pool this flusher belongs to.
    pub fn pool(&self) -> &Arc<PmemPool> {
        &self.pool
    }

    /// Schedules a write-back of the cache line containing `addr`.
    ///
    /// The line is guaranteed durable only after the next [`Self::fence`].
    #[inline]
    pub fn clwb(&mut self, addr: usize) {
        self.note_crash_event(CrashEvent::Clwb);
        match self.pool.mode() {
            // No instruction would be issued at all: don't count it.
            Mode::Volatile => return,
            Mode::Perf => self.batch_open = true,
            Mode::CrashSim => {
                // Duplicates are deduplicated at fence time (sorting once
                // per batch); a per-clwb linear scan would make large
                // recovery passes quadratic.
                self.pending.push(self.pool.line_index(line_of(addr)));
                self.batch_open = true;
            }
        }
        self.stats.clwbs += 1;
    }

    /// Schedules write-backs for every cache line overlapping
    /// `[addr, addr + len)`.
    #[inline]
    pub fn clwb_range(&mut self, addr: usize, len: usize) {
        let mut line = line_of(addr);
        let end = addr + len.max(1);
        while line < end {
            self.clwb(line);
            line += CACHE_LINE;
        }
    }

    /// Drains all outstanding write-backs: after this returns, every line
    /// passed to [`Self::clwb`] since the previous fence is durable.
    ///
    /// Costs one NVRAM batch write latency if (and only if) write-backs
    /// were outstanding — the paper's "pause once per batch" model (§6.1).
    #[inline]
    pub fn fence(&mut self) {
        // Crash "at" a fence means the fence never happened: note before
        // draining, so a plan firing here captures the pre-fence image.
        self.note_crash_event(CrashEvent::Fence);
        if self.pool.mode() == Mode::Volatile {
            return;
        }
        self.stats.fences += 1;
        if !self.batch_open {
            return;
        }
        self.stats.sync_batches += 1;
        if let Some(shadow) = self.pool.shadow() {
            let base = self.pool.base_ptr();
            self.pending.sort_unstable();
            self.pending.dedup();
            // Hold the commit gate so a concurrent crash-image capture is
            // an instantaneous cut: whole batches are either in or out.
            let _gate = shadow.begin_commit_batch();
            for &line in &self.pending {
                // SAFETY: `line` was computed from an in-bounds pool
                // address in `clwb`; `base` covers the whole pool.
                unsafe { shadow.commit_line(base, line) };
            }
            self.pending.clear();
        }
        self.pool.latency().pause_batch();
        self.batch_open = false;
    }

    /// Convenience: `clwb_range` followed by `fence`. This is the paper's
    /// "sync operation".
    #[inline]
    pub fn persist(&mut self, addr: usize, len: usize) {
        self.clwb_range(addr, len);
        self.fence();
    }

    /// Whether a write-back is outstanding (no fence since the last clwb).
    pub fn has_pending(&self) -> bool {
        self.batch_open
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> FlushStats {
        self.stats
    }

    /// Resets the counters (e.g. after warm-up, before a measured run).
    ///
    /// The counters accumulated so far are still published to the pool's
    /// lifetime totals ([`PmemPool::flush_stats`]) immediately, so a
    /// reset never makes durable-write traffic disappear from the
    /// pool-level view.
    pub fn reset_stats(&mut self) {
        self.pool.absorb_flush_stats(self.stats);
        self.stats = FlushStats::default();
    }
}

impl Drop for Flusher {
    /// Publishes this flusher's counters into the pool's lifetime totals
    /// so per-run [`FlushStats`] snapshots can be taken at the pool level
    /// once the run's workers have quiesced (see [`PmemPool::flush_stats`]).
    fn drop(&mut self) {
        self.pool.absorb_flush_stats(self.stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolBuilder;
    use std::sync::atomic::Ordering;

    #[test]
    fn stats_count_clwbs_and_batches() {
        let pool = PoolBuilder::new(1 << 20).mode(Mode::Perf).build();
        let mut f = pool.flusher();
        let a = pool.heap_start();
        f.clwb(a);
        f.clwb(a + 64);
        f.fence();
        f.fence(); // empty fence: no batch
        assert_eq!(f.stats(), FlushStats { clwbs: 2, fences: 2, sync_batches: 1 });
    }

    #[test]
    fn clwb_range_covers_straddling_lines() {
        let pool = PoolBuilder::new(1 << 20).mode(Mode::CrashSim).build();
        let mut f = pool.flusher();
        let a = pool.heap_start() + 60; // straddles two lines
        pool.atomic_u64(pool.heap_start() + 56).store(1, Ordering::Relaxed);
        pool.atomic_u64(pool.heap_start() + 64).store(2, Ordering::Relaxed);
        f.clwb_range(a, 8);
        f.fence();
        // SAFETY: single-threaded test.
        unsafe { pool.simulate_crash().unwrap() };
        assert_eq!(pool.atomic_u64(pool.heap_start() + 56).load(Ordering::Relaxed), 1);
        assert_eq!(pool.atomic_u64(pool.heap_start() + 64).load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pending_lines_deduplicate() {
        let pool = PoolBuilder::new(1 << 20).mode(Mode::CrashSim).build();
        let mut f = pool.flusher();
        let a = pool.heap_start();
        f.clwb(a);
        f.clwb(a + 8); // same line
        assert_eq!(f.stats().clwbs, 2);
        f.fence();
        assert_eq!(f.stats().sync_batches, 1);
        assert!(!f.has_pending());
    }

    #[test]
    fn installed_plan_counts_events_and_fires() {
        use crate::crashpoint::{CrashEvent, CrashPlan};
        let pool = PoolBuilder::new(1 << 20).mode(Mode::CrashSim).build();
        // A flusher created before installation must stay plan-free.
        let mut before = pool.flusher();
        let addr = pool.heap_start();
        pool.atomic_u64(addr).store(1, Ordering::Relaxed);
        let plan = CrashPlan::fire_at(2, {
            let pool = Arc::clone(&pool);
            Box::new(move || {
                // Fires at the fence (event 2): the image excludes it.
                let img = pool.capture_crash_image().unwrap();
                assert_eq!(img[(pool.heap_start() - pool.start()) / 8], 0);
            })
        });
        pool.install_crash_plan(Arc::clone(&plan));
        before.clwb(addr + 64);
        before.fence();
        assert_eq!(plan.events(), 0, "pre-install flusher emits no events");
        let mut f = pool.flusher();
        pool.atomic_u64(addr).store(2, Ordering::Relaxed);
        f.clwb(addr); // event 0
        f.note_crash_event(CrashEvent::LinkPublish); // event 1
        f.fence(); // event 2: plan fires before the drain
        assert!(plan.fired());
        assert_eq!(plan.events(), 3);
        assert_eq!(plan.kind_count(CrashEvent::Clwb), 1);
        assert_eq!(plan.kind_count(CrashEvent::Fence), 1);
        assert_eq!(plan.kind_count(CrashEvent::LinkPublish), 1);
        pool.clear_crash_plan();
        assert!(pool.crash_plan().is_none());
    }

    #[test]
    fn reset_stats_zeroes() {
        let pool = PoolBuilder::new(1 << 20).mode(Mode::Perf).build();
        let mut f = pool.flusher();
        f.clwb(pool.heap_start());
        f.fence();
        f.reset_stats();
        assert_eq!(f.stats(), FlushStats::default());
    }

    #[test]
    fn pool_accumulates_retired_flusher_stats() {
        let pool = PoolBuilder::new(1 << 20).mode(Mode::Perf).build();
        let before = pool.flush_stats();
        assert_eq!(before, FlushStats::default());
        {
            let mut f = pool.flusher();
            f.clwb(pool.heap_start());
            f.fence();
            // Live flushers are not yet visible at the pool level.
            assert_eq!(pool.flush_stats(), FlushStats::default());
        }
        let after = pool.flush_stats();
        assert_eq!(after, FlushStats { clwbs: 1, fences: 1, sync_batches: 1 });

        // A reset publishes the pre-reset counters immediately and no
        // traffic is ever double-counted by the eventual drop.
        let mut f = pool.flusher();
        f.clwb(pool.heap_start());
        f.fence();
        f.reset_stats();
        assert_eq!(
            pool.flush_stats().diff(after),
            FlushStats { clwbs: 1, fences: 1, sync_batches: 1 }
        );
        f.clwb(pool.heap_start());
        f.fence();
        drop(f);
        assert_eq!(
            pool.flush_stats().diff(after),
            FlushStats { clwbs: 2, fences: 2, sync_batches: 2 }
        );
    }

    #[test]
    fn flush_stats_diff_and_merge() {
        let a = FlushStats { clwbs: 5, fences: 3, sync_batches: 2 };
        let b = FlushStats { clwbs: 2, fences: 1, sync_batches: 1 };
        assert_eq!(a.diff(b), FlushStats { clwbs: 3, fences: 2, sync_batches: 1 });
        // Saturating, never panicking, across a reset.
        assert_eq!(b.diff(a), FlushStats::default());
        let mut c = b;
        c.merge(a);
        assert_eq!(c, FlushStats { clwbs: 7, fences: 4, sync_batches: 3 });
    }
}

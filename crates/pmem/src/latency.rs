//! The NVRAM latency model.
//!
//! Table 1 of the paper lists projected latencies for PCM and Memristor
//! technologies next to cache and DRAM latencies. The evaluation assumes an
//! NVRAM *write* latency of 125 ns (the average of the projected values)
//! and models batched write-backs by pausing **once per batch** rather than
//! once per line (§6.1), reflecting Intel's guidance that multiple
//! outstanding `clflushopt`/`clwb` write-backs proceed in parallel.

use std::time::{Duration, Instant};

/// Latencies (in nanoseconds) of the memory technologies from Table 1 of
/// the paper. Used by the `table1_latency` harness and as presets for
/// [`LatencyModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TechLatency {
    /// Human-readable technology name.
    pub name: &'static str,
    /// Read latency in nanoseconds.
    pub read_ns: u64,
    /// Write latency in nanoseconds.
    pub write_ns: u64,
}

/// The rows of Table 1 (midpoints used where the paper gives a range).
pub const TABLE1: &[TechLatency] = &[
    TechLatency { name: "L1", read_ns: 2, write_ns: 2 },
    TechLatency { name: "L2", read_ns: 6, write_ns: 6 },
    TechLatency { name: "LLC", read_ns: 15, write_ns: 15 },
    TechLatency { name: "DRAM", read_ns: 50, write_ns: 50 },
    TechLatency { name: "PCM", read_ns: 60, write_ns: 150 },
    TechLatency { name: "Memristor", read_ns: 100, write_ns: 100 },
];

/// NVRAM write-latency model: how long a batch of cache-line write-backs
/// takes to become durable.
///
/// The paper's default of 125 ns is the average of the projected PCM and
/// Memristor write latencies. Figure 6 sweeps this parameter to 1.25 µs and
/// 12.5 µs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Nanoseconds a fence must wait for an outstanding batch of
    /// write-backs to complete.
    pub write_ns: u64,
}

impl LatencyModel {
    /// The paper's default NVRAM write latency (125 ns, §6.1).
    pub const PAPER_DEFAULT: Self = Self { write_ns: 125 };

    /// A zero-latency model, useful for functional tests where timing is
    /// irrelevant.
    pub const ZERO: Self = Self { write_ns: 0 };

    /// Creates a model with the given write latency in nanoseconds.
    pub const fn new(write_ns: u64) -> Self {
        Self { write_ns }
    }

    /// Busy-waits for one batch write-back, i.e. `write_ns` nanoseconds.
    ///
    /// Sleeping is far too coarse at this scale, so we spin on
    /// `Instant::now`. A zero-latency model returns immediately.
    #[inline]
    pub fn pause_batch(&self) {
        if self.write_ns == 0 {
            return;
        }
        let deadline = Duration::from_nanos(self.write_ns);
        let start = Instant::now();
        while start.elapsed() < deadline {
            std::hint::spin_loop();
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::PAPER_DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_is_fast() {
        let m = LatencyModel::ZERO;
        let t = Instant::now();
        for _ in 0..1000 {
            m.pause_batch();
        }
        assert!(t.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn pause_waits_at_least_requested_time() {
        let m = LatencyModel::new(100_000); // 100 µs, measurable
        let t = Instant::now();
        m.pause_batch();
        assert!(t.elapsed() >= Duration::from_micros(100));
    }

    #[test]
    fn table1_matches_paper() {
        // Spot-check the background cost model against Table 1.
        let pcm = TABLE1.iter().find(|t| t.name == "PCM").unwrap();
        assert_eq!(pcm.write_ns, 150);
        let dram = TABLE1.iter().find(|t| t.name == "DRAM").unwrap();
        assert_eq!(dram.read_ns, 50);
        // The paper's default is the average of PCM and Memristor writes.
        let memristor = TABLE1.iter().find(|t| t.name == "Memristor").unwrap();
        assert_eq!((pcm.write_ns + memristor.write_ns) / 2, LatencyModel::PAPER_DEFAULT.write_ns);
    }
}

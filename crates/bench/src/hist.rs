//! Log-bucketed latency histogram (HDR-histogram style).
//!
//! Latency distributions span five or six decades (a cache hit over
//! loopback is microseconds; a request stuck behind a queue can be
//! tens of milliseconds), so linear buckets are hopeless and storing
//! raw samples is wasteful. The classic answer is logarithmic
//! bucketing with linear sub-buckets: values below
//! 2<sup>[`SUB_BITS`]</sup> are recorded exactly, and every further
//! power-of-two range splits into [`SUB_BUCKETS`] equal slices, so the
//! relative quantization error is bounded by `1 / SUB_BUCKETS` (~3%)
//! at every magnitude. Recording is O(1) (a leading-zeros count and
//! two shifts), merging is element-wise addition, and the whole
//! structure is a fixed ~15 KiB regardless of sample count — one
//! histogram per connection, merged at the end, costs nothing.
//!
//! Percentile queries return the *upper* bound of the containing
//! bucket: tails are never under-reported, the conservative direction
//! for a latency SLO.

/// Linear sub-bucket resolution: each power-of-two range splits into
/// `2^SUB_BITS` slices.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per power-of-two range (bounds the relative
/// quantization error at `1/SUB_BUCKETS`).
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Total bucket count covering the full `u64` value range: one block
/// of exact values plus one block per remaining exponent (5..=63).
const N_BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// The bucket index of `v`: exact below [`SUB_BUCKETS`], then
/// `SUB_BUCKETS` linear slices per power of two.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - SUB_BITS)) as usize - SUB_BUCKETS;
    (exp - SUB_BITS + 1) as usize * SUB_BUCKETS + sub
}

/// The *inclusive* value range `[lo, hi]` bucket `i` covers (inclusive
/// so the top bucket's bound doesn't overflow `u64`).
fn bucket_range(i: usize) -> (u64, u64) {
    let block = i / SUB_BUCKETS;
    let sub = (i % SUB_BUCKETS) as u64;
    if block == 0 {
        return (sub, sub);
    }
    let width = 1u64 << (block - 1);
    let lo = (SUB_BUCKETS as u64 + sub) << (block - 1);
    (lo, lo + (width - 1))
}

/// A fixed-size log-bucketed histogram of `u64` samples (nanoseconds,
/// by convention).
pub struct Histogram {
    counts: Box<[u64; N_BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { counts: Box::new([0; N_BUCKETS]), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (exact, not quantized).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the recorded samples (exact sum, not
    /// quantized; 0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at percentile `p` (0 < p <= 100): the upper bound of
    /// the bucket containing the `ceil(p/100 * count)`-th smallest
    /// sample, clamped to the exact observed maximum. 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_range(i).1.min(self.max);
            }
        }
        self.max
    }

    /// The value at percentile `p` with linear interpolation *within*
    /// the containing bucket: the bucket's value span is spread evenly
    /// over its samples, so the estimate moves smoothly with `p`
    /// instead of jumping bucket-bound to bucket-bound. Tail
    /// percentiles of a merged many-connection histogram (p999 of a
    /// fig14 sweep) land in wide high-magnitude buckets where the
    /// upper-bound convention of [`Histogram::percentile`] can
    /// over-report by the full ~3% bucket width; interpolation splits
    /// the difference while staying inside the same bucket (and inside
    /// the exact observed `[min, max]`). 0 when empty.
    pub fn percentile_interp(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let (lo, hi) = bucket_range(i);
                // The target is the `(target - seen)`-th of this
                // bucket's `c` samples; place it fractionally along
                // the bucket's inclusive value span.
                let frac = (target - seen) as f64 / c as f64;
                let span = (hi - lo) as f64;
                let v = lo as f64 + span * frac;
                return v.clamp(self.min() as f64, self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }

    /// The non-empty buckets as `(lo, hi, count)` inclusive value
    /// ranges, in ascending order — the compact wire form for reports.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let (lo, hi) = bucket_range(i);
            (lo, hi, c)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_value_range() {
        // Every index inverts to a range containing exactly the values
        // that map back to it; consecutive buckets are contiguous.
        let mut expect_lo = 0u64;
        for i in 0..N_BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(lo, expect_lo, "bucket {i} not contiguous");
            assert!(hi >= lo);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
            expect_lo = hi.wrapping_add(1);
        }
        assert_eq!(expect_lo, 0, "buckets end exactly at u64::MAX");
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        assert_eq!(bucket_range(N_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        for v in 0..SUB_BUCKETS as u64 {
            let p = (v + 1) as f64 * 100.0 / SUB_BUCKETS as f64;
            assert_eq!(h.percentile(p), v, "p{p}");
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUB_BUCKETS as u64 - 1);
    }

    #[test]
    fn percentiles_within_relative_error() {
        // Pseudo-random samples over five decades: every percentile
        // must sit within the bucketing's ~3% relative error of the
        // exact order statistic (and never below it — upper bounds).
        let mut h = Histogram::new();
        let mut samples = Vec::new();
        let mut x = 0x12345u64;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = 100 + x % 10_000_000;
            h.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for p in [50.0, 90.0, 99.0, 99.9] {
            let idx = ((p / 100.0) * samples.len() as f64).ceil() as usize - 1;
            let exact = samples[idx];
            let got = h.percentile(p);
            assert!(got >= exact, "p{p}: {got} under-reports exact {exact}");
            let rel = (got - exact) as f64 / exact as f64;
            assert!(rel <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "p{p}: rel err {rel}");
        }
        assert_eq!(h.count(), 100_000);
        let mean_exact = samples.iter().map(|&v| v as u128).sum::<u128>() as f64 / 1e5;
        assert!((h.mean() - mean_exact).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [0u64, 1, 31, 32, 1000, 123_456_789, u64::MAX] {
            a.record(v);
            all.record(v);
        }
        for v in [5u64, 7_000_000, 42] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for p in [1.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
        let merged: Vec<_> = a.nonzero_buckets().collect();
        let direct: Vec<_> = all.nonzero_buckets().collect();
        assert_eq!(merged, direct);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.percentile_interp(99.0), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    /// The multiplexed-client invariant: per-connection histograms
    /// merged pairwise report the identical p999 (both conventions) as
    /// one histogram fed every sample — merging is exactly addition,
    /// whatever the merge tree shape.
    #[test]
    fn per_connection_merge_preserves_p999() {
        const CONNS: usize = 8;
        let mut per_conn: Vec<Histogram> = (0..CONNS).map(|_| Histogram::new()).collect();
        let mut all = Histogram::new();
        let mut x = 0xDEADBEEFu64;
        for i in 0..80_000usize {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Bimodal like a real latency distribution: fast path plus
            // a 1-in-500 millisecond-scale tail that only p999 sees.
            let v = if x % 500 == 0 { 5_000_000 + x % 20_000_000 } else { 2_000 + x % 60_000 };
            per_conn[i % CONNS].record(v);
            all.record(v);
        }
        // Merge as run_open_loop does (fold into an empty accumulator),
        // and also pairwise-tree, to pin shape-independence.
        let mut folded = Histogram::new();
        for h in &per_conn {
            folded.merge(h);
        }
        let mut tree: Vec<Histogram> = per_conn;
        while tree.len() > 1 {
            let b = tree.pop().expect("nonempty");
            tree.last_mut().expect("nonempty").merge(&b);
            tree.rotate_left(1);
        }
        let tree = tree.pop().expect("one left");
        for h in [&folded, &tree] {
            assert_eq!(h.count(), all.count());
            assert_eq!(h.min(), all.min());
            assert_eq!(h.max(), all.max());
            for p in [50.0, 90.0, 99.0, 99.9] {
                assert_eq!(h.percentile(p), all.percentile(p), "p{p} diverged after merge");
                assert_eq!(
                    h.percentile_interp(p),
                    all.percentile_interp(p),
                    "interpolated p{p} diverged after merge"
                );
            }
        }
        // The p999 actually resolves the injected tail mode.
        assert!(all.percentile(99.9) >= 5_000_000, "p999 {}", all.percentile(99.9));
        assert!(all.percentile(50.0) < 100_000, "p50 {}", all.percentile(50.0));
    }

    #[test]
    fn interpolated_percentiles_stay_inside_the_bucket_and_beat_the_bound() {
        let mut h = Histogram::new();
        let mut samples = Vec::new();
        let mut x = 0xABCDEFu64;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = 100 + x % 10_000_000;
            h.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for p in [50.0, 90.0, 99.0, 99.9] {
            let idx = ((p / 100.0) * samples.len() as f64).ceil() as usize - 1;
            let exact = samples[idx] as f64;
            let bound = h.percentile(p) as f64;
            let interp = h.percentile_interp(p);
            // Never above the conservative bucket bound, and within one
            // bucket width (~3% relative) of the exact order statistic
            // on either side.
            assert!(interp <= bound, "p{p}: interp {interp} above bound {bound}");
            let rel = (interp - exact).abs() / exact;
            assert!(rel <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "p{p}: rel err {rel}");
        }
        // Interpolation respects the exact observed extremes.
        assert!(h.percentile_interp(0.0001) >= h.min() as f64);
        assert!(h.percentile_interp(100.0) <= h.max() as f64);
    }

    #[test]
    fn single_sample_interpolation_is_exact() {
        let mut h = Histogram::new();
        h.record(123_456);
        assert_eq!(h.percentile_interp(50.0), 123_456.0);
        assert_eq!(h.percentile_interp(99.9), 123_456.0);
    }
}

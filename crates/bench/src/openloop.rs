//! Open-loop (Poisson-arrival) memcached client — the
//! coordinated-omission-free load generator behind `fig14_latency`.
//!
//! A *closed-loop* driver (like [`nvmemcached::memtier::run_threads`])
//! only issues a request after the previous one returns, so whenever
//! the server stalls the driver politely stops offering load — the
//! stall shows up as slightly lower throughput instead of as the
//! thousands of delayed requests a real client population would have
//! experienced. That is coordinated omission, and it can hide
//! multi-millisecond tail pauses entirely.
//!
//! This driver is open-loop in the wrk2 style:
//!
//! * each connection draws a Poisson arrival schedule (exponential
//!   inter-arrival gaps at its share of the offered rate) **anchored
//!   once** at the run start and never re-anchored;
//! * every latency sample is measured from the request's *scheduled*
//!   send time, not the actual write: if the connection falls behind
//!   (server stall, queueing), the wait is charged to every request
//!   that should already have been sent;
//! * samples land in a log-bucketed [`Histogram`], so p50/p99/p999
//!   come out with bounded relative error and no raw-sample storage.
//!
//! One connection keeps at most one request outstanding (pipelining
//! would batch server work and blur per-request latency); offered load
//! scales by adding connections, exactly like a memtier/wrk2 rig.
//! Request content comes from the same [`Workload`] engine as every
//! in-process experiment, so wire and in-process rows are comparable.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use nvmemcached::memtier::{Request, RequestStream, Workload};
use workload::Xorshift;

use crate::hist::Histogram;

/// One open-loop run's parameters.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent connections (each on its own thread).
    pub connections: usize,
    /// Total offered load, requests/second, split evenly across
    /// connections.
    pub offered_rps: f64,
    /// Length of the arrival schedule. The run drains every scheduled
    /// request, so wall-clock time exceeds this when the server cannot
    /// keep up — that excess *is* the queueing signal.
    pub duration: Duration,
    /// Request generator (key range, distribution, set:get mix, seed).
    pub workload: Workload,
    /// Arrival-schedule seed (decorrelated from the workload's own
    /// request stream).
    pub seed: u64,
}

/// Merged outcome of an open-loop run.
#[derive(Debug)]
pub struct OpenLoopResult {
    /// The configured offered load, requests/second.
    pub offered_rps: f64,
    /// Requests actually sent (the full schedule).
    pub sent: u64,
    /// Longest per-connection wall-clock time from anchor to last
    /// response.
    pub elapsed: Duration,
    /// `set` requests sent.
    pub sets: u64,
    /// `get` requests that found their key.
    pub hits: u64,
    /// `get` requests that missed.
    pub misses: u64,
    /// Latency from *scheduled* send to response completion, ns.
    pub latency: Histogram,
}

impl OpenLoopResult {
    /// Requests per second actually completed (0.0 when empty — never
    /// NaN).
    pub fn achieved_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if self.sent == 0 || secs <= 0.0 {
            return 0.0;
        }
        self.sent as f64 / secs
    }

    /// Fraction of `get`s that hit (0.0 when no gets — never NaN).
    pub fn hit_rate(&self) -> f64 {
        let gets = self.hits + self.misses;
        if gets == 0 {
            return 0.0;
        }
        self.hits as f64 / gets as f64
    }
}

/// Per-connection tallies, merged by [`run_open_loop`].
struct ConnResult {
    sent: u64,
    sets: u64,
    hits: u64,
    misses: u64,
    elapsed: Duration,
    latency: Histogram,
}

/// Runs the full open-loop schedule and merges every connection's
/// histogram. Fails on the first transport error (a latency experiment
/// with silently dropped connections would be measuring a different
/// offered load than it reports).
pub fn run_open_loop(cfg: &OpenLoopConfig) -> std::io::Result<OpenLoopResult> {
    let conns = cfg.connections.max(1);
    let per_conn_rate = (cfg.offered_rps / conns as f64).max(1e-9);
    let per_conn_n = (per_conn_rate * cfg.duration.as_secs_f64()).ceil().max(1.0) as u64;
    let barrier = Barrier::new(conns);

    let results: Vec<std::io::Result<ConnResult>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let barrier = &barrier;
                s.spawn(move || {
                    // Connect before the barrier so the schedule anchor
                    // excludes TCP setup.
                    let stream = TcpStream::connect(cfg.addr)?;
                    stream.set_nodelay(true)?;
                    barrier.wait();
                    drive_connection(cfg, stream, c, per_conn_rate, per_conn_n)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("open-loop connection panicked")).collect()
    });

    let mut out = OpenLoopResult {
        offered_rps: cfg.offered_rps,
        sent: 0,
        elapsed: Duration::ZERO,
        sets: 0,
        hits: 0,
        misses: 0,
        latency: Histogram::new(),
    };
    for r in results {
        let r = r?;
        out.sent += r.sent;
        out.sets += r.sets;
        out.hits += r.hits;
        out.misses += r.misses;
        out.elapsed = out.elapsed.max(r.elapsed);
        out.latency.merge(&r.latency);
    }
    Ok(out)
}

/// Sends `n` requests on one connection at Poisson arrivals of `rate`
/// req/s, one outstanding at a time, recording scheduled-send latency.
fn drive_connection(
    cfg: &OpenLoopConfig,
    stream: TcpStream,
    conn: usize,
    rate: f64,
    n: u64,
) -> std::io::Result<ConnResult> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut requests = RequestStream::new(&cfg.workload, conn);
    // The arrival process must not perturb (or replay) the request
    // stream, so it draws from its own decorrelated rng.
    let mut arrivals = Xorshift::for_thread(cfg.seed ^ 0x6f70_656e_6c6f_6f70, conn);

    let mut r = ConnResult {
        sent: 0,
        sets: 0,
        hits: 0,
        misses: 0,
        elapsed: Duration::ZERO,
        latency: Histogram::new(),
    };
    let mut line = String::new();
    let mut req_buf = Vec::with_capacity(64);
    let anchor = Instant::now();
    let mut offset = Duration::ZERO;
    for _ in 0..n {
        // Exponential gap: -ln(1 - u) / rate. `unit()` is in [0, 1),
        // so the log argument is in (0, 1] and the gap is finite.
        let gap = -(1.0 - arrivals.unit()).ln() / rate;
        offset += Duration::from_secs_f64(gap);
        let scheduled = anchor + offset;
        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }

        let req = requests.next().expect("infinite stream");
        req_buf.clear();
        match req {
            Request::Set(key, value) => {
                let data = value.to_string();
                write!(req_buf, "set {key} 0 0 {}\r\n{data}\r\n", data.len())?;
            }
            Request::Get(key) => write!(req_buf, "get {key}\r\n")?,
        }
        writer.write_all(&req_buf)?;

        match req {
            Request::Set(..) => {
                read_crlf_line(&mut reader, &mut line)?;
                if line != "STORED" {
                    return Err(proto_err(&line));
                }
                r.sets += 1;
            }
            Request::Get(..) => {
                let mut hit = false;
                loop {
                    read_crlf_line(&mut reader, &mut line)?;
                    if line == "END" {
                        break;
                    } else if line.starts_with("VALUE ") {
                        hit = true;
                        // The data block is a single digits-only line.
                        read_crlf_line(&mut reader, &mut line)?;
                    } else {
                        return Err(proto_err(&line));
                    }
                }
                if hit {
                    r.hits += 1;
                } else {
                    r.misses += 1;
                }
            }
        }
        // Coordinated-omission-free: latency is measured from when the
        // request was *scheduled*, so time spent stuck behind a slow
        // response is charged to every request it delayed.
        let lat = Instant::now().saturating_duration_since(scheduled);
        r.latency.record(lat.as_nanos().min(u128::from(u64::MAX)) as u64);
        r.sent += 1;
    }
    r.elapsed = anchor.elapsed();
    Ok(r)
}

fn proto_err(line: &str) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, format!("unexpected server response {line:?}"))
}

/// Reads one `\r\n`-terminated line into `line` (terminator stripped).
fn read_crlf_line(reader: &mut impl BufRead, line: &mut String) -> std::io::Result<()> {
    line.clear();
    if reader.read_line(line)? == 0 {
        return Err(std::io::Error::new(ErrorKind::UnexpectedEof, "server closed mid-response"));
    }
    if !line.ends_with("\r\n") {
        return Err(proto_err(line));
    }
    line.truncate(line.len() - 2);
    Ok(())
}

//! Open-loop (Poisson-arrival) memcached client — the
//! coordinated-omission-free load generator behind `fig14_latency`.
//!
//! A *closed-loop* driver (like [`nvmemcached::memtier::run_threads`])
//! only issues a request after the previous one returns, so whenever
//! the server stalls the driver politely stops offering load — the
//! stall shows up as slightly lower throughput instead of as the
//! thousands of delayed requests a real client population would have
//! experienced. That is coordinated omission, and it can hide
//! multi-millisecond tail pauses entirely.
//!
//! This driver is open-loop in the wrk2 style:
//!
//! * each connection draws a Poisson arrival schedule (exponential
//!   inter-arrival gaps at its share of the offered rate) **anchored
//!   once** at the run start and never re-anchored;
//! * every latency sample is measured from the request's *scheduled*
//!   send time, not the actual write: if the connection falls behind
//!   (server stall, queueing), the wait is charged to every request
//!   that should already have been sent;
//! * samples land in a log-bucketed [`Histogram`], so p50/p99/p999
//!   come out with bounded relative error and no raw-sample storage.
//!
//! One connection keeps at most one request outstanding (pipelining
//! would batch server work and blur per-request latency); offered load
//! scales by adding connections, exactly like a memtier/wrk2 rig.
//! Request content comes from the same [`Workload`] engine as every
//! in-process experiment, so wire and in-process rows are comparable.
//!
//! # Two drivers, one schedule
//!
//! With [`OpenLoopConfig::client_threads`] = 0 each connection gets its
//! own thread (the original model, and the fallback where
//! [`server::sys::SUPPORTED`] is false). With a non-zero value, that
//! many worker threads each own an epoll instance and **multiplex**
//! their share of the connections — 256 connections driven by 4 client
//! threads — so the client rig stops needing one OS thread per
//! simulated client well before the server does. Both drivers draw the
//! identical per-connection arrival schedule and request stream (seeded
//! by the *global* connection index), so swapping drivers changes only
//! who does the waiting, not what load is offered.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::Barrier;
use std::time::{Duration, Instant};

use nvmemcached::memtier::{Request, RequestStream, Workload};
use server::sys::{self, Epoll, EpollEvent};
use workload::Xorshift;

use crate::hist::Histogram;

/// One open-loop run's parameters.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Concurrent connections.
    pub connections: usize,
    /// Total offered load, requests/second, split evenly across
    /// connections.
    pub offered_rps: f64,
    /// Length of the arrival schedule. The run drains every scheduled
    /// request, so wall-clock time exceeds this when the server cannot
    /// keep up — that excess *is* the queueing signal.
    pub duration: Duration,
    /// Request generator (key range, distribution, set:get mix, seed).
    pub workload: Workload,
    /// Arrival-schedule seed (decorrelated from the workload's own
    /// request stream).
    pub seed: u64,
    /// Client worker threads, each multiplexing
    /// `connections / client_threads` non-blocking connections over
    /// epoll. `0` = one blocking thread per connection (the classic
    /// rig, and the fallback on targets without the epoll shim).
    pub client_threads: usize,
}

/// Merged outcome of an open-loop run.
#[derive(Debug)]
pub struct OpenLoopResult {
    /// The configured offered load, requests/second.
    pub offered_rps: f64,
    /// Requests actually sent (the full schedule).
    pub sent: u64,
    /// Longest per-connection wall-clock time from anchor to last
    /// response.
    pub elapsed: Duration,
    /// `set` requests sent.
    pub sets: u64,
    /// `get` requests that found their key.
    pub hits: u64,
    /// `get` requests that missed.
    pub misses: u64,
    /// Latency from *scheduled* send to response completion, ns.
    pub latency: Histogram,
}

impl OpenLoopResult {
    /// Requests per second actually completed (0.0 when empty — never
    /// NaN).
    pub fn achieved_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if self.sent == 0 || secs <= 0.0 {
            return 0.0;
        }
        self.sent as f64 / secs
    }

    /// Fraction of `get`s that hit (0.0 when no gets — never NaN).
    pub fn hit_rate(&self) -> f64 {
        let gets = self.hits + self.misses;
        if gets == 0 {
            return 0.0;
        }
        self.hits as f64 / gets as f64
    }
}

/// Per-connection tallies, merged by [`run_open_loop`].
struct ConnResult {
    sent: u64,
    sets: u64,
    hits: u64,
    misses: u64,
    elapsed: Duration,
    latency: Histogram,
}

/// Runs the full open-loop schedule and merges every connection's
/// histogram. Fails on the first transport error (a latency experiment
/// with silently dropped connections would be measuring a different
/// offered load than it reports).
pub fn run_open_loop(cfg: &OpenLoopConfig) -> std::io::Result<OpenLoopResult> {
    let conns = cfg.connections.max(1);
    let per_conn_rate = (cfg.offered_rps / conns as f64).max(1e-9);
    let per_conn_n = (per_conn_rate * cfg.duration.as_secs_f64()).ceil().max(1.0) as u64;

    let results: Vec<std::io::Result<ConnResult>> = if cfg.client_threads > 0 && sys::SUPPORTED {
        let threads = cfg.client_threads.min(conns);
        let barrier = Barrier::new(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let barrier = &barrier;
                    // Worker t multiplexes global connections
                    // t, t+threads, t+2·threads, …
                    let mine: Vec<usize> = (t..conns).step_by(threads).collect();
                    s.spawn(move || {
                        drive_multiplexed(cfg, mine, per_conn_rate, per_conn_n, barrier)
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join().expect("open-loop worker panicked") {
                    Ok(v) => v.into_iter().map(Ok).collect::<Vec<_>>(),
                    Err(e) => vec![Err(e)],
                })
                .collect()
        })
    } else {
        let barrier = Barrier::new(conns);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..conns)
                .map(|c| {
                    let barrier = &barrier;
                    s.spawn(move || {
                        // Connect before the barrier so the schedule
                        // anchor excludes TCP setup.
                        let stream = TcpStream::connect(cfg.addr)?;
                        stream.set_nodelay(true)?;
                        barrier.wait();
                        drive_connection(cfg, stream, c, per_conn_rate, per_conn_n)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("open-loop connection panicked")).collect()
        })
    };

    let mut out = OpenLoopResult {
        offered_rps: cfg.offered_rps,
        sent: 0,
        elapsed: Duration::ZERO,
        sets: 0,
        hits: 0,
        misses: 0,
        latency: Histogram::new(),
    };
    for r in results {
        let r = r?;
        out.sent += r.sent;
        out.sets += r.sets;
        out.hits += r.hits;
        out.misses += r.misses;
        out.elapsed = out.elapsed.max(r.elapsed);
        out.latency.merge(&r.latency);
    }
    Ok(out)
}

/// Sends `n` requests on one connection at Poisson arrivals of `rate`
/// req/s, one outstanding at a time, recording scheduled-send latency.
fn drive_connection(
    cfg: &OpenLoopConfig,
    stream: TcpStream,
    conn: usize,
    rate: f64,
    n: u64,
) -> std::io::Result<ConnResult> {
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut requests = RequestStream::new(&cfg.workload, conn);
    // The arrival process must not perturb (or replay) the request
    // stream, so it draws from its own decorrelated rng.
    let mut arrivals = Xorshift::for_thread(cfg.seed ^ 0x6f70_656e_6c6f_6f70, conn);

    let mut r = ConnResult {
        sent: 0,
        sets: 0,
        hits: 0,
        misses: 0,
        elapsed: Duration::ZERO,
        latency: Histogram::new(),
    };
    let mut line = String::new();
    let mut req_buf = Vec::with_capacity(64);
    let anchor = Instant::now();
    let mut offset = Duration::ZERO;
    for _ in 0..n {
        // Exponential gap: -ln(1 - u) / rate. `unit()` is in [0, 1),
        // so the log argument is in (0, 1] and the gap is finite.
        let gap = -(1.0 - arrivals.unit()).ln() / rate;
        offset += Duration::from_secs_f64(gap);
        let scheduled = anchor + offset;
        if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }

        let req = requests.next().expect("infinite stream");
        req_buf.clear();
        match req {
            Request::Set(key, value) => {
                let data = value.to_string();
                write!(req_buf, "set {key} 0 0 {}\r\n{data}\r\n", data.len())?;
            }
            Request::Get(key) => write!(req_buf, "get {key}\r\n")?,
        }
        writer.write_all(&req_buf)?;

        match req {
            Request::Set(..) => {
                read_crlf_line(&mut reader, &mut line)?;
                if line != "STORED" {
                    return Err(proto_err(&line));
                }
                r.sets += 1;
            }
            Request::Get(..) => {
                let mut hit = false;
                loop {
                    read_crlf_line(&mut reader, &mut line)?;
                    if line == "END" {
                        break;
                    } else if line.starts_with("VALUE ") {
                        hit = true;
                        // The data block is a single digits-only line.
                        read_crlf_line(&mut reader, &mut line)?;
                    } else {
                        return Err(proto_err(&line));
                    }
                }
                if hit {
                    r.hits += 1;
                } else {
                    r.misses += 1;
                }
            }
        }
        // Coordinated-omission-free: latency is measured from when the
        // request was *scheduled*, so time spent stuck behind a slow
        // response is charged to every request it delayed.
        let lat = Instant::now().saturating_duration_since(scheduled);
        r.latency.record(lat.as_nanos().min(u128::from(u64::MAX)) as u64);
        r.sent += 1;
    }
    r.elapsed = anchor.elapsed();
    Ok(r)
}

// ---------------------------------------------------------------------------
// Multiplexed driver: many connections per worker thread, over epoll
// ---------------------------------------------------------------------------

/// What the in-flight request is waiting for (one outstanding per
/// connection, so this is the whole response-parser state).
enum Await {
    /// A `set` is out; next line must be `STORED`.
    Stored,
    /// A `get` is out; status lines (`VALUE`/`END`) are arriving.
    GetStatus { hit: bool },
    /// Inside a `get` response: the next line is the data block.
    GetData,
}

/// One multiplexed connection's full state.
struct MuxConn {
    stream: TcpStream,
    requests: RequestStream,
    arrivals: Xorshift,
    /// Requests not yet sent (the fixed schedule).
    remaining: u64,
    /// Cumulative schedule offset from the anchor.
    offset: Duration,
    /// When the next request is due (`None` while one is in flight or
    /// after the schedule is exhausted).
    next_due: Option<Instant>,
    /// The in-flight request's scheduled send time and parser state.
    in_flight: Option<(Instant, Await)>,
    /// Unsent request bytes (socket pushed back; `EPOLLOUT` armed).
    out: Vec<u8>,
    /// Received-but-unparsed response bytes.
    inbuf: Vec<u8>,
    /// Whether `EPOLLOUT` is currently registered.
    wants_out: bool,
    r: ConnResult,
    done: bool,
}

impl MuxConn {
    /// Draws the next exponential gap and schedules the next arrival.
    /// Called exactly once per request (at anchor time for the first,
    /// immediately after each send for the rest) — the arrival process
    /// never depends on responses; only the *release* of a due send is
    /// gated on the previous response (one outstanding), with the wait
    /// charged CO-free to the schedule.
    fn schedule_next(&mut self, rate: f64, anchor: Instant) {
        if self.remaining == 0 {
            self.next_due = None;
            return;
        }
        let gap = -(1.0 - self.arrivals.unit()).ln() / rate;
        self.offset += Duration::from_secs_f64(gap);
        self.next_due = Some(anchor + self.offset);
    }
}

/// Drives `mine` (global connection indices) on one worker thread:
/// non-blocking sockets in one epoll set, sends released by schedule
/// time, responses parsed incrementally as they arrive.
fn drive_multiplexed(
    cfg: &OpenLoopConfig,
    mine: Vec<usize>,
    rate: f64,
    n: u64,
    barrier: &Barrier,
) -> std::io::Result<Vec<ConnResult>> {
    let ep = Epoll::create()?;
    let mut conns = Vec::with_capacity(mine.len());
    for (slot, &c) in mine.iter().enumerate() {
        let stream = TcpStream::connect(cfg.addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        ep.add(stream.as_raw_fd(), sys::EPOLLIN, slot as u64)?;
        conns.push(MuxConn {
            stream,
            requests: RequestStream::new(&cfg.workload, c),
            arrivals: Xorshift::for_thread(cfg.seed ^ 0x6f70_656e_6c6f_6f70, c),
            remaining: n,
            offset: Duration::ZERO,
            next_due: None,
            in_flight: None,
            out: Vec::new(),
            inbuf: Vec::new(),
            wants_out: false,
            r: ConnResult {
                sent: 0,
                sets: 0,
                hits: 0,
                misses: 0,
                elapsed: Duration::ZERO,
                latency: Histogram::new(),
            },
            done: false,
        });
    }
    // All of this worker's sockets are connected; wait for the other
    // workers so every connection's schedule anchors together.
    barrier.wait();
    let anchor = Instant::now();
    for conn in &mut conns {
        conn.schedule_next(rate, anchor);
    }

    let mut events = [EpollEvent::default(); 64];
    let mut rbuf = [0u8; 16 * 1024];
    let mut line = String::new();
    while !conns.iter().all(|c| c.done) {
        // Release every due send, then find the earliest *releasable*
        // pending one (a due-but-in-flight connection waits on its
        // response, which epoll delivers, not on the clock).
        let now = Instant::now();
        let mut earliest: Option<Instant> = None;
        for (slot, conn) in conns.iter_mut().enumerate() {
            if conn.in_flight.is_none() {
                if let Some(due) = conn.next_due {
                    if due <= now {
                        send_request(conn, &ep, slot as u64)?;
                        conn.schedule_next(rate, anchor);
                    } else {
                        earliest = Some(earliest.map_or(due, |e| e.min(due)));
                    }
                }
            }
        }
        // Sleep in epoll until the next scheduled send (rounded *down*
        // to epoll's millisecond grain: overshooting would charge the
        // rounding into every CO-free latency sample; undershooting
        // merely re-polls — sub-millisecond waits spin through
        // epoll_wait(0), exactly like wrk2's send loop). With no send
        // pending, park until response bytes arrive.
        let timeout = match earliest {
            Some(due) => due.saturating_duration_since(Instant::now()).as_millis() as i32,
            None if conns.iter().any(|c| !c.done) => -1,
            None => 0,
        };
        let nev = ep.wait(&mut events, timeout)?;
        for ev in &events[..nev] {
            let slot = ev.token() as usize;
            if ev.events() & sys::EPOLLOUT != 0 {
                flush_out(&mut conns[slot], &ep, ev.token())?;
            }
            if ev.events() & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR) != 0 {
                read_responses(&mut conns[slot], &mut rbuf, &mut line, anchor)?;
            }
        }
    }
    Ok(conns.into_iter().map(|c| c.r).collect())
}

/// Renders and (non-blockingly) sends one request; unsent bytes park in
/// `conn.out` with `EPOLLOUT` armed.
fn send_request(conn: &mut MuxConn, ep: &Epoll, token: u64) -> std::io::Result<()> {
    let scheduled = conn.next_due.expect("due send");
    let req = conn.requests.next().expect("infinite stream");
    debug_assert!(conn.out.is_empty(), "one outstanding request per connection");
    match req {
        Request::Set(key, value) => {
            let data = value.to_string();
            write!(conn.out, "set {key} 0 0 {}\r\n{data}\r\n", data.len())?;
            conn.in_flight = Some((scheduled, Await::Stored));
        }
        Request::Get(key) => {
            write!(conn.out, "get {key}\r\n")?;
            conn.in_flight = Some((scheduled, Await::GetStatus { hit: false }));
        }
    }
    conn.remaining -= 1;
    flush_out(conn, ep, token)
}

/// Writes as much parked output as the socket accepts, keeping the
/// `EPOLLOUT` registration in sync with whether any remains.
fn flush_out(conn: &mut MuxConn, ep: &Epoll, token: u64) -> std::io::Result<()> {
    let mut written = 0;
    let res = loop {
        if written >= conn.out.len() {
            break Ok(());
        }
        match conn.stream.write(&conn.out[written..]) {
            Ok(0) => {
                break Err(std::io::Error::new(ErrorKind::WriteZero, "socket wrote zero"));
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break Ok(()),
            Err(e) => break Err(e),
        }
    };
    conn.out.drain(..written);
    res?;
    let want_out = !conn.out.is_empty();
    if want_out != conn.wants_out {
        conn.wants_out = want_out;
        let interest = sys::EPOLLIN | if want_out { sys::EPOLLOUT } else { 0 };
        ep.modify(conn.stream.as_raw_fd(), interest, token)?;
    }
    Ok(())
}

/// Drains the socket and parses every complete response line, closing
/// out in-flight requests as their terminators arrive.
fn read_responses(
    conn: &mut MuxConn,
    rbuf: &mut [u8],
    line: &mut String,
    anchor: Instant,
) -> std::io::Result<()> {
    loop {
        match conn.stream.read(rbuf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            Ok(n) => conn.inbuf.extend_from_slice(&rbuf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    // Parse complete `\r\n` lines; a partial line stays buffered.
    let mut consumed = 0;
    while let Some(rel) = find_crlf(&conn.inbuf[consumed..]) {
        line.clear();
        line.push_str(
            std::str::from_utf8(&conn.inbuf[consumed..consumed + rel])
                .map_err(|_| proto_err("<non-utf8>"))?,
        );
        consumed += rel + 2;
        let Some((scheduled, state)) = conn.in_flight.take() else {
            return Err(proto_err(line));
        };
        match state {
            Await::Stored => {
                if line != "STORED" {
                    return Err(proto_err(line));
                }
                conn.r.sets += 1;
                complete_request(conn, scheduled, anchor);
            }
            Await::GetStatus { hit } => {
                if line == "END" {
                    if hit {
                        conn.r.hits += 1;
                    } else {
                        conn.r.misses += 1;
                    }
                    complete_request(conn, scheduled, anchor);
                } else if line.starts_with("VALUE ") {
                    conn.in_flight = Some((scheduled, Await::GetData));
                } else {
                    return Err(proto_err(line));
                }
            }
            Await::GetData => {
                // The data block is a single digits-only line.
                conn.in_flight = Some((scheduled, Await::GetStatus { hit: true }));
            }
        }
    }
    conn.inbuf.drain(..consumed);
    Ok(())
}

/// Records the CO-free latency sample for a completed request; the
/// last response of the schedule closes the connection's books.
fn complete_request(conn: &mut MuxConn, scheduled: Instant, anchor: Instant) {
    let lat = Instant::now().saturating_duration_since(scheduled);
    conn.r.latency.record(lat.as_nanos().min(u128::from(u64::MAX)) as u64);
    conn.r.sent += 1;
    if conn.remaining == 0 {
        conn.r.elapsed = anchor.elapsed();
        conn.done = true;
    }
}

/// Byte offset of the first `\r\n` in `buf`, if any.
fn find_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(2).position(|w| w == b"\r\n")
}

fn proto_err(line: &str) -> std::io::Error {
    std::io::Error::new(ErrorKind::InvalidData, format!("unexpected server response {line:?}"))
}

/// Reads one `\r\n`-terminated line into `line` (terminator stripped).
fn read_crlf_line(reader: &mut impl BufRead, line: &mut String) -> std::io::Result<()> {
    line.clear();
    if reader.read_line(line)? == 0 {
        return Err(std::io::Error::new(ErrorKind::UnexpectedEof, "server closed mid-response"));
    }
    if !line.ends_with("\r\n") {
        return Err(proto_err(line));
    }
    line.truncate(line.len() - 2);
    Ok(())
}

//! **Figure 14 (beyond the paper)**: open-loop request latency over
//! real loopback TCP.
//!
//! Every other throughput row in the registry is closed-loop and
//! in-process: the driver calls the cache as a library and only issues
//! a request after the previous one returns, so server stalls quietly
//! *reduce offered load* instead of showing up as the queueing delay a
//! real client population would experience (coordinated omission).
//! This experiment closes that blind spot: the sharded NV-Memcached is
//! served over the memcached ASCII protocol by `crates/server`, and an
//! open-loop client (`bench::openloop`) drives it at a fixed Poisson
//! offered load, measuring every latency from the request's *scheduled*
//! send time into a log-bucketed histogram.
//!
//! Axes: rows — offered load x connections x shard count over the fixed
//! Figure 11 workload (1:4 set:get, 10k key range); y — achieved
//! requests/s (`median_throughput`) and CO-free latency percentiles
//! (`latency.p50_ns` / `p99_ns` / `p999_ns`). By default both sides run
//! event-driven: the server multiplexes the `{4, 16, 64}` (+256 under
//! `FULL=1`) connection sweep over workers = shard count, and the
//! client drives it with at most 4 multiplexed threads. `EVENT_LOOP=0`
//! pins the blocking thread-per-connection pair (workers =
//! connections) for A/B comparison. The `LOAD_RPS` and `CONNS` knobs
//! pin a single load / connection count for manual sweeps;
//! `MEASURE_MS` sets the arrival-schedule length.
//!
//! Thin wrapper over [`bench::experiments::fig14_latency`].

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::fig14_latency(&cfg);
    print!("{}", bench::report::render_text(&report));
}

//! **Figure 13 (beyond the paper)**: the sharded NV-Memcached under
//! *skewed* traffic.
//!
//! Axes: rows — key distribution {uniform, zipf-0.99,
//! zipf-scrambled-0.99, hotspot-10/90} x
//! shard count {1, 4} over the fixed Figure 11 workload (1:4 set:get,
//! 100k key range); y — requests/s (`median_throughput`), get hit rate
//! (`get_hit_rate`), and the per-shard request imbalance
//! (`shard_imbalance`, max/mean over the routing tallies; 1.0 =
//! perfectly balanced, `n_shards` = fully serialized on one shard).
//!
//! Skew is where the per-shard design is stressed hardest: the splitmix
//! routing hash spreads even zipf-hot keys across shards, but every hot
//! *key* still serializes on its home shard — this sweep quantifies how
//! much imbalance the hash absorbs and what throughput remains. The
//! distributions are swept by the experiment itself; the `DIST`/`SKEW`
//! knobs do not apply here (they steer every *other* workload-driven
//! experiment).
//!
//! Thin wrapper over [`bench::experiments::fig13_skew`].

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::fig13_skew(&cfg);
    print!("{}", bench::report::render_text(&report));
}

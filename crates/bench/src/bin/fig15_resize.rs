//! **Figure 15 (beyond the paper)**: throughput timeline of the sharded
//! NV-Memcached across a **live 4x grow**.
//!
//! Axes: rows — before/after geometry (bucket count, item count, load
//! factor) plus fixed wall-clock sampling windows over the Figure 11
//! workload (1:4 set:get, 100k key range, 2 shards); y — requests/s per
//! window (`median_throughput`), with `during_resize=1` on every window
//! overlapping the `[grow start, migration done]` interval and
//! `resize_ms` on the after row.
//!
//! The claim under test is the incremental-resize tentpole: migration is
//! lazy and lock-free (operations migrate the bucket they touch, plus
//! bounded background helping), so the `during_resize` windows show a
//! dip, never a zero — there is no stop-the-world rehash anywhere in a
//! grow.
//!
//! Thin wrapper over [`bench::experiments::fig15_resize`].

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::fig15_resize(&cfg);
    print!("{}", bench::report::render_text(&report));
}

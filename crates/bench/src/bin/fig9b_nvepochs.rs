//! Figure 9b: throughput improvement attributable to NV-epochs alone —
//! the same log-free structure with NV-epochs memory management versus
//! the traditional per-operation intent logging (§5.1, §6.3).

use bench::{build, env_u64, median_throughput, print_ratio_row, DsKind, Flavor};
use nvalloc::MemMode;
use pmem::{LatencyModel, Mode};

fn paper_ratio(kind: DsKind, size: u64) -> Option<f64> {
    let table: &[(u64, f64)] = match kind {
        DsKind::HashTable => &[(128, 1.52), (4096, 1.46), (65_536, 1.02), (4_194_304, 0.90)],
        DsKind::Bst => &[(128, 1.61), (4096, 1.38), (65_536, 1.03), (4_194_304, 1.10)],
        DsKind::SkipList => &[(128, 3.89), (4096, 3.18), (65_536, 2.00), (4_194_304, 1.37)],
        DsKind::LinkedList => &[(32, 1.45), (128, 1.31), (4096, 1.07), (65_536, 1.01)],
    };
    table.iter().find(|&&(s, _)| s == size).map(|&(_, r)| r)
}

fn main() {
    let latency = LatencyModel::new(env_u64("NVRAM_NS", 125));
    println!("== Figure 9b: throughput improvement due to NV-epochs ==");
    println!("log-free structures; NV-epochs vs per-op intent logging; 4 threads");
    for kind in [DsKind::HashTable, DsKind::Bst, DsKind::SkipList, DsKind::LinkedList] {
        for size in kind.fig5_sizes() {
            if size < 32 {
                continue;
            }
            let nv = median_throughput(
                || build(kind, Flavor::LogFree, size, Mode::Perf, latency),
                4,
                size,
                100,
            );
            let logged = median_throughput(
                || {
                    let mut inst = build(kind, Flavor::LogFree, size, Mode::Perf, latency);
                    inst.mem_mode = MemMode::IntentLog;
                    inst
                },
                4,
                size,
                100,
            );
            print_ratio_row(
                &format!("{} size={size}", kind.name()),
                nv,
                logged,
                paper_ratio(kind, size),
            );
        }
    }
}

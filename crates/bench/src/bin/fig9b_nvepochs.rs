//! **Reproduces Figure 9b** of the paper: throughput improvement
//! attributable to NV-epochs alone.
//!
//! Axes: x — structure size (per structure); y — throughput ratio of
//! the same log-free structure with NV-epochs memory management versus
//! traditional per-operation intent logging, at 4 threads (§5.1, §6.3).
//!
//! Thin wrapper over [`bench::experiments::fig9b`].

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::fig9b(&cfg);
    print!("{}", bench::report::render_text(&report));
}

//! Runs the **entire experiment registry** (Table 1, Figures 5–11, and
//! the beyond-paper shard and skew sweeps) and writes the
//! machine-readable `BENCH_results.json` at the current working
//! directory (the repository root under
//! `cargo run -p bench --bin bench_all`).
//!
//! Sizing follows the usual knobs: CI-sized by default, `FULL=1` for
//! paper-sized element counts, `SMOKE=1` for a seconds-long smoke run
//! (what the CI `bench-report` job uses). See BENCHMARKS.md for the
//! schema and the methodology.
//!
//! # Options
//!
//! * `--out <file>` — where to write the JSON (default
//!   `BENCH_results.json`).
//! * `--baseline <file>` — also compare against a previous
//!   `BENCH_results.json`: the process exits non-zero if any
//!   measurement's median throughput dropped by more than the threshold
//!   relative to the baseline. A baseline whose `schema_version` differs
//!   from this binary's is refused (exit 2) rather than compared.
//! * `--threshold <pct>` — regression threshold in percent (default 25).
//! * `--only <id,id,...>` — run a subset of the registry (ids as in
//!   `BENCH_results.json`, e.g. `fig5,fig10`). Requires an explicit
//!   `--out`: a partial run is refused at the default path so it can
//!   never clobber the full committed baseline.

use std::process::ExitCode;
use std::time::Instant;

use bench::report::{
    baseline_coverage, compare, render_text, schema_version, BenchResults, Json, SCHEMA_VERSION,
};
use bench::{experiments, RunConfig};

fn usage() -> ! {
    eprintln!(
        "usage: bench_all [--out <file>] [--baseline <file>] [--threshold <pct>] [--only <id,..>]"
    );
    std::process::exit(2)
}

/// Default `--out` destination — the path the committed baseline lives
/// at, which is why `--only` refuses to write there (see below).
const DEFAULT_OUT: &str = "BENCH_results.json";

fn main() -> ExitCode {
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut threshold = 25.0f64;
    let mut only: Option<Vec<String>> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--out" => out_path = Some(value("--out")),
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--threshold" => {
                threshold = value("--threshold").parse().unwrap_or_else(|_| {
                    eprintln!("--threshold takes a number (percent)");
                    usage()
                })
            }
            "--only" => {
                only = Some(value("--only").split(',').map(|s| s.trim().to_string()).collect())
            }
            _ => usage(),
        }
    }

    if let Some(only) = &only {
        let known: Vec<&str> = experiments::registry().iter().map(|s| s.id).collect();
        for id in only {
            if !known.contains(&id.as_str()) {
                eprintln!(
                    "[bench_all] unknown experiment id '{id}' in --only (known: {})",
                    known.join(", ")
                );
                return ExitCode::from(2);
            }
        }
        // A subset run at the default destination would silently clobber
        // the full committed baseline with a document missing most of its
        // experiments — and every later `--baseline` gate against it
        // would quietly gate nothing. Subset runs must name their output.
        if out_path.is_none() {
            eprintln!(
                "[bench_all] refusing --only without an explicit --out: writing a partial \
                 registry to the default {DEFAULT_OUT} would clobber the full baseline \
                 (pass e.g. --out /tmp/subset.json)"
            );
            return ExitCode::from(2);
        }
    }
    let out_path = out_path.unwrap_or_else(|| DEFAULT_OUT.to_string());

    let cfg = RunConfig::from_env();
    eprintln!(
        "[bench_all] scale: {}  (REPEATS={} MEASURE_MS={})",
        if cfg.full {
            "FULL (paper-sized)"
        } else if cfg.smoke {
            "SMOKE"
        } else {
            "CI-sized"
        },
        cfg.repeats,
        cfg.measure_ms
    );

    let mut reports = Vec::new();
    for spec in experiments::registry() {
        if let Some(only) = &only {
            if !only.iter().any(|id| id == spec.id) {
                continue;
            }
        }
        eprintln!("[bench_all] running {} — {}", spec.id, spec.title);
        let t = Instant::now();
        let report = (spec.run)(&cfg);
        eprintln!("[bench_all] {} done in {:.1}s", spec.id, t.elapsed().as_secs_f64());
        print!("{}", render_text(&report));
        println!();
        reports.push(report);
    }

    let results = BenchResults::collect(cfg.knobs(), reports);
    let json_text = results.to_json().render_pretty();
    if let Err(e) = std::fs::write(&out_path, &json_text) {
        eprintln!("[bench_all] failed to write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("[bench_all] wrote {out_path}");

    if let Some(baseline_path) = baseline_path {
        let baseline_text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("[bench_all] cannot read baseline {baseline_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let baseline = match Json::parse(&baseline_text) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("[bench_all] baseline {baseline_path} is not valid JSON: {e}");
                return ExitCode::from(2);
            }
        };
        let current = Json::parse(&json_text).expect("own output is valid JSON");
        // Cross-version comparisons are refused, not silently attempted:
        // a schema bump means labels/units/row semantics may have moved,
        // so any rows that *do* join would gate the wrong thing.
        match schema_version(&baseline) {
            Some(v) if v == SCHEMA_VERSION => {}
            Some(v) => {
                eprintln!(
                    "[bench_all] baseline {baseline_path} has schema_version {v}, this binary \
                     writes schema_version {SCHEMA_VERSION}: refusing the cross-version \
                     comparison. Regenerate the baseline with this binary \
                     (see BENCHMARKS.md) or compare against a matching run."
                );
                return ExitCode::from(2);
            }
            None => {
                eprintln!(
                    "[bench_all] baseline {baseline_path} carries no integral schema_version \
                     stamp: not a bench_all document, refusing the comparison"
                );
                return ExitCode::from(2);
            }
        }
        let (matched, total) = baseline_coverage(&current, &baseline);
        println!(
            "[bench_all] baseline coverage: {matched}/{total} current rows matched in \
             {baseline_path} (unmatched rows — different scale or new configurations — \
             are NOT gated)"
        );
        let regressions = compare(&current, &baseline, threshold);
        if regressions.is_empty() {
            println!(
                "[bench_all] no median-throughput regressions > {threshold}% vs {baseline_path}"
            );
        } else {
            eprintln!(
                "[bench_all] {} median-throughput regression(s) > {threshold}% vs {baseline_path}:",
                regressions.len()
            );
            for r in &regressions {
                eprintln!("  {r}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

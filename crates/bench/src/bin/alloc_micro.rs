//! **Allocator microbenchmark** (beyond the paper): pure alloc/recycle
//! throughput of the NV-epochs allocator with durable thread-local
//! allocation buffers on versus off.
//!
//! Axes: rows — alloc size (64/256 B) x threads (1/4) x `tlab` (1/0);
//! y — allocations/s, with the TLAB hit rate and refill count as
//! metrics. Each worker allocates a burst of nodes inside one epoch op
//! and then recycles them all with `dealloc_unlinked`, so the heap
//! footprint stays bounded while the allocation hot path runs
//! continuously. The `tlab=1` rows should meet or beat their `tlab=0`
//! twins: leased allocations skip the bitmap probe and the APT lookup
//! while paying the same sync count per page.
//!
//! Knobs: `TLAB=0` affects fig5/fig9b A/B rows, not this sweep (it
//! always measures both settings). `MEASURE_MS`, `REPEATS`, `NVRAM_NS`
//! as everywhere (BENCHMARKS.md).
//!
//! Thin wrapper over [`bench::experiments::alloc_micro`].

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::alloc_micro(&cfg);
    print!("{}", bench::report::render_text(&report));
}

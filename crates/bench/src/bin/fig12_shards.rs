//! **Figure 12 (beyond the paper)**: the sharded NV-Memcached under the
//! Figure 11 workload, sweeping the shard count.
//!
//! Axes: x — shard count (powers of two from 1 up to the `SHARDS` knob,
//! default `{1, 2, 4, 8}`); y — requests/s under the 1:4 set:get mix
//! (`median_throughput`) and time to recover all shards in parallel after
//! a simulated crash (`recovery_ms`). Each shard owns its own
//! pool/domain/table/evict queue; `shards=1` is behaviorally identical to
//! Figure 11's NV-Memcached, so the sweep isolates what partitioning
//! buys: throughput should rise with the shard count (per-shard queue and
//! pool contention falls away) and recovery time should fall (one
//! recovery thread per shard, each scanning a smaller heap).
//!
//! Thin wrapper over [`bench::experiments::fig12_shards`].

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::fig12_shards(&cfg);
    print!("{}", bench::report::render_text(&report));
}

//! **Reproduces Table 1** of the paper: the background latency cost
//! model (caches, DRAM, projected NVRAM read/write ns), plus a
//! calibration check that the simulator's injected batch pause actually
//! costs what the model says and that N clwbs + 1 fence cost ~1 batch,
//! not N.
//!
//! Axes: rows are memory technologies (read/write latency in ns);
//! calibration rows report measured ns per sync against the model value.
//!
//! Thin wrapper over [`bench::experiments::table1`].

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::table1(&cfg);
    print!("{}", bench::report::render_text(&report));
}

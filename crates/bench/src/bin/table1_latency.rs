//! Table 1: the background latency cost model (caches, DRAM, projected
//! NVRAM), plus a calibration check that the simulator's injected batch
//! pause actually costs what the model says.

use std::time::Instant;

use pmem::{LatencyModel, Mode, PoolBuilder, TABLE1};

fn main() {
    println!("== Table 1: cache/DRAM/NVRAM (projected) latencies (ns) ==");
    println!("{:<12} {:>8} {:>8}", "tech", "read", "write");
    for t in TABLE1 {
        println!("{:<12} {:>8} {:>8}", t.name, t.read_ns, t.write_ns);
    }
    println!();
    println!(
        "paper default NVRAM write latency: {} ns (avg of PCM and Memristor writes)",
        LatencyModel::PAPER_DEFAULT.write_ns
    );
    println!();
    println!("== Simulator calibration: measured cost of one write-back batch ==");
    for write_ns in [125u64, 1_250, 12_500] {
        let pool = PoolBuilder::new(1 << 20)
            .mode(Mode::Perf)
            .latency(LatencyModel::new(write_ns))
            .build();
        let mut f = pool.flusher();
        let a = pool.heap_start();
        // Warm up.
        for _ in 0..100 {
            f.clwb(a);
            f.fence();
        }
        let iters = 2_000u32;
        let t = Instant::now();
        for _ in 0..iters {
            f.clwb(a);
            f.fence();
        }
        let per = t.elapsed().as_nanos() as u64 / iters as u64;
        println!(
            "model {write_ns:>6} ns/batch  -> measured {per:>6} ns/sync (includes bookkeeping)"
        );
    }
    println!();
    println!("batching check: N clwbs + 1 fence must cost ~1 batch, not N");
    let pool =
        PoolBuilder::new(1 << 20).mode(Mode::Perf).latency(LatencyModel::new(1_250)).build();
    let mut f = pool.flusher();
    let iters = 1_000u32;
    for batch in [1usize, 4, 16] {
        let t = Instant::now();
        for _ in 0..iters {
            for i in 0..batch {
                f.clwb(pool.heap_start() + 64 * i);
            }
            f.fence();
        }
        let per = t.elapsed().as_nanos() as u64 / iters as u64;
        println!("batch of {batch:>2} write-backs: {per:>6} ns/sync");
    }
}

//! **Reproduces Figure 7** of the paper: the durable linked list
//! relative to an NVRAM-oblivious (volatile) implementation.
//!
//! Axes: x — list size; y — throughput ratio durable/volatile at 1 and
//! 8 threads. The durability overhead is constant per operation, so the
//! ratio approaches 1 as structures grow and traversal dominates (§6.2).
//!
//! Thin wrapper over [`bench::experiments::fig7`].

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::fig7(&cfg);
    print!("{}", bench::report::render_text(&report));
}

//! Figure 7: the durable linked list relative to an NVRAM-oblivious
//! (volatile) implementation. The durability overhead is constant per
//! operation, so the ratio approaches 1 as structures grow and traversal
//! dominates (§6.2).

use bench::{build, median_throughput, print_ratio_row, DsKind, Flavor};
use pmem::{LatencyModel, Mode};

fn main() {
    println!("== Figure 7: durable vs volatile linked list ==");
    let paper: &[(u64, f64, f64)] =
        &[(32, 0.28, 0.37), (128, 0.47, 0.52), (4096, 0.65, 0.81), (65_536, 0.83, 0.86)];
    let latency = LatencyModel::PAPER_DEFAULT;
    for &(size, p1, p8) in paper {
        for (threads, paper) in [(1usize, p1), (8usize, p8)] {
            let flavor = if threads == 1 { Flavor::LogFreeLc } else { Flavor::LogFree };
            let durable = median_throughput(
                || build(DsKind::LinkedList, flavor, size, Mode::Perf, latency),
                threads,
                size,
                100,
            );
            let volatile = median_throughput(
                || {
                    build(
                        DsKind::LinkedList,
                        Flavor::LogFree,
                        size,
                        Mode::Volatile,
                        LatencyModel::ZERO,
                    )
                },
                threads,
                size,
                100,
            );
            print_ratio_row(
                &format!("size={size} threads={threads}"),
                durable,
                volatile,
                Some(paper),
            );
        }
    }
}

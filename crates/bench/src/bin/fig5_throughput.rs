//! Figure 5: update throughput of the log-free structures relative to the
//! redo-log-based implementations, across structure sizes, at 1 and 8
//! threads. Workload: 50% inserts / 50% removes of random keys (§6.2).
//!
//! Run with `FULL=1` for the paper's largest sizes (4M elements / 64K for
//! the linked list).

use bench::{build, env_u64, median_throughput, print_ratio_row, DsKind, Flavor};
use pmem::{LatencyModel, Mode};

/// Paper-reported ratios, indexed by (structure, size, threads).
fn paper_ratio(kind: DsKind, size: u64, threads: usize) -> Option<f64> {
    let table: &[(u64, f64, f64)] = match kind {
        // (size, 1-thread ratio, 8-thread ratio)
        DsKind::SkipList => {
            &[(128, 2.22, 2.56), (4096, 5.88, 6.67), (65_536, 7.69, 8.33), (4_194_304, 10.0, 9.09)]
        }
        DsKind::LinkedList => {
            &[(32, 2.17, 1.56), (128, 1.85, 1.17), (4096, 1.43, 1.23), (65_536, 1.09, 1.05)]
        }
        DsKind::HashTable => {
            &[(128, 3.03, 1.92), (4096, 3.03, 2.04), (65_536, 2.27, 1.56), (4_194_304, 1.32, 1.18)]
        }
        DsKind::Bst => {
            &[(128, 2.13, 1.28), (4096, 1.69, 1.22), (65_536, 1.14, 1.05), (4_194_304, 1.11, 1.02)]
        }
    };
    table
        .iter()
        .find(|&&(s, _, _)| s == size)
        .map(|&(_, t1, t8)| if threads == 1 { t1 } else { t8 })
}

fn main() {
    let latency = LatencyModel::new(env_u64("NVRAM_NS", 125));
    println!("== Figure 5: log-free vs log-based update throughput ==");
    println!("workload: 50% insert / 50% remove, keys uniform in 2x size; latency {latency:?}");
    println!();
    for kind in [DsKind::SkipList, DsKind::LinkedList, DsKind::HashTable, DsKind::Bst] {
        println!("--- {} ---", kind.name());
        for size in kind.fig5_sizes() {
            for threads in [1usize, 8] {
                // The paper's system turns the link cache off at high
                // thread counts (§6.2); mirror that policy.
                let flavor = if threads == 1 { Flavor::LogFreeLc } else { Flavor::LogFree };
                let ours = median_throughput(
                    || build(kind, flavor, size, Mode::Perf, latency),
                    threads,
                    size,
                    100, // updates only among non-lookup mix: 50/50 ins/rem
                );
                let base = median_throughput(
                    || build(kind, Flavor::LogBased, size, Mode::Perf, latency),
                    threads,
                    size,
                    100,
                );
                print_ratio_row(
                    &format!("{} size={size} threads={threads}", kind.name()),
                    ours,
                    base,
                    paper_ratio(kind, size, threads),
                );
            }
        }
        println!();
    }
}

//! **Reproduces Figure 5** of the paper: update throughput of the
//! log-free structures relative to the redo-log-based implementations.
//!
//! Axes: x — structure size (per structure, up to 4M elements with
//! `FULL=1`); y — throughput ratio log-free/log-based, at 1 and 8
//! threads. Workload: 50% inserts / 50% removes of random keys (§6.2).
//!
//! Thin wrapper over [`bench::experiments::fig5`]; `bench_all` runs the
//! same experiment and records it in `BENCH_results.json`.

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::fig5(&cfg);
    print!("{}", bench::report::render_text(&report));
}

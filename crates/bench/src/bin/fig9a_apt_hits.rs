//! Figure 9a: active page table hit rates for allocations (inserts) and
//! deallocations (deletes) as the structure grows. Skip list, 4 KiB
//! pages, trim threshold 16 (§6.3). The paper reports near-100% insert
//! hit rates at all sizes, with delete hit rates declining once the
//! structure exceeds ~1M nodes (less reclamation locality).

use std::time::Duration;

use bench::{build, env_u64, full_scale, prefill, run_mixed, DsKind, Flavor};
use pmem::{LatencyModel, Mode};

fn main() {
    println!("== Figure 9a: APT hit rates (skip list, 4KiB pages, trim at 16) ==");
    println!("{:<12} {:>14} {:>14}", "size", "insert hits", "delete hits");
    let mut sizes: Vec<u64> = vec![1_024, 16_384, 65_536, 262_144];
    if full_scale() {
        sizes.push(1_048_576);
        sizes.push(4_194_304);
    }
    let ms = env_u64("MEASURE_MS", 400);
    for size in sizes {
        let inst =
            build(DsKind::SkipList, Flavor::LogFree, size, Mode::Perf, LatencyModel::ZERO);
        prefill(&inst, size);
        let stats = run_mixed(&inst, 4, Duration::from_millis(ms), size, 100, 7);
        println!(
            "{:<12} {:>13.1}% {:>13.1}%",
            size,
            100.0 * stats.apt.alloc_hit_rate(),
            100.0 * stats.apt.unlink_hit_rate(),
        );
    }
    println!();
    println!("paper: insert hit rate ~100% at all sizes; delete hit rate");
    println!("declines once the structure exceeds ~64 MB (1M+ nodes).");
}

//! **Reproduces Figure 9a** of the paper: active page table hit rates
//! for allocations (inserts) and deallocations (deletes) as the
//! structure grows.
//!
//! Axes: x — structure size; y — APT hit rates (insert and delete),
//! reported as `apt_alloc_hit_rate` / `apt_unlink_hit_rate` metrics.
//! Skip list, 4 KiB pages, trim threshold 16 (§6.3). The paper reports
//! near-100% insert hit rates at all sizes, with delete hit rates
//! declining once the structure exceeds ~1M nodes.
//!
//! Thin wrapper over [`bench::experiments::fig9a`].

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::fig9a(&cfg);
    print!("{}", bench::report::render_text(&report));
}

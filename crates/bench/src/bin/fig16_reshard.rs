//! Figure 16 (beyond the paper) harness: throughput timeline across a
//! live 2→4 reshard on the sharded cache, with fig13-style request
//! imbalance before and after, under the hash router and the
//! range-partition negative control.

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::fig16_reshard(&cfg);
    print!("{}", bench::report::render_text(&report));
}

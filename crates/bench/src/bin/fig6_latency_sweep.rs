//! Figure 6: update throughput relative to the log-based implementation
//! as NVRAM write latency grows (125 ns, 1.25 µs, 12.5 µs). Linked list,
//! 1024 elements — small enough that reads are served from cache, so the
//! sync-count ratio dominates (§6.2).

use bench::{build, median_throughput, print_ratio_row, DsKind, Flavor};
use pmem::{LatencyModel, Mode};

fn main() {
    println!("== Figure 6: throughput ratio vs NVRAM write latency (LL, 1024 elems) ==");
    let size = 1024u64;
    let paper: &[(u64, f64, f64)] =
        &[(125, 1.20, 1.13), (1_250, 2.15, 1.81), (12_500, 4.79, 4.12)];
    for &(ns, p1, p8) in paper {
        let latency = LatencyModel::new(ns);
        for (threads, paper) in [(1usize, p1), (8usize, p8)] {
            let flavor = if threads == 1 { Flavor::LogFreeLc } else { Flavor::LogFree };
            let ours = median_throughput(
                || build(DsKind::LinkedList, flavor, size, Mode::Perf, latency),
                threads,
                size,
                100,
            );
            let base = median_throughput(
                || build(DsKind::LinkedList, Flavor::LogBased, size, Mode::Perf, latency),
                threads,
                size,
                100,
            );
            print_ratio_row(
                &format!("latency={ns}ns threads={threads}"),
                ours,
                base,
                Some(paper),
            );
        }
    }
}

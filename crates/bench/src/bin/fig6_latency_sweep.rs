//! **Reproduces Figure 6** of the paper: update throughput relative to
//! the log-based implementation as NVRAM write latency grows.
//!
//! Axes: x — injected NVRAM write latency (125 ns, 1.25 µs, 12.5 µs);
//! y — throughput ratio log-free/log-based at 1 and 8 threads. Linked
//! list, 1024 elements — small enough that reads are served from cache,
//! so the sync-count ratio dominates (§6.2).
//!
//! Thin wrapper over [`bench::experiments::fig6`].

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::fig6(&cfg);
    print!("{}", bench::report::render_text(&report));
}

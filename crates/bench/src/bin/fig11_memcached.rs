//! Figure 11: NV-Memcached versus volatile Memcached and memcached-clht.
//!
//! Left plot: throughput under a 1:4 set:get mix across key ranges
//! (10^3..10^6) — the paper reports *no notable drop* between the three
//! systems. Right plot: warm-up time of the volatile systems (populate
//! half the key range) versus NV-Memcached's recovery time — recovery is
//! up to three orders of magnitude faster (§6.5).

use std::sync::Arc;
use std::time::Instant;

use bench::{env_u64, full_scale};
use nvmemcached::memtier::{run_threads, Request, Workload};
use nvmemcached::{ClhtMemcached, NvMemcached, VolatileMemcached};
use pmem::{LatencyModel, Mode, PoolBuilder};

const THREADS: usize = 4; // both server and client default to 4 (§6.5)

fn pool_bytes(key_range: u64) -> usize {
    ((key_range * 256).max(64 << 20) as usize) + (64 << 20)
}

fn main() {
    println!("== Figure 11: Memcached vs memcached-clht vs NV-Memcached ==");
    let mut ranges: Vec<u64> = vec![1_000, 10_000, 100_000];
    if full_scale() {
        ranges.push(1_000_000);
    }
    let ops = env_u64("MEMTIER_OPS", 200_000);
    println!(
        "{:<12} {:>16} {:>16} {:>16}",
        "key range", "memcached", "clht", "nv-memcached"
    );
    println!("{:<12} {:>16} {:>16} {:>16}  (ops/s, 1:4 set:get, 4 threads)", "", "", "", "");
    let mut warmups: Vec<(u64, u128, u128, u128)> = Vec::new();
    for &range in &ranges {
        let wl = Workload::paper(range, 42);

        // --- stock memcached model ---
        let v = VolatileMemcached::new();
        let t = Instant::now();
        for k in wl.warmup_keys() {
            v.set(k, k);
        }
        let warm_v = t.elapsed().as_nanos();
        let r_v = run_threads(THREADS, ops, wl, |_t| {
            let v = &v;
            move |req| match req {
                Request::Set(k, val) => v.set(k, val),
                Request::Get(k) => {
                    let _ = v.get(k);
                }
            }
        });

        // --- memcached-clht model ---
        let pool = PoolBuilder::new(pool_bytes(range)).mode(Mode::Volatile).build();
        let c = ClhtMemcached::create(pool, range as usize).expect("pool sized");
        let t = Instant::now();
        {
            let mut ctx = c.register();
            for k in wl.warmup_keys() {
                c.set(&mut ctx, k, k).expect("pool sized");
            }
        }
        let warm_c = t.elapsed().as_nanos();
        let r_c = run_threads(THREADS, ops, wl, |_t| {
            let mut ctx = c.register();
            let c = &c;
            move |req| match req {
                Request::Set(k, val) => c.set(&mut ctx, k, val).expect("pool sized"),
                Request::Get(k) => {
                    let _ = c.get(&mut ctx, k);
                }
            }
        });

        // --- NV-Memcached ---
        let pool = PoolBuilder::new(pool_bytes(range))
            .mode(Mode::CrashSim)
            .latency(LatencyModel::ZERO)
            .build();
        let mc =
            NvMemcached::create(Arc::clone(&pool), range as usize, usize::MAX / 2, true)
                .expect("pool sized");
        {
            let mut ctx = mc.register();
            for k in wl.warmup_keys() {
                mc.set(&mut ctx, k, k).expect("pool sized");
            }
        }
        let r_n = run_threads(THREADS, ops, wl, |_t| {
            let mut ctx = mc.register();
            let mc = &mc;
            move |req| match req {
                Request::Set(k, val) => mc.set(&mut ctx, k, val).expect("pool sized"),
                Request::Get(k) => {
                    let _ = mc.get(&mut ctx, k);
                }
            }
        });
        // Crash it and time recovery.
        drop(mc);
        // SAFETY: all workers joined by run_threads.
        unsafe { pool.simulate_crash().expect("crash-sim pool") };
        let t = Instant::now();
        let (mc2, _report) = NvMemcached::recover(Arc::clone(&pool), usize::MAX / 2);
        let recover_n = t.elapsed().as_nanos();
        let _ = mc2.len();

        println!(
            "{:<12} {:>16.0} {:>16.0} {:>16.0}",
            range,
            r_v.throughput(),
            r_c.throughput(),
            r_n.throughput()
        );
        warmups.push((range, warm_v, warm_c, recover_n));
    }
    println!();
    println!("== warm-up (volatile) vs recovery (NV-Memcached) time, ms ==");
    println!(
        "{:<12} {:>16} {:>16} {:>18}",
        "key range", "memcached warm", "clht warm", "nv-mc recovery"
    );
    for (range, wv, wc, rn) in warmups {
        println!(
            "{:<12} {:>16.3} {:>16.3} {:>18.3}",
            range,
            wv as f64 / 1e6,
            wc as f64 / 1e6,
            rn as f64 / 1e6
        );
    }
    println!();
    println!("paper: no notable throughput drop across the three systems;");
    println!("recovery up to three orders of magnitude faster than re-population.");
}

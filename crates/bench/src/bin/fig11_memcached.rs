//! **Reproduces Figure 11** of the paper: NV-Memcached versus volatile
//! Memcached and memcached-clht.
//!
//! Axes, left plot: x — key range (10^3..10^6 with `FULL=1`); y —
//! requests/s under a 1:4 set:get mix — the paper reports *no notable
//! drop* between the three systems. Right plot: warm-up time of the
//! volatile systems (populate half the key range, the `warmup_ms`
//! metric) versus NV-Memcached's recovery time (`recovery_ms`) —
//! recovery is up to three orders of magnitude faster (§6.5). Get hit
//! rates are reported per system (`get_hit_rate`).
//!
//! Thin wrapper over [`bench::experiments::fig11`].

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::fig11(&cfg);
    print!("{}", bench::report::render_text(&report));
}

//! Figure 8: isolating the contribution of link-and-persist (LP) and the
//! link cache (LC). Throughput of both log-free variants normalised to
//! the log-based implementation, all using identical (NV-epochs) memory
//! management; 1024-element structures, 100% updates (§6.3).

use bench::{build, median_throughput, print_ratio_row, DsKind, Flavor};
use pmem::{LatencyModel, Mode};

fn main() {
    println!("== Figure 8: link-and-persist (LP) vs link cache (LC), 1024 elems ==");
    println!("normalised to log-based; identical memory management everywhere");
    let size = 1024u64;
    let latency = LatencyModel::PAPER_DEFAULT;
    // (kind, threads, paper LP, paper LC)
    let paper: &[(DsKind, usize, f64, f64)] = &[
        (DsKind::HashTable, 1, 1.90, 2.73),
        (DsKind::HashTable, 8, 1.61, 1.63),
        (DsKind::SkipList, 1, 9.90, 10.64),
        (DsKind::SkipList, 8, 8.44, 7.74),
        (DsKind::LinkedList, 1, 1.17, 1.19),
        (DsKind::LinkedList, 8, 1.04, 1.05),
        (DsKind::Bst, 1, 1.49, 1.49),
        (DsKind::Bst, 8, 1.02, 0.96),
    ];
    for &(kind, threads, p_lp, p_lc) in paper {
        let base = median_throughput(
            || build(kind, Flavor::LogBasedNvMem, size, Mode::Perf, latency),
            threads,
            size,
            100,
        );
        let lp = median_throughput(
            || build(kind, Flavor::LogFree, size, Mode::Perf, latency),
            threads,
            size,
            100,
        );
        let lc = median_throughput(
            || build(kind, Flavor::LogFreeLc, size, Mode::Perf, latency),
            threads,
            size,
            100,
        );
        print_ratio_row(&format!("{} {}t LP", kind.name(), threads), lp, base, Some(p_lp));
        print_ratio_row(&format!("{} {}t LC", kind.name(), threads), lc, base, Some(p_lc));
    }
}

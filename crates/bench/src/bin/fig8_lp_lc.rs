//! **Reproduces Figure 8** of the paper: isolating the contribution of
//! link-and-persist (LP) and the link cache (LC).
//!
//! Axes: rows are structure × thread-count; y — throughput of both
//! log-free variants normalised to the log-based implementation, all
//! using identical (NV-epochs) memory management; 1024-element
//! structures, 100% updates (§6.3).
//!
//! Thin wrapper over [`bench::experiments::fig8`].

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::fig8(&cfg);
    print!("{}", bench::report::render_text(&report));
}

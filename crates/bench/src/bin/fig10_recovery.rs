//! **Reproduces Figure 10** of the paper: data structure recovery times
//! as a function of size.
//!
//! Axes: x — structure size; y — recovery time (the `recovery_ns`
//! metric), with fix-up and leak counts alongside.
//!
//! Methodology (§6.4): run updates, stop at an arbitrary point, drop
//! everything that was not durably written back (our simulated crash is
//! exactly that), then time the recovery process: bring the structure to
//! a consistent state + traverse the active pages freeing
//! allocated-but-unreachable nodes. The paper reports: hash table / BST /
//! skip list recover in < 5 ms even at 4M elements (identity-search
//! oracle); the linked list (linear search) uses the
//! mark-and-sweep-style second approach and recovers a 64K-element list
//! in ~16 ms.
//!
//! Thin wrapper over [`bench::experiments::fig10`].

fn main() {
    let cfg = bench::RunConfig::from_env();
    let report = bench::experiments::fig10(&cfg);
    print!("{}", bench::report::render_text(&report));
}

//! Figure 10: data structure recovery times as a function of size.
//!
//! Methodology (§6.4): run updates, stop at an arbitrary point, drop
//! everything that was not durably written back (our simulated crash is
//! exactly that), then time the recovery process: bring the structure to
//! a consistent state + traverse the active pages freeing
//! allocated-but-unreachable nodes.
//!
//! The paper reports: hash table / BST / skip list recover in < 5 ms even
//! at 4M elements (identity-search oracle); the linked list (linear
//! search) uses the mark-and-sweep-style second approach and recovers a
//! 64K-element list in ~16 ms.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::{build, env_u64, full_scale, prefill, run_mixed, DsKind, Flavor};
use logfree::LinkOps;
use nvalloc::NvDomain;
use pmem::{LatencyModel, Mode};

fn measure(kind: DsKind, size: u64) -> (Duration, u64, u64) {
    let inst = build(kind, Flavor::LogFree, size, Mode::CrashSim, LatencyModel::ZERO);
    prefill(&inst, size);
    // Touch the structure so active pages and in-flight deletions exist.
    let ms = env_u64("CRASH_WORK_MS", 100);
    let _ = run_mixed(&inst, 2, Duration::from_millis(ms), size, 100, 3);
    let pool = Arc::clone(&inst.pool);
    drop(inst);
    // SAFETY: all workers have been joined by run_mixed.
    unsafe { pool.simulate_crash().expect("crash-sim pool") };

    let t = Instant::now();
    let domain = NvDomain::attach(Arc::clone(&pool));
    let ops = LinkOps::new(Arc::clone(&pool), None);
    let (fixups, report) = match kind {
        DsKind::LinkedList => {
            let ds = logfree::LinkedList::attach(&domain, 1, ops);
            let mut f = pool.flusher();
            let (_d, u) = ds.recover(&mut f);
            // Second approach (§5.5): one traversal + set membership.
            let reachable = ds.collect_reachable();
            let report = domain.recover_leaks(|a| reachable.contains(&a));
            (u, report)
        }
        DsKind::HashTable => {
            let ds = logfree::HashTable::attach(&domain, 1, ops);
            let mut f = pool.flusher();
            let (_d, u) = ds.recover(&mut f);
            let report = domain.recover_leaks(|a| ds.contains_node_at(a));
            (u, report)
        }
        DsKind::SkipList => {
            let ds = logfree::SkipList::attach(&domain, 1, ops);
            let mut f = pool.flusher();
            let (_d, u) = ds.recover(&mut f);
            let report = domain.recover_leaks(|a| ds.contains_node_at(a));
            (u, report)
        }
        DsKind::Bst => {
            let ds = logfree::Bst::attach(&domain, 1, ops);
            let mut f = pool.flusher();
            let (_d, u) = ds.recover(&mut f);
            let report = domain.recover_leaks(|a| ds.contains_node_at(a));
            (u, report)
        }
    };
    (t.elapsed(), fixups, report.leaks_freed)
}

fn main() {
    println!("== Figure 10: recovery time vs structure size ==");
    println!(
        "{:<14} {:>10} {:>14} {:>10} {:>8}",
        "structure", "size", "recovery (ns)", "fixups", "leaks"
    );
    for kind in [DsKind::HashTable, DsKind::Bst, DsKind::SkipList, DsKind::LinkedList] {
        let mut sizes: Vec<u64> = match kind {
            DsKind::LinkedList => vec![32, 128, 4096, 65_536],
            _ => vec![128, 4096, 65_536],
        };
        if full_scale() && kind != DsKind::LinkedList {
            sizes.push(4_194_304);
        }
        for size in sizes {
            let (dur, fixups, leaks) = measure(kind, size);
            println!(
                "{:<14} {:>10} {:>14} {:>10} {:>8}",
                kind.name(),
                size,
                dur.as_nanos(),
                fixups,
                leaks
            );
        }
    }
    println!();
    println!("paper: HT/BST/SL < 5 ms at 4M elements; LL 64K ~ 16 ms;");
    println!("recovery time grows with structure size for all structures.");
}

//! Structured experiment reports and their machine-readable rendering.
//!
//! Every evaluation harness (`src/bin/fig*`, `table1_latency`) builds an
//! [`ExperimentReport`] instead of printing free-form text; the
//! human-readable tables the binaries show are produced by
//! [`render_text`] *from the same report* that `bench_all` serializes
//! into `BENCH_results.json`. One source of truth, two renderings.
//!
//! The serialization layer is a deliberately dependency-free JSON value
//! type ([`Json`]) with an escape-correct writer and a full parser, so
//! reports can be written, re-read (`bench_all --baseline`), and
//! regression-checked ([`compare`]) without adding any crate the build
//! environment does not already have.
//!
//! See `BENCHMARKS.md` at the repository root for the schema with an
//! annotated example and the measurement methodology.

use std::fmt::Write as _;

use nvalloc::AptStats;
use pmem::FlushStats;

use crate::hist::Histogram;

/// Version stamp written into every `BENCH_results.json`. Bump when the
/// schema changes shape (documented in BENCHMARKS.md).
///
/// v2 (fig14): measurements may carry a `latency` object —
/// coordinated-omission-free percentiles plus the non-empty histogram
/// buckets. Baseline comparisons across schema versions are refused
/// (see [`schema_version`] and `bench_all --baseline`).
pub const SCHEMA_VERSION: u64 = 2;

// ---------------------------------------------------------------------------
// JSON value type: writer + parser
// ---------------------------------------------------------------------------

/// A JSON document, as produced by the report serializer and by
/// [`Json::parse`].
///
/// Object member order is preserved (reports render deterministically);
/// numbers are `f64`, which is exact for every counter below 2^53 —
/// far beyond anything a bench run produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced when serializing a non-finite float).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key → value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Serializes without any whitespace.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(members) => write_seq(out, indent, '{', '}', members.len(), |out, i, ind| {
                write_string(out, &members[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                members[i].1.write(out, ind);
            }),
        }
    }

    /// Parses a JSON document. Exactly one top-level value is accepted
    /// (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

/// JSON numbers must be finite; NaN/inf degrade to `null` (documented in
/// BENCHMARKS.md — consumers treat them as "not measured").
fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's shortest-roundtrip Display for f64 is valid JSON (it
        // never produces exponents for this value range, and always
        // round-trips through the parser bit-exactly).
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            push_indent(out, d);
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        push_indent(out, d);
    }
    out.push(close);
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..2 * depth {
        out.push(' ');
    }
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { pos: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0C}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.eat(b'\\').is_err() || self.eat(b'u').is_err() {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe via the chars iterator).
                    let rest = &self.bytes[self.pos..];
                    // SAFETY-free route: find char length from the lead byte.
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { pos: start, msg: format!("invalid number '{text}'") })
    }
}

fn utf8_len(lead: u8) -> usize {
    match lead {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Report model
// ---------------------------------------------------------------------------

/// Latency distribution of one measurement, summarized from a
/// log-bucketed [`Histogram`] (schema v2, `fig14_latency`).
///
/// Percentiles are bucket upper bounds (never under-reported, ≤ ~3%
/// relative error); `buckets` holds the non-empty `[lo, hi, count]`
/// inclusive ranges so the full distribution can be re-plotted from the
/// JSON without storing raw samples.
#[derive(Debug, Clone, Default)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact smallest sample, ns.
    pub min_ns: u64,
    /// Exact arithmetic mean, ns.
    pub mean_ns: f64,
    /// Exact largest sample, ns.
    pub max_ns: u64,
    /// Median, ns.
    pub p50_ns: u64,
    /// 90th percentile, ns.
    pub p90_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// 99.9th percentile, ns.
    pub p999_ns: u64,
    /// Non-empty histogram buckets as inclusive `(lo, hi, count)`.
    pub buckets: Vec<(u64, u64, u64)>,
}

impl LatencySummary {
    /// Summarizes a histogram (by convention: nanosecond samples).
    pub fn from_histogram(h: &Histogram) -> Self {
        Self {
            count: h.count(),
            min_ns: h.min(),
            mean_ns: h.mean(),
            max_ns: h.max(),
            p50_ns: h.percentile(50.0),
            p90_ns: h.percentile(90.0),
            p99_ns: h.percentile(99.0),
            p999_ns: h.percentile(99.9),
            buckets: h.nonzero_buckets().collect(),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("min_ns".into(), Json::Num(self.min_ns as f64)),
            ("mean_ns".into(), Json::Num(self.mean_ns)),
            ("max_ns".into(), Json::Num(self.max_ns as f64)),
            ("p50_ns".into(), Json::Num(self.p50_ns as f64)),
            ("p90_ns".into(), Json::Num(self.p90_ns as f64)),
            ("p99_ns".into(), Json::Num(self.p99_ns as f64)),
            ("p999_ns".into(), Json::Num(self.p999_ns as f64)),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(lo, hi, c)| {
                            Json::Arr(vec![
                                Json::Num(lo as f64),
                                Json::Num(hi as f64),
                                Json::Num(c as f64),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One measured configuration of one experiment: a row of a paper figure.
///
/// Only `label` is mandatory; every other field is present when the
/// experiment measures it and omitted from the JSON otherwise. Labels are
/// stable across runs at the same scale — `bench_all --baseline` joins on
/// `(experiment id, label)`.
#[derive(Debug, Clone, Default)]
pub struct Measurement {
    /// Stable row identifier, e.g. `"skip-list size=4096 threads=8"`.
    pub label: String,
    /// Structure under test (`"skip-list"`, …) where applicable.
    pub structure: Option<String>,
    /// Worker thread count.
    pub threads: Option<u64>,
    /// Structure size (elements) or key range.
    pub size: Option<u64>,
    /// Injected NVRAM write latency (ns) of this configuration.
    pub latency_ns: Option<u64>,
    /// Key-distribution label of the workload this row ran under
    /// (`"uniform"`, `"zipf-0.99"`, …; `"n/a"` for cost-model rows with
    /// no workload). Every serialized row carries it — the CI
    /// JSON-validation step asserts so.
    pub dist: Option<String>,
    /// Median throughput (ops/s) over the repeats — the value regression
    /// comparison tracks.
    pub median_throughput: Option<f64>,
    /// Per-repeat throughputs (ops/s), in execution order.
    pub repeat_throughputs: Vec<f64>,
    /// Median throughput (ops/s) of the comparison system, when the row
    /// is a ratio.
    pub baseline_throughput: Option<f64>,
    /// `median_throughput / baseline_throughput`.
    pub ratio: Option<f64>,
    /// The ratio the paper reports for this configuration.
    pub paper_ratio: Option<f64>,
    /// Durable-write traffic of the subject system's median repetition.
    pub flush: Option<FlushStats>,
    /// Coordinated-omission-free latency distribution, when the row was
    /// measured open-loop over real sockets (`fig14_latency`; schema v2).
    pub latency: Option<LatencySummary>,
    /// Experiment-specific scalars (APT hit rates, recovery times, cache
    /// hit rates, …), serialized as a `metrics` object.
    pub metrics: Vec<(String, f64)>,
}

impl Measurement {
    /// Starts a measurement with the given stable label.
    pub fn new(label: impl Into<String>) -> Self {
        Self { label: label.into(), ..Self::default() }
    }

    /// Appends a named scalar metric.
    pub fn metric(mut self, name: &str, value: f64) -> Self {
        self.metrics.push((name.to_string(), value));
        self
    }

    /// Records APT hit rates as metrics (Figure 9a's quantities), plus
    /// the TLAB counters when the row allocated through thread-local
    /// buffers (zero refills otherwise — the metrics still serialize so
    /// the schema is uniform).
    pub fn apt_metrics(self, apt: &AptStats) -> Self {
        self.metric("apt_alloc_hit_rate", apt.alloc_hit_rate())
            .metric("apt_unlink_hit_rate", apt.unlink_hit_rate())
            .metric("tlab_hit_rate", apt.tlab_hit_rate())
            .metric("tlab_refills", apt.tlab_refills as f64)
    }

    fn to_json(&self) -> Json {
        let mut m = vec![("label".into(), Json::Str(self.label.clone()))];
        fn opt_num(m: &mut Vec<(String, Json)>, key: &str, v: Option<f64>) {
            if let Some(v) = v {
                m.push((key.into(), Json::Num(v)));
            }
        }
        opt_num(&mut m, "threads", self.threads.map(|v| v as f64));
        opt_num(&mut m, "size", self.size.map(|v| v as f64));
        opt_num(&mut m, "latency_ns", self.latency_ns.map(|v| v as f64));
        // Serialized unconditionally: a row that somehow skipped the
        // fill still records *that* ("n/a") rather than omitting the key.
        m.push(("dist".into(), Json::Str(self.dist.clone().unwrap_or_else(|| "n/a".into()))));
        opt_num(&mut m, "median_throughput", self.median_throughput);
        opt_num(&mut m, "baseline_throughput", self.baseline_throughput);
        opt_num(&mut m, "ratio", self.ratio);
        opt_num(&mut m, "paper_ratio", self.paper_ratio);
        if let Some(s) = &self.structure {
            m.insert(1, ("structure".into(), Json::Str(s.clone())));
        }
        if !self.repeat_throughputs.is_empty() {
            m.push((
                "repeat_throughputs".into(),
                Json::Arr(self.repeat_throughputs.iter().map(|&t| Json::Num(t)).collect()),
            ));
        }
        if let Some(f) = self.flush {
            m.push((
                "flush".into(),
                Json::Obj(vec![
                    ("clwbs".into(), Json::Num(f.clwbs as f64)),
                    ("fences".into(), Json::Num(f.fences as f64)),
                    ("sync_batches".into(), Json::Num(f.sync_batches as f64)),
                ]),
            ));
        }
        if let Some(lat) = &self.latency {
            m.push(("latency".into(), lat.to_json()));
        }
        if !self.metrics.is_empty() {
            m.push((
                "metrics".into(),
                Json::Obj(self.metrics.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect()),
            ));
        }
        Json::Obj(m)
    }
}

/// The structured result of one experiment (one paper figure/table).
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Registry id, e.g. `"fig5"`.
    pub id: String,
    /// Human title of the experiment.
    pub title: String,
    /// What the figure's axes are — x, y, and normalization.
    pub axes: String,
    /// The measured rows.
    pub measurements: Vec<Measurement>,
}

impl ExperimentReport {
    /// Starts an empty report.
    pub fn new(id: &str, title: &str, axes: &str) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            axes: axes.to_string(),
            measurements: Vec::new(),
        }
    }

    /// Records workload provenance on every measurement: sets the
    /// key-distribution field on rows that have not set one row-locally
    /// and — for non-default configurations — appends ` dist=<label>` /
    /// ` val=<label>` to row labels, so a skewed or resized-value run's
    /// rows never silently join against the default baseline in
    /// `bench_all --baseline` (rows are joined on `(id, label)`; *any*
    /// non-default value distribution changes the whole request
    /// sequence, not just the modeled sizes, because it leaves the
    /// legacy bit-compat generator).
    pub fn fill_dist(&mut self, dist_label: &str, value_label: &str) {
        for m in &mut self.measurements {
            if m.dist.is_none() {
                m.dist = Some(dist_label.to_string());
                if dist_label != "uniform" && dist_label != "n/a" {
                    m.label = format!("{} dist={dist_label}", m.label);
                }
            }
            if value_label != "fixed-64" && value_label != "n/a" && !m.label.contains(" val=") {
                m.label = format!("{} val={value_label}", m.label);
            }
        }
    }

    /// The JSON object for this experiment.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("title".into(), Json::Str(self.title.clone())),
            ("axes".into(), Json::Str(self.axes.clone())),
            (
                "measurements".into(),
                Json::Arr(self.measurements.iter().map(|m| m.to_json()).collect()),
            ),
        ])
    }
}

/// The whole `BENCH_results.json` document: provenance + knob values +
/// one report per experiment.
#[derive(Debug, Clone)]
pub struct BenchResults {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// `git rev-parse --short HEAD` of the tree that produced the run
    /// (or `"unknown"` outside a git checkout).
    pub git_rev: String,
    /// Milliseconds since the Unix epoch at collection time.
    pub unix_time_ms: u64,
    /// The knob values the run was collected under (stringified).
    pub knobs: Vec<(String, String)>,
    /// One report per registry experiment, in registry order.
    pub reports: Vec<ExperimentReport>,
}

impl BenchResults {
    /// Assembles the document, stamping provenance (git revision and
    /// wall-clock time) from the environment.
    pub fn collect(knobs: Vec<(String, String)>, reports: Vec<ExperimentReport>) -> Self {
        let unix_time_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Self { schema_version: SCHEMA_VERSION, git_rev: git_rev(), unix_time_ms, knobs, reports }
    }

    /// The full JSON document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(self.schema_version as f64)),
            ("crate_version".into(), Json::Str(env!("CARGO_PKG_VERSION").to_string())),
            ("git_rev".into(), Json::Str(self.git_rev.clone())),
            ("unix_time_ms".into(), Json::Num(self.unix_time_ms as f64)),
            (
                "knobs".into(),
                Json::Obj(
                    self.knobs.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect(),
                ),
            ),
            ("experiments".into(), Json::Arr(self.reports.iter().map(|r| r.to_json()).collect())),
        ])
    }
}

/// Short git revision of the working tree, with a `-dirty` suffix when
/// uncommitted changes exist (so a record is never attributed to a
/// commit that lacks the code that produced it). `GIT_REV` env override
/// first; `"unknown"` when neither is available.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("GIT_REV") {
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--abbrev=7"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

// ---------------------------------------------------------------------------
// Human-readable rendering
// ---------------------------------------------------------------------------

/// Renders a report as the aligned text table the figure binaries print.
/// This is a *view* of the report: nothing is measured here.
pub fn render_text(report: &ExperimentReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {}: {} ==", report.id, report.title);
    let _ = writeln!(out, "axes: {}", report.axes);
    for m in &report.measurements {
        let _ = write!(out, "{:<44}", m.label);
        if let Some(r) = m.ratio {
            let _ = write!(out, " {r:>8.2}x");
            match m.paper_ratio {
                Some(p) => {
                    let _ = write!(out, "  (paper ~{p:.2}x)");
                }
                None => {
                    let _ = write!(out, "  {:14}", "");
                }
            }
            if let (Some(ours), Some(base)) = (m.median_throughput, m.baseline_throughput) {
                let _ = write!(out, "  [ours {ours:>12.0} ops/s vs {base:>12.0}]");
            }
        } else if let Some(t) = m.median_throughput {
            let _ = write!(out, " {t:>14.0} ops/s");
        }
        if let Some(lat) = &m.latency {
            let _ = write!(
                out,
                "  p50={}us p99={}us p999={}us max={}us",
                lat.p50_ns / 1_000,
                lat.p99_ns / 1_000,
                lat.p999_ns / 1_000,
                lat.max_ns / 1_000
            );
        }
        for (k, v) in &m.metrics {
            let _ = write!(out, "  {k}={v:.4}");
        }
        let _ = writeln!(out);
    }
    out
}

// ---------------------------------------------------------------------------
// Baseline comparison
// ---------------------------------------------------------------------------

/// One detected median-throughput regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Experiment id the row belongs to.
    pub experiment: String,
    /// The measurement's stable label.
    pub label: String,
    /// Median throughput in the current run (ops/s).
    pub current: f64,
    /// Median throughput in the baseline run (ops/s).
    pub baseline: f64,
    /// Percentage drop relative to the baseline (positive = slower).
    pub drop_pct: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {:.0} ops/s vs baseline {:.0} ops/s ({:.1}% drop)",
            self.experiment, self.label, self.current, self.baseline, self.drop_pct
        )
    }
}

/// Extracts every `(experiment id, label) -> median_throughput` pair of a
/// parsed `BENCH_results.json` document.
fn median_map(doc: &Json) -> Vec<((String, String), f64)> {
    let mut out = Vec::new();
    let Some(experiments) = doc.get("experiments").and_then(Json::as_arr) else {
        return out;
    };
    for exp in experiments {
        let Some(id) = exp.get("id").and_then(Json::as_str) else { continue };
        let Some(ms) = exp.get("measurements").and_then(Json::as_arr) else { continue };
        for m in ms {
            let (Some(label), Some(median)) = (
                m.get("label").and_then(Json::as_str),
                m.get("median_throughput").and_then(Json::as_f64),
            ) else {
                continue;
            };
            out.push(((id.to_string(), label.to_string()), median));
        }
    }
    out
}

/// The `schema_version` stamp of a parsed `BENCH_results.json`
/// document, when present and integral.
///
/// Comparing documents of different schema versions is meaningless —
/// labels, units, or row semantics may have changed shape — so
/// `bench_all --baseline` refuses the comparison outright (exit 2)
/// instead of silently joining whatever rows happen to share a label.
pub fn schema_version(doc: &Json) -> Option<u64> {
    let v = doc.get("schema_version")?.as_f64()?;
    (v.fract() == 0.0 && v >= 0.0).then_some(v as u64)
}

/// How many of `current`'s throughput rows have a matching
/// `(experiment id, label)` in `baseline` — i.e. the rows [`compare`]
/// actually gates — alongside `current`'s total. Unmatched rows are
/// skipped silently by [`compare`] (different scale, new or retired
/// configurations); callers should surface this count so the gate's real
/// coverage is visible instead of implied.
pub fn baseline_coverage(current: &Json, baseline: &Json) -> (usize, usize) {
    let base: std::collections::HashSet<(String, String)> =
        median_map(baseline).into_iter().map(|(k, _)| k).collect();
    let cur = median_map(current);
    let matched = cur.iter().filter(|(k, _)| base.contains(k)).count();
    (matched, cur.len())
}

/// Compares two parsed `BENCH_results.json` documents and returns every
/// measurement whose median throughput dropped by more than
/// `threshold_pct` percent relative to `baseline`.
///
/// Rows are joined on `(experiment id, label)`; rows present in only one
/// document (new or retired configurations, or a different `FULL`/`SMOKE`
/// scale) are skipped. Rows without a `median_throughput` (cost-model and
/// recovery-time experiments) never participate.
pub fn compare(current: &Json, baseline: &Json, threshold_pct: f64) -> Vec<Regression> {
    let base: std::collections::HashMap<_, _> = median_map(baseline).into_iter().collect();
    let mut regressions = Vec::new();
    for (key, cur) in median_map(current) {
        let Some(&b) = base.get(&key) else { continue };
        if b <= 0.0 {
            continue;
        }
        let drop_pct = 100.0 * (b - cur) / b;
        if drop_pct > threshold_pct {
            regressions.push(Regression {
                experiment: key.0,
                label: key.1,
                current: cur,
                baseline: b,
                drop_pct,
            });
        }
    }
    regressions.sort_by(|a, b| b.drop_pct.partial_cmp(&a.drop_pct).expect("finite drops"));
    regressions
}

//! The experiment registry: every figure/table of the paper's §6
//! evaluation as a function from a [`RunConfig`] to a structured
//! [`ExperimentReport`].
//!
//! The `src/bin/` harnesses are thin wrappers — each runs one entry of
//! [`registry`] and prints [`report::render_text`] of the result; the
//! `bench_all` binary runs the whole registry and serializes the reports
//! into `BENCH_results.json`. Adding an experiment means adding a
//! function here and a row to [`registry`]; every rendering and the
//! regression gate pick it up automatically.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use nvalloc::{AptStats, MemMode, NvDomain};
use nvmemcached::memtier::{run_cache, Request, RequestStream, RunResult, Workload};
use nvmemcached::{ClhtMemcached, NvMemcached, Router, ShardedNvMemcached, VolatileMemcached};
use pmem::{LatencyModel, Mode, PmemPool, PoolBuilder, TABLE1};

use workload::KeyDist;

use server::{Server, ServerConfig};

use crate::openloop::{run_open_loop, OpenLoopConfig};
use crate::report::{ExperimentReport, LatencySummary, Measurement};
use crate::{build, measure, prefill, run_mixed, DsKind, Flavor, MeasuredRun, RunConfig, RunStats};

/// One registry entry: a stable id, a human title, and the experiment
/// function.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSpec {
    /// Stable id used in `BENCH_results.json` and `bench_all --only`.
    pub id: &'static str,
    /// What the experiment reproduces.
    pub title: &'static str,
    /// Runs the experiment at the given scale.
    pub run: fn(&RunConfig) -> ExperimentReport,
}

/// Every experiment of the evaluation, in paper order (Table 1, then
/// Figures 5–11), plus the beyond-paper shard sweep (`fig12_shards`),
/// skew sweep (`fig13_skew`), open-loop latency sweep
/// (`fig14_latency`), live-resize timeline (`fig15_resize`),
/// live-reshard timeline (`fig16_reshard`), and allocator
/// microbenchmark (`alloc_micro`).
pub fn registry() -> [ExperimentSpec; 15] {
    [
        ExperimentSpec {
            id: "table1",
            title: "latency cost model + simulator calibration",
            run: table1,
        },
        ExperimentSpec { id: "fig5", title: "log-free vs log-based update throughput", run: fig5 },
        ExperimentSpec { id: "fig6", title: "throughput ratio vs NVRAM write latency", run: fig6 },
        ExperimentSpec { id: "fig7", title: "durable vs volatile linked list", run: fig7 },
        ExperimentSpec {
            id: "fig8",
            title: "link-and-persist vs link-cache contributions",
            run: fig8,
        },
        ExperimentSpec { id: "fig9a", title: "active-page-table hit rates", run: fig9a },
        ExperimentSpec {
            id: "fig9b",
            title: "NV-epochs vs intent-logged memory management",
            run: fig9b,
        },
        ExperimentSpec { id: "fig10", title: "recovery time vs structure size", run: fig10 },
        ExperimentSpec {
            id: "fig11",
            title: "NV-Memcached vs Memcached vs memcached-clht",
            run: fig11,
        },
        ExperimentSpec {
            id: "fig12_shards",
            title: "sharded NV-Memcached throughput and recovery vs shard count",
            run: fig12_shards,
        },
        ExperimentSpec {
            id: "fig13_skew",
            title: "sharded NV-Memcached under skewed traffic (dist x shard sweep)",
            run: fig13_skew,
        },
        ExperimentSpec {
            id: "fig14_latency",
            title: "open-loop request latency over TCP (CO-free percentiles)",
            run: fig14_latency,
        },
        ExperimentSpec {
            id: "fig15_resize",
            title: "throughput timeline across a live 4x grow on the sharded cache",
            run: fig15_resize,
        },
        ExperimentSpec {
            id: "fig16_reshard",
            title: "throughput timeline across a live 2->4 reshard, plus imbalance before/after",
            run: fig16_reshard,
        },
        ExperimentSpec {
            id: "alloc_micro",
            title: "allocator microbenchmark: TLAB bump vs shared hot path",
            run: alloc_micro,
        },
    ]
}

/// The configuration a ratio row was measured under.
#[derive(Debug, Clone, Copy)]
struct RowCfg {
    kind: DsKind,
    threads: usize,
    size: u64,
    latency_ns: u64,
}

/// Builds the standard ratio row: subject system vs comparison system,
/// carrying the subject's per-repeat spread and durable-write traffic.
fn ratio_row(
    label: String,
    row: RowCfg,
    ours: MeasuredRun,
    base: MeasuredRun,
    paper_ratio: Option<f64>,
) -> Measurement {
    Measurement {
        structure: Some(row.kind.name().to_string()),
        threads: Some(row.threads as u64),
        size: Some(row.size),
        latency_ns: Some(row.latency_ns),
        median_throughput: Some(ours.median),
        repeat_throughputs: ours.per_repeat.clone(),
        baseline_throughput: Some(base.median),
        ratio: Some(ours.median / base.median.max(1e-9)),
        paper_ratio,
        flush: Some(ours.flush),
        ..Measurement::new(label)
    }
}

/// The log-free flavor the paper's system selects at this thread count:
/// the link cache is enabled single-threaded and turned off at high
/// thread counts (§6.2).
fn logfree_flavor(threads: usize) -> Flavor {
    if threads == 1 {
        Flavor::LogFreeLc
    } else {
        Flavor::LogFree
    }
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

/// Table 1: the background latency cost model, plus a calibration check
/// that the simulator's injected batch pause costs what the model says
/// and that N write-backs + 1 fence cost one batch, not N.
pub fn table1(cfg: &RunConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table1",
        "cache/DRAM/NVRAM (projected) latencies and simulator calibration",
        "rows: memory technology (read/write ns); calibration: model ns vs measured ns per sync",
    );
    for t in TABLE1 {
        report.measurements.push(
            Measurement::new(t.name)
                .metric("read_ns", t.read_ns as f64)
                .metric("write_ns", t.write_ns as f64),
        );
    }
    report.measurements.push(
        Measurement::new("paper default NVRAM write latency")
            .metric("write_ns", LatencyModel::PAPER_DEFAULT.write_ns as f64),
    );

    let iters: u32 = if cfg.smoke { 500 } else { 2_000 };
    for write_ns in [125u64, 1_250, 12_500] {
        let pool =
            PoolBuilder::new(1 << 20).mode(Mode::Perf).latency(LatencyModel::new(write_ns)).build();
        let mut f = pool.flusher();
        let a = pool.heap_start();
        for _ in 0..100 {
            f.clwb(a);
            f.fence();
        }
        let t = Instant::now();
        for _ in 0..iters {
            f.clwb(a);
            f.fence();
        }
        let per = t.elapsed().as_nanos() as u64 / iters as u64;
        report.measurements.push(
            Measurement {
                latency_ns: Some(write_ns),
                ..Measurement::new(format!("calibration model={write_ns}ns"))
            }
            .metric("measured_ns_per_sync", per as f64),
        );
    }

    let pool = PoolBuilder::new(1 << 20).mode(Mode::Perf).latency(LatencyModel::new(1_250)).build();
    let mut f = pool.flusher();
    let iters: u32 = if cfg.smoke { 250 } else { 1_000 };
    for batch in [1usize, 4, 16] {
        let t = Instant::now();
        for _ in 0..iters {
            for i in 0..batch {
                f.clwb(pool.heap_start() + 64 * i);
            }
            f.fence();
        }
        let per = t.elapsed().as_nanos() as u64 / iters as u64;
        report.measurements.push(
            Measurement::new(format!("batch of {batch} write-backs"))
                .metric("batch_size", batch as f64)
                .metric("measured_ns_per_sync", per as f64),
        );
    }
    // Cost-model rows run no workload: no distribution applies.
    report.fill_dist("n/a", "n/a");
    report
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

/// Paper-reported Figure 5 ratios, indexed by (structure, size, threads).
fn fig5_paper_ratio(kind: DsKind, size: u64, threads: usize) -> Option<f64> {
    let table: &[(u64, f64, f64)] = match kind {
        // (size, 1-thread ratio, 8-thread ratio)
        DsKind::SkipList => {
            &[(128, 2.22, 2.56), (4096, 5.88, 6.67), (65_536, 7.69, 8.33), (4_194_304, 10.0, 9.09)]
        }
        DsKind::LinkedList => {
            &[(32, 2.17, 1.56), (128, 1.85, 1.17), (4096, 1.43, 1.23), (65_536, 1.09, 1.05)]
        }
        DsKind::HashTable => {
            &[(128, 3.03, 1.92), (4096, 3.03, 2.04), (65_536, 2.27, 1.56), (4_194_304, 1.32, 1.18)]
        }
        DsKind::Bst => {
            &[(128, 2.13, 1.28), (4096, 1.69, 1.22), (65_536, 1.14, 1.05), (4_194_304, 1.11, 1.02)]
        }
    };
    table
        .iter()
        .find(|&&(s, _, _)| s == size)
        .map(|&(_, t1, t8)| if threads == 1 { t1 } else { t8 })
}

/// Figure 5: update throughput of the log-free structures relative to
/// the redo-log-based implementations, across sizes, at 1 and 8 threads.
/// Workload: 50% inserts / 50% removes of random keys (§6.2).
pub fn fig5(cfg: &RunConfig) -> ExperimentReport {
    let latency = LatencyModel::new(cfg.nvram_ns);
    let mut report = ExperimentReport::new(
        "fig5",
        "log-free vs log-based update throughput (50% insert / 50% remove)",
        "x: structure size per structure; y: throughput ratio log-free/log-based at 1 and 8 threads",
    );
    // Non-default TLAB setting is part of the row label, so a `TLAB=0`
    // A/B run never joins against the default baseline (the fill_dist
    // convention for non-default distributions).
    let tl = if cfg.tlab { "" } else { " tlab=0" };
    for kind in [DsKind::SkipList, DsKind::LinkedList, DsKind::HashTable, DsKind::Bst] {
        for size in kind.fig5_sizes(cfg) {
            for threads in [1usize, 8] {
                let flavor = logfree_flavor(threads);
                let ours = measure(
                    || {
                        let mut inst = build(kind, flavor, size, Mode::Perf, latency);
                        inst.tlab = cfg.tlab;
                        inst
                    },
                    threads,
                    size,
                    100, // updates only: 50/50 insert/remove
                    cfg,
                );
                // The log-based baseline allocates through the intent
                // log, so the TLAB knob does not apply to it.
                let base = measure(
                    || build(kind, Flavor::LogBased, size, Mode::Perf, latency),
                    threads,
                    size,
                    100,
                    cfg,
                );
                report.measurements.push(ratio_row(
                    format!("{} size={size} threads={threads}{tl}", kind.name()),
                    RowCfg { kind, threads, size, latency_ns: cfg.nvram_ns },
                    ours,
                    base,
                    fig5_paper_ratio(kind, size, threads),
                ));
            }
        }
    }
    report.fill_dist(&cfg.dist.label(), &cfg.value.label());
    report
}

// ---------------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------------

/// Figure 6: throughput relative to the log-based implementation as
/// NVRAM write latency grows (125 ns → 12.5 µs). Linked list, 1024
/// elements — small enough that reads are served from cache, so the
/// sync-count ratio dominates (§6.2).
pub fn fig6(cfg: &RunConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig6",
        "throughput ratio vs NVRAM write latency (linked list, 1024 elements)",
        "x: injected NVRAM write latency (ns); y: throughput ratio log-free/log-based",
    );
    let size = 1024u64.min(cfg.size_cap());
    let paper: &[(u64, f64, f64)] = &[(125, 1.20, 1.13), (1_250, 2.15, 1.81), (12_500, 4.79, 4.12)];
    for &(ns, p1, p8) in paper {
        let latency = LatencyModel::new(ns);
        for (threads, paper) in [(1usize, p1), (8usize, p8)] {
            let ours = measure(
                || build(DsKind::LinkedList, logfree_flavor(threads), size, Mode::Perf, latency),
                threads,
                size,
                100,
                cfg,
            );
            let base = measure(
                || build(DsKind::LinkedList, Flavor::LogBased, size, Mode::Perf, latency),
                threads,
                size,
                100,
                cfg,
            );
            report.measurements.push(ratio_row(
                format!("latency={ns}ns threads={threads}"),
                RowCfg { kind: DsKind::LinkedList, threads, size, latency_ns: ns },
                ours,
                base,
                Some(paper),
            ));
        }
    }
    report.fill_dist(&cfg.dist.label(), &cfg.value.label());
    report
}

// ---------------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------------

/// Figure 7: the durable linked list relative to an NVRAM-oblivious
/// (volatile) implementation. The durability overhead is constant per
/// operation, so the ratio approaches 1 as traversal dominates (§6.2).
pub fn fig7(cfg: &RunConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig7",
        "durable vs volatile (NVRAM-oblivious) linked list",
        "x: list size; y: throughput ratio durable/volatile at 1 and 8 threads",
    );
    let paper: &[(u64, f64, f64)] =
        &[(32, 0.28, 0.37), (128, 0.47, 0.52), (4096, 0.65, 0.81), (65_536, 0.83, 0.86)];
    let latency = LatencyModel::PAPER_DEFAULT;
    for &(size, p1, p8) in paper {
        if size > cfg.size_cap() {
            continue;
        }
        for (threads, paper) in [(1usize, p1), (8usize, p8)] {
            let durable = measure(
                || build(DsKind::LinkedList, logfree_flavor(threads), size, Mode::Perf, latency),
                threads,
                size,
                100,
                cfg,
            );
            let volatile = measure(
                || {
                    build(
                        DsKind::LinkedList,
                        Flavor::LogFree,
                        size,
                        Mode::Volatile,
                        LatencyModel::ZERO,
                    )
                },
                threads,
                size,
                100,
                cfg,
            );
            report.measurements.push(ratio_row(
                format!("size={size} threads={threads}"),
                RowCfg { kind: DsKind::LinkedList, threads, size, latency_ns: latency.write_ns },
                durable,
                volatile,
                Some(paper),
            ));
        }
    }
    report.fill_dist(&cfg.dist.label(), &cfg.value.label());
    report
}

// ---------------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------------

/// Figure 8: isolating the contribution of link-and-persist (LP) and the
/// link cache (LC). Both log-free variants normalised to the log-based
/// implementation, all using identical (NV-epochs) memory management;
/// 1024-element structures, 100% updates (§6.3).
pub fn fig8(cfg: &RunConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig8",
        "link-and-persist (LP) vs link cache (LC), identical memory management",
        "rows: structure x threads; y: throughput normalised to log-based (NV-epochs everywhere)",
    );
    let size = 1024u64.min(cfg.size_cap());
    let latency = LatencyModel::PAPER_DEFAULT;
    // (kind, threads, paper LP ratio, paper LC ratio)
    let paper: &[(DsKind, usize, f64, f64)] = &[
        (DsKind::HashTable, 1, 1.90, 2.73),
        (DsKind::HashTable, 8, 1.61, 1.63),
        (DsKind::SkipList, 1, 9.90, 10.64),
        (DsKind::SkipList, 8, 8.44, 7.74),
        (DsKind::LinkedList, 1, 1.17, 1.19),
        (DsKind::LinkedList, 8, 1.04, 1.05),
        (DsKind::Bst, 1, 1.49, 1.49),
        (DsKind::Bst, 8, 1.02, 0.96),
    ];
    for &(kind, threads, p_lp, p_lc) in paper {
        let base = measure(
            || build(kind, Flavor::LogBasedNvMem, size, Mode::Perf, latency),
            threads,
            size,
            100,
            cfg,
        );
        let lp = measure(
            || build(kind, Flavor::LogFree, size, Mode::Perf, latency),
            threads,
            size,
            100,
            cfg,
        );
        let lc = measure(
            || build(kind, Flavor::LogFreeLc, size, Mode::Perf, latency),
            threads,
            size,
            100,
            cfg,
        );
        let row = RowCfg { kind, threads, size, latency_ns: latency.write_ns };
        report.measurements.push(ratio_row(
            format!("{} threads={threads} LP", kind.name()),
            row,
            lp,
            base.clone(),
            Some(p_lp),
        ));
        report.measurements.push(ratio_row(
            format!("{} threads={threads} LC", kind.name()),
            row,
            lc,
            base,
            Some(p_lc),
        ));
    }
    report.fill_dist(&cfg.dist.label(), &cfg.value.label());
    report
}

// ---------------------------------------------------------------------------
// Figure 9a
// ---------------------------------------------------------------------------

/// Figure 9a: active page table hit rates for allocations (inserts) and
/// deallocations (deletes) as the structure grows. Skip list, 4 KiB
/// pages, trim threshold 16 (§6.3).
pub fn fig9a(cfg: &RunConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig9a",
        "APT hit rates (skip list, 4 KiB pages, trim at 16)",
        "x: structure size; y: insert (allocation) and delete (unlink) APT hit rates",
    );
    let mut sizes: Vec<u64> = vec![1_024, 16_384, 65_536, 262_144];
    if cfg.full {
        sizes.push(1_048_576);
        sizes.push(4_194_304);
    }
    // Hit rates depend on reclamation churn accumulated over the run, so
    // this experiment uses twice the standard timed phase (the historical
    // default: 400 ms against the global 200 ms). Documented in
    // BENCHMARKS.md.
    let ms = cfg.measure_ms * 2;
    for size in cfg.cap_sizes(sizes) {
        let mut inst =
            build(DsKind::SkipList, Flavor::LogFree, size, Mode::Perf, LatencyModel::ZERO);
        // The paper's APT hit-rate question is vacuous under TLAB bump
        // allocation (leased allocations never consult the APT), so this
        // figure pins the pre-TLAB shared path regardless of the knob.
        inst.tlab = false;
        prefill(&inst, size);
        let stats = run_mixed(&inst, 4, Duration::from_millis(ms), size, 100, cfg.dist, 7);
        report.measurements.push(
            Measurement {
                structure: Some(DsKind::SkipList.name().to_string()),
                threads: Some(4),
                size: Some(size),
                median_throughput: Some(stats.throughput()),
                repeat_throughputs: vec![stats.throughput()],
                flush: Some(stats.flush),
                ..Measurement::new(format!("skip-list size={size}"))
            }
            .apt_metrics(&stats.apt),
        );
    }
    report.fill_dist(&cfg.dist.label(), &cfg.value.label());
    report
}

// ---------------------------------------------------------------------------
// Figure 9b
// ---------------------------------------------------------------------------

/// Paper-reported Figure 9b ratios (NV-epochs over intent logging).
fn fig9b_paper_ratio(kind: DsKind, size: u64) -> Option<f64> {
    let table: &[(u64, f64)] = match kind {
        DsKind::HashTable => &[(128, 1.52), (4096, 1.46), (65_536, 1.02), (4_194_304, 0.90)],
        DsKind::Bst => &[(128, 1.61), (4096, 1.38), (65_536, 1.03), (4_194_304, 1.10)],
        DsKind::SkipList => &[(128, 3.89), (4096, 3.18), (65_536, 2.00), (4_194_304, 1.37)],
        DsKind::LinkedList => &[(32, 1.45), (128, 1.31), (4096, 1.07), (65_536, 1.01)],
    };
    table.iter().find(|&&(s, _)| s == size).map(|&(_, r)| r)
}

/// Figure 9b: throughput improvement attributable to NV-epochs alone —
/// the same log-free structure with NV-epochs memory management versus
/// traditional per-operation intent logging (§5.1, §6.3); 4 threads.
pub fn fig9b(cfg: &RunConfig) -> ExperimentReport {
    let latency = LatencyModel::new(cfg.nvram_ns);
    let mut report = ExperimentReport::new(
        "fig9b",
        "throughput improvement due to NV-epochs (vs per-op intent logging)",
        "x: structure size per structure; y: throughput ratio NV-epochs/intent-log at 4 threads",
    );
    // As in fig5: a non-default TLAB setting relabels the rows.
    let tl = if cfg.tlab { "" } else { " tlab=0" };
    for kind in [DsKind::HashTable, DsKind::Bst, DsKind::SkipList, DsKind::LinkedList] {
        for size in kind.fig5_sizes(cfg) {
            let nv = measure(
                || {
                    let mut inst = build(kind, Flavor::LogFree, size, Mode::Perf, latency);
                    inst.tlab = cfg.tlab;
                    inst
                },
                4,
                size,
                100,
                cfg,
            );
            // Intent logging always allocates through the shared path,
            // so the TLAB knob does not apply to the baseline.
            let logged = measure(
                || {
                    let mut inst = build(kind, Flavor::LogFree, size, Mode::Perf, latency);
                    inst.mem_mode = MemMode::IntentLog;
                    inst
                },
                4,
                size,
                100,
                cfg,
            );
            report.measurements.push(ratio_row(
                format!("{} size={size}{tl}", kind.name()),
                RowCfg { kind, threads: 4, size, latency_ns: cfg.nvram_ns },
                nv,
                logged,
                fig9b_paper_ratio(kind, size),
            ));
        }
    }
    report.fill_dist(&cfg.dist.label(), &cfg.value.label());
    report
}

// ---------------------------------------------------------------------------
// Figure 10
// ---------------------------------------------------------------------------

/// Crashes one structure mid-workload and times its recovery (§6.4):
/// bring the structure to a consistent state + free
/// allocated-but-unreachable nodes.
fn fig10_measure(kind: DsKind, size: u64, cfg: &RunConfig) -> (Duration, u64, u64) {
    let inst = build(kind, Flavor::LogFree, size, Mode::CrashSim, LatencyModel::ZERO);
    prefill(&inst, size);
    // Touch the structure so active pages and in-flight deletions exist.
    let _ = run_mixed(&inst, 2, Duration::from_millis(cfg.crash_work_ms), size, 100, cfg.dist, 3);
    let pool = Arc::clone(&inst.pool);
    drop(inst);
    // SAFETY: all workers have been joined by run_mixed.
    unsafe { pool.simulate_crash().expect("crash-sim pool") };

    let t = Instant::now();
    let domain = NvDomain::attach(Arc::clone(&pool));
    let ops = logfree::LinkOps::new(Arc::clone(&pool), None);
    let (fixups, leak_report) = match kind {
        DsKind::LinkedList => {
            let ds = logfree::LinkedList::attach(&domain, 1, ops);
            let mut f = pool.flusher();
            let (_d, u) = ds.recover(&mut f);
            // Second approach (§5.5): one traversal + set membership.
            let reachable = ds.collect_reachable();
            let leak_report = domain.recover_leaks(|a| reachable.contains(&a));
            (u, leak_report)
        }
        DsKind::HashTable => {
            let ds = logfree::HashTable::attach(&domain, 1, ops);
            let mut f = pool.flusher();
            let (_d, u) = ds.recover(&mut f);
            let leak_report = domain.recover_leaks(|a| ds.contains_node_at(a));
            (u, leak_report)
        }
        DsKind::SkipList => {
            let ds = logfree::SkipList::attach(&domain, 1, ops);
            let mut f = pool.flusher();
            let (_d, u) = ds.recover(&mut f);
            let leak_report = domain.recover_leaks(|a| ds.contains_node_at(a));
            (u, leak_report)
        }
        DsKind::Bst => {
            let ds = logfree::Bst::attach(&domain, 1, ops);
            let mut f = pool.flusher();
            let (_d, u) = ds.recover(&mut f);
            let leak_report = domain.recover_leaks(|a| ds.contains_node_at(a));
            (u, leak_report)
        }
    };
    (t.elapsed(), fixups, leak_report.leaks_freed)
}

/// Figure 10: data structure recovery times as a function of size —
/// stop updates at an arbitrary point, drop everything not durably
/// written back, then time recovery + leak reclamation (§6.4).
pub fn fig10(cfg: &RunConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig10",
        "recovery time vs structure size",
        "x: structure size; y: recovery time (ns), with fix-up and leak counts",
    );
    for kind in [DsKind::HashTable, DsKind::Bst, DsKind::SkipList, DsKind::LinkedList] {
        let mut sizes: Vec<u64> = match kind {
            DsKind::LinkedList => vec![32, 128, 4096, 65_536],
            _ => vec![128, 4096, 65_536],
        };
        if cfg.full && kind != DsKind::LinkedList {
            sizes.push(4_194_304);
        }
        for size in cfg.cap_sizes(sizes) {
            let (dur, fixups, leaks) = fig10_measure(kind, size, cfg);
            report.measurements.push(
                Measurement {
                    structure: Some(kind.name().to_string()),
                    size: Some(size),
                    ..Measurement::new(format!("{} size={size}", kind.name()))
                }
                .metric("recovery_ns", dur.as_nanos() as f64)
                .metric("fixups", fixups as f64)
                .metric("leaks_freed", leaks as f64),
            );
        }
    }
    report.fill_dist(&cfg.dist.label(), &cfg.value.label());
    report
}

// ---------------------------------------------------------------------------
// Figure 11
// ---------------------------------------------------------------------------

const FIG11_THREADS: usize = 4; // both server and client default to 4 (§6.5)

/// Create-time bucket count for the durable caches in every cache
/// experiment. Deliberately a small fixed table, **not** sized to the
/// key range: since the incremental-resize work the capacity knob is
/// gone — the caches grow themselves (4x lazy rehashes) as the warm-up
/// fills them, which is exactly how a long-running production cache
/// reaches its steady-state geometry. The volatile CLHT model keeps its
/// create-time sizing (stock CLHT resizes internally; modeling that is
/// out of scope for a baseline that exists for throughput comparison).
const CREATE_BUCKETS: usize = 1024;

fn fig11_pool_bytes(key_range: u64) -> usize {
    ((key_range * 256).max(64 << 20) as usize) + (64 << 20)
}

/// Runs one memtier timed phase `repeats` times over the same warmed
/// cache and returns the median repetition plus every per-repeat
/// throughput. Short in-process runs are scheduling-noisy; the median
/// keeps the fig11/fig12 rows stable enough for the CI regression gate.
fn median_memtier(
    repeats: usize,
    mut run: impl FnMut() -> RunResult,
) -> (RunResult, usize, Vec<f64>) {
    let runs: Vec<RunResult> = (0..repeats.max(1)).map(|_| run()).collect();
    let throughputs: Vec<f64> = runs.iter().map(RunResult::throughput).collect();
    let mut order: Vec<usize> = (0..runs.len()).collect();
    order.sort_by(|&a, &b| throughputs[a].partial_cmp(&throughputs[b]).expect("finite throughput"));
    let median = order[order.len() / 2];
    (runs[median], median, throughputs)
}

/// Figure 11: NV-Memcached versus volatile Memcached and memcached-clht.
/// Left plot: throughput under a 1:4 set:get mix across key ranges — the
/// paper reports *no notable drop* between the three systems. Right
/// plot: warm-up time of the volatile systems versus NV-Memcached's
/// recovery time — up to three orders of magnitude faster (§6.5).
pub fn fig11(cfg: &RunConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig11",
        "NV-Memcached vs Memcached vs memcached-clht (1:4 set:get)",
        "x: key range; y: requests/s per system; metrics: get hit rate, warm-up vs recovery ms",
    );
    let mut ranges: Vec<u64> = vec![1_000, 10_000, 100_000];
    if cfg.full {
        ranges.push(1_000_000);
    }
    if cfg.smoke {
        ranges.truncate(1);
    }
    let ops = cfg.memtier_ops;
    for &range in &ranges {
        let wl = Workload::paper(range, 42).with_dist(cfg.dist).with_value(cfg.value);

        // --- stock memcached model ---
        let v = VolatileMemcached::new();
        let t = Instant::now();
        for k in wl.warmup_keys() {
            v.set(k, k);
        }
        let warm_v = t.elapsed();
        let (r_v, _, reps_v) =
            median_memtier(cfg.repeats, || run_cache(&v, FIG11_THREADS, ops, wl));
        report.measurements.push(
            Measurement {
                structure: Some("memcached".to_string()),
                threads: Some(FIG11_THREADS as u64),
                size: Some(range),
                median_throughput: Some(r_v.throughput()),
                repeat_throughputs: reps_v,
                ..Measurement::new(format!("memcached range={range}"))
            }
            .metric("get_hit_rate", r_v.hit_rate())
            .metric("warmup_ms", warm_v.as_secs_f64() * 1e3),
        );

        // --- memcached-clht model ---
        let pool = PoolBuilder::new(fig11_pool_bytes(range)).mode(Mode::Volatile).build();
        let c = ClhtMemcached::create(pool, range as usize).expect("pool sized");
        let t = Instant::now();
        {
            let mut ctx = c.register();
            for k in wl.warmup_keys() {
                c.set(&mut ctx, k, k).expect("pool sized");
            }
        }
        let warm_c = t.elapsed();
        let (r_c, _, reps_c) =
            median_memtier(cfg.repeats, || run_cache(&c, FIG11_THREADS, ops, wl));
        report.measurements.push(
            Measurement {
                structure: Some("memcached-clht".to_string()),
                threads: Some(FIG11_THREADS as u64),
                size: Some(range),
                median_throughput: Some(r_c.throughput()),
                repeat_throughputs: reps_c,
                ..Measurement::new(format!("memcached-clht range={range}"))
            }
            .metric("get_hit_rate", r_c.hit_rate())
            .metric("warmup_ms", warm_c.as_secs_f64() * 1e3),
        );

        // --- NV-Memcached ---
        let pool = PoolBuilder::new(fig11_pool_bytes(range))
            .mode(Mode::CrashSim)
            .latency(LatencyModel::ZERO)
            .build();
        let mc = NvMemcached::create(Arc::clone(&pool), CREATE_BUCKETS, usize::MAX / 2, true)
            .expect("pool sized");
        {
            let mut ctx = mc.register();
            for k in wl.warmup_keys() {
                mc.set(&mut ctx, k, k).expect("pool sized");
            }
        }
        // Durable-write traffic per repetition, via pool-level snapshot
        // pairs (warm-up's flushers have all dropped by now; each timed
        // phase joins its workers, dropping theirs).
        let mut flushes = Vec::with_capacity(cfg.repeats);
        let (r_n, median_rep, reps_n) = median_memtier(cfg.repeats, || {
            let flush_before = pool.flush_stats();
            let r = run_cache(&mc, FIG11_THREADS, ops, wl);
            flushes.push(pool.flush_stats().diff(flush_before));
            r
        });
        let flush_run = flushes[median_rep];
        // Crash it and time recovery.
        drop(mc);
        // SAFETY: all workers joined by run_cache.
        unsafe { pool.simulate_crash().expect("crash-sim pool") };
        let t = Instant::now();
        let (mc2, _report) = NvMemcached::recover(Arc::clone(&pool), usize::MAX / 2);
        let recover_n = t.elapsed();
        let _ = mc2.len();
        report.measurements.push(
            Measurement {
                structure: Some("nv-memcached".to_string()),
                threads: Some(FIG11_THREADS as u64),
                size: Some(range),
                median_throughput: Some(r_n.throughput()),
                repeat_throughputs: reps_n,
                flush: Some(flush_run),
                ..Measurement::new(format!("nv-memcached range={range}"))
            }
            .metric("get_hit_rate", r_n.hit_rate())
            .metric("recovery_ms", recover_n.as_secs_f64() * 1e3),
        );
    }
    report.fill_dist(&cfg.dist.label(), &cfg.value.label());
    report
}

// ---------------------------------------------------------------------------
// Figure 12 (beyond the paper): shard sweep
// ---------------------------------------------------------------------------

/// Per-shard pool size: the key range splits across shards, with a floor
/// so tiny shards still fit their bucket regions and churn slack.
fn fig12_pool_bytes(key_range: u64, n_shards: usize) -> usize {
    ((key_range * 320 / n_shards as u64).max(16 << 20) as usize) + (16 << 20)
}

fn fig12_pools(key_range: u64, n_shards: usize) -> Vec<Arc<PmemPool>> {
    (0..n_shards)
        .map(|_| {
            PoolBuilder::new(fig12_pool_bytes(key_range, n_shards))
                .mode(Mode::CrashSim)
                .latency(LatencyModel::ZERO)
                .build()
        })
        .collect()
}

/// Figure 12 (beyond the paper): the sharded NV-Memcached under the same
/// 1:4 set:get mix as Figure 11, sweeping the shard count. Each shard
/// owns its own pool/domain/table/evict queue, so throughput should rise
/// with the shard count while single-shard behavior matches Figure 11's
/// NV-Memcached; recovery is one thread per shard, so recovery time
/// should *fall* as shards shrink. Medians over `REPEATS` fresh
/// cache+warm-up builds per shard count.
pub fn fig12_shards(cfg: &RunConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig12_shards",
        "sharded NV-Memcached: throughput and parallel recovery vs shard count (1:4 set:get)",
        "x: shard count; y: requests/s and recovery ms; shard=1 equals the unsharded cache",
    );
    // The key range is NOT smoke-capped: keeping the label identical
    // across scales lets the CI smoke gate join these rows against the
    // committed CI-sized baseline (request counts shrink instead).
    let range: u64 = 100_000;
    let ops = cfg.memtier_ops;
    let wl = Workload::paper(range, 42).with_dist(cfg.dist).with_value(cfg.value);
    for n_shards in cfg.shard_counts() {
        // Fresh pools + cache + warm-up per repetition (the paper's
        // fresh-instance methodology); each repetition also crashes and
        // times the parallel recovery.
        let mut extras = Vec::with_capacity(cfg.repeats);
        let (r, median_rep, throughputs) = median_memtier(cfg.repeats, || {
            let pools = fig12_pools(range, n_shards);
            let mc = ShardedNvMemcached::create(&pools, CREATE_BUCKETS, usize::MAX / 2, true)
                .expect("pools sized");
            {
                let mut ctx = mc.register();
                for k in wl.warmup_keys() {
                    mc.set(&mut ctx, k, k).expect("pools sized");
                }
            }
            let flush_before = mc.flush_stats();
            let r = run_cache(&mc, FIG11_THREADS, ops, wl);
            let flush_run = mc.flush_stats().diff(flush_before);
            // Crash every shard and time the parallel recovery.
            drop(mc);
            for pool in &pools {
                // SAFETY: all workers joined by run_cache.
                unsafe { pool.simulate_crash().expect("crash-sim pool") };
            }
            let t = Instant::now();
            let (mc2, _report) =
                ShardedNvMemcached::recover(&pools, usize::MAX / 2).expect("geometry recorded");
            let recovery = t.elapsed();
            let _ = mc2.len();
            extras.push((flush_run, recovery));
            r
        });
        let (flush_run, recovery) = extras[median_rep];
        report.measurements.push(
            Measurement {
                structure: Some("sharded-nv-memcached".to_string()),
                threads: Some(FIG11_THREADS as u64),
                size: Some(range),
                median_throughput: Some(r.throughput()),
                repeat_throughputs: throughputs,
                flush: Some(flush_run),
                ..Measurement::new(format!("shards={n_shards} range={range}"))
            }
            .metric("shards", n_shards as f64)
            .metric("get_hit_rate", r.hit_rate())
            .metric("recovery_ms", recovery.as_secs_f64() * 1e3),
        );
    }
    report.fill_dist(&cfg.dist.label(), &cfg.value.label());
    report
}

// ---------------------------------------------------------------------------
// Figure 13 (beyond the paper): skew sweep
// ---------------------------------------------------------------------------

/// Max/mean request imbalance over the per-shard tallies: 1.0 means
/// perfectly balanced routing, `n_shards` means every request landed on
/// one shard. An empty window reports 1.0 (balanced vacuously).
fn imbalance(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 || counts.is_empty() {
        return 1.0;
    }
    let mean = total as f64 / counts.len() as f64;
    counts.iter().copied().max().unwrap_or(0) as f64 / mean
}

/// Figure 13 (beyond the paper): the sharded cache under *skewed*
/// traffic. The fixed Figure 11 workload (1:4 set:get, 100k key range)
/// swept across key distributions {uniform, zipf-0.99,
/// zipf-scrambled-0.99, hotspot-10/90} x shard counts {1, 4}, reporting
/// throughput, get hit rate, and the per-shard request imbalance
/// (max/mean over the new routing tallies). Skew is where sharding is
/// stressed hardest: the router hashes keys, so even zipf-hot keys
/// spread across shards, but each hot *key* still serializes on its
/// home shard — the imbalance metric makes that visible while the hash
/// keeps it bounded. The scrambled-zipf row decorrelates rank from key
/// id (hot keys scattered over the whole range instead of clustered at
/// small ids), matching how YCSB-style generators exercise hashing.
pub fn fig13_skew(cfg: &RunConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig13_skew",
        "sharded NV-Memcached under skewed traffic: throughput, hit rate, shard imbalance",
        "rows: distribution x shard count (fig11 workload, fixed 100k range); \
         y: requests/s, get hit rate, max/mean per-shard request imbalance",
    );
    // Fixed range across scales, like fig12, so the CI smoke gate joins
    // these rows against the committed CI-sized baseline.
    let range: u64 = 100_000;
    let ops = cfg.memtier_ops;
    for dist in
        [KeyDist::Uniform, KeyDist::ZIPF_99, KeyDist::ZIPF_SCRAMBLED_99, KeyDist::HOTSPOT_10_90]
    {
        let wl = Workload::paper(range, 42).with_dist(dist).with_value(cfg.value);
        for n_shards in [1usize, 4] {
            // Fresh pools + cache + warm-up per repetition (the paper's
            // fresh-instance methodology); the shard tallies are reset
            // after warm-up so imbalance covers only the timed window.
            let mut extras = Vec::with_capacity(cfg.repeats);
            let (r, median_rep, throughputs) = median_memtier(cfg.repeats, || {
                let pools = fig12_pools(range, n_shards);
                let mc = ShardedNvMemcached::create(&pools, CREATE_BUCKETS, usize::MAX / 2, true)
                    .expect("pools sized");
                {
                    let mut ctx = mc.register();
                    for k in wl.warmup_keys() {
                        mc.set(&mut ctx, k, k).expect("pools sized");
                    }
                }
                mc.reset_shard_requests();
                let flush_before = mc.flush_stats();
                let r = run_cache(&mc, FIG11_THREADS, ops, wl);
                extras.push((mc.flush_stats().diff(flush_before), mc.shard_requests()));
                r
            });
            let (flush_run, shard_reqs) = &extras[median_rep];
            report.measurements.push(
                Measurement {
                    structure: Some("sharded-nv-memcached".to_string()),
                    threads: Some(FIG11_THREADS as u64),
                    size: Some(range),
                    median_throughput: Some(r.throughput()),
                    repeat_throughputs: throughputs,
                    flush: Some(*flush_run),
                    dist: Some(dist.label()),
                    ..Measurement::new(format!(
                        "dist={} shards={n_shards} range={range}",
                        dist.label()
                    ))
                }
                .metric("shards", n_shards as f64)
                .metric("get_hit_rate", r.hit_rate())
                .metric("shard_imbalance", imbalance(shard_reqs))
                .metric("shard_requests_max", shard_reqs.iter().copied().max().unwrap_or(0) as f64),
            );
        }
    }
    // Rows carry their dist already; this stamps the ` val=` suffix when
    // a non-default VAL_DIST changed the request streams.
    report.fill_dist(&cfg.dist.label(), &cfg.value.label());
    report
}

// ---------------------------------------------------------------------------
// Figure 14 (beyond the paper): open-loop latency over real sockets
// ---------------------------------------------------------------------------

/// Figure 14 (beyond the paper): request latency of the sharded
/// NV-Memcached measured the way a client population would experience
/// it — over real loopback TCP through the memcached-protocol server,
/// under *open-loop* Poisson arrivals, with every latency sample taken
/// from the request's **scheduled** send time (coordinated-omission
/// free; see [`crate::openloop`]).
///
/// Sweeps offered load x connections x shard count over the fixed
/// Figure 11 workload (1:4 set:get, 10k key range). By default the
/// event-driven server multiplexes the whole connection sweep
/// (`{4, 16, 64}`, plus 256 under `FULL=1`) over **workers = shard
/// count** — the fan-in the blocking model could never reach — and the
/// open-loop client multiplexes its side the same way, so 256
/// simulated clients cost 4 driver threads. `EVENT_LOOP=0` pins the
/// blocking thread-per-connection pair (workers = connections) for A/B
/// comparison. Each (shards, conns) point starts a fresh warmed cache
/// and server, drains the full arrival schedule, and reports achieved
/// rps plus the merged CO-free latency histogram as p50/p90/p99/p999.
/// `LOAD_RPS` / `CONNS` pin a single load or connection count for
/// manual sweeps (0 = the defaults).
pub fn fig14_latency(cfg: &RunConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig14_latency",
        "open-loop request latency over TCP: offered load x connections x shards",
        "rows: offered rps x connections x shard count (fig11 workload, fixed 10k range); \
         y: achieved rps and CO-free latency percentiles (ns, from scheduled send time)",
    );
    // Fixed range across scales (like fig12/fig13): identical labels let
    // the CI smoke gate join these rows against the committed baseline —
    // the schedule *duration* shrinks instead.
    let range: u64 = 10_000;
    let wl = Workload::paper(range, 42).with_dist(cfg.dist);
    let duration = Duration::from_millis(cfg.measure_ms);
    let loads: Vec<f64> = if cfg.load_rps != 0 {
        vec![cfg.load_rps as f64]
    } else if cfg.full {
        vec![2_000.0, 10_000.0, 50_000.0]
    } else {
        vec![2_000.0, 10_000.0]
    };
    let event_loop = cfg.event_loop && server::sys::SUPPORTED;
    // The blocking model registers per-shard contexts per *connection
    // served* — and epoch slots are never recycled (`nvalloc::epoch`,
    // 64 per domain) — so its sweep must stay at the pre-event-loop
    // connection counts. The event loop registers per *worker* and is
    // immune; that asymmetry is half the point of the experiment.
    let conn_counts: Vec<usize> = if cfg.conns != 0 {
        let c = cfg.conns as usize;
        vec![if event_loop { c } else { c.min(16) }]
    } else if !event_loop {
        vec![1, 4]
    } else if cfg.full {
        vec![4, 16, 64, 256]
    } else {
        vec![4, 16, 64]
    };
    for n_shards in [1usize, 4] {
        for &conns in &conn_counts {
            // One server per (shards, conns) point, reused across loads:
            // the cache is warmed once and the load sweep runs lightest
            // first, so each row starts from the same steady state.
            let pools = fig12_pools(range, n_shards);
            let mc = ShardedNvMemcached::create(&pools, CREATE_BUCKETS, usize::MAX / 2, true)
                .expect("pools sized");
            {
                let mut ctx = mc.register();
                for k in wl.warmup_keys() {
                    mc.set(&mut ctx, k, k).expect("pools sized");
                }
            }
            // Event loop: workers = shard count (`None`), conns ≫
            // workers is the whole point. Blocking fallback: it serves
            // one connection per worker to completion, so anything less
            // than workers = conns would deadlock the sweep.
            let workers = if event_loop { None } else { Some(conns) };
            let server = Server::start(
                Arc::new(mc),
                ServerConfig { workers, event_loop, ..ServerConfig::default() },
            )
            .expect("bind loopback");
            for &offered in &loads {
                let r = run_open_loop(&OpenLoopConfig {
                    addr: server.local_addr(),
                    connections: conns,
                    offered_rps: offered,
                    duration,
                    workload: wl,
                    seed: 1914,
                    // Four driver threads multiplex the whole sweep
                    // (0 = thread-per-connection when pinned blocking).
                    client_threads: if event_loop { conns.min(4) } else { 0 },
                })
                .expect("open-loop run over loopback");
                report.measurements.push(
                    Measurement {
                        structure: Some("sharded-nv-memcached".to_string()),
                        threads: Some(conns as u64),
                        size: Some(range),
                        median_throughput: Some(r.achieved_rps()),
                        repeat_throughputs: vec![r.achieved_rps()],
                        latency: Some(LatencySummary::from_histogram(&r.latency)),
                        ..Measurement::new(format!(
                            "load={offered:.0} conns={conns} shards={n_shards}"
                        ))
                    }
                    .metric("offered_rps", offered)
                    .metric("shards", n_shards as f64)
                    .metric("connections", conns as f64)
                    .metric("server_workers", workers.unwrap_or(n_shards) as f64)
                    .metric("event_loop", u64::from(event_loop) as f64)
                    .metric("requests", r.sent as f64)
                    .metric("get_hit_rate", r.hit_rate()),
                );
            }
            server.shutdown();
        }
    }
    // The wire dialect carries u64 values verbatim, so the modeled
    // value-size distribution does not apply here.
    report.fill_dist(&cfg.dist.label(), "n/a");
    report
}

// ---------------------------------------------------------------------------
// Figure 15 (beyond the paper): live resize timeline
// ---------------------------------------------------------------------------

/// Figure 15 (beyond the paper): the sharded cache across a **live 4x
/// grow**. Workers hammer the Figure 11 mix while a separate thread
/// triggers `grow(4)` and drives the migration to completion; completed
/// requests are sampled in fixed wall-clock windows, and every window
/// overlapping the `[grow start, migration done]` interval is marked
/// `during_resize`. The claim under test is the tentpole's: migration is
/// incremental and lock-free, so throughput *dips but never hits zero* —
/// there is no stop-the-world rehash. Before/after rows record the
/// bucket count and load factor the grow moved between.
pub fn fig15_resize(cfg: &RunConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig15_resize",
        "live 4x grow on the sharded cache: per-window throughput + load factor",
        "rows: before/after geometry + wall-clock windows (fig11 workload, fixed 100k range); \
         y: requests/s per window; during_resize=1 marks windows overlapping the grow",
    );
    // Fixed range across scales (like fig12-fig14) so the CI smoke gate
    // joins the before/after rows against the committed baseline.
    let range: u64 = 100_000;
    // Two shards, not four: each shard's migration is longer, so the
    // resize interval reliably spans sampling windows.
    let n_shards = 2usize;
    let wl = Workload::paper(range, 42).with_dist(cfg.dist).with_value(cfg.value);
    let pools = fig12_pools(range, n_shards);
    let mc = ShardedNvMemcached::create(&pools, CREATE_BUCKETS, usize::MAX / 2, true)
        .expect("pools sized");
    {
        let mut ctx = mc.register();
        for k in wl.warmup_keys() {
            mc.set(&mut ctx, k, k).expect("pools sized");
        }
    }
    let before_buckets: usize = mc.shards().iter().map(NvMemcached::capacity_hint).sum();
    let before_items = mc.len();

    let window = Duration::from_millis((cfg.measure_ms / 2).max(10));
    let grow_after = 2usize; // windows of pre-grow steady state
    let tail_windows = 2usize; // windows of post-grow steady state
    let max_windows = 24usize;

    let stop = AtomicBool::new(false);
    let ops: Vec<AtomicU64> = (0..FIG11_THREADS).map(|_| AtomicU64::new(0)).collect();
    let resize_span: Mutex<Option<(Instant, Instant)>> = Mutex::new(None);
    // (start, end, completed requests) per sampling window.
    let mut windows: Vec<(Instant, Instant, u64)> = Vec::new();
    std::thread::scope(|s| {
        let sampler = wl.sampler();
        for (t, ops) in ops.iter().enumerate() {
            let mc = &mc;
            let stop = &stop;
            let mut stream = RequestStream::with_sampler(&wl, sampler, t);
            s.spawn(move || {
                let mut ctx = mc.register();
                while !stop.load(Ordering::Relaxed) {
                    match stream.next().expect("infinite stream") {
                        Request::Set(k, v) => {
                            mc.set(&mut ctx, k, v).expect("pools sized");
                        }
                        Request::Get(k) => {
                            let _ = mc.get(&mut ctx, k);
                        }
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let total = || ops.iter().map(|c| c.load(Ordering::Relaxed)).sum::<u64>();
        let mut grower = None;
        let mut last = total();
        let mut windows_after_done = 0usize;
        for i in 0..max_windows {
            if i == grow_after {
                let mc = &mc;
                let resize_span = &resize_span;
                grower = Some(s.spawn(move || {
                    let mut ctx = mc.register();
                    let t0 = Instant::now();
                    mc.grow(&mut ctx, 4).expect("pools sized for the new arrays");
                    mc.finish_resize(&mut ctx).expect("pools sized");
                    *resize_span.lock().expect("span cell") = Some((t0, Instant::now()));
                }));
            }
            let w0 = Instant::now();
            std::thread::sleep(window);
            let now = total();
            windows.push((w0, Instant::now(), now - last));
            last = now;
            if resize_span.lock().expect("span cell").is_some() {
                windows_after_done += 1;
                if windows_after_done > tail_windows {
                    break;
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
        grower.expect("grow_after < max_windows").join().expect("grower thread panicked");
    });
    let (t0, t1) = resize_span.into_inner().expect("span cell").expect("grower records its span");
    let after_buckets: usize = mc.shards().iter().map(NvMemcached::capacity_hint).sum();
    let after_items = mc.len();

    report.measurements.push(
        Measurement {
            structure: Some("sharded-nv-memcached".to_string()),
            size: Some(range),
            ..Measurement::new("before grow")
        }
        .metric("buckets", before_buckets as f64)
        .metric("items", before_items as f64)
        .metric("load_factor", before_items as f64 / before_buckets as f64)
        .metric("shards", n_shards as f64),
    );
    let run_start = windows.first().expect("at least one window").0;
    for (i, &(w0, w1, n)) in windows.iter().enumerate() {
        let secs = (w1 - w0).as_secs_f64();
        let during = w0 < t1 && t0 < w1;
        report.measurements.push(
            Measurement {
                structure: Some("sharded-nv-memcached".to_string()),
                threads: Some(FIG11_THREADS as u64),
                size: Some(range),
                median_throughput: Some(n as f64 / secs),
                repeat_throughputs: vec![n as f64 / secs],
                ..Measurement::new(format!("window={i:02}"))
            }
            .metric("t_ms", (w0 - run_start).as_secs_f64() * 1e3)
            .metric("window_ms", secs * 1e3)
            .metric("during_resize", u64::from(during) as f64)
            .metric("shards", n_shards as f64),
        );
    }
    report.measurements.push(
        Measurement {
            structure: Some("sharded-nv-memcached".to_string()),
            size: Some(range),
            ..Measurement::new("after grow")
        }
        .metric("buckets", after_buckets as f64)
        .metric("items", after_items as f64)
        .metric("load_factor", after_items as f64 / after_buckets as f64)
        .metric("resize_ms", (t1 - t0).as_secs_f64() * 1e3)
        .metric("shards", n_shards as f64),
    );
    report.fill_dist(&cfg.dist.label(), &cfg.value.label());
    report
}

// ---------------------------------------------------------------------------
// Figure 16 (beyond the paper): live reshard timeline
// ---------------------------------------------------------------------------

/// Figure 16 (beyond the paper): the sharded cache across a **live 2→4
/// reshard**. Workers hammer the Figure 11 mix while a separate thread
/// runs the whole elastic-topology state machine — format four fresh
/// target pools, durably commit the `[OLD][NEW][CURSOR][VERSION]`
/// record, stream every key to its new home, retire the old pools —
/// and completed requests are sampled in fixed wall-clock windows, with
/// every window overlapping `[reshard start, swap done]` marked
/// `during_reshard`. The claim under test is the elastic-topology
/// tentpole's: migration is incremental (per-key stripe locks, never a
/// global pause), so throughput *dips but never hits zero*.
///
/// Before/after rows carry the fig13-style max/mean request imbalance
/// over a fixed-request window — resharding 2→4 under the hash router
/// must not degrade balance. The whole timeline repeats under the
/// `range` router as a negative control: range-partitioning this
/// key space degenerates (every small key routes to shard 0), so its
/// imbalance pins at the shard count while the hash rows stay near 1 —
/// the contrast shows the balance comes from the router, not the
/// reshard machinery.
pub fn fig16_reshard(cfg: &RunConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig16_reshard",
        "live 2→4 reshard on the sharded cache: per-window throughput + imbalance",
        "rows: per-router before/after imbalance + wall-clock windows (fig11 workload, \
         fixed 100k range); y: requests/s per window; during_reshard=1 marks windows \
         overlapping the migration; router=range is the degenerate negative control",
    );
    // Fixed range across scales (like fig12-fig15) so the CI smoke gate
    // joins the before/after rows against the committed baseline.
    let range: u64 = 100_000;
    let ops = cfg.memtier_ops;
    let wl = Workload::paper(range, 42).with_dist(cfg.dist).with_value(cfg.value);
    for router in [Router::Hash, Router::Range] {
        let rl = match router {
            Router::Hash => "hash",
            Router::Range => "range",
        };
        let pools = fig12_pools(range, 2);
        let mc = ShardedNvMemcached::create_with_router(
            &pools,
            CREATE_BUCKETS,
            usize::MAX / 2,
            true,
            router,
        )
        .expect("pools sized");
        {
            let mut ctx = mc.register();
            for k in wl.warmup_keys() {
                mc.set(&mut ctx, k, k).expect("pools sized");
            }
        }
        // Phase A: fixed-request window on the old topology — the
        // imbalance baseline the reshard must not degrade.
        mc.reset_shard_requests();
        let before = run_cache(&mc, FIG11_THREADS, ops, wl);
        let before_imbalance = imbalance(&mc.shard_requests());
        report.measurements.push(
            Measurement {
                structure: Some("sharded-nv-memcached".to_string()),
                threads: Some(FIG11_THREADS as u64),
                size: Some(range),
                median_throughput: Some(before.throughput()),
                repeat_throughputs: vec![before.throughput()],
                ..Measurement::new(format!("before reshard router={rl}"))
            }
            .metric("shards", 2.0)
            .metric("topology_version", mc.version() as f64)
            .metric("get_hit_rate", before.hit_rate())
            .metric("shard_imbalance", before_imbalance),
        );

        // Phase B: windowed timeline across the live migration.
        let window = Duration::from_millis((cfg.measure_ms / 2).max(10));
        let reshard_after = 2usize; // windows of pre-reshard steady state
        let tail_windows = 2usize; // windows of post-reshard steady state
        let max_windows = 24usize;
        let stop = AtomicBool::new(false);
        let op_counts: Vec<AtomicU64> = (0..FIG11_THREADS).map(|_| AtomicU64::new(0)).collect();
        let span: Mutex<Option<(Instant, Instant, nvmemcached::ReshardStats)>> = Mutex::new(None);
        // Provision the target pools before the workers start: zeroing
        // four CrashSim arenas under a saturated machine takes seconds
        // and is the operator's job, not the migration's — the measured
        // span must cover exactly `reshard()`.
        let new_pools = fig12_pools(range, 4);
        let mut windows: Vec<(Instant, Instant, u64)> = Vec::new();
        std::thread::scope(|s| {
            let sampler = wl.sampler();
            for (t, count) in op_counts.iter().enumerate() {
                let mc = &mc;
                let stop = &stop;
                let mut stream = RequestStream::with_sampler(&wl, sampler, t);
                s.spawn(move || {
                    let mut ctx = mc.register();
                    while !stop.load(Ordering::Relaxed) {
                        match stream.next().expect("infinite stream") {
                            Request::Set(k, v) => {
                                mc.set(&mut ctx, k, v).expect("pools sized");
                            }
                            Request::Get(k) => {
                                let _ = mc.get(&mut ctx, k);
                            }
                        }
                        count.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            let total = || op_counts.iter().map(|c| c.load(Ordering::Relaxed)).sum::<u64>();
            let mut resharder = None;
            let mut last = total();
            let mut windows_after_done = 0usize;
            for i in 0..max_windows {
                if i == reshard_after {
                    let mc = &mc;
                    let span = &span;
                    let new_pools = &new_pools;
                    resharder = Some(s.spawn(move || {
                        let t0 = Instant::now();
                        let stats =
                            mc.reshard(new_pools, CREATE_BUCKETS).expect("fresh target pools");
                        *span.lock().expect("span cell") = Some((t0, Instant::now(), stats));
                    }));
                }
                let w0 = Instant::now();
                std::thread::sleep(window);
                let now = total();
                windows.push((w0, Instant::now(), now - last));
                last = now;
                if span.lock().expect("span cell").is_some() {
                    windows_after_done += 1;
                    if windows_after_done > tail_windows {
                        break;
                    }
                }
            }
            stop.store(true, Ordering::Relaxed);
            resharder
                .expect("reshard_after < max_windows")
                .join()
                .expect("resharder thread panicked");
        });
        let (t0, t1, stats) =
            span.into_inner().expect("span cell").expect("resharder records its span");
        let run_start = windows.first().expect("at least one window").0;
        for (i, &(w0, w1, n)) in windows.iter().enumerate() {
            let secs = (w1 - w0).as_secs_f64();
            let during = w0 < t1 && t0 < w1;
            report.measurements.push(
                Measurement {
                    structure: Some("sharded-nv-memcached".to_string()),
                    threads: Some(FIG11_THREADS as u64),
                    size: Some(range),
                    median_throughput: Some(n as f64 / secs),
                    repeat_throughputs: vec![n as f64 / secs],
                    ..Measurement::new(format!("window={i:02} router={rl}"))
                }
                .metric("t_ms", (w0 - run_start).as_secs_f64() * 1e3)
                .metric("window_ms", secs * 1e3)
                .metric("during_reshard", u64::from(during) as f64),
            );
        }

        // Phase C: fixed-request window on the new topology.
        mc.reset_shard_requests();
        let after = run_cache(&mc, FIG11_THREADS, ops, wl);
        let after_imbalance = imbalance(&mc.shard_requests());
        report.measurements.push(
            Measurement {
                structure: Some("sharded-nv-memcached".to_string()),
                threads: Some(FIG11_THREADS as u64),
                size: Some(range),
                median_throughput: Some(after.throughput()),
                repeat_throughputs: vec![after.throughput()],
                ..Measurement::new(format!("after reshard router={rl}"))
            }
            .metric("shards", mc.n_shards() as f64)
            .metric("topology_version", mc.version() as f64)
            .metric("get_hit_rate", after.hit_rate())
            .metric("shard_imbalance", after_imbalance)
            .metric("reshard_ms", (t1 - t0).as_secs_f64() * 1e3)
            .metric("keys_moved", stats.keys_moved as f64),
        );
    }
    report.fill_dist(&cfg.dist.label(), &cfg.value.label());
    report
}

// ---------------------------------------------------------------------------
// Allocator microbenchmark (beyond the paper): TLAB A/B
// ---------------------------------------------------------------------------

/// Nodes allocated per burst before they are all recycled. Large enough
/// that a burst spans many pages (63 slots each for 64-byte nodes), so
/// the refill path is exercised, small enough that the working set stays
/// cache-resident.
const ALLOC_MICRO_CHUNK: usize = 1024;

/// One timed alloc/recycle run: `threads` workers each repeatedly
/// allocate a burst of `alloc_size`-byte slots inside one epoch op and
/// then `dealloc_unlinked` them all (unlinked frees recycle immediately,
/// so the heap footprint stays bounded). Pure allocator pressure — no
/// structure, no key lookups — isolating the hot path the TLAB refactor
/// targets.
fn alloc_micro_run(
    threads: usize,
    alloc_size: usize,
    tlab: bool,
    duration: Duration,
    nvram_ns: u64,
) -> RunStats {
    let pool =
        PoolBuilder::new(64 << 20).mode(Mode::Perf).latency(LatencyModel::new(nvram_ns)).build();
    let domain = NvDomain::create(Arc::clone(&pool));
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let apt = Mutex::new(AptStats::default());
    let flush = Mutex::new(pmem::FlushStats::default());
    let elapsed = std::thread::scope(|s| {
        for _ in 0..threads {
            let stop = &stop;
            let total_ops = &total_ops;
            let barrier = &barrier;
            let apt = &apt;
            let flush = &flush;
            let domain = &domain;
            s.spawn(move || {
                let mut ctx = domain.register();
                ctx.set_tlab_enabled(tlab);
                let mut buf: Vec<usize> = Vec::with_capacity(ALLOC_MICRO_CHUNK);
                barrier.wait();
                let mut ops = 0u64;
                let before_apt = ctx.apt_stats();
                let before_flush = ctx.flusher.stats();
                while !stop.load(Ordering::Relaxed) {
                    ctx.begin_op();
                    for _ in 0..ALLOC_MICRO_CHUNK {
                        buf.push(ctx.alloc(alloc_size).expect("pool sized for burst"));
                    }
                    ctx.end_op();
                    ctx.begin_op();
                    for a in buf.drain(..) {
                        ctx.dealloc_unlinked(a);
                    }
                    ctx.end_op();
                    ops += ALLOC_MICRO_CHUNK as u64;
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
                let a = ctx.apt_stats();
                {
                    let mut agg = apt.lock().expect("stat cell");
                    agg.alloc_hits += a.alloc_hits - before_apt.alloc_hits;
                    agg.alloc_misses += a.alloc_misses - before_apt.alloc_misses;
                    agg.unlink_hits += a.unlink_hits - before_apt.unlink_hits;
                    agg.unlink_misses += a.unlink_misses - before_apt.unlink_misses;
                    agg.tlab_hits += a.tlab_hits - before_apt.tlab_hits;
                    agg.tlab_misses += a.tlab_misses - before_apt.tlab_misses;
                    agg.tlab_refills += a.tlab_refills - before_apt.tlab_refills;
                }
                {
                    let f = ctx.flusher.stats().diff(before_flush);
                    let mut agg = flush.lock().expect("stat cell");
                    agg.clwbs += f.clwbs;
                    agg.fences += f.fences;
                    agg.sync_batches += f.sync_batches;
                }
                // Same rendezvous discipline as `run_mixed`: the clock
                // stops after counters are banked, before the drain.
                barrier.wait();
                ctx.drain_all();
            });
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        barrier.wait();
        start.elapsed()
    });
    let apt = *apt.lock().expect("stat cell");
    let flush = *flush.lock().expect("stat cell");
    RunStats { ops: total_ops.load(Ordering::Relaxed), elapsed, apt, flush }
}

/// Allocator microbenchmark (beyond the paper): pure alloc/recycle
/// throughput with durable thread-local allocation buffers on vs off,
/// across size classes and thread counts. The `tlab=1` rows should meet
/// or beat their `tlab=0` twins — leased allocations skip the bitmap
/// probe and the APT lookup while paying the same sync count per page.
pub fn alloc_micro(cfg: &RunConfig) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "alloc_micro",
        "allocator microbenchmark: TLAB bump vs shared hot path",
        "rows: alloc size x threads x tlab; y: allocations/s with TLAB hit rate and refills",
    );
    let duration = Duration::from_millis(cfg.measure_ms);
    for tlab in [true, false] {
        for alloc_size in [64usize, 256] {
            for threads in [1usize, 4] {
                let mut runs: Vec<RunStats> = Vec::with_capacity(cfg.repeats);
                for _ in 0..cfg.repeats.max(1) {
                    runs.push(alloc_micro_run(threads, alloc_size, tlab, duration, cfg.nvram_ns));
                }
                let per_repeat: Vec<f64> = runs.iter().map(RunStats::throughput).collect();
                let mut order: Vec<usize> = (0..runs.len()).collect();
                order.sort_by(|&a, &b| {
                    per_repeat[a].partial_cmp(&per_repeat[b]).expect("finite throughput")
                });
                let median = order[order.len() / 2];
                report.measurements.push(
                    Measurement {
                        threads: Some(threads as u64),
                        size: Some(alloc_size as u64),
                        latency_ns: Some(cfg.nvram_ns),
                        median_throughput: Some(per_repeat[median]),
                        repeat_throughputs: per_repeat.clone(),
                        flush: Some(runs[median].flush),
                        ..Measurement::new(format!(
                            "alloc size={alloc_size} threads={threads} tlab={}",
                            tlab as u64
                        ))
                    }
                    .apt_metrics(&runs[median].apt),
                );
            }
        }
    }
    // No key distribution applies: the workload is pure allocation.
    report.fill_dist("n/a", "n/a");
    report
}

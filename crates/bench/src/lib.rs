//! Shared experiment harness for regenerating every table and figure of
//! the paper's evaluation (§6). See `src/bin/` for one binary per
//! table/figure and DESIGN.md for the experiment index.
//!
//! The harness follows the paper's methodology:
//!
//! * structures are pre-filled to the target size, with keys drawn from a
//!   range of twice the size (so a 50/50 insert/remove mix holds the size
//!   steady);
//! * workers run a fixed-duration timed loop; throughput is
//!   operations/second summed over workers;
//! * reported numbers are medians of [`REPEATS`] repetitions (§6.1 uses
//!   the median of 5);
//! * NVRAM write latency defaults to the paper's 125 ns and is injected
//!   once per write-back batch ([`pmem::LatencyModel`]);
//! * request streams come from the [`workload`] crate — uniform keys by
//!   default (the paper's setting), with the `DIST`/`SKEW` knobs
//!   selecting zipfian, hotspot, or latest traffic for every
//!   workload-driven experiment (BENCHMARKS.md, "Workload model").
//!
//! Every harness builds a structured [`report::ExperimentReport`] through
//! the [`experiments`] registry; the text the binaries print and the
//! `BENCH_results.json` that `bench_all` writes are two renderings of the
//! same report. BENCHMARKS.md at the repository root documents the
//! methodology, every knob, and the JSON schema.

#![warn(missing_docs)]

pub mod experiments;
pub mod hist;
pub mod openloop;
pub mod report;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use linkcache::LinkCache;
use logbased::{LogDirectory, RedoLog};
use logfree::LinkOps;
use nvalloc::{AptStats, MemMode, NvDomain, ThreadCtx};
use pmem::{FlushStats, LatencyModel, Mode, PmemPool, PoolBuilder};
pub use workload::Xorshift;
use workload::{KeyDist, KeySampler, MixOp, MixSpec, ValueDist};

/// Repetitions per configuration (paper: median of 5). Override with the
/// `REPEATS` environment variable.
pub const REPEATS: usize = 3;

/// Default timed-phase duration per repetition. Override with
/// `MEASURE_MS`.
pub const MEASURE_MS: u64 = 200;

/// Reads an environment knob with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Whether full-scale (paper-sized, up to 4M elements) runs are enabled
/// (`FULL=1`). Default keeps every harness under a few minutes.
pub fn full_scale() -> bool {
    env_u64("FULL", 0) == 1
}

/// All knobs of one evaluation run, resolved once (from the environment
/// via [`RunConfig::from_env`], or constructed directly by tests) and
/// passed explicitly to every experiment so a run is reproducible from
/// its recorded knob values alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Repetitions per configuration; the median is reported (`REPEATS`).
    pub repeats: usize,
    /// Timed-phase duration per repetition, ms (`MEASURE_MS`).
    pub measure_ms: u64,
    /// Paper-sized element counts (`FULL=1`).
    pub full: bool,
    /// Smoke scale (`SMOKE=1`): structure sizes capped at 1024 and
    /// request counts shrunk so the whole registry finishes in seconds.
    /// Used by the CI `bench-report` job and the schema-shape tests.
    pub smoke: bool,
    /// Default injected NVRAM write latency, ns (`NVRAM_NS`; the paper
    /// uses 125). Figure 6 sweeps its own latencies regardless.
    pub nvram_ns: u64,
    /// Pre-crash workload duration for recovery experiments, ms
    /// (`CRASH_WORK_MS`).
    pub crash_work_ms: u64,
    /// memtier requests per thread for Figure 11 (`MEMTIER_OPS`).
    pub memtier_ops: u64,
    /// Largest shard count the `fig12_shards` sweep reaches (`SHARDS`;
    /// powers of two from 1 up to this value, default 8).
    pub shards: u64,
    /// The key distribution every workload-driven experiment draws from
    /// (`DIST`, alias `SKEW`; default uniform — the paper's setting).
    /// `fig13_skew` sweeps its own distributions regardless.
    pub dist: KeyDist,
    /// The modeled value-size distribution of cache `set`s (`VAL_DIST`;
    /// default `fixed-64`, the paper's memtier configuration).
    pub value: ValueDist,
    /// Whether NV-epochs workers use durable thread-local allocation
    /// buffers (`TLAB`; default on). `TLAB=0` pins the pre-TLAB shared
    /// hot path for A/B comparison; `fig9a_apt` and the log-based
    /// flavors ignore the knob (see BENCHMARKS.md).
    pub tlab: bool,
    /// Offered load override for `fig14_latency`, requests/second
    /// (`LOAD_RPS`; 0 = sweep the experiment's default loads).
    pub load_rps: u64,
    /// Connection-count override for `fig14_latency` (`CONNS`; 0 = sweep
    /// the experiment's default connection counts).
    pub conns: u64,
    /// Whether `fig14_latency` serves (and drives) connections through
    /// the epoll event loop (`EVENT_LOOP`; default on). `EVENT_LOOP=0`
    /// pins the blocking thread-per-connection server and client for
    /// A/B comparison; targets without the epoll shim always take the
    /// blocking path.
    pub event_loop: bool,
}

impl RunConfig {
    /// Resolves every knob from the environment (see BENCHMARKS.md).
    pub fn from_env() -> Self {
        let smoke = env_u64("SMOKE", 0) == 1;
        Self {
            repeats: env_u64("REPEATS", REPEATS as u64).max(1) as usize,
            measure_ms: env_u64("MEASURE_MS", MEASURE_MS),
            full: full_scale(),
            smoke,
            nvram_ns: env_u64("NVRAM_NS", 125),
            crash_work_ms: env_u64("CRASH_WORK_MS", if smoke { 20 } else { 100 }),
            memtier_ops: env_u64("MEMTIER_OPS", if smoke { 20_000 } else { 200_000 }),
            // Clamped: a shard needs its own pool, so triple digits is
            // already beyond any sane sweep.
            shards: env_u64("SHARDS", 8).clamp(1, 1024),
            dist: env_dist(),
            value: env_value_dist(),
            tlab: env_u64("TLAB", 1) == 1,
            load_rps: env_u64("LOAD_RPS", 0),
            conns: env_u64("CONNS", 0).clamp(0, 256),
            event_loop: env_u64("EVENT_LOOP", 1) == 1,
        }
    }

    /// The shard counts the `fig12_shards` experiment sweeps: powers of
    /// two from 1 up to the `SHARDS` knob (default `{1, 2, 4, 8}`).
    pub fn shard_counts(&self) -> Vec<usize> {
        let mut counts = Vec::new();
        let mut n = 1u64;
        while n <= self.shards {
            counts.push(n as usize);
            let Some(next) = n.checked_mul(2) else { break };
            n = next;
        }
        counts
    }

    /// A deliberately tiny configuration for tests: smoke scale, one
    /// repetition, millisecond timed phases. Fast even in debug builds.
    pub fn smoke_test() -> Self {
        Self {
            repeats: 1,
            measure_ms: 5,
            full: false,
            smoke: true,
            nvram_ns: 125,
            crash_work_ms: 5,
            memtier_ops: 2_000,
            shards: 2,
            dist: KeyDist::Uniform,
            value: ValueDist::PAPER,
            tlab: true,
            load_rps: 0,
            conns: 0,
            event_loop: true,
        }
    }

    /// Largest structure size experiments may use at this scale
    /// (`u64::MAX` when uncapped).
    pub fn size_cap(&self) -> u64 {
        if self.smoke {
            1024
        } else {
            u64::MAX
        }
    }

    /// Keeps only the sizes within [`RunConfig::size_cap`] (always keeps
    /// the smallest so no experiment ends up empty).
    pub fn cap_sizes(&self, mut sizes: Vec<u64>) -> Vec<u64> {
        let cap = self.size_cap();
        sizes.sort_unstable();
        let first = sizes.first().copied();
        sizes.retain(|&s| s <= cap);
        if sizes.is_empty() {
            sizes.extend(first);
        }
        sizes
    }

    /// The knob values to record in `BENCH_results.json`, stringified.
    pub fn knobs(&self) -> Vec<(String, String)> {
        vec![
            ("REPEATS".into(), self.repeats.to_string()),
            ("MEASURE_MS".into(), self.measure_ms.to_string()),
            ("FULL".into(), (self.full as u64).to_string()),
            ("SMOKE".into(), (self.smoke as u64).to_string()),
            ("NVRAM_NS".into(), self.nvram_ns.to_string()),
            ("CRASH_WORK_MS".into(), self.crash_work_ms.to_string()),
            ("MEMTIER_OPS".into(), self.memtier_ops.to_string()),
            ("SHARDS".into(), self.shards.to_string()),
            ("DIST".into(), self.dist.label()),
            ("VAL_DIST".into(), self.value.label()),
            ("TLAB".into(), (self.tlab as u64).to_string()),
            ("LOAD_RPS".into(), self.load_rps.to_string()),
            ("CONNS".into(), self.conns.to_string()),
            ("EVENT_LOOP".into(), (self.event_loop as u64).to_string()),
        ]
    }
}

/// Resolves the key-distribution knob: `DIST` first, the `SKEW` alias
/// second, uniform otherwise. A malformed spec aborts the run — a knob
/// typo must not silently measure the wrong workload.
fn env_dist() -> KeyDist {
    let spec = std::env::var("DIST").or_else(|_| std::env::var("SKEW"));
    match spec {
        Ok(s) => KeyDist::parse(&s).unwrap_or_else(|e| panic!("bad DIST/SKEW knob: {e}")),
        Err(_) => KeyDist::Uniform,
    }
}

/// Resolves the `VAL_DIST` knob (default: the paper's fixed 64-byte
/// values).
fn env_value_dist() -> ValueDist {
    match std::env::var("VAL_DIST") {
        Ok(s) => ValueDist::parse(&s).unwrap_or_else(|e| panic!("bad VAL_DIST knob: {e}")),
        Err(_) => ValueDist::PAPER,
    }
}

/// The structures of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsKind {
    /// Harris / lazy linked list.
    LinkedList,
    /// Hash table (one list per bucket).
    HashTable,
    /// Skip list.
    SkipList,
    /// External BST.
    Bst,
}

impl DsKind {
    /// Display name used in harness output.
    pub fn name(&self) -> &'static str {
        match self {
            DsKind::LinkedList => "linked-list",
            DsKind::HashTable => "hash-table",
            DsKind::SkipList => "skip-list",
            DsKind::Bst => "bst",
        }
    }

    /// The element counts Figure 5 sweeps for this structure at the
    /// given scale (`FULL` extends to 4M elements, `SMOKE` caps at 1024).
    pub fn fig5_sizes(&self, cfg: &RunConfig) -> Vec<u64> {
        let sizes = match self {
            DsKind::LinkedList => {
                if cfg.full {
                    vec![32, 128, 4096, 65_536]
                } else {
                    vec![32, 128, 4096, 16_384]
                }
            }
            _ => {
                if cfg.full {
                    vec![128, 4096, 65_536, 4_194_304]
                } else {
                    vec![128, 4096, 65_536]
                }
            }
        };
        cfg.cap_sizes(sizes)
    }
}

/// Per-thread state handed to workers.
pub struct Worker {
    /// The allocation/epoch context.
    pub ctx: ThreadCtx,
    /// Redo log (log-based structures only).
    pub log: Option<RedoLog>,
}

/// Uniform set interface over all durable structures under test.
pub trait SetDs: Sync + std::any::Any {
    /// Inserts `k -> v`; true if newly inserted.
    fn insert(&self, w: &mut Worker, k: u64, v: u64) -> bool;
    /// Removes `k`.
    fn remove(&self, w: &mut Worker, k: u64) -> Option<u64>;
    /// Looks up `k`.
    fn get(&self, w: &mut Worker, k: u64) -> Option<u64>;
    /// Downcast support (bulk-load fast paths in the harness).
    fn as_any(&self) -> &dyn std::any::Any;
}

macro_rules! impl_logfree {
    ($t:ty) => {
        impl SetDs for $t {
            fn insert(&self, w: &mut Worker, k: u64, v: u64) -> bool {
                <$t>::insert(self, &mut w.ctx, k, v).expect("pool sized for workload")
            }
            fn remove(&self, w: &mut Worker, k: u64) -> Option<u64> {
                <$t>::remove(self, &mut w.ctx, k)
            }
            fn get(&self, w: &mut Worker, k: u64) -> Option<u64> {
                <$t>::get(self, &mut w.ctx, k)
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
    };
}

impl_logfree!(logfree::LinkedList);
impl_logfree!(logfree::HashTable);
impl_logfree!(logfree::SkipList);
impl_logfree!(logfree::Bst);

macro_rules! impl_logbased {
    ($t:ty) => {
        impl SetDs for $t {
            fn insert(&self, w: &mut Worker, k: u64, v: u64) -> bool {
                let log = w.log.as_mut().expect("log-based worker has a redo log");
                <$t>::insert(self, &mut w.ctx, log, k, v).expect("pool sized for workload")
            }
            fn remove(&self, w: &mut Worker, k: u64) -> Option<u64> {
                let log = w.log.as_mut().expect("log-based worker has a redo log");
                <$t>::remove(self, &mut w.ctx, log, k)
            }
            fn get(&self, w: &mut Worker, k: u64) -> Option<u64> {
                <$t>::get(self, &mut w.ctx, k)
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
    };
}

impl_logbased!(logbased::LazyList);
impl_logbased!(logbased::LazyHashTable);
impl_logbased!(logbased::LockSkipList);
impl_logbased!(logbased::BstTk);

/// A constructed system under test: pool + domain + structure (+ log
/// directory for the baselines).
pub struct Instance {
    /// The backing pool.
    pub pool: Arc<PmemPool>,
    /// The allocation domain.
    pub domain: Arc<NvDomain>,
    /// The structure under test.
    pub ds: Box<dyn SetDs>,
    /// Present for log-based baselines.
    pub logdir: Option<Arc<LogDirectory>>,
    /// Present when the structure uses the link cache.
    pub lc: Option<Arc<LinkCache>>,
    /// Memory mode workers should run with.
    pub mem_mode: MemMode,
    /// Whether workers allocate through durable thread-local allocation
    /// buffers (NV-epochs mode only; the intent-log mode always takes
    /// the shared path).
    pub tlab: bool,
}

impl Instance {
    /// Creates a per-thread worker.
    pub fn worker(&self) -> Worker {
        let mut ctx = self.domain.register();
        ctx.set_mem_mode(self.mem_mode);
        ctx.set_tlab_enabled(self.tlab);
        if let Some(lc) = &self.lc {
            let lc = Arc::clone(lc);
            let pool = Arc::clone(&self.pool);
            ctx.set_trim_hook(Box::new(move |f| {
                let _ = &pool;
                lc.flush_all(f);
            }));
        }
        let log = self.logdir.as_ref().map(|d| d.open(ctx.tid()));
        Worker { ctx, log }
    }
}

/// Which implementation family to construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flavor {
    /// Log-free with link-and-persist only.
    LogFree,
    /// Log-free with the link cache enabled.
    LogFreeLc,
    /// Lock-based with redo logging (and intent-logged memory
    /// management).
    LogBased,
    /// Lock-based with redo logging but NV-epochs memory management
    /// (Figure 8's "identical memory management" configuration).
    LogBasedNvMem,
}

/// Pool size heuristic for `size` elements (with slack for churn).
pub fn pool_bytes(size: u64) -> usize {
    let per_elem = 512u64; // node + slab + skiplist towers + slack
    ((size * per_elem).max(64 << 20) as usize) + (64 << 20)
}

/// Builds an instance of `kind`/`flavor` over a pool in `mode` with the
/// given latency.
pub fn build(
    kind: DsKind,
    flavor: Flavor,
    size: u64,
    mode: Mode,
    latency: LatencyModel,
) -> Instance {
    let pool = PoolBuilder::new(pool_bytes(size)).mode(mode).latency(latency).build();
    let domain = NvDomain::create(Arc::clone(&pool));
    let buckets = (size.max(64) as usize).next_power_of_two();
    match flavor {
        Flavor::LogFree | Flavor::LogFreeLc => {
            let lc = (flavor == Flavor::LogFreeLc && mode != Mode::Volatile).then(|| {
                Arc::new(LinkCache::with_default_size(Arc::clone(&pool), logfree::marked::DIRTY))
            });
            let mk_ops = || LinkOps::new(Arc::clone(&pool), lc.clone());
            let mut ctx = domain.register();
            let ds: Box<dyn SetDs> = match kind {
                DsKind::LinkedList => Box::new(logfree::LinkedList::create(&domain, 1, mk_ops())),
                DsKind::HashTable => Box::new(
                    logfree::HashTable::create(&domain, 1, buckets, mk_ops())
                        .expect("pool sized for bucket array"),
                ),
                DsKind::SkipList => Box::new(
                    logfree::SkipList::create(&domain, &mut ctx, 1, mk_ops())
                        .expect("pool sized for head"),
                ),
                DsKind::Bst => Box::new(
                    logfree::Bst::create(&domain, &mut ctx, 1, mk_ops())
                        .expect("pool sized for sentinels"),
                ),
            };
            Instance { pool, domain, ds, logdir: None, lc, mem_mode: MemMode::NvEpochs, tlab: true }
        }
        Flavor::LogBased | Flavor::LogBasedNvMem => {
            let logdir = Arc::new(LogDirectory::create(&domain, 0).expect("log directory"));
            let mut ctx = domain.register();
            let ds: Box<dyn SetDs> = match kind {
                DsKind::LinkedList => {
                    Box::new(logbased::LazyList::create(&domain, &mut ctx, 1).expect("create"))
                }
                DsKind::HashTable => Box::new(
                    logbased::LazyHashTable::create(&domain, &mut ctx, 1, buckets).expect("create"),
                ),
                DsKind::SkipList => {
                    Box::new(logbased::LockSkipList::create(&domain, &mut ctx, 1).expect("create"))
                }
                DsKind::Bst => {
                    Box::new(logbased::BstTk::create(&domain, &mut ctx, 1).expect("create"))
                }
            };
            let mem_mode = if flavor == Flavor::LogBased && mode != Mode::Volatile {
                MemMode::IntentLog
            } else {
                MemMode::NvEpochs
            };
            Instance { pool, domain, ds, logdir: Some(logdir), lc: None, mem_mode, tlab: true }
        }
    }
}

// The RNG and all request generation live in the `workload` crate
// (re-exported `Xorshift` above); the harness only drives streams.

/// Pre-fills `inst` with `size` elements (every other key of the
/// `2 * size` range, the steady-state convention).
pub fn prefill(inst: &Instance, size: u64) {
    let mut w = inst.worker();
    // Sorted even keys: O(n) for the linked list via bulk load where
    // available, O(n log n) otherwise.
    if size == 0 {
        return;
    }
    let items: Vec<(u64, u64)> = (0..size).map(|i| (2 * i + 2, i)).collect();
    // Bulk-load fast path for the log-free linked list (bench prefill
    // would otherwise be O(n^2)).
    if let Some(ll) = as_linkedlist(&*inst.ds) {
        ll.bulk_load_sorted(&mut w.ctx, &items).expect("pool sized");
        return;
    }
    if let Some(ll) = as_lazylist(&*inst.ds) {
        ll.bulk_load_sorted(&mut w.ctx, &items).expect("pool sized");
        return;
    }
    // Insert in random order: sorted insertion would degenerate the
    // external BST into a list (the paper prefills with random keys).
    let mut items = items;
    let mut rng = Xorshift::new(0xF1F1);
    for i in (1..items.len()).rev() {
        let j = rng.bounded(i as u64 + 1) as usize;
        items.swap(i, j);
    }
    for &(k, v) in &items {
        inst.ds.insert(&mut w, k, v);
    }
    w.ctx.drain_all();
}

fn as_linkedlist(ds: &dyn SetDs) -> Option<&logfree::LinkedList> {
    ds.as_any().downcast_ref()
}

fn as_lazylist(ds: &dyn SetDs) -> Option<&logbased::LazyList> {
    ds.as_any().downcast_ref()
}

/// Outcome of a timed run.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Total operations completed.
    pub ops: u64,
    /// Timed duration.
    pub elapsed: Duration,
    /// Aggregated APT counters over all workers.
    pub apt: AptStats,
    /// Aggregated durable-write traffic over all workers during the
    /// timed phase (excludes prefill and post-run drains).
    pub flush: FlushStats,
}

impl RunStats {
    /// Operations per second (0.0 for an empty or zero-duration run —
    /// never NaN, so medians and JSON stay well-defined).
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if self.ops == 0 || secs <= 0.0 {
            return 0.0;
        }
        self.ops as f64 / secs
    }
}

/// Runs a mixed workload: `update_pct` percent updates (half inserts,
/// half removes) and the rest lookups, keys drawn from `[1, 2 * size]`
/// according to `dist` (see [`workload::KeyDist`]).
pub fn run_mixed(
    inst: &Instance,
    threads: usize,
    duration: Duration,
    size: u64,
    update_pct: u32,
    dist: KeyDist,
    seed: u64,
) -> RunStats {
    let stop = AtomicBool::new(false);
    let total_ops = AtomicU64::new(0);
    let barrier = Barrier::new(threads + 1);
    let apt = atomic_cells::<7>();
    let flush = atomic_cells::<3>();
    let key_range = (2 * size).max(2);
    let spec = MixSpec { key_range, update_pct, seed, dist };
    // One sampler for all threads: zipfian construction is O(key_range)
    // (the zeta sum) and the sampler itself is `Copy`.
    let sampler = KeySampler::new(dist, key_range);
    let elapsed = std::thread::scope(|s| {
        for t in 0..threads {
            let stop = &stop;
            let total_ops = &total_ops;
            let barrier = &barrier;
            let apt = &apt;
            let flush = &flush;
            let mut w = inst.worker();
            let ds = &*inst.ds;
            s.spawn(move || {
                let mut stream = spec.stream_with(sampler, t);
                barrier.wait();
                let mut ops = 0u64;
                let before_apt = w.ctx.apt_stats();
                let before_flush = w.ctx.flusher.stats();
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..32 {
                        match stream.next().expect("infinite stream") {
                            MixOp::Insert(k, v) => {
                                ds.insert(&mut w, k, v);
                            }
                            MixOp::Remove(k) => {
                                ds.remove(&mut w, k);
                            }
                            MixOp::Get(k) => {
                                ds.get(&mut w, k);
                            }
                        }
                        ops += 1;
                    }
                }
                total_ops.fetch_add(ops, Ordering::Relaxed);
                let a = w.ctx.apt_stats();
                apt[0].fetch_add(a.alloc_hits - before_apt.alloc_hits, Ordering::Relaxed);
                apt[1].fetch_add(a.alloc_misses - before_apt.alloc_misses, Ordering::Relaxed);
                apt[2].fetch_add(a.unlink_hits - before_apt.unlink_hits, Ordering::Relaxed);
                apt[3].fetch_add(a.unlink_misses - before_apt.unlink_misses, Ordering::Relaxed);
                apt[4].fetch_add(a.tlab_hits - before_apt.tlab_hits, Ordering::Relaxed);
                apt[5].fetch_add(a.tlab_misses - before_apt.tlab_misses, Ordering::Relaxed);
                apt[6].fetch_add(a.tlab_refills - before_apt.tlab_refills, Ordering::Relaxed);
                let f = w.ctx.flusher.stats().diff(before_flush);
                flush[0].fetch_add(f.clwbs, Ordering::Relaxed);
                flush[1].fetch_add(f.fences, Ordering::Relaxed);
                flush[2].fetch_add(f.sync_batches, Ordering::Relaxed);
                // Second rendezvous: elapsed is measured once every
                // worker has banked its counters (workers notice the
                // stop flag only every 32 ops, so the tail past
                // `duration` must be inside the denominator), but
                // before the uncounted drain work below.
                barrier.wait();
                w.ctx.drain_all();
            });
        }
        barrier.wait();
        let start = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        barrier.wait();
        start.elapsed()
    });
    RunStats {
        ops: total_ops.load(Ordering::Relaxed),
        elapsed,
        apt: AptStats {
            alloc_hits: apt[0].load(Ordering::Relaxed),
            alloc_misses: apt[1].load(Ordering::Relaxed),
            unlink_hits: apt[2].load(Ordering::Relaxed),
            unlink_misses: apt[3].load(Ordering::Relaxed),
            tlab_hits: apt[4].load(Ordering::Relaxed),
            tlab_misses: apt[5].load(Ordering::Relaxed),
            tlab_refills: apt[6].load(Ordering::Relaxed),
        },
        flush: FlushStats {
            clwbs: flush[0].load(Ordering::Relaxed),
            fences: flush[1].load(Ordering::Relaxed),
            sync_batches: flush[2].load(Ordering::Relaxed),
        },
    }
}

fn atomic_cells<const N: usize>() -> [AtomicU64; N] {
    std::array::from_fn(|_| AtomicU64::new(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(ops: u64, elapsed: Duration) -> RunStats {
        RunStats { ops, elapsed, apt: AptStats::default(), flush: FlushStats::default() }
    }

    #[test]
    fn throughput_of_empty_run_is_zero_not_nan() {
        assert_eq!(stats(0, Duration::ZERO).throughput(), 0.0);
        assert_eq!(stats(0, Duration::from_millis(100)).throughput(), 0.0);
        assert_eq!(stats(1000, Duration::ZERO).throughput(), 0.0);
    }

    #[test]
    fn throughput_of_real_run_is_positive() {
        let t = stats(1000, Duration::from_millis(500)).throughput();
        assert!((t - 2000.0).abs() < 1e-6, "throughput {t}");
    }

    #[test]
    fn knobs_record_the_distributions() {
        let mut cfg = RunConfig::smoke_test();
        cfg.dist = KeyDist::ZIPF_99;
        cfg.value = ValueDist::Uniform { min: 16, max: 64 };
        let knobs = cfg.knobs();
        let get = |name: &str| {
            knobs.iter().find(|(k, _)| k == name).map(|(_, v)| v.clone()).expect("knob present")
        };
        assert_eq!(get("DIST"), "zipf-0.99");
        assert_eq!(get("VAL_DIST"), "uniform-16-64");
    }
}

/// Outcome of [`measure`]: the median repetition plus enough context to
/// build a [`report::Measurement`] row.
#[derive(Debug, Clone)]
pub struct MeasuredRun {
    /// Median throughput over the repeats (ops/s).
    pub median: f64,
    /// Per-repeat throughputs in execution order (ops/s).
    pub per_repeat: Vec<f64>,
    /// Durable-write traffic of the median repetition's timed phase.
    pub flush: FlushStats,
    /// APT counters of the median repetition's timed phase.
    pub apt: AptStats,
}

/// Measures one configuration `cfg.repeats` times (fresh instance and
/// prefill per repetition, as the paper's methodology requires) and
/// returns the median repetition's numbers.
pub fn measure(
    mk: impl Fn() -> Instance,
    threads: usize,
    size: u64,
    update_pct: u32,
    cfg: &RunConfig,
) -> MeasuredRun {
    let duration = Duration::from_millis(cfg.measure_ms);
    let mut runs: Vec<RunStats> = Vec::with_capacity(cfg.repeats);
    for rep in 0..cfg.repeats.max(1) {
        let inst = mk();
        prefill(&inst, size);
        runs.push(run_mixed(&inst, threads, duration, size, update_pct, cfg.dist, rep as u64 + 1));
    }
    let per_repeat: Vec<f64> = runs.iter().map(RunStats::throughput).collect();
    let mut order: Vec<usize> = (0..runs.len()).collect();
    order.sort_by(|&a, &b| per_repeat[a].partial_cmp(&per_repeat[b]).expect("finite throughput"));
    let median_idx = order[order.len() / 2];
    MeasuredRun {
        median: per_repeat[median_idx],
        per_repeat,
        flush: runs[median_idx].flush,
        apt: runs[median_idx].apt,
    }
}

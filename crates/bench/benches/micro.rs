//! Criterion micro-benchmarks for the primitive costs underlying the
//! paper's figures: sync operations (Table 1 cost model), link-and-persist
//! vs plain CAS, link-cache insertion, allocation with and without APT
//! hits, and single operations on each structure.
//!
//! `cargo bench -p bench` — the figure-level harnesses live in
//! `src/bin/` (see DESIGN.md).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use linkcache::LinkCache;
use logfree::{marked::DIRTY, LinkOps};
use nvalloc::NvDomain;
use pmem::{LatencyModel, Mode, PoolBuilder};

fn bench_sync_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("sync");
    g.measurement_time(Duration::from_millis(400)).warm_up_time(Duration::from_millis(100));
    for (name, ns) in [("125ns", 125u64), ("1250ns", 1_250)] {
        let pool =
            PoolBuilder::new(1 << 20).mode(Mode::Perf).latency(LatencyModel::new(ns)).build();
        let mut f = pool.flusher();
        let a = pool.heap_start();
        g.bench_function(format!("clwb+fence/{name}"), |b| {
            b.iter(|| {
                f.clwb(a);
                f.fence();
            })
        });
        let mut f2 = pool.flusher();
        g.bench_function(format!("8xclwb+fence/{name}"), |b| {
            b.iter(|| {
                for i in 0..8 {
                    f2.clwb(a + 64 * i);
                }
                f2.fence();
            })
        });
    }
    g.finish();
}

fn bench_link_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("link_update");
    g.measurement_time(Duration::from_millis(400)).warm_up_time(Duration::from_millis(100));
    let pool =
        PoolBuilder::new(1 << 20).mode(Mode::Perf).latency(LatencyModel::PAPER_DEFAULT).build();
    let a = pool.heap_start();

    let volatile_pool = PoolBuilder::new(1 << 20).mode(Mode::Volatile).build();
    let vops = LinkOps::new(Arc::clone(&volatile_pool), None);
    let mut vf = volatile_pool.flusher();
    let va = volatile_pool.heap_start();
    let mut v = 0u64;
    g.bench_function("plain_cas(volatile)", |b| {
        b.iter(|| {
            let old = vops.load(va);
            vops.link_cas(1, va, old, (v & 0xFFFF) << 3, &mut vf);
            v += 1;
        })
    });

    let ops = LinkOps::new(Arc::clone(&pool), None);
    let mut f = pool.flusher();
    let mut v = 0u64;
    g.bench_function("link_and_persist", |b| {
        b.iter(|| {
            let old = ops.load(a);
            ops.link_cas(1, a, old, (v & 0xFFFF) << 3, &mut f);
            v += 1;
        })
    });

    let lc = Arc::new(LinkCache::with_default_size(Arc::clone(&pool), DIRTY));
    let cops = LinkOps::new(Arc::clone(&pool), Some(Arc::clone(&lc)));
    let mut cf = pool.flusher();
    let mut v = 0u64;
    g.bench_function("link_cache_add", |b| {
        b.iter(|| {
            let old = cops.load(a);
            cops.link_cas(v, a, old, (v & 0xFFFF) << 3, &mut cf);
            v += 1;
            if v % 64 == 0 {
                lc.flush_all(&mut cf);
            }
        })
    });
    g.finish();
}

fn bench_allocation(c: &mut Criterion) {
    let mut g = c.benchmark_group("nvalloc");
    g.measurement_time(Duration::from_millis(400)).warm_up_time(Duration::from_millis(100));
    let pool =
        PoolBuilder::new(256 << 20).mode(Mode::Perf).latency(LatencyModel::PAPER_DEFAULT).build();
    let domain = NvDomain::create(pool);
    let mut ctx = domain.register();
    // Steady-state alloc/retire churn: almost always APT hits.
    g.bench_function("alloc+retire(apt_hot)", |b| {
        b.iter(|| {
            ctx.begin_op();
            let a = ctx.alloc(64).expect("pool sized");
            ctx.retire(a);
            ctx.end_op();
        })
    });
    let mut ctx2 = domain.register();
    ctx2.set_mem_mode(nvalloc::MemMode::IntentLog);
    g.bench_function("alloc+retire(intent_log)", |b| {
        b.iter(|| {
            ctx2.begin_op();
            let a = ctx2.alloc(64).expect("pool sized");
            ctx2.retire(a);
            ctx2.end_op();
        })
    });
    g.finish();
}

fn bench_structures(c: &mut Criterion) {
    let mut g = c.benchmark_group("structure_ops");
    g.measurement_time(Duration::from_millis(500)).warm_up_time(Duration::from_millis(150));
    let pool =
        PoolBuilder::new(512 << 20).mode(Mode::Perf).latency(LatencyModel::PAPER_DEFAULT).build();
    let domain = NvDomain::create(Arc::clone(&pool));
    let mut ctx = domain.register();
    let ht = logfree::HashTable::create(&domain, 1, 1024, LinkOps::new(Arc::clone(&pool), None))
        .expect("pool sized");
    let sl = logfree::SkipList::create(&domain, &mut ctx, 2, LinkOps::new(Arc::clone(&pool), None))
        .expect("pool sized");
    let bst = logfree::Bst::create(&domain, &mut ctx, 3, LinkOps::new(Arc::clone(&pool), None))
        .expect("pool sized");
    // Scrambled prefill order: ascending keys would degenerate the
    // external BST into a spine.
    let mut seed = 0x9E37u64;
    for _ in 1..=1024u64 {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let k = seed % 1_000_000 + 1;
        ht.insert(&mut ctx, k, k).expect("pool sized");
        sl.insert(&mut ctx, k, k).expect("pool sized");
        bst.insert(&mut ctx, k, k).expect("pool sized");
    }
    let mut k = 2_000_000u64;
    g.bench_function("hash_insert_remove", |b| {
        b.iter(|| {
            k = k % 100_000 + 2000;
            ht.insert(&mut ctx, k, k).expect("pool sized");
            ht.remove(&mut ctx, k);
        })
    });
    g.bench_function("skiplist_insert_remove", |b| {
        b.iter(|| {
            k = (k.wrapping_mul(6364136223846793005).wrapping_add(1) % 1_000_000) + 2_000_000;
            sl.insert(&mut ctx, k, k).expect("pool sized");
            sl.remove(&mut ctx, k);
        })
    });
    g.bench_function("bst_insert_remove", |b| {
        b.iter(|| {
            k = (k.wrapping_mul(6364136223846793005).wrapping_add(1) % 1_000_000) + 2_000_000;
            bst.insert(&mut ctx, k, k).expect("pool sized");
            bst.remove(&mut ctx, k);
        })
    });
    g.bench_function("hash_get", |b| {
        b.iter(|| {
            k = (k.wrapping_mul(6364136223846793005).wrapping_add(1) % 1_000_000) + 1;
            ht.get(&mut ctx, k)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sync_primitives,
    bench_link_update,
    bench_allocation,
    bench_structures
);
criterion_main!(benches);

//! End-to-end open-loop client tests over a real event-driven server:
//! the multiplexed (epoll) driver and the thread-per-connection driver
//! must offer the identical schedule and account for every request.

use std::sync::Arc;
use std::time::Duration;

use bench::openloop::{run_open_loop, OpenLoopConfig};
use nvmemcached::memtier::Workload;
use nvmemcached::sharded::ShardedNvMemcached;
use pmem::{LatencyModel, Mode, PoolBuilder};
use server::{Server, ServerConfig};

fn serve(shards: usize) -> (Server, u64) {
    const RANGE: u64 = 2_000;
    let pools: Vec<_> = (0..shards)
        .map(|_| {
            PoolBuilder::new(32 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
        })
        .collect();
    let cache =
        Arc::new(ShardedNvMemcached::create(&pools, 1024, 100_000, true).expect("pool sized"));
    {
        let mut ctx = cache.register();
        for k in Workload::paper(RANGE, 42).warmup_keys() {
            cache.set(&mut ctx, k, k).expect("pool sized");
        }
    }
    (Server::start_local(cache).expect("bind loopback"), RANGE)
}

fn cfg(server: &Server, range: u64, conns: usize, client_threads: usize) -> OpenLoopConfig {
    OpenLoopConfig {
        addr: server.local_addr(),
        connections: conns,
        offered_rps: 4_000.0,
        duration: Duration::from_millis(150),
        workload: Workload::paper(range, 42),
        seed: 1914,
        client_threads,
    }
}

/// The multiplexed driver against the event-driven server: many more
/// connections than either server workers or client threads, full
/// schedule drained, every request accounted for exactly once.
#[test]
fn multiplexed_client_drains_the_full_schedule() {
    if !server::sys::SUPPORTED {
        return;
    }
    let (server, range) = serve(2);
    let conns = 16;
    let r = run_open_loop(&cfg(&server, range, conns, 2)).expect("open-loop run");

    // The schedule is fixed: ceil(per-conn rate x duration) per conn.
    let per_conn = (4_000.0 / conns as f64 * 0.150_f64).ceil() as u64;
    assert_eq!(r.sent, per_conn * conns as u64, "every scheduled request completed");
    assert_eq!(r.latency.count(), r.sent, "one latency sample per request");
    assert_eq!(r.sets + r.hits + r.misses, r.sent, "every request classified");
    assert!(r.sets > 0, "the 1:4 mix sent sets");
    assert!(r.hits > 0, "warmed cache produced hits");
    assert!(r.hit_rate() > 0.5, "hit rate {}", r.hit_rate());
    assert!(r.achieved_rps() > 0.0);
    assert!(r.latency.percentile(50.0) > 0);
    server.shutdown();
}

/// Driver equivalence: both drivers draw the same per-connection
/// arrival schedules and request streams (seeded by global connection
/// index), so swapping drivers changes *who waits*, never *what is
/// offered* — same request counts, same set/get split, same keys (and
/// therefore, against freshly warmed identical caches, the same hits).
#[test]
fn multiplexed_and_threaded_drivers_offer_the_same_load() {
    if !server::sys::SUPPORTED {
        return;
    }
    let (server_a, range) = serve(2);
    let mux = run_open_loop(&cfg(&server_a, range, 8, 2)).expect("multiplexed run");
    server_a.shutdown();

    let (server_b, range) = serve(2);
    let threaded = run_open_loop(&cfg(&server_b, range, 8, 0)).expect("threaded run");
    server_b.shutdown();

    assert_eq!(mux.sent, threaded.sent);
    assert_eq!(mux.sets, threaded.sets);
    assert_eq!(mux.hits, threaded.hits);
    assert_eq!(mux.misses, threaded.misses);
}

/// The blocking client against the blocking server still works (the
/// non-Linux pairing), provided workers cover the connections.
#[test]
fn threaded_client_against_blocking_server() {
    const RANGE: u64 = 2_000;
    let pools: Vec<_> = (0..2)
        .map(|_| {
            PoolBuilder::new(32 << 20).mode(Mode::CrashSim).latency(LatencyModel::ZERO).build()
        })
        .collect();
    let cache =
        Arc::new(ShardedNvMemcached::create(&pools, 1024, 100_000, true).expect("pool sized"));
    let server = Server::start(
        cache,
        ServerConfig { workers: Some(4), event_loop: false, ..ServerConfig::default() },
    )
    .expect("bind loopback");
    let r = run_open_loop(&OpenLoopConfig {
        addr: server.local_addr(),
        connections: 4,
        offered_rps: 2_000.0,
        duration: Duration::from_millis(100),
        workload: Workload::paper(RANGE, 42),
        seed: 7,
        client_threads: 0,
    })
    .expect("open-loop run");
    assert_eq!(r.sent, r.latency.count());
    assert!(r.sent >= 4);
    server.shutdown();
}
